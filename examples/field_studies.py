#!/usr/bin/env python3
"""Re-run the paper's two field studies and print the §VI headline numbers.

Airport scenario (Fig. 6): one 5-mile NFZ; the trace starts 30 ft outside
the boundary and drives ~3 miles away.  Fix-rate 1 Hz takes 649 samples;
adaptive sampling needs an order of magnitude fewer.

Residential scenario (Fig. 8): 94 house NFZs of 20 ft radius along a ~1
mile drive; insufficiency ordering 2 Hz > 3 Hz > 5 Hz ~= adaptive, with
the single 5 Hz insufficiency caused by a missed GPS hardware update.

Run:  python examples/field_studies.py        (~15 s: real RSA signing)
"""

from repro.analysis.figures import (
    fig6_cumulative_samples,
    fig8a_nearest_distance,
)
from repro.core.sufficiency import count_insufficient_pairs
from repro.perf.costs import RASPBERRY_PI_3
from repro.perf.cpu import CpuUtilizationModel
from repro.perf.power import kaup_power_w
from repro.workloads import (
    build_airport_scenario,
    build_residential_scenario,
    run_policy,
)


def airport() -> None:
    print("=== Airport scenario (Fig. 6) ===")
    scenario = build_airport_scenario(seed=0)
    fixed = run_policy(scenario, "fixed", 1.0, key_bits=1024)
    adaptive = run_policy(scenario, "adaptive", key_bits=1024)
    print(f"  1 Hz fix-rate : {fixed.sample_count:4d} samples  (paper: 649)")
    print(f"  adaptive      : {adaptive.sample_count:4d} samples  (paper: 14)")
    series = fig6_cumulative_samples(adaptive)
    first_ft, last_ft = series[0][0], series[-1][0]
    print(f"  adaptive samples span {first_ft:.0f} ft to {last_ft:,.0f} ft "
          "from the boundary")


def residential() -> None:
    print("\n=== Residential scenario (Fig. 8) ===")
    scenario = build_residential_scenario(seed=0)
    distances = [d for _, d in fig8a_nearest_distance(scenario)]
    print(f"  94 NFZs; nearest-boundary distance {min(distances):.0f}-"
          f"{max(distances):.0f} ft (paper: closest 21 ft)")

    model = CpuUtilizationModel(RASPBERRY_PI_3)
    print(f"  {'policy':<12} {'samples':>8} {'insufficient':>13} "
          f"{'paper':>6} {'Pi CPU%':>8} {'power W':>8}")
    paper = {"2 Hz": 39, "3 Hz": 9, "5 Hz": 1, "adaptive": 1}
    runs = {f"{r:g} Hz": run_policy(scenario, "fixed", r, key_bits=1024)
            for r in (2.0, 3.0, 5.0)}
    runs["adaptive"] = run_policy(scenario, "adaptive", key_bits=1024)
    for name, run in runs.items():
        samples = [entry.sample for entry in run.result.poa]
        count = count_insufficient_pairs(samples, scenario.zones,
                                         scenario.frame)
        cpu = model.utilization(run.sample_times, 1024,
                                scenario.t_start, scenario.t_end)
        power = kaup_power_w(cpu.mean / 100.0)
        print(f"  {name:<12} {run.sample_count:>8} {count:>13} "
              f"{paper[name]:>6} {cpu.mean:>8.2f} {power:>8.4f}")


def main() -> None:
    airport()
    residential()


if __name__ == "__main__":
    main()
