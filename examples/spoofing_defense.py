#!/usr/bin/env python3
"""The secure-world GPS spoofing detector in action (paper §VII-A2).

An attacker tries to defeat AliDrone *below* the TEE: instead of forging
signatures (hopeless — see rogue_drone_audit.py), they feed synthetic GPS
signals so the enclave signs a fabricated position.  The paper's proposed
defence is a spoofing detector inside the secure world: "If the hardware
is running in a suspicious environment, the GPS Sampler can decline to
provide authenticity services."

This example shows the detector catching three classic spoofing
signatures — a position teleport, a rewound GPS clock, and a frozen clock
— and the GPS Sampler refusing to sign until the environment looks sane
again.

Run:  python examples/spoofing_defense.py
"""

import random

from repro.errors import TrustedAppError
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import provision_device
from repro.tee.gps_sampler_ta import CMD_GET_GPS_AUTH, GPS_SAMPLER_UUID

T0 = DEFAULT_EPOCH


def try_sign(device, sid, clock, label):
    try:
        device.client.invoke(sid, CMD_GET_GPS_AUTH)
        print(f"  [{clock.now - T0:6.1f} s] {label:<34} -> signed")
        return True
    except TrustedAppError as exc:
        reason = str(exc).split(";")[0]
        print(f"  [{clock.now - T0:6.1f} s] {label:<34} -> DECLINED: "
              f"{reason}")
        return False


def main() -> None:
    rng = random.Random(55)
    frame = LocalFrame(GeoPoint(40.1000, -88.2200))

    # The "real" flight is a gentle 10 m/s eastbound track...
    # ...but at t = +6 s the spoofer jumps the reported position 40 km
    # away (to paint an innocent trajectory far from any NFZ), and at
    # t = +40 s it replays old signals, rewinding the GPS clock.
    source = WaypointSource([
        (T0, 0.0, 0.0),
        (T0 + 5.8, 58.0, 0.0),
        (T0 + 6.0, 40_000.0, 0.0),        # teleport: spoofed position
        (T0 + 60.0, 40_540.0, 0.0),
    ])
    device = provision_device("defended-drone", key_bits=1024, rng=rng)
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=3)
    device.attach_gps(receiver, clock, spoof_detection=True)
    sid = device.client.open_session(GPS_SAMPLER_UUID)

    print("phase 1: honest environment")
    clock.advance(1.0)
    assert try_sign(device, sid, clock, "normal sample")
    clock.advance(2.0)
    assert try_sign(device, sid, clock, "normal sample")

    print("\nphase 2: spoofer teleports the reported position 40 km")
    clock.advance_to(T0 + 7.0)
    assert not try_sign(device, sid, clock, "sample after teleport")
    clock.advance(5.0)
    assert not try_sign(device, sid, clock, "still inside hold-down")

    print("\nphase 3: spoofer gives up; hold-down expires")
    clock.advance_to(T0 + 7.0 + 31.0)
    assert try_sign(device, sid, clock, "plausible track resumed")

    declines = device.core.op_counters["spoof_declines"]
    signed = device.core.op_counters["gps_auth_samples"]
    print(f"\nsummary: {signed} samples signed, {declines} declined — the "
          "attacker's fabricated positions never received a TEE signature")


if __name__ == "__main__":
    main()
