#!/usr/bin/env python3
"""A delivery fleet under one Auditor: mixed compliance over a day.

Three drones operated by the same company run missions through a shared
zone map on one virtual timeline (the :class:`repro.sim.World`
orchestrator).  One pilot cuts a corner through a protected zone; the
Auditor's evidence retention and penalty ledger single them out while the
compliant drones accumulate clean audits.

Run:  python examples/fleet_compliance.py
"""

from repro.sim.world import World


def main() -> None:
    world = World(seed=11, key_bits=1024)

    # The shared zone map: a hospital helipad, a school, two backyards.
    zones = {
        "hospital": world.register_zone(600.0, 200.0, 80.0,
                                        owner_name="county hospital"),
        "school": world.register_zone(1400.0, -100.0, 60.0,
                                      owner_name="school district"),
        "yard-1": world.register_zone(950.0, 60.0, 25.0, owner_name="carol"),
        "yard-2": world.register_zone(1900.0, 150.0, 25.0, owner_name="dan"),
    }
    print(f"zone map: {len(zones)} NFZs registered")

    for name, home in [("falcon", (0.0, 0.0)), ("heron", (100.0, -50.0)),
                       ("osprey", (50.0, 50.0))]:
        world.add_drone(name, home=home)
    print(f"fleet: {', '.join(world.drones)} registered "
          f"({len(world.server.drones)} drones)\n")

    # --- morning missions: everyone flies wide of the zones ---------------
    print("morning missions (compliant):")
    for name, waypoints in [("falcon", [(800.0, -250.0), (2200.0, -300.0)]),
                            ("heron", [(1000.0, 400.0), (2100.0, 420.0)]),
                            ("osprey", [(500.0, -400.0), (1200.0, -450.0)])]:
        record = world.fly_mission(name, waypoints)
        stats = record.result.stats
        print(f"  {name:<7} {stats.duration:5.0f} s, "
              f"{stats.auth_samples:3d} signed samples")

    # --- afternoon: all three fly again; osprey cuts straight through the
    # hospital zone.  Synchronize the fleet clocks so every afternoon PoA
    # covers the incident instant (a drone with no PoA at the reported
    # time is found in violation by burden of proof).
    sync = max(actor.clock.now for actor in world.drones.values()) + 10.0
    for actor in world.drones.values():
        actor.clock.advance_to(sync)
    print("\nafternoon: osprey cuts a corner through the hospital zone")
    world.fly_mission("falcon", [(0.0, -250.0)])
    world.fly_mission("heron", [(0.0, 400.0)])
    rogue = world.fly_mission("osprey", [(600.0, 200.0), (30.0, 30.0)],
                              policy="fixed", fixed_rate_hz=2.0)

    # The Zone Owner spots the drone while it is actually inside the zone:
    # scan osprey's ground-truth timeline for the incursion instant.
    hospital_circle = None
    for record_id, zone_record in world.server.zones._zones.items():
        if record_id == zones["hospital"]:
            hospital_circle = zone_record.zone.to_circle(world.frame)
    t = rogue.result.stats.start_time
    incident_time = None
    while t <= rogue.result.stats.end_time:
        if hospital_circle.contains(
                world.drones["osprey"].timeline.position_at(t)):
            incident_time = t
            break
        t += 0.5
    assert incident_time is not None, "osprey never entered the zone?"

    # --- incident reports come in for everyone near the hospital ----------
    print("\nincident reports against all three drones at the same instant:")
    for name in world.drones:
        finding = world.report_incident(zones["hospital"], name,
                                        incident_time,
                                        description="drone over the helipad")
        verdict = (f"VIOLATION ({finding.kind.value})" if finding.violation
                   else "cleared")
        print(f"  {name:<7} -> {verdict}")

    # --- the ledger singles out the offender --------------------------------
    print("\npenalty ledger:")
    for name, actor in world.drones.items():
        offences = world.server.ledger.offences(actor.drone_id)
        fines = world.server.ledger.total_fines(actor.drone_id)
        print(f"  {name:<7} offences={offences} fines=${fines:,.0f}")

    osprey = world.drones["osprey"]
    assert world.server.ledger.offences(osprey.drone_id) == 1
    assert all(world.server.ledger.offences(a.drone_id) == 0
               for n, a in world.drones.items() if n != "osprey")


if __name__ == "__main__":
    main()
