#!/usr/bin/env python3
"""Quickstart: one drone, one no-fly-zone, one audited flight.

Walks the complete AliDrone protocol (paper §IV-B) in ~80 lines:

    0. manufacture a TrustZone device (TEE keypair born in the enclave)
    1. a Zone Owner registers an NFZ with the Auditor
    2. the Drone Operator registers the drone (D+, T+)
    3. the drone queries the Auditor for zones along its flight plan
    4. it flies with adaptive sampling, signing GPS samples in the TEE
    5. it submits the encrypted Proof-of-Alibi
    6. the Zone Owner reports an incident; the PoA clears the drone

Run:  python examples/quickstart.py
"""

import random

from repro import (
    AliDroneClient,
    AliDroneServer,
    FlightPlan,
    GeoPoint,
    LocalFrame,
    NoFlyZone,
    SimClock,
    provision_device,
)
from repro.core.protocol import IncidentReport, ZoneRegistrationRequest
from repro.drone.kinematics import simulate_waypoint_flight
from repro.gps.receiver import SimulatedGpsReceiver
from repro.sim.clock import DEFAULT_EPOCH


def main() -> None:
    rng = random.Random(2024)
    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    t0 = DEFAULT_EPOCH

    # --- the Auditor's server, and a Zone Owner registering her yard -----
    server = AliDroneServer(frame, rng=rng)
    yard = frame.to_geo(400.0, 60.0)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(yard.lat, yard.lon, 30.0),
        proof_of_ownership="county deed #4411", owner_name="alice"))
    print(f"[auditor ] zone {zone_id} registered (r = 30 m)")

    # --- manufacture and register a drone --------------------------------
    device = provision_device("dji-sim-0001", key_bits=1024, rng=rng)
    print(f"[factory ] device provisioned; T+ fingerprint "
          f"{hex(device.tee_public_key.n)[2:18]}...")

    # The flight: 800 m east, passing ~90 m south of the protected yard.
    source = simulate_waypoint_flight([(0.0, -30.0), (800.0, -30.0)], t0)
    clock = SimClock(t0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=t0, seed=7, noise_std_m=1.0)
    device.attach_gps(receiver, clock)

    client = AliDroneClient(device, receiver, clock, frame, rng=rng,
                            operator_name="acme deliveries")
    drone_id = client.register(server)
    print(f"[operator] drone registered as {drone_id}")

    # --- pre-flight zone query -------------------------------------------
    plan = FlightPlan([frame.to_geo(0.0, -30.0), frame.to_geo(800.0, -30.0)],
                      margin_m=250.0)
    zones = client.query_zones(server, plan)
    print(f"[operator] zone query returned {len(zones)} NFZ(s)")

    # --- fly with adaptive sampling --------------------------------------
    record = client.fly(t0 + source.duration, policy="adaptive")
    stats = record.result.stats
    print(f"[drone   ] flew {source.duration:.0f} s; "
          f"{stats.auth_samples} TEE-signed samples "
          f"(mean rate {stats.mean_rate_hz:.2f} Hz)")

    # --- submit the Proof-of-Alibi ----------------------------------------
    report = client.submit_poa(server, record)
    print(f"[auditor ] PoA verification: {report.status.value} "
          f"({report.sample_count} samples)")

    # --- an incident report, adjudicated against the retained PoA ---------
    finding = server.handle_incident(IncidentReport(
        zone_id=zone_id, drone_id=drone_id,
        incident_time=t0 + source.duration / 2.0,
        description="drone spotted near my yard"))
    verdict = "VIOLATION" if finding.violation else "cleared"
    print(f"[auditor ] incident adjudicated: {verdict} — {finding.detail}")

    assert report.compliant and not finding.violation


if __name__ == "__main__":
    main()
