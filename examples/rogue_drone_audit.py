#!/usr/bin/env python3
"""A rogue operator tries every GPS-forgery attack; the Auditor catches all.

The paper's threat model (§III-B): a dishonest operator flies straight
through an NFZ to take a shortcut, then tries to hide it:

  1. submit the truthful trace            -> insufficient (self-convicting)
  2. pre-compute an innocent route,
     signed with the operator's own key   -> bad signature
  3. tamper a genuine PoA away from zone  -> bad signature
  4. relay an accomplice drone's PoA      -> bad signature (wrong TEE)
  5. submit nothing at all                -> no PoA covers the incident

Run:  python examples/rogue_drone_audit.py
"""

import random

from repro import (
    AliDroneClient,
    AliDroneServer,
    GeoPoint,
    LocalFrame,
    NoFlyZone,
    SimClock,
    provision_device,
)
from repro.core.attacks import forge_straight_route, tamper_with_samples
from repro.core.poa import encrypt_poa
from repro.core.protocol import (
    IncidentReport,
    PoaSubmission,
    ZoneRegistrationRequest,
)
from repro.crypto.rsa import generate_rsa_keypair
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def build_world(rng):
    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    server = AliDroneServer(frame, rng=rng)
    center = frame.to_geo(300.0, 0.0)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 40.0),
        proof_of_ownership="deed", owner_name="zone owner"))

    # The actual illicit flight: straight through the zone at T0+30.
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 60.0, 600.0, 0.0)])
    device = provision_device("rogue-drone", key_bits=1024, rng=rng)
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=3)
    device.attach_gps(receiver, clock)
    client = AliDroneClient(device, receiver, clock, frame, rng=rng)
    drone_id = client.register(server)
    incident = IncidentReport(zone_id=zone_id, drone_id=drone_id,
                              incident_time=T0 + 30.0,
                              description="spotted over the property")
    return frame, server, client, drone_id, incident


def adjudicate(server, incident, label):
    finding = server.handle_incident(incident)
    verdict = f"VIOLATION ({finding.kind.value})" if finding.violation \
        else "cleared"
    print(f"  {label:<38} -> {verdict}")
    return finding


def submit(server, drone_id, poa, rng, start=T0, end=T0 + 60.0):
    records = encrypt_poa(poa, server.public_encryption_key, rng=rng)
    server.receive_poa(PoaSubmission(
        drone_id=drone_id, flight_id=f"attempt-{rng.random():.6f}",
        records=records, claimed_start=start, claimed_end=end))


def main() -> None:
    print("attack 1: submit the truthful trace")
    rng = random.Random(1)
    frame, server, client, drone_id, incident = build_world(rng)
    record = client.fly(T0 + 60.0, policy="fixed", fixed_rate_hz=2.0)
    submit(server, drone_id, record.poa, rng)
    finding = adjudicate(server, incident, "truthful PoA (drone WAS inside)")
    assert finding.violation

    print("attack 2: pre-computed innocent route, attacker-signed")
    rng = random.Random(2)
    frame, server, client, drone_id, incident = build_world(rng)
    attacker_key = generate_rsa_keypair(1024, rng=rng)
    forged = forge_straight_route(frame.to_geo(0, 500),
                                  frame.to_geo(600, 500),
                                  T0, T0 + 60.0, 30, attacker_key)
    submit(server, drone_id, forged, rng)
    finding = adjudicate(server, incident, "forged compliant route")
    assert finding.violation

    print("attack 3: tamper a genuine PoA away from the zone")
    rng = random.Random(3)
    frame, server, client, drone_id, incident = build_world(rng)
    record = client.fly(T0 + 60.0, policy="fixed", fixed_rate_hz=2.0)
    moved = tamper_with_samples(record.poa, 0.0045, 0.0)  # ~500 m north
    submit(server, drone_id, moved, rng)
    finding = adjudicate(server, incident, "coordinate-shifted genuine PoA")
    assert finding.violation

    print("attack 4: relay an accomplice drone's compliant PoA")
    rng = random.Random(4)
    frame, server, client, drone_id, incident = build_world(rng)
    accomplice_device = provision_device("accomplice", key_bits=1024,
                                         rng=random.Random(99))
    accomplice_source = WaypointSource([(T0, 0.0, 500.0),
                                        (T0 + 60.0, 600.0, 500.0)])
    clock = SimClock(T0)
    accomplice_receiver = SimulatedGpsReceiver(accomplice_source, frame,
                                               update_rate_hz=5.0,
                                               start_time=T0, seed=6)
    accomplice_device.attach_gps(accomplice_receiver, clock)
    accomplice = AliDroneClient(accomplice_device, accomplice_receiver,
                                clock, frame, rng=rng)
    relay = accomplice.fly(T0 + 60.0, policy="fixed", fixed_rate_hz=2.0)
    submit(server, drone_id, relay.poa, rng)
    finding = adjudicate(server, incident, "relayed accomplice PoA")
    assert finding.violation

    print("attack 5: submit nothing")
    rng = random.Random(5)
    _, server, _, _, incident = build_world(rng)
    finding = adjudicate(server, incident, "no submission at all")
    assert finding.violation

    print("\nall five attacks produced violation findings; total fines "
          "would accumulate per the penalty policy")


if __name__ == "__main__":
    main()
