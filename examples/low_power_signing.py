#!/usr/bin/env python3
"""The two §VII-A1 answers to the RSA bottleneck, end to end.

Table II shows a 2048-bit TEE key cannot keep up with 5 Hz sampling on the
Pi.  The paper sketches two remedies; this example runs both through the
real TEE and compares them with the baseline:

  (a) **symmetric signing** — a per-flight key agreed between the TEE and
      the Auditor via Diffie-Hellman (the operator only relays public
      values), samples authenticated with HMAC-SHA256;
  (b) **sign-all-at-once** — samples buffered in secure memory, one RSA
      signature over the whole trace at flight end.

Run:  python examples/low_power_signing.py
"""

import random
import time

from repro.core.nfz import NoFlyZone
from repro.extensions import (
    CMD_FINALIZE_BATCH,
    CMD_GET_GPS_AUTH_SYM,
    CMD_INIT_FLIGHT_KEY,
    CMD_RECORD_GPS,
    AuditorFlightKey,
    BatchGpsSamplerTA,
    BatchSignedPoa,
    SymmetricGpsSamplerTA,
    SymmetricSignedSample,
    install_extension_ta,
    verify_batch_poa,
)
from repro.crypto.rsa import generate_rsa_keypair
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.perf.costs import RASPBERRY_PI_3
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import provision_device
from repro.tee.gps_sampler_ta import CMD_GET_GPS_AUTH, GPS_SAMPLER_UUID

T0 = DEFAULT_EPOCH
N_SAMPLES = 60  # a 1 Hz minute of flight


def build_device(vendor_key, frame, seed):
    device = provision_device(f"lp-drone-{seed}", key_bits=1024,
                              rng=random.Random(seed),
                              vendor_key=vendor_key)
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 120.0, 600.0, 0.0)])
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=seed)
    device.attach_gps(receiver, clock)
    return device, clock


def main() -> None:
    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    vendor = generate_rsa_keypair(1024, rng=random.Random(1))
    far = frame.to_geo(0.0, 30_000.0)
    zones = [NoFlyZone(far.lat, far.lon, 100.0)]

    # --- baseline: one RSA signature per sample ---------------------------
    device, clock = build_device(vendor, frame, seed=11)
    sid = device.client.open_session(GPS_SAMPLER_UUID)
    start = time.perf_counter()
    for _ in range(N_SAMPLES):
        clock.advance(1.0)
        device.client.invoke(sid, CMD_GET_GPS_AUTH)
    baseline_s = time.perf_counter() - start
    baseline_signs = device.core.op_counters["rsa_sign_1024"]

    # --- (a) symmetric: DH flight key inside the TEE, HMAC per sample -----
    device, clock = build_device(vendor, frame, seed=12)
    install_extension_ta(device, SymmetricGpsSamplerTA, vendor)
    sid = device.client.open_session(SymmetricGpsSamplerTA.UUID,
                                     {"dh_seed": 5})
    auditor = AuditorFlightKey(b"flight-sym", rng=random.Random(6))
    ta_public = device.client.invoke(sid, CMD_INIT_FLIGHT_KEY, {
        "auditor_public_value": auditor.public_value,
        "flight_id": b"flight-sym"})
    auditor.complete(ta_public)
    entries = []
    start = time.perf_counter()
    for _ in range(N_SAMPLES):
        clock.advance(1.0)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH_SYM)
        entries.append(SymmetricSignedSample(payload=out["payload"],
                                             tag=out["tag"]))
    symmetric_s = time.perf_counter() - start
    trace = auditor.verify_entries(entries)

    # --- (b) batch: buffer in secure memory, sign once --------------------
    device, clock = build_device(vendor, frame, seed=13)
    install_extension_ta(device, BatchGpsSamplerTA, vendor)
    sid = device.client.open_session(BatchGpsSamplerTA.UUID)
    start = time.perf_counter()
    for _ in range(N_SAMPLES):
        clock.advance(1.0)
        device.client.invoke(sid, CMD_RECORD_GPS)
    out = device.client.invoke(sid, CMD_FINALIZE_BATCH)
    batch_s = time.perf_counter() - start
    batch = BatchSignedPoa(payloads=out["payloads"],
                           signature=out["signature"])
    report = verify_batch_poa(batch, device.tee_public_key, zones, frame)

    pi = RASPBERRY_PI_3
    print(f"{N_SAMPLES} samples through the real TEE, three signing modes:\n")
    print(f"  {'mode':<22} {'this machine':>13} {'modelled Pi (1024b)':>20} "
          f"{'auditor verdict':>16}")
    print(f"  {'per-sample RSA':<22} {baseline_s * 1e3:>10.1f} ms "
          f"{baseline_signs * pi.sign_cost(1024) * 1e3:>17.0f} ms "
          f"{'(baseline)':>16}")
    print(f"  {'symmetric HMAC (a)':<22} {symmetric_s * 1e3:>10.1f} ms "
          f"{'~0':>17} ms {len(trace):>12} ok")
    print(f"  {'sign-once batch (b)':<22} {batch_s * 1e3:>10.1f} ms "
          f"{pi.sign_cost(1024) * 1e3:>17.0f} ms "
          f"{report.status.value:>16}")
    print("\nboth remedies remove the per-sample RSA cost that produced "
          "Table II's '-' cells at 2048 bits")

    assert report.compliant and len(trace) == N_SAMPLES


if __name__ == "__main__":
    main()
