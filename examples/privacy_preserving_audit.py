#!/usr/bin/env python3
"""Privacy-preserving verification against an honest-but-curious Auditor.

Paper §VII-B3: the operator encrypts each PoA sample under its own
one-time key before upload.  The Auditor holds ciphertext only; when a
Zone Owner reports an incident, the operator reveals exactly the two keys
bracketing the incident time, and the Auditor adjudicates from those two
samples alone — learning nothing else about the trajectory.

Run:  python examples/privacy_preserving_audit.py
"""

import random

from repro import (
    AliDroneClient,
    AliDroneServer,
    GeoPoint,
    LocalFrame,
    NoFlyZone,
    SimClock,
    provision_device,
)
from repro.core.protocol import ZoneRegistrationRequest
from repro.crypto.onetime import onetime_decrypt
from repro.errors import EncryptionError
from repro.extensions.privacy import (
    build_private_poa,
    keys_for_incident,
    verify_private_disclosure,
)
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def main() -> None:
    rng = random.Random(31)
    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    server = AliDroneServer(frame, rng=rng)
    yard = frame.to_geo(400.0, 120.0)
    zone = NoFlyZone(yard.lat, yard.lon, 30.0)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=zone, proof_of_ownership="deed", owner_name="alice"))

    # A compliant flight passing 90 m south of the protected yard.
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 80.0, 800.0, 0.0)])
    device = provision_device("privacy-drone", key_bits=1024, rng=rng)
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=4)
    device.attach_gps(receiver, clock)
    client = AliDroneClient(device, receiver, clock, frame, rng=rng)
    client.register(server)
    record = client.fly(T0 + 80.0, policy="fixed", fixed_rate_hz=2.0)
    print(f"flight produced {len(record.poa)} TEE-signed samples")

    # --- operator encrypts each sample under a one-time key ---------------
    private_poa, keys = build_private_poa(record.poa, rng=rng)
    print(f"uploaded {len(private_poa)} one-time-encrypted records; "
          "the Auditor sees ciphertext only")

    # --- incident: Alice reports the drone at T0+40 ------------------------
    incident_time = T0 + 40.0
    disclosed = keys_for_incident(record.poa, keys, incident_time)
    print(f"operator reveals keys for samples {sorted(disclosed)} "
          f"(2 of {len(keys)})")

    cleared = verify_private_disclosure(
        private_poa, disclosed, device.tee_public_key, zone,
        incident_time, frame)
    print(f"auditor verdict from the two samples: "
          f"{'cleared' if cleared else 'VIOLATION'}")

    # --- privacy check: the other records stay sealed ----------------------
    leaked = 0
    for i, entry in enumerate(private_poa.entries):
        if i in disclosed:
            continue
        for key in disclosed.values():
            try:
                onetime_decrypt(key, entry.blob)
                leaked += 1
            except EncryptionError:
                pass
    print(f"records decryptable with the revealed keys beyond the pair: "
          f"{leaked} (the Auditor learned exactly 2 of {len(keys)} "
          "trajectory points)")

    assert cleared and leaked == 0


if __name__ == "__main__":
    main()
