#!/usr/bin/env python3
"""Package delivery across a dense NFZ field (the paper's motivating app).

An operator plans a delivery from a depot to a customer through a
neighbourhood with registered no-fly-zones.  The example shows:

* the signed zone query over the planned rectangle (protocol steps 2-3),
* visibility-graph route planning around every returned zone,
* the adaptive sampler tracking zone proximity along the detour,
* the Auditor accepting the resulting Proof-of-Alibi.

Run:  python examples/delivery_route_planning.py
"""

import random

from repro import (
    AliDroneClient,
    AliDroneServer,
    FlightPlan,
    GeoPoint,
    LocalFrame,
    NoFlyZone,
    SimClock,
    provision_device,
)
from repro.core.protocol import ZoneQuery, ZoneRegistrationRequest
from repro.crypto.rsa import generate_rsa_keypair
from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.drone.routing import plan_route, route_clearance, route_length
from repro.gps.receiver import SimulatedGpsReceiver
from repro.sim.clock import DEFAULT_EPOCH


def main() -> None:
    rng = random.Random(77)
    frame = LocalFrame(GeoPoint(40.1100, -88.2400))
    t0 = DEFAULT_EPOCH
    server = AliDroneServer(frame, rng=rng)

    # A neighbourhood of protected properties between depot and customer.
    zone_layout = [(350, 40, 45), (600, -60, 55), (900, 30, 40),
                   (1150, -40, 50), (750, 120, 35), (500, -160, 45)]
    for x, y, r in zone_layout:
        center = frame.to_geo(float(x), float(y))
        server.register_zone(ZoneRegistrationRequest(
            zone=NoFlyZone(center.lat, center.lon, float(r)),
            proof_of_ownership=f"deed-{x}-{y}"))
    print(f"registered {len(zone_layout)} no-fly-zones")

    depot, customer = (0.0, 0.0), (1500.0, 0.0)
    operator_key = generate_rsa_keypair(1024, rng=rng)
    device = provision_device("delivery-drone-07", key_bits=1024, rng=rng)

    # --- register, then query zones over the planned rectangle -----------
    from repro.core.protocol import DroneRegistrationRequest
    drone_id = server.register_drone(DroneRegistrationRequest(
        operator_public_key=operator_key.public_key,
        tee_public_key=device.tee_public_key,
        operator_name="acme deliveries"))
    plan = FlightPlan([frame.to_geo(*depot), frame.to_geo(*customer)],
                      margin_m=400.0)
    corner_a, corner_b = plan.query_rectangle(frame)
    query = ZoneQuery.create(drone_id, corner_a, corner_b, operator_key,
                             rng=rng)
    zones = server.handle_zone_query(query).zone_list
    print(f"zone query returned {len(zones)} zones in the flight rectangle")

    # --- plan a compliant route with 40 m clearance -----------------------
    route = plan_route(depot, customer, zones, frame, clearance_m=40.0)
    detour = route_length(route) - 1500.0
    print(f"planned route: {len(route)} waypoints, "
          f"{route_length(route):.0f} m (+{detour:.0f} m detour), "
          f"min clearance {route_clearance(route, zones, frame):.1f} m")

    # --- fly the route with adaptive sampling ------------------------------
    source = simulate_waypoint_flight(route, t0,
                                      kinematics=DroneKinematics())
    clock = SimClock(t0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=t0, seed=2, noise_std_m=1.0)
    device.attach_gps(receiver, clock)
    client = AliDroneClient(device, receiver, clock, frame, rng=rng,
                            operator_key=operator_key)
    client.drone_id = drone_id  # registered above, out of band

    record = client.fly(t0 + source.duration, policy="adaptive", zones=zones)
    stats = record.result.stats
    print(f"flight complete: {source.duration:.0f} s, "
          f"{stats.auth_samples} signed samples "
          f"(mean {stats.mean_rate_hz:.2f} Hz, {stats.late_samples} late)")

    report = client.submit_poa(server, record)
    print(f"auditor verdict: {report.status.value}")
    assert report.compliant


if __name__ == "__main__":
    main()
