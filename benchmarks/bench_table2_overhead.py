"""Table II — CPU, power, and memory benchmarks.

Regenerates every cell: fixed 2/3/5 Hz laboratory runs and the two field
workloads under adaptive sampling, for 1024- and 2048-bit TEE sign keys.
CPU% is modelled on the Table-II-calibrated Raspberry Pi cost model from
real sampling-run outputs; power is the paper's equation (4).  The two "-"
cells (2048-bit at 5 Hz and on the residential workload) must reproduce.
"""

from __future__ import annotations

from repro.analysis.paper_reference import TABLE2
from repro.analysis.report import render_table2
from repro.analysis.tables import compute_table2

PAPER_CELLS = {key: cell.cpu_mean for key, cell in TABLE2.items()}


def test_table2(benchmark, emit):
    rows = benchmark.pedantic(compute_table2, rounds=1, iterations=1)

    lines = ["Table II — CPU, Power and Memory Benchmarks (reproduced)",
             render_table2(rows), "",
             "Paper reference cells (CPU %):"]
    for (bits, case), value in PAPER_CELLS.items():
        lines.append(f"  {bits} {case:<14}: "
                     f"{'-' if value is None else value}")
    emit("\n".join(lines))

    cells = {(row.key_bits, row.case): row for row in rows}
    # The "-" cells must match exactly.
    assert cells[(2048, "Fixed 5 Hz")].cpu_percent is None
    assert cells[(2048, "Residential")].cpu_percent is None
    # Fixed-rate cells land within a tight band of the paper.
    for (bits, case), expected in PAPER_CELLS.items():
        if expected is None or "Fixed" not in case:
            continue
        measured = cells[(bits, case)].cpu_percent.mean
        assert abs(measured - expected) / expected < 0.1, (bits, case)
    # Scenario cells: same order of magnitude and same ordering
    # (airport << residential).
    airport = cells[(1024, "Airport")].cpu_percent.mean
    residential = cells[(1024, "Residential")].cpu_percent.mean
    assert airport < 0.3
    assert 0.5 < residential < 6.0
    assert airport < residential
