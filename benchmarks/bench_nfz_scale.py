"""NFZ-scale A/B: spatial-index pruning vs. brute-force zone scans.

For each zone count Z this benchmark builds the national packed-corridor
field (:mod:`repro.workloads.national`), then times the three hot queries
both ways over the same deterministic query set:

* **nearest** — nearest-boundary lookup (``FindNearestZone``);
* **pair** — the sampler's per-update decision ``min (D1 + D2)`` against
  the cutoff ``v_max * (dt + margin)``;
* **sufficiency** — the verifier's conservative insufficient-pair scan
  over a corridor track.

Every row asserts equivalence (identical nearest zones/distances,
identical sampler decisions, identical insufficient-pair lists) before
reporting speedups, and rows at Z >= 5000 must clear a 10x speedup on the
nearest query.  Emits ``BENCH_nfz_scale.json`` via ``_emit``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_nfz_scale.py \
        --zones 10,100,1000,10000

or under pytest (tiny configuration, equivalence only).
"""

from __future__ import annotations

import argparse
import math
import random
import time

from _emit import write_bench_json
from repro.core.sufficiency import (
    insufficient_pairs_indexed,
    insufficient_pairs_projected,
)
from repro.geo.geodesy import LocalFrame
from repro.geo.proximity import ZoneIndexStats, ZoneProximityIndex
from repro.units import FAA_MAX_SPEED_MPS
from repro.workloads.national import DEFAULT_ORIGIN, build_national_zone_field

CORRIDOR_LENGTH_M = 20_000.0
CORRIDOR_CLEARANCE_M = 60.0
#: Sampler-style decision parameters: 5 Hz receiver, 2-update margin.
PAIR_DT_S = 0.2
PAIR_MARGIN_S = 0.4
SPEEDUP_FLOOR = 10.0
SPEEDUP_FLOOR_ZONES = 5_000
REPEATS = 3


def build_queries(n_queries: int, seed: int):
    """Deterministic corridor-hugging query points and sample pairs."""
    rng = random.Random(seed)
    points = []
    for i in range(n_queries):
        x = (i + 0.5) * CORRIDOR_LENGTH_M / n_queries
        points.append((x, rng.uniform(-30.0, 30.0)))
    pairs = list(zip(points, points[1:]))
    track = points
    times = [i * PAIR_DT_S for i in range(len(track))]
    return points, pairs, track, times


def brute_nearest(circles, point):
    """The O(Z) scan the index replaces, smallest-index tie-break."""
    best_i, best_d = -1, math.inf
    for i, circle in enumerate(circles):
        d = circle.distance_to_boundary(point)
        if d < best_d:
            best_i, best_d = i, d
    return best_i, best_d


def brute_pair_min(circles, a, b):
    return min(circle.distance_to_boundary(a) + circle.distance_to_boundary(b)
               for circle in circles)


def _best_time(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, plus the last result."""
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_scale(zone_counts, n_queries: int, seed: int,
              repeats: int = REPEATS) -> dict:
    """The A/B sweep; returns the ``BENCH_nfz_scale.json`` payload."""
    frame = LocalFrame(DEFAULT_ORIGIN)
    points, pairs, track, times = build_queries(n_queries, seed)
    cutoff = FAA_MAX_SPEED_MPS * (PAIR_DT_S + PAIR_MARGIN_S)
    results = []
    for n_zones in zone_counts:
        zones = build_national_zone_field(
            n_zones, frame, seed=seed,
            corridor_length_m=CORRIDOR_LENGTH_M,
            corridor_clearance_m=CORRIDOR_CLEARANCE_M)
        build_start = time.perf_counter()
        stats = ZoneIndexStats()
        index = ZoneProximityIndex(zones, frame, stats=stats)
        build_s = time.perf_counter() - build_start
        circles = index.circles

        # -- nearest-boundary queries ------------------------------------
        brute_s, brute_res = _best_time(
            lambda: [brute_nearest(circles, p) for p in points], repeats)
        indexed_s, indexed_res = _best_time(
            lambda: [index.nearest_boundary(p) for p in points], repeats)
        assert indexed_res == brute_res, "nearest-boundary results diverged"

        # -- sampler pair decisions (with cutoff early-exit) -------------
        pair_brute_s, pair_brute = _best_time(
            lambda: [brute_pair_min(circles, a, b) for a, b in pairs],
            repeats)
        pair_indexed_s, pair_indexed = _best_time(
            lambda: [index.min_pair_distance(a, b, cutoff_m=cutoff)
                     for a, b in pairs], repeats)
        for exact, pruned in zip(pair_brute, pair_indexed):
            # Identical decision everywhere; identical float at/below it.
            assert (exact > cutoff) == (pruned > cutoff), \
                "sampler decision diverged"
            assert exact > cutoff or exact == pruned, \
                "in-cutoff pair distance not bit-identical"

        # -- verifier sufficiency scan (conservative method) -------------
        suff_brute_s, suff_brute = _best_time(
            lambda: insufficient_pairs_projected(track, times, circles),
            repeats)
        suff_indexed_s, suff_indexed = _best_time(
            lambda: insufficient_pairs_indexed(track, times, index), repeats)
        assert suff_brute == suff_indexed, "insufficient-pair lists diverged"

        speedup = brute_s / indexed_s if indexed_s > 0 else math.inf
        row = {
            "zones": n_zones,
            "build_s": build_s,
            "nearest": {"brute_s": brute_s, "indexed_s": indexed_s,
                        "speedup": speedup},
            "pair": {"brute_s": pair_brute_s, "indexed_s": pair_indexed_s,
                     "speedup": (pair_brute_s / pair_indexed_s
                                 if pair_indexed_s > 0 else math.inf)},
            "sufficiency": {"brute_s": suff_brute_s,
                            "indexed_s": suff_indexed_s,
                            "speedup": (suff_brute_s / suff_indexed_s
                                        if suff_indexed_s > 0 else math.inf)},
            "index": {
                "cell_size_m": index.cell_size,
                "queries": stats.queries,
                "mean_candidates_per_query": stats.mean_candidates_per_query,
                "mean_rings_per_query": stats.mean_rings_per_query,
                "cutoff_exits": stats.cutoff_exits,
            },
            "equivalent": True,
        }
        results.append(row)
        if n_zones >= SPEEDUP_FLOOR_ZONES:
            assert speedup >= SPEEDUP_FLOOR, (
                f"nearest speedup {speedup:.1f}x below the "
                f"{SPEEDUP_FLOOR:.0f}x floor at Z={n_zones}")
    return {
        "config": {"zone_counts": list(zone_counts), "queries": n_queries,
                   "seed": seed, "repeats": repeats,
                   "corridor_length_m": CORRIDOR_LENGTH_M,
                   "pair_cutoff_m": cutoff},
        "results": results,
        "speedup_at_max_zone_count": results[-1]["nearest"]["speedup"]
        if results else None,
    }


def render(payload: dict) -> str:
    lines = ["NFZ-scale geometry A/B (indexed vs brute-force)",
             f"{'Z':>7}  {'build':>8}  {'nearest':>9}  {'pair':>9}  "
             f"{'suffic.':>9}  {'cand/query':>10}"]
    for row in payload["results"]:
        lines.append(
            f"{row['zones']:>7}  {row['build_s'] * 1e3:7.1f}ms  "
            f"{row['nearest']['speedup']:8.1f}x  "
            f"{row['pair']['speedup']:8.1f}x  "
            f"{row['sufficiency']['speedup']:8.1f}x  "
            f"{row['index']['mean_candidates_per_query']:>10.1f}")
    return "\n".join(lines)


def test_nfz_scale_smoke(emit):
    """Tiny-configuration equivalence run (speedups not asserted)."""
    payload = run_scale([16, 64], n_queries=40, seed=3, repeats=1)
    assert all(row["equivalent"] for row in payload["results"])
    path = write_bench_json("nfz_scale", payload)
    emit(render(payload) + f"\n[artifact] {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--zones", default="10,100,1000,10000",
                        help="comma-separated zone counts")
    parser.add_argument("--queries", type=int, default=200,
                        help="query points per row (default 200)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--out-dir", default=None,
                        help="artifact directory (default benchmarks/out)")
    args = parser.parse_args()
    zone_counts = [int(z) for z in args.zones.split(",") if z]
    payload = run_scale(zone_counts, args.queries, args.seed, args.repeats)
    print(render(payload))
    path = write_bench_json("nfz_scale", payload, out_dir=args.out_dir)
    print(f"[artifact] {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
