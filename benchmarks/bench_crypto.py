"""Micro-benchmarks of the crypto substrate (supports Table II).

Measures this machine's RSA sign/verify/encrypt costs at the paper's two
key sizes.  The absolute numbers differ from the Raspberry Pi, but the
2048/1024 sign-cost *ratio* should land near the ~5.1x that Table II
implies — that is the cross-check for the calibrated cost model.

The scheme flight profile additionally compares the three sample-
authentication backends end to end over a 100-sample flight: per-sample
RSA pays one private-key operation per fix, the batch and hash-chain
schemes amortize the flight down to one or two.
"""

from __future__ import annotations

import random
import time

from _emit import merge_bench_json
from repro.crypto.hmac_sign import generate_hmac_key, hmac_sign
from repro.crypto.pkcs1 import (
    decrypt_pkcs1_v15,
    encrypt_pkcs1_v15,
    sign_pkcs1_v15,
    verify_pkcs1_v15,
)
from repro.crypto.schemes import (
    SCHEME_BATCH,
    SCHEME_CHAIN,
    SCHEME_RSA,
    get_scheme,
)

PAYLOAD = b"\x00" * 36  # one canonical GPS sample payload

FLIGHT_SAMPLES = 100


def test_sign_1024(benchmark, rsa_1024):
    benchmark(sign_pkcs1_v15, rsa_1024, PAYLOAD)


def test_sign_2048(benchmark, rsa_2048):
    benchmark(sign_pkcs1_v15, rsa_2048, PAYLOAD)


def test_verify_1024(benchmark, rsa_1024):
    signature = sign_pkcs1_v15(rsa_1024, PAYLOAD)
    result = benchmark(verify_pkcs1_v15, rsa_1024.public_key, PAYLOAD,
                       signature)
    assert result


def test_encrypt_1024(benchmark, rsa_1024):
    rng = random.Random(3)
    benchmark(encrypt_pkcs1_v15, rsa_1024.public_key, PAYLOAD, rng)


def test_decrypt_1024(benchmark, rsa_1024):
    ciphertext = encrypt_pkcs1_v15(rsa_1024.public_key, PAYLOAD,
                                   rng=random.Random(3))
    assert benchmark(decrypt_pkcs1_v15, rsa_1024, ciphertext) == PAYLOAD


def test_hmac_sign(benchmark):
    key = generate_hmac_key(random.Random(4))
    benchmark(hmac_sign, key, PAYLOAD)


def _flight_payloads(n: int = FLIGHT_SAMPLES) -> list[bytes]:
    rng = random.Random(0xF11F)
    return [rng.randbytes(36) for _ in range(n)]


def _profile_scheme(scheme_id: str, key, rounds: int = 5) -> dict:
    """Cold-path sign + verify timings for one scheme over one flight.

    "Cold" means each round builds a fresh signer (so the chained
    scheme's commitment signature and the batch scheme's buffering are
    *inside* the measurement) and verifies from a fresh scheme lookup —
    no caches survive between rounds.
    """
    scheme = get_scheme(scheme_id)
    payloads = _flight_payloads()
    sign_s = verify_s = 0.0
    wire_bytes = 0
    for round_index in range(rounds):
        rng = random.Random(0xC0FFEE + round_index)
        start = time.perf_counter()
        signer = scheme.new_signer(key, rng=rng)
        blobs = [signer.sign_sample(p) for p in payloads]
        finalizer = signer.finalize_flight()
        sign_s += time.perf_counter() - start

        entries = list(zip(payloads, blobs))
        start = time.perf_counter()
        bad = scheme.verify(key.public_key, entries, finalizer)
        verify_s += time.perf_counter() - start
        assert bad == []
        wire_bytes = scheme.wire_bytes(entries, finalizer)
    return {
        "samples": len(payloads),
        "sign_flight_s": sign_s / rounds,
        "verify_flight_s": verify_s / rounds,
        "sign_throughput_sps": len(payloads) / (sign_s / rounds),
        "verify_throughput_sps": len(payloads) / (verify_s / rounds),
        "auth_bytes_per_flight": wire_bytes,
    }


def test_scheme_flight_profile(rsa_1024, emit):
    """Amortized schemes must beat per-sample RSA >= 5x on the cold path."""
    rows = {scheme_id: _profile_scheme(scheme_id, rsa_1024)
            for scheme_id in (SCHEME_RSA, SCHEME_BATCH, SCHEME_CHAIN)}

    def total(scheme_id: str) -> float:
        return (rows[scheme_id]["sign_flight_s"]
                + rows[scheme_id]["verify_flight_s"])

    speedups = {scheme_id: total(SCHEME_RSA) / total(scheme_id)
                for scheme_id in (SCHEME_BATCH, SCHEME_CHAIN)}

    lines = [f"Sample-authentication schemes, {FLIGHT_SAMPLES}-sample "
             "flight, RSA-1024 (cold path)"]
    for scheme_id, row in rows.items():
        lines.append(
            f"  {scheme_id:<10}: sign {row['sign_flight_s'] * 1e3:8.2f} ms"
            f"  verify {row['verify_flight_s'] * 1e3:7.2f} ms"
            f"  wire {row['auth_bytes_per_flight']:6d} B"
            + (f"  speedup {speedups[scheme_id]:.1f}x"
               if scheme_id in speedups else ""))
    emit("\n".join(lines))

    merge_bench_json("crypto", {"scheme_flight_profile": {
        "key_bits": 1024,
        "samples_per_flight": FLIGHT_SAMPLES,
        "schemes": rows,
        "speedup_vs_rsa_v15": speedups,
    }})

    assert speedups[SCHEME_CHAIN] >= 5.0, (
        f"hash-chain only {speedups[SCHEME_CHAIN]:.1f}x over per-sample RSA")
    assert speedups[SCHEME_BATCH] >= 5.0, (
        f"rsa-batch only {speedups[SCHEME_BATCH]:.1f}x over per-sample RSA")


def test_sign_cost_ratio_matches_table2(benchmark, rsa_1024, rsa_2048, emit):
    """The 2048/1024 ratio should match the Table-II-derived ~5.1x."""

    def measure(key, n=40):
        start = time.perf_counter()
        for _ in range(n):
            sign_pkcs1_v15(key, PAYLOAD)
        return (time.perf_counter() - start) / n

    t1024 = benchmark.pedantic(lambda: measure(rsa_1024), rounds=1,
                               iterations=1)
    t2048 = measure(rsa_2048)
    ratio = t2048 / t1024
    emit("Table II cross-check: RSA sign cost ratio (2048/1024 bits)\n"
         f"  this machine : {ratio:.2f}x "
         f"({t1024 * 1e3:.2f} ms vs {t2048 * 1e3:.2f} ms)\n"
         f"  paper-derived: 5.10x (43.4 ms vs 221.5 ms on the Pi)")
    assert 3.0 < ratio < 8.0
