"""Micro-benchmarks of the crypto substrate (supports Table II).

Measures this machine's RSA sign/verify/encrypt costs at the paper's two
key sizes.  The absolute numbers differ from the Raspberry Pi, but the
2048/1024 sign-cost *ratio* should land near the ~5.1x that Table II
implies — that is the cross-check for the calibrated cost model.
"""

from __future__ import annotations

import random

from repro.crypto.hmac_sign import generate_hmac_key, hmac_sign
from repro.crypto.pkcs1 import (
    decrypt_pkcs1_v15,
    encrypt_pkcs1_v15,
    sign_pkcs1_v15,
    verify_pkcs1_v15,
)

PAYLOAD = b"\x00" * 36  # one canonical GPS sample payload


def test_sign_1024(benchmark, rsa_1024):
    benchmark(sign_pkcs1_v15, rsa_1024, PAYLOAD)


def test_sign_2048(benchmark, rsa_2048):
    benchmark(sign_pkcs1_v15, rsa_2048, PAYLOAD)


def test_verify_1024(benchmark, rsa_1024):
    signature = sign_pkcs1_v15(rsa_1024, PAYLOAD)
    result = benchmark(verify_pkcs1_v15, rsa_1024.public_key, PAYLOAD,
                       signature)
    assert result


def test_encrypt_1024(benchmark, rsa_1024):
    rng = random.Random(3)
    benchmark(encrypt_pkcs1_v15, rsa_1024.public_key, PAYLOAD, rng)


def test_decrypt_1024(benchmark, rsa_1024):
    ciphertext = encrypt_pkcs1_v15(rsa_1024.public_key, PAYLOAD,
                                   rng=random.Random(3))
    assert benchmark(decrypt_pkcs1_v15, rsa_1024, ciphertext) == PAYLOAD


def test_hmac_sign(benchmark):
    key = generate_hmac_key(random.Random(4))
    benchmark(hmac_sign, key, PAYLOAD)


def test_sign_cost_ratio_matches_table2(benchmark, rsa_1024, rsa_2048, emit):
    """The 2048/1024 ratio should match the Table-II-derived ~5.1x."""
    import time

    def measure(key, n=40):
        start = time.perf_counter()
        for _ in range(n):
            sign_pkcs1_v15(key, PAYLOAD)
        return (time.perf_counter() - start) / n

    t1024 = benchmark.pedantic(lambda: measure(rsa_1024), rounds=1,
                               iterations=1)
    t2048 = measure(rsa_2048)
    ratio = t2048 / t1024
    emit("Table II cross-check: RSA sign cost ratio (2048/1024 bits)\n"
         f"  this machine : {ratio:.2f}x "
         f"({t1024 * 1e3:.2f} ms vs {t2048 * 1e3:.2f} ms)\n"
         f"  paper-derived: 5.10x (43.4 ms vs 221.5 ms on the Pi)")
    assert 3.0 < ratio < 8.0
