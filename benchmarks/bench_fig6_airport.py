"""Fig. 6 — airport scenario: cumulative samples vs distance to the NFZ.

Paper headline: 1 Hz fix-rate sampling collects 649 samples over the
drive; adaptive sampling needs only 14 (ours: an order-of-magnitude win of
the same shape).  The bench regenerates the full figure series.
"""

from __future__ import annotations

from repro.analysis.ascii_chart import ascii_chart
from repro.analysis.figures import fig6_cumulative_samples
from repro.analysis.paper_reference import (
    FIG6_ADAPTIVE_SAMPLES,
    FIG6_FIXED_1HZ_SAMPLES,
)
from repro.analysis.report import render_series
from repro.workloads import run_policy


def test_fig6_airport(benchmark, airport_scenario, emit):
    runs = {}

    def run_both():
        runs["fixed"] = run_policy(airport_scenario, "fixed", 1.0,
                                   key_bits=1024, seed=0)
        runs["adaptive"] = run_policy(airport_scenario, "adaptive",
                                      key_bits=1024, seed=0)
        return runs

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    fixed, adaptive = runs["fixed"], runs["adaptive"]
    fixed_series = fig6_cumulative_samples(fixed)
    adaptive_series = fig6_cumulative_samples(adaptive)
    lines = [
        "Fig. 6 — Airport scenario (single 5-mile NFZ, driving away ~3 mi)",
        f"  1 Hz fix-rate samples : {fixed.sample_count}   "
        f"(paper: {FIG6_FIXED_1HZ_SAMPLES})",
        f"  adaptive samples      : {adaptive.sample_count}   "
        f"(paper: {FIG6_ADAPTIVE_SAMPLES})",
        f"  reduction factor      : "
        f"{fixed.sample_count / adaptive.sample_count:.1f}x  (paper: 46.4x)",
        "",
        ascii_chart({"1Hz fix-rate": fixed_series,
                     "adaptive": adaptive_series},
                    log_y=True, x_label="distance to NFZ (ft)",
                    y_label="total samples",
                    title="  Fig. 6 (log-scale, as in the paper):"),
        "",
        render_series("  Adaptive sampling series:", adaptive_series,
                      "dist-to-NFZ (ft)", "total #samples"),
    ]
    emit("\n".join(lines))

    assert fixed.sample_count == FIG6_FIXED_1HZ_SAMPLES
    assert adaptive.sample_count < 50
    # Both PoAs authenticate under the device key (real signatures).
    assert adaptive.result.poa.verify_all(adaptive.device.tee_public_key)
