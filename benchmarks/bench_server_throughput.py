"""Server-side batch audit throughput: serial seed path vs. AuditEngine.

Measures submissions/second on a synthetic 50-submission batch along three
axes:

* the **serial seed path** — ``decrypt_poa`` + ``PoaVerifier.verify`` one
  submission at a time, exactly what ``AliDroneServer.receive_poa`` did
  before the engine existed;
* the **batch engine** at 1, 2 and N workers (``AuditEngine.audit_batch``),
  which adds BGR signature screening, payload/projection caching and
  pool fan-out of the crypto phase;
* the **verify-only hot path** (no RSAES layer) — serial
  ``PoaVerifier.verify`` vs. ``AuditEngine.audit_poas``, which isolates
  the screening win from decryption cost.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_server_throughput.py``)
or under pytest via ``test_server_throughput``.
"""

from __future__ import annotations

import argparse
import os
import random
import time

from _emit import write_bench_json
from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample, decrypt_poa, encrypt_poa
from repro.core.protocol import PoaSubmission
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.crypto.rsa import generate_rsa_keypair
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.server.engine import AuditEngine

FRAME = LocalFrame(GeoPoint(40.10, -88.22))
T0 = 1_700_000_000.0


def build_workload(n_submissions: int = 50, samples: int = 20,
                   n_drones: int = 5, key_bits: int = 512, seed: int = 7):
    """Honest walking traces, encrypted and signed like real intake."""
    rng = random.Random(seed)
    encryption_key = generate_rsa_keypair(key_bits, rng=random.Random(seed + 1))
    center = FRAME.to_geo(0.0, 0.0)
    zones = [NoFlyZone(center.lat, center.lon, 50.0)]
    tee_keys = {f"drone-{i:03d}": generate_rsa_keypair(
        key_bits, rng=random.Random(1000 + i)) for i in range(n_drones)}

    submissions: list[PoaSubmission] = []
    decrypted: list[ProofOfAlibi] = []
    for j in range(n_submissions):
        drone_id = f"drone-{j % n_drones:03d}"
        tee_key = tee_keys[drone_id]
        start = T0 + 1000.0 * j
        entries = []
        for k in range(samples):
            point = FRAME.to_geo(200.0 + 20.0 * k + rng.uniform(0.0, 5.0),
                                 10.0 * (j % 7))
            sample = GpsSample(lat=point.lat, lon=point.lon, t=start + k)
            payload = sample.to_signed_payload()
            entries.append(SignedSample(
                payload=payload, signature=sign_pkcs1_v15(tee_key, payload)))
        poa = ProofOfAlibi(entries)
        decrypted.append(poa)
        records = encrypt_poa(poa, encryption_key.public_key, rng=rng)
        submissions.append(PoaSubmission(
            drone_id=drone_id, flight_id=f"flight-{j}", records=records,
            claimed_start=start, claimed_end=start + samples - 1))
    return encryption_key, tee_keys, zones, submissions, decrypted


def run_serial_seed_path(encryption_key, tee_keys, zones, submissions):
    """The pre-engine intake loop: decrypt + verify one at a time."""
    verifier = PoaVerifier(FRAME)
    start = time.perf_counter()
    reports = []
    for submission in submissions:
        poa = decrypt_poa(submission.records, encryption_key)
        tee_key = tee_keys[submission.drone_id].public_key
        reports.append(verifier.verify(poa, tee_key, zones))
    return reports, time.perf_counter() - start


def run_engine(encryption_key, tee_keys, zones, submissions, *,
               workers: int, screen: bool = True):
    """A fresh engine per run so caches start cold (fair vs. the seed)."""
    engine = AuditEngine(
        PoaVerifier(FRAME),
        tee_key_lookup=lambda d: tee_keys[d].public_key,
        encryption_key=encryption_key,
        zones_provider=lambda: zones,
        workers=workers, screen_signatures=screen)
    result = engine.audit_batch(submissions, record_event=False)
    return result.reports, result.wall_time_s


def run_serial_verify_only(tee_keys, zones, submissions, decrypted):
    verifier = PoaVerifier(FRAME)
    start = time.perf_counter()
    reports = [verifier.verify(poa, tee_keys[s.drone_id].public_key, zones)
               for poa, s in zip(decrypted, submissions)]
    return reports, time.perf_counter() - start


def run_engine_verify_only(tee_keys, zones, submissions, decrypted, *,
                           workers: int):
    engine = AuditEngine(
        PoaVerifier(FRAME),
        tee_key_lookup=lambda d: tee_keys[d].public_key,
        workers=workers)
    items = [(poa, tee_keys[s.drone_id].public_key)
             for poa, s in zip(decrypted, submissions)]
    start = time.perf_counter()
    reports = engine.audit_poas(items, zones)
    return reports, time.perf_counter() - start


def best_of_interleaved(runners: dict, repetitions: int = 5):
    """Best wall time per variant, with variants interleaved per round.

    Interleaving (A B C, A B C, ...) instead of (A A A, B B B, ...) keeps
    slow drift on shared hosts — CPU steal, thermal throttling — from
    biasing whichever variant happened to run during a bad window.
    """
    reports: dict[str, list] = {}
    best: dict[str, float] = {}
    for _ in range(repetitions):
        for label, runner in runners.items():
            got, seconds = runner()
            statuses = [r.status for r in got]
            if label in reports:
                assert statuses == reports[label]
            else:
                reports[label] = statuses
            best[label] = min(best.get(label, float("inf")), seconds)
    first = next(iter(reports.values()))
    assert all(statuses == first for statuses in reports.values())
    return best


def render(n_submissions: int, samples: int, key_bits: int,
           rows: list[tuple[str, float]], baseline: float,
           verify_rows: list[tuple[str, float]], verify_baseline: float,
           repetitions: int) -> str:
    lines = [
        f"Batch audit throughput — {n_submissions} submissions × "
        f"{samples} samples, RSA-{key_bits} "
        f"(best of {repetitions}, interleaved)",
        "",
        f"{'full intake (decrypt + verify)':<38}{'wall (s)':>10}"
        f"{'subs/s':>10}{'speedup':>9}",
    ]
    for label, seconds in rows:
        lines.append(f"{label:<38}{seconds:>10.3f}"
                     f"{n_submissions / seconds:>10.1f}"
                     f"{baseline / seconds:>8.2f}x")
    lines += [
        "",
        f"{'verify-only hot path':<38}{'wall (s)':>10}"
        f"{'subs/s':>10}{'speedup':>9}",
    ]
    for label, seconds in verify_rows:
        lines.append(f"{label:<38}{seconds:>10.3f}"
                     f"{n_submissions / seconds:>10.1f}"
                     f"{verify_baseline / seconds:>8.2f}x")
    return "\n".join(lines)


def build_payload(n_submissions: int, samples: int, key_bits: int,
                  repetitions: int, intake_best: dict[str, float],
                  verify_best: dict[str, float]) -> dict:
    """The machine-readable result: config, timings, speedups."""
    seed_s = intake_best["serial seed path"]
    verify_s = verify_best["serial PoaVerifier.verify"]
    return {
        "benchmark": "server_throughput",
        "config": {"submissions": n_submissions, "samples": samples,
                   "key_bits": key_bits, "repetitions": repetitions},
        "full_intake": {
            label: {"wall_s": seconds,
                    "submissions_per_second": n_submissions / seconds,
                    "speedup_vs_serial": seed_s / seconds}
            for label, seconds in intake_best.items()},
        "verify_only": {
            label: {"wall_s": seconds,
                    "submissions_per_second": n_submissions / seconds,
                    "speedup_vs_serial": verify_s / seconds}
            for label, seconds in verify_best.items()},
    }


def run_benchmark(n_submissions: int = 50, samples: int = 20,
                  key_bits: int = 512, max_workers: int | None = None,
                  repetitions: int = 5) -> tuple[str, dict]:
    if max_workers is None:
        max_workers = max(2, min(4, os.cpu_count() or 1))
    encryption_key, tee_keys, zones, submissions, decrypted = build_workload(
        n_submissions=n_submissions, samples=samples, key_bits=key_bits)

    # A persistent engine whose payload cache is warmed by its first audit:
    # the re-audit scenario (duplicate records cost no RSAES work).
    warm_engine = AuditEngine(
        PoaVerifier(FRAME),
        tee_key_lookup=lambda d: tee_keys[d].public_key,
        encryption_key=encryption_key,
        zones_provider=lambda: zones, workers=1)
    warm_engine.audit_batch(submissions, record_event=False)

    def run_warm(*_):
        result = warm_engine.audit_batch(submissions, record_event=False)
        return result.reports, result.wall_time_s

    worker_counts = sorted({1, 2, max_workers})
    intake_runners = {"serial seed path": lambda: run_serial_seed_path(
        encryption_key, tee_keys, zones, submissions)}
    for workers in worker_counts:
        intake_runners[f"engine, {workers} worker(s)"] = \
            lambda w=workers: run_engine(
                encryption_key, tee_keys, zones, submissions, workers=w)
    intake_runners["engine, warm payload cache"] = run_warm
    intake_best = best_of_interleaved(intake_runners, repetitions)
    seed_s = intake_best["serial seed path"]
    rows = list(intake_best.items())

    verify_runners = {"serial PoaVerifier.verify":
                      lambda: run_serial_verify_only(
                          tee_keys, zones, submissions, decrypted)}
    for workers in worker_counts:
        verify_runners[f"engine.audit_poas, {workers} worker(s)"] = \
            lambda w=workers: run_engine_verify_only(
                tee_keys, zones, submissions, decrypted, workers=w)
    verify_best = best_of_interleaved(verify_runners, repetitions)
    serial_v_s = verify_best["serial PoaVerifier.verify"]
    verify_rows = list(verify_best.items())

    text = render(n_submissions, samples, key_bits, rows, seed_s,
                  verify_rows, serial_v_s, repetitions)
    payload = build_payload(n_submissions, samples, key_bits, repetitions,
                            intake_best, verify_best)
    return text, payload


def test_server_throughput(emit):
    """Pytest entry point: renders the table and writes the JSON artefact."""
    text, payload = run_benchmark()
    emit(text)
    write_bench_json("server_throughput", payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--submissions", type=int, default=50)
    parser.add_argument("--samples", type=int, default=20)
    parser.add_argument("--key-bits", type=int, default=512)
    parser.add_argument("--max-workers", type=int, default=None)
    parser.add_argument("--repetitions", type=int, default=5)
    args = parser.parse_args()
    text, payload = run_benchmark(
        n_submissions=args.submissions, samples=args.samples,
        key_bits=args.key_bits, max_workers=args.max_workers,
        repetitions=args.repetitions)
    print(text)
    path = write_bench_json("server_throughput", payload)
    print(f"\nmachine-readable result -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
