"""Ablation: the 2-D model vs the 3-D extension (§VII-B1).

A courier drone transits a neighbourhood at 120 m altitude, directly over
several low cylinder NFZs (ceilings 40-80 m).  Legally it never enters
their airspace, but the paper's base 2-D model cannot express altitude:
its verifier flags every overflight pair.  The 3-D ellipsoid/cylinder
model clears the same flight — quantifying the false-violation rate the
2-D simplification costs, and the runtime premium of the 3-D test.
"""

from __future__ import annotations

import time

from repro.core.nfz import CylinderNfz
from repro.core.samples import GpsSample
from repro.core.sufficiency import insufficient_pair_indices
from repro.extensions.threed import alibi_is_sufficient_3d, pair_is_sufficient_3d
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH
FRAME = LocalFrame(GeoPoint(40.1, -88.22))

ZONES = [CylinderNfz(FRAME.to_geo(200.0 * (i + 1), 0.0).lat,
                     FRAME.to_geo(200.0 * (i + 1), 0.0).lon,
                     ceiling_m=40.0 + 10.0 * (i % 5), radius_m=30.0)
         for i in range(8)]


def _transit(altitude_m: float, n: int = 90) -> list[GpsSample]:
    """A straight 1.8 km transit directly over the zone row."""
    samples = []
    for i in range(n):
        point = FRAME.to_geo(20.0 * i, 0.0)
        samples.append(GpsSample(lat=point.lat, lon=point.lon,
                                 t=T0 + i * 1.0, alt=altitude_m))
    return samples


def test_3d_ablation(benchmark, emit):
    high = _transit(120.0)
    low = _transit(30.0)

    def verdicts():
        flat_zones = [z.footprint() for z in ZONES]
        two_d_flags = len(insufficient_pair_indices(high, flat_zones, FRAME))
        three_d_high = alibi_is_sufficient_3d(high, ZONES, FRAME)
        three_d_low = alibi_is_sufficient_3d(low, ZONES, FRAME)
        return two_d_flags, three_d_high, three_d_low

    two_d_flags, three_d_high, three_d_low = benchmark.pedantic(
        verdicts, rounds=1, iterations=1)

    # Timing: conservative 3-D vs exact 3-D per pair.
    pair = (high[10], high[11])
    start = time.perf_counter()
    for _ in range(200):
        pair_is_sufficient_3d(*pair, ZONES, FRAME, method="conservative")
    conservative_s = (time.perf_counter() - start) / 200
    start = time.perf_counter()
    for _ in range(20):
        pair_is_sufficient_3d(*pair, ZONES, FRAME, method="exact")
    exact_s = (time.perf_counter() - start) / 20

    emit("Ablation — 2-D base model vs 3-D extension (§VII-B1)\n"
         f"  workload             : 1.8 km transit at 120 m over "
         f"{len(ZONES)} cylinder NFZs (ceilings 40-80 m)\n"
         f"  2-D verifier         : {two_d_flags} pairs flagged "
         "(every overflight is a false violation)\n"
         f"  3-D verifier (120 m) : "
         f"{'sufficient — cleared' if three_d_high else 'flagged'}\n"
         f"  3-D verifier (30 m)  : "
         f"{'cleared (WRONG)' if three_d_low else 'flagged — correct, below the ceilings'}\n"
         f"  3-D cost per pair    : conservative {conservative_s * 1e6:.0f} us, "
         f"exact {exact_s * 1e3:.2f} ms")

    assert two_d_flags > 0       # the 2-D model over-flags overflight
    assert three_d_high          # the 3-D model clears legal overflight
    assert not three_d_low       # ...but still catches airspace entry
