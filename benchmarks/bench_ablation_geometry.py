"""Ablation: conservative (paper) vs exact ellipse/disk sufficiency test.

Quantifies what the paper's D1+D2 approximation costs: how often it flags
a pair the exact geometry would clear (false alarms — extra samples or
spurious insufficiency), and how much cheaper it is per call.
"""

from __future__ import annotations

import math
import random
import time

from repro.geo.circle import Circle
from repro.geo.ellipse import (
    TravelRangeEllipse,
    ellipse_disk_disjoint_conservative,
    ellipse_disk_disjoint_exact,
)


def _random_cases(n, rng):
    cases = []
    for _ in range(n):
        f1 = (rng.uniform(-100, 100), rng.uniform(-100, 100))
        f2 = (rng.uniform(-100, 100), rng.uniform(-100, 100))
        ellipse = TravelRangeEllipse(f1, f2,
                                     math.dist(f1, f2) + rng.uniform(0, 60))
        disk = Circle(rng.uniform(-150, 150), rng.uniform(-150, 150),
                      rng.uniform(1, 40))
        cases.append((ellipse, disk))
    return cases


def test_geometry_ablation(benchmark, emit):
    rng = random.Random(7)
    cases = _random_cases(3000, rng)

    def evaluate():
        agreements = 0
        false_alarms = 0
        unsound = 0
        for ellipse, disk in cases:
            conservative = ellipse_disk_disjoint_conservative(ellipse, disk)
            exact = ellipse_disk_disjoint_exact(ellipse, disk)
            if conservative == exact:
                agreements += 1
            elif exact and not conservative:
                false_alarms += 1
            else:
                unsound += 1
        return agreements, false_alarms, unsound

    agreements, false_alarms, unsound = benchmark.pedantic(
        evaluate, rounds=1, iterations=1)

    start = time.perf_counter()
    for ellipse, disk in cases:
        ellipse_disk_disjoint_conservative(ellipse, disk)
    conservative_time = time.perf_counter() - start
    start = time.perf_counter()
    for ellipse, disk in cases:
        ellipse_disk_disjoint_exact(ellipse, disk)
    exact_time = time.perf_counter() - start

    emit("Ablation — conservative (paper) vs exact sufficiency predicate\n"
         f"  cases            : {len(cases)}\n"
         f"  agreement        : {agreements} "
         f"({100.0 * agreements / len(cases):.1f}%)\n"
         f"  false alarms     : {false_alarms} "
         f"(conservative flags, exact clears)\n"
         f"  soundness holes  : {unsound} (must be 0)\n"
         f"  per-call cost    : conservative "
         f"{conservative_time / len(cases) * 1e6:.1f} us, exact "
         f"{exact_time / len(cases) * 1e6:.1f} us "
         f"({exact_time / conservative_time:.0f}x)")

    assert unsound == 0          # the paper's test is sound
    assert false_alarms > 0      # ...but not exact
    assert exact_time > conservative_time
