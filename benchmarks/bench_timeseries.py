"""Streaming-telemetry cost: sketch accuracy, window micro-costs, hot-path overhead.

Three measurements establish that the windowed telemetry layer
(:mod:`repro.obs.timeseries` / :mod:`repro.obs.hub`) is safe to leave on
in the audit hot path:

* **sketch accuracy at scale** — one million lognormal observations into
  a :class:`QuantileSketch`; p50/p99 must land within the documented
  relative-error bound ``alpha`` of the exact quantiles while the bucket
  count stays O(bins), far below the observation count.
* **micro-costs** — ns per ``QuantileSketch.observe``, per
  ``WindowedCounter.inc``, and per ``TelemetryHub.record_audit`` (the
  whole per-intake feed: one sketch observe + several counter marks).
* **interleaved A/B** — the same ``AuditEngine.audit_batch`` with no
  telemetry hub vs. with a live hub attached, best-of interleaved; the
  enabled path must cost < 3% (the telemetry-off path is a single
  ``None`` check and is covered by the disabled-tracer budget).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_timeseries.py``)
or under pytest via ``test_timeseries_overhead``.
"""

from __future__ import annotations

import argparse
import random
import time

from _emit import write_bench_json
from bench_server_throughput import FRAME, build_workload
from repro.core.verification import PoaVerifier
from repro.obs.hub import TelemetryHub
from repro.obs.timeseries import QuantileSketch, WindowedCounter
from repro.server.engine import AuditEngine

ENABLED_BUDGET = 0.03  # acceptance: telemetry-on hot path costs < 3%
ACCURACY_N = 1_000_000


def sketch_accuracy(n: int = ACCURACY_N, seed: int = 7) -> dict:
    """Relative error of p50/p99 against exact quantiles of n lognormals."""
    rng = random.Random(seed)
    sketch = QuantileSketch()
    values = [rng.lognormvariate(0.0, 1.0) for _ in range(n)]
    start = time.perf_counter()
    for value in values:
        sketch.observe(value)
    observe_wall = time.perf_counter() - start
    values.sort()
    errors = {}
    for q in (0.50, 0.99):
        exact = values[round(q * (n - 1))]
        estimate = sketch.quantile(q)
        errors[f"p{int(q * 100)}"] = {
            "exact": exact, "estimate": estimate,
            "relative_error": abs(estimate - exact) / exact}
    return {
        "observations": n,
        "alpha": sketch.alpha,
        "bins": sketch.bins,
        "max_bins": sketch.max_bins,
        "observe_ns": observe_wall / n * 1e9,
        "quantiles": errors,
    }


def micro_costs(iterations: int = 200_000) -> dict:
    """ns per observe / inc / record_audit on warmed instruments."""
    sketch = QuantileSketch()
    start = time.perf_counter()
    for i in range(iterations):
        sketch.observe(0.001 + (i & 1023) * 1e-6)
    observe_ns = (time.perf_counter() - start) / iterations * 1e9

    counter = WindowedCounter()
    start = time.perf_counter()
    for i in range(iterations):
        counter.inc(now=i * 0.01)
    inc_ns = (time.perf_counter() - start) / iterations * 1e9

    hub = TelemetryHub()
    audits = max(iterations // 10, 1)
    start = time.perf_counter()
    for i in range(audits):
        hub.record_audit(seconds=0.002, status="accepted", samples=20,
                         now=i * 0.05)
    record_audit_ns = (time.perf_counter() - start) / audits * 1e9
    return {"sketch_observe_ns": observe_ns,
            "windowed_counter_inc_ns": inc_ns,
            "hub_record_audit_ns": record_audit_ns}


def make_engine(encryption_key, tee_keys, zones, *,
                telemetry: TelemetryHub | None) -> AuditEngine:
    return AuditEngine(
        PoaVerifier(FRAME),
        tee_key_lookup=lambda d: tee_keys[d].public_key,
        encryption_key=encryption_key,
        zones_provider=lambda: zones,
        telemetry=telemetry)


def run_ab(encryption_key, tee_keys, zones, submissions, *,
           repetitions: int) -> tuple[float, float, float]:
    """Best batch wall time without vs. with a telemetry hub attached."""
    best_off = best_on = float("inf")
    recorded = 0.0
    for _ in range(repetitions):
        engine = make_engine(encryption_key, tee_keys, zones, telemetry=None)
        result = engine.audit_batch(submissions, record_event=False)
        best_off = min(best_off, result.wall_time_s)

        hub = TelemetryHub()
        engine = make_engine(encryption_key, tee_keys, zones, telemetry=hub)
        result = engine.audit_batch(submissions, record_event=False)
        best_on = min(best_on, result.wall_time_s)
        recorded = hub.counter("audit.submissions").cumulative
    return best_off, best_on, recorded


def run_benchmark(n_submissions: int = 50, samples: int = 20,
                  key_bits: int = 512, repetitions: int = 5,
                  accuracy_n: int = ACCURACY_N) -> tuple[str, dict]:
    accuracy = sketch_accuracy(n=accuracy_n)
    micro = micro_costs()

    encryption_key, tee_keys, zones, submissions, _ = build_workload(
        n_submissions=n_submissions, samples=samples, key_bits=key_bits)
    best_off, best_on, recorded = run_ab(
        encryption_key, tee_keys, zones, submissions,
        repetitions=repetitions)
    enabled_cost = best_on / best_off - 1.0

    p50 = accuracy["quantiles"]["p50"]
    p99 = accuracy["quantiles"]["p99"]
    lines = [
        f"Streaming telemetry — {n_submissions} submissions × {samples} "
        f"samples, RSA-{key_bits} (best of {repetitions}, interleaved)",
        "",
        f"sketch accuracy ({accuracy['observations']:,} obs, "
        f"alpha={accuracy['alpha']:g}):",
        f"  p50 rel. error              : {p50['relative_error']:.5f}",
        f"  p99 rel. error              : {p99['relative_error']:.5f}",
        f"  bins used                   : {accuracy['bins']} "
        f"(max {accuracy['max_bins']})",
        "",
        f"sketch observe                : {micro['sketch_observe_ns']:,.0f} ns",
        f"windowed counter inc          : "
        f"{micro['windowed_counter_inc_ns']:,.0f} ns",
        f"hub record_audit              : "
        f"{micro['hub_record_audit_ns']:,.0f} ns",
        "",
        f"batch wall, telemetry off     : {best_off:.3f} s",
        f"batch wall, telemetry on      : {best_on:.3f} s "
        f"({recorded:.0f} intakes recorded)",
        f"enabled overhead (measured)   : {enabled_cost:+.2%} "
        f"(budget {ENABLED_BUDGET:.0%})",
    ]
    payload = {
        "benchmark": "timeseries",
        "config": {"submissions": n_submissions, "samples": samples,
                   "key_bits": key_bits, "repetitions": repetitions},
        "sketch_accuracy": accuracy,
        "micro_costs_ns": micro,
        "batch_wall_disabled_s": best_off,
        "batch_wall_enabled_s": best_on,
        "intakes_recorded": recorded,
        "enabled_overhead_measured": enabled_cost,
        "enabled_overhead_budget": ENABLED_BUDGET,
    }
    return "\n".join(lines), payload


def test_timeseries_overhead(emit):
    """Pytest entry point: accuracy bound + enabled-path budget."""
    text, payload = run_benchmark(repetitions=3)
    emit(text)
    write_bench_json("timeseries", payload)
    accuracy = payload["sketch_accuracy"]
    assert accuracy["bins"] <= accuracy["max_bins"]
    for entry in accuracy["quantiles"].values():
        assert entry["relative_error"] <= accuracy["alpha"]
    assert payload["intakes_recorded"] > 0
    assert payload["enabled_overhead_measured"] < ENABLED_BUDGET


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--submissions", type=int, default=50)
    parser.add_argument("--samples", type=int, default=20)
    parser.add_argument("--key-bits", type=int, default=512)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--accuracy-n", type=int, default=ACCURACY_N)
    args = parser.parse_args()
    text, payload = run_benchmark(
        n_submissions=args.submissions, samples=args.samples,
        key_bits=args.key_bits, repetitions=args.repetitions,
        accuracy_n=args.accuracy_n)
    print(text)
    path = write_bench_json("timeseries", payload)
    print(f"\nmachine-readable result -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
