"""Ablation: the adaptive sampler's safety margin (paper's 2/R, eq. 3).

The paper derives a two-update-period margin — one period for the sampler's
own reaction time, one for the next measurement.  This ablation sweeps the
margin on the residential workload: too small and pairs go insufficient
before the sampler reacts; larger margins buy safety with extra samples.
"""

from __future__ import annotations

from repro.core.sufficiency import count_insufficient_pairs
from repro.workloads import run_policy


def test_margin_ablation(benchmark, residential_scenario, emit):
    scenario = residential_scenario
    margins = (0.0, 1.0, 2.0, 3.0)
    results = {}

    def sweep():
        for margin in margins:
            run = run_policy(scenario, "adaptive", key_bits=512, seed=0,
                             margin_updates=margin)
            samples = [entry.sample for entry in run.result.poa]
            results[margin] = (
                run.sample_count,
                count_insufficient_pairs(samples, scenario.zones,
                                         scenario.frame),
                run.result.stats.late_samples)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation — adaptive-sampling safety margin (paper: 2 update "
             "periods)",
             f"  {'margin':>7} {'samples':>8} {'insufficient':>13} "
             f"{'late':>5}"]
    for margin in margins:
        count, insufficient, late = results[margin]
        label = f"{margin:g}/R"
        lines.append(f"  {label:>7} {count:>8} {insufficient:>13} {late:>5}")
    emit("\n".join(lines))

    # Fewer samples with smaller margins...
    assert results[0.0][0] <= results[2.0][0] <= results[3.0][0]
    # ...but the paper's margin keeps insufficiency at the hardware floor.
    assert results[2.0][1] <= results[0.0][1]
    assert results[2.0][1] <= 2
