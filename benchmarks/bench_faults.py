"""Fault subsystem: recovery latency vs. loss, and the disabled cost.

Two questions the ``repro.faults`` subsystem must answer quantitatively:

* **recovery latency** — how much *virtual* time the streaming protocol
  needs after flight end to converge (every entry acknowledged, the
  auditor's copy gap-free) as injected symmetric link loss sweeps
  0% → 30% (the liveness ceiling the chaos harness enforces);
* **disabled-injector overhead** — what attaching an injector with an
  *empty* plan costs on the hot send path.  The no-injector path is a
  single ``is not None`` test; the empty-plan path adds one
  ``injector.active(point)`` set lookup per send.  As with the tracer
  benchmark, the primary acceptance is analytic: per-check cost × checks
  per run, expressed as a fraction of the run's wall time, must stay
  under the 2% budget.  An interleaved A/B wall-time measurement is
  reported alongside for context (it is noisy at this scale).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_faults.py``) or
under pytest via ``test_faults``, which asserts convergence at every loss
rate and the disabled-cost budget.
"""

from __future__ import annotations

import argparse
import time

from _emit import write_bench_json
from repro.core.poa import EncryptedPoaRecord
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.net.link import SimulatedLink
from repro.net.streaming import StreamingAuditorEndpoint, StreamingUploader

LOSS_RATES = (0.0, 0.1, 0.2, 0.3)
DISABLED_BUDGET = 0.02  # acceptance: empty-plan injector cost < 2%


def _record(i: int) -> EncryptedPoaRecord:
    return EncryptedPoaRecord(ciphertext=bytes([i % 256]) * 64,
                              signature=bytes([(255 - i) % 256]) * 64)


def _make_injector(loss_rate: float, seed: int) -> FaultInjector:
    rules = ()
    if loss_rate > 0:
        rules = (
            FaultRule("link.uplink.send", "drop", probability=loss_rate),
            FaultRule("link.downlink.send", "drop", probability=loss_rate),
        )
    return FaultInjector(FaultPlan(f"loss-{loss_rate:g}", rules, seed=seed))


def stream_run(injector: FaultInjector | None, *, entries: int = 150,
               seed: int = 0, budget_s: float = 600.0) -> dict:
    """One virtual streamed flight; returns convergence measurements."""
    uplink = SimulatedLink(latency_s=0.02, jitter_s=0.0, seed=seed,
                           injector=injector, fault_point="link.uplink")
    downlink = SimulatedLink(latency_s=0.02, jitter_s=0.0, seed=seed + 1,
                             injector=injector,
                             fault_point="link.downlink")
    uploader = StreamingUploader(uplink, downlink, "bench-flight",
                                 retransmit_timeout_s=0.3, outbox_limit=64)
    endpoint = StreamingAuditorEndpoint(uplink, downlink)

    t = 0.0
    uploader.begin_flight(t)
    for i in range(entries):
        t = (i + 1) * 0.2
        uploader.push(_record(i), t)
        endpoint.poll(t + 0.05)
        uploader.poll(t + 0.1)
    flight_end = t
    # Re-announce FLIGHT_END every virtual second until the auditor
    # confirms: the close frame is as loss-exposed as any entry.
    announced_at = -1.0
    while (t < flight_end + budget_s
           and not (endpoint.complete and uploader.fully_acked)):
        if t - announced_at >= 1.0:
            uploader.end_flight(t)
            announced_at = t
        t += 0.1
        endpoint.poll(t)
        uploader.poll(t)
    return {
        "converged": bool(endpoint.complete and uploader.fully_acked),
        "recovery_latency_s": t - flight_end,
        "retransmissions": uploader.stats.retransmissions,
        "duplicate_frames": endpoint.duplicate_frames,
        "sends": uplink.stats.sent + downlink.stats.sent,
    }


def active_check_cost(iterations: int = 200_000) -> float:
    """Seconds per ``injector.active(point)`` check with an empty plan."""
    injector = FaultInjector(FaultPlan("baseline"))
    start = time.perf_counter()
    for _ in range(iterations):
        injector.active("link.uplink.send")
    return (time.perf_counter() - start) / iterations


def run_ab(entries: int, repetitions: int) -> tuple[float, float, int]:
    """Best wall time without vs. with an empty-plan injector."""
    best_none = best_empty = float("inf")
    sends = 0
    for _ in range(repetitions):
        start = time.perf_counter()
        result = stream_run(None, entries=entries)
        best_none = min(best_none, time.perf_counter() - start)
        sends = result["sends"]

        start = time.perf_counter()
        stream_run(FaultInjector(FaultPlan("baseline")), entries=entries)
        best_empty = min(best_empty, time.perf_counter() - start)
    return best_none, best_empty, sends


def run_benchmark(entries: int = 150, repetitions: int = 5,
                  seed: int = 0) -> tuple[str, dict]:
    rows = []
    for loss in LOSS_RATES:
        injector = _make_injector(loss, seed) if loss > 0 else None
        result = stream_run(injector, entries=entries, seed=seed)
        rows.append({"loss_rate": loss, **result})

    per_check = active_check_cost()
    best_none, best_empty, sends = run_ab(entries, repetitions)
    est_disabled = per_check * sends / best_none
    measured = best_empty / best_none - 1.0

    lines = [
        f"Fault subsystem — {entries} streamed entries, RTO 0.3 s "
        f"(A/B best of {repetitions}, interleaved)",
        "",
        "loss    recovery    rexmit    dup frames",
    ]
    for row in rows:
        lines.append(
            f"{row['loss_rate']:>4.0%}   {row['recovery_latency_s']:>6.1f} s"
            f"   {row['retransmissions']:>6d}    {row['duplicate_frames']:>6d}"
            + ("" if row["converged"] else "   DID NOT CONVERGE"))
    lines += [
        "",
        f"empty-plan active() check     : {per_check * 1e9:,.0f} ns",
        f"injector checks per run       : {sends}",
        f"run wall, no injector         : {best_none * 1e3:.2f} ms",
        f"run wall, empty-plan injector : {best_empty * 1e3:.2f} ms",
        "",
        f"disabled overhead (estimated) : {est_disabled:.4%} "
        f"(budget {DISABLED_BUDGET:.0%})",
        f"disabled overhead (measured)  : {measured:+.2%}",
    ]
    payload = {
        "benchmark": "faults",
        "config": {"entries": entries, "repetitions": repetitions,
                   "seed": seed, "loss_rates": list(LOSS_RATES),
                   "retransmit_timeout_s": 0.3},
        "recovery": rows,
        "active_check_cost_ns": per_check * 1e9,
        "checks_per_run": sends,
        "run_wall_no_injector_s": best_none,
        "run_wall_empty_injector_s": best_empty,
        "disabled_overhead_estimated": est_disabled,
        "disabled_overhead_budget": DISABLED_BUDGET,
        "disabled_overhead_measured": measured,
    }
    return "\n".join(lines), payload


def test_faults(emit):
    """Pytest entry point: convergence at every loss rate, cost in budget."""
    text, payload = run_benchmark(repetitions=3)
    emit(text)
    write_bench_json("faults", payload)
    assert all(row["converged"] for row in payload["recovery"])
    # Repair work grows with loss (recovery latency itself is seed-noisy
    # at this size: it hinges on whether the *final* frames dropped).
    rexmits = [row["retransmissions"] for row in payload["recovery"]]
    assert rexmits[0] == 0
    assert rexmits == sorted(rexmits) and rexmits[-1] > 0
    assert payload["disabled_overhead_estimated"] < DISABLED_BUDGET


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entries", type=int, default=150)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    text, payload = run_benchmark(entries=args.entries,
                                  repetitions=args.repetitions,
                                  seed=args.seed)
    print(text)
    path = write_bench_json("faults", payload)
    print(f"\nmachine-readable result -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
