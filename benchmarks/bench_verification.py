"""Micro-benchmarks of the Auditor-side verification pipeline."""

from __future__ import annotations

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample, decrypt_poa, encrypt_poa
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH
FRAME = LocalFrame(GeoPoint(40.1, -88.22))


@pytest.fixture(scope="module")
def poa_and_zone(rsa_1024):
    center = FRAME.to_geo(0.0, 0.0)
    zone = NoFlyZone(center.lat, center.lon, 50.0)
    entries = []
    for i in range(100):
        point = FRAME.to_geo(300.0 + 10.0 * i, 0.0)
        sample = GpsSample(lat=point.lat, lon=point.lon, t=T0 + i)
        payload = sample.to_signed_payload()
        entries.append(SignedSample(
            payload=payload, signature=sign_pkcs1_v15(rsa_1024, payload)))
    return ProofOfAlibi(entries), zone


def test_verify_100_sample_poa(benchmark, poa_and_zone, rsa_1024):
    """Full pipeline: 100 signatures + feasibility + sufficiency."""
    poa, zone = poa_and_zone
    verifier = PoaVerifier(FRAME)
    report = benchmark(verifier.verify, poa, rsa_1024.public_key, [zone])
    assert report.compliant


def test_signature_stage_only(benchmark, poa_and_zone, rsa_1024):
    poa, _ = poa_and_zone
    verifier = PoaVerifier(FRAME)
    assert benchmark(verifier.check_signatures, poa,
                     rsa_1024.public_key) == []


def test_poa_decrypt_stage(benchmark, poa_and_zone, rsa_1024):
    """Server-side RSAES decryption of a 100-record submission."""
    poa, _ = poa_and_zone
    records = encrypt_poa(poa, rsa_1024.public_key, rng=random.Random(1))
    restored = benchmark.pedantic(decrypt_poa, args=(records, rsa_1024),
                                  rounds=3, iterations=1)
    assert len(restored) == 100


def test_poa_serialization(benchmark, poa_and_zone):
    poa, _ = poa_and_zone
    data = poa.to_bytes()
    benchmark(ProofOfAlibi.from_bytes, data)
