"""Selective-disclosure bandwidth + throughput on the national corridor.

The paper's prototype uploads the full trace with one RSA signature per
sample.  The ``merkle-disclosure`` scheme replaces that with one signed
Merkle root per flight plus a verifier-sufficient disclosed subset, so
the interesting questions are (a) how many wire bytes the honest
disclosure policy actually saves on a realistic dense flight brushing
past a national-scale zone field, and (b) what the auditor pays to
verify the disclosed subset instead of the full trace.

The workload is the national packed-corridor field
(:mod:`repro.workloads.national`): a fixed-rate trace flies the
corridor centerline end to end with guaranteed lateral clearance, the
operator discloses through :func:`repro.privacy.disclosure.disclose`,
and both the full trace and the disclosure must verify ACCEPTED.  The
rsa-v15 baseline's wire size is exact arithmetic (``payload + modulus``
bytes per sample); its signing cost is measured on a sample of
signatures and extrapolated, because actually signing thousands of
samples at 2048 bits is precisely the cost the scheme exists to avoid.

Emits ``BENCH_disclosure.json``.  The full-size run enforces the
headline floor: >= 5x wire-byte reduction vs rsa-v15 full disclosure.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_disclosure.py

or ``--smoke`` for the CI shape-check configuration (floor skipped:
tiny flights amortize the root signature poorly).
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
import time

from _emit import write_bench_json
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.crypto.rsa import generate_rsa_keypair
from repro.crypto.schemes import SCHEME_MERKLE, authenticate_payloads
from repro.geo.geodesy import LocalFrame
from repro.privacy.disclosure import disclose
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.national import DEFAULT_ORIGIN, build_national_zone_field

REDUCTION_FLOOR = 5.0
SIGN_PROBE = 12          # rsa-v15 signatures measured for extrapolation
CRUISE_MPS = 20.0


def build_corridor_trace(corridor_length_m: float, hz: float,
                         frame: LocalFrame) -> list[bytes]:
    """A fixed-rate centerline traverse, the densest honest upload."""
    n = int(corridor_length_m / CRUISE_MPS * hz) + 1
    payloads = []
    for i in range(n):
        t = i / hz
        point = frame.to_geo(CRUISE_MPS * t, 0.0)
        payloads.append(GpsSample(point.lat, point.lon, DEFAULT_EPOCH + t)
                        .to_signed_payload())
    return payloads


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--zones", type=int, default=1_000,
                        help="national zone field size (default 1000)")
    parser.add_argument("--corridor-km", type=float, default=20.0,
                        help="corridor length in km (default 20)")
    parser.add_argument("--hz", type=float, default=5.0,
                        help="trace sampling rate (default 5 Hz, the "
                             "simulated receiver's update rate)")
    parser.add_argument("--key-bits", type=int, default=1024,
                        help="TEE signing key size for both arms "
                             "(default 1024)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration; skips the reduction "
                             "floor (short flights amortize the root "
                             "signature poorly)")
    parser.add_argument("--out-dir", default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        args.zones, args.corridor_km, args.hz = 60, 2.0, 2.0

    rng = random.Random(args.seed)
    frame = LocalFrame(DEFAULT_ORIGIN)
    corridor_m = args.corridor_km * 1_000.0
    zones = build_national_zone_field(args.zones, frame, seed=args.seed,
                                      corridor_length_m=corridor_m)
    key = generate_rsa_keypair(args.key_bits, rng=rng)
    signature_bytes = (key.n.bit_length() + 7) // 8

    payloads = build_corridor_trace(corridor_m, args.hz, frame)
    n = len(payloads)

    # --- merkle arm: commit, disclose, verify both shapes ---------------
    t0 = time.perf_counter()
    blobs, finalizer = authenticate_payloads(key, payloads, SCHEME_MERKLE,
                                             rng=rng)
    commit_s = time.perf_counter() - t0
    poa = ProofOfAlibi(
        (SignedSample(payload=payload, signature=blob, scheme=SCHEME_MERKLE)
         for payload, blob in zip(payloads, blobs)),
        scheme=SCHEME_MERKLE, finalizer=finalizer)

    verifier = PoaVerifier(frame)
    t0 = time.perf_counter()
    full_report = verifier.verify(poa, key.public_key, zones)
    full_verify_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    alibi = disclose(poa, zones, frame)
    disclose_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    disclosed_report = verifier.verify(alibi.poa, key.public_key, zones)
    disclosed_verify_s = time.perf_counter() - t0

    # --- rsa-v15 baseline: exact bytes, probed signing cost -------------
    full_wire = sum(len(payload) + signature_bytes for payload in payloads)
    probe = payloads[:: max(1, n // SIGN_PROBE)][:SIGN_PROBE]
    sign_times = []
    for payload in probe:
        t0 = time.perf_counter()
        sign_pkcs1_v15(key, payload)
        sign_times.append(time.perf_counter() - t0)
    rsa_sign_s = statistics.mean(sign_times) * n

    disclosed_wire = alibi.wire_bytes()
    reduction = full_wire / disclosed_wire

    payload_out = {
        "config": {
            "zones": args.zones, "corridor_km": args.corridor_km,
            "hz": args.hz, "key_bits": args.key_bits, "seed": args.seed,
            "smoke": args.smoke, "cruise_mps": CRUISE_MPS,
        },
        "trace": {
            "samples": n,
            "revealed_samples": alibi.revealed_count,
            "redaction_ratio": round(alibi.redaction_ratio, 4),
        },
        "wire_bytes": {
            "rsa_v15_full": full_wire,
            "merkle_disclosed": disclosed_wire,
            "merkle_finalizer": len(finalizer),
            "reduction": round(reduction, 3),
            "reduction_floor": REDUCTION_FLOOR,
            "floor_enforced": not args.smoke,
        },
        "seconds": {
            "merkle_commit": commit_s,
            "rsa_v15_sign_extrapolated": rsa_sign_s,
            "disclose": disclose_s,
            "verify_full_trace": full_verify_s,
            "verify_disclosed": disclosed_verify_s,
        },
        "verdicts": {
            "full_trace": full_report.status.value,
            "disclosed": disclosed_report.status.value,
        },
    }
    path = write_bench_json("disclosure", payload_out, out_dir=args.out_dir)

    print(f"disclosure bench: {n} samples at {args.hz:g} Hz over "
          f"{args.corridor_km:g} km, {args.zones} zones, "
          f"{args.key_bits}-bit keys")
    print(f"  revealed {alibi.revealed_count}/{n} samples "
          f"({alibi.redaction_ratio:.1%} redacted)")
    print(f"  wire bytes: rsa-v15 full {full_wire:,} -> disclosed "
          f"{disclosed_wire:,}  ({reduction:.2f}x reduction, floor "
          f"{REDUCTION_FLOOR}x{', not enforced' if args.smoke else ''})")
    print(f"  signing: merkle commit {commit_s * 1e3:.1f} ms vs rsa-v15 "
          f"{rsa_sign_s * 1e3:.1f} ms (extrapolated from {len(probe)} "
          "probes)")
    print(f"  verify: full {full_verify_s * 1e3:.1f} ms, disclosed "
          f"{disclosed_verify_s * 1e3:.1f} ms")
    print(f"  wrote {path}")

    failures = []
    if full_report.status.value != "accepted":
        failures.append(f"full trace verified {full_report.status.value}, "
                        "expected accepted")
    if disclosed_report.status.value != "accepted":
        failures.append("disclosed alibi verified "
                        f"{disclosed_report.status.value}, expected "
                        "accepted")
    if not args.smoke and reduction < REDUCTION_FLOOR:
        failures.append(f"reduction {reduction:.2f}x below the "
                        f"{REDUCTION_FLOOR}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
