#!/usr/bin/env python
"""Sustained-load service benchmark: shard-cache scaling on the warm path.

The sharded :class:`repro.server.service.AuditorService` claims a
throughput win that comes from **cache capacity**, not parallelism
(docs/SERVICE.md): with a fleet working set *W* of distinct encrypted
records larger than one worker's payload-cache bound *C*, a single
shard under cyclic re-submission traffic evicts every record before its
next hit and pays full RSAES decryption per record, while *S* shards
each hold *W/S <= C* and go fully warm after the first pass.

This benchmark measures exactly that regime, deterministically:

* a seeded fleet is provisioned once; each drone contributes one signed,
  encrypted record set, re-submitted every cycle under a fresh flight id
  (distinct dedup keys -> distinct store rows; identical ciphertexts ->
  the payload cache is what decides the decryption cost);
* the shard assignment is computed up front and the config is *checked*:
  the single shard must overflow its bound (``W > C``) and every shard
  of the sharded run must fit (``max per-shard records <= C``) — a
  parameter drift that silently left both arms warm (or both thrashing)
  fails the run instead of reporting a meaningless ratio;
* one cold warm-up cycle fills the caches, then ``--cycles`` timed
  cycles of submit+drain are measured per arm;
* before anything is reported, every stored verdict of both arms is
  replayed through the independent ``repro.conformance.reference``
  verifier — a "speedup" produced by skipping verification rather than
  skipping decryption fails here.

The full run enforces the acceptance floor: 4-shard warm-path
throughput >= 3x single-shard.  ``--smoke`` runs a tiny configuration
for CI shape-checking (artefact + conformance, no floor: at smoke size
decryption does not dominate).  Artefact: ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import random
import sys
import time

from _emit import write_bench_json

from repro.conformance.reference import reference_verify
from repro.core.nfz import NoFlyZone
from repro.core.poa import decrypt_poa
from repro.core.protocol import DroneRegistrationRequest
from repro.crypto.rsa import generate_rsa_keypair
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.obs.hub import TelemetryHub
from repro.server.service import AuditorService
from repro.server.store import INTAKE_ERROR_STATUS
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import build_flight_submission, provision_fleet

SPEEDUP_FLOOR = 3.0
T0 = DEFAULT_EPOCH


def build_service(shards: int, cache_max: int, encryption_key,
                  frame: LocalFrame) -> tuple[AuditorService, TelemetryHub]:
    hub = TelemetryHub(window_s=3600.0)
    service = AuditorService(frame, shards=shards,
                             shard_payload_cache_max=cache_max,
                             encryption_key=encryption_key, telemetry=hub)
    center = frame.to_geo(0.0, 0.0)
    service.register_zone(NoFlyZone(center.lat, center.lon, 50.0))
    return service, hub


def cycle_submissions(base, cycle: int):
    """The cycle's submissions: same ciphertexts, fresh flight ids."""
    return [dataclasses.replace(
                sub, flight_id=f"{sub.flight_id}-cycle{cycle}")
            for sub in base]


def run_arm(shards: int, cache_max: int, fleet, base, cycles: int,
            encryption_key, frame: LocalFrame) -> dict:
    """Time one service configuration over the warm-path cycles."""
    service, hub = build_service(shards, cache_max, encryption_key, frame)
    for drone in fleet:
        issued = service.register_drone(DroneRegistrationRequest(
            operator_public_key=drone.operator_key.public_key,
            tee_public_key=drone.tee_key.public_key))
        assert issued == drone.drone_id, "fleet ids diverged between arms"

    # Cold cycle: every record is a compulsory miss; fills the caches.
    now = T0 + 1.0
    for sub in cycle_submissions(base, 0):
        service.submit(sub, now=now)
    service.drain(now=now)

    start = time.perf_counter()
    for cycle in range(1, cycles + 1):
        now = T0 + 1.0 + cycle
        for sub in cycle_submissions(base, cycle):
            service.submit(sub, now=now)
        service.drain(now=now)
    elapsed = time.perf_counter() - start

    submissions = len(base) * cycles
    hits = sum(e.payload_cache_hits for e in service.engines)
    misses = sum(e.payload_cache_misses for e in service.engines)
    arm = {
        "shards": shards,
        "elapsed_s": elapsed,
        "submissions": submissions,
        "submissions_per_s": submissions / elapsed,
        "payload_cache_hits": hits,
        "payload_cache_misses": misses,
        "payload_cache_hit_ratio": hits / (hits + misses),
        "intake_p99_s": hub.sketch("audit.intake.seconds")
                           .summary(now).get("p99"),
        "audited": service.stats.audited,
    }
    arm["conformance"] = replay_conformance(service, frame)
    service.close()
    return arm


def replay_conformance(service: AuditorService, frame: LocalFrame) -> dict:
    """Re-derive every stored verdict with the independent verifier."""
    zones = [record.zone for record in service.zones.all_zones()]
    rows = 0
    mismatches = []
    for stored, verdict in service.audited_submissions():
        rows += 1
        if verdict.status == INTAKE_ERROR_STATUS:
            mismatches.append({"seq": stored.seq, "got": verdict.status,
                               "want": "a verification report"})
            continue
        poa = decrypt_poa(stored.submission.records,
                          service._encryption_key,
                          scheme=stored.submission.scheme,
                          finalizer=stored.submission.finalizer)
        tee_key = service.store.get_drone(
            stored.submission.drone_id).tee_public_key
        want = reference_verify(poa, tee_key, zones, frame)
        got = verdict.to_report()
        if (got.status, got.reason) != (want.status, want.reason):
            mismatches.append({
                "seq": stored.seq,
                "got": [got.status.value,
                        got.reason.value if got.reason else None],
                "want": [want.status.value,
                         want.reason.value if want.reason else None]})
    return {"rows": rows, "mismatches": mismatches}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--drones", type=int, default=16)
    parser.add_argument("--samples", type=int, default=4,
                        help="records per submission (default 4)")
    parser.add_argument("--cycles", type=int, default=4,
                        help="timed warm-path re-submission cycles")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count for the sharded arm (default 4)")
    parser.add_argument("--cache", type=int, default=30,
                        help="per-shard payload cache bound C (default 30)")
    parser.add_argument("--key-bits", type=int, default=1024,
                        help="RSAES encryption key size; decryption is the "
                             "cost the warm path amortizes (default 1024)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration; skips the speedup "
                             "floor (decryption does not dominate at "
                             "smoke size)")
    parser.add_argument("--out-dir", default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        args.drones, args.samples, args.cycles, args.cache = 4, 2, 2, 4

    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    encryption_key = generate_rsa_keypair(args.key_bits,
                                          rng=random.Random(args.seed))

    # Provision once; both arms register the same keys in the same order
    # (ids are issued sequentially, so they match across stores).
    fleet_ids = []

    def probe_register(operator_public, tee_public, name):
        fleet_ids.append(f"drone-{len(fleet_ids) + 1:06d}")
        return fleet_ids[-1]

    fleet = provision_fleet(probe_register, drones=args.drones,
                            seed=args.seed, regions=args.drones)
    rng = random.Random(args.seed * 31 + 7)
    base = [build_flight_submission(drone, encryption_key.public_key,
                                    frame=frame, flight_index=0,
                                    samples=args.samples, start=T0 - 120.0,
                                    rng=rng)
            for drone in fleet]

    # Config sanity: the single shard must thrash, every shard must fit.
    probe = AuditorService(frame, shards=args.shards,
                           encryption_key=encryption_key)
    per_shard_records = [0] * args.shards
    for drone in fleet:
        per_shard_records[probe.shard_of(drone.drone_id)] += args.samples
    probe.close()
    working_set = args.drones * args.samples
    if working_set <= args.cache:
        raise SystemExit(f"config error: working set {working_set} fits the "
                         f"single shard's bound {args.cache}; nothing to "
                         "measure")
    if max(per_shard_records) > args.cache:
        raise SystemExit(f"config error: a shard holds "
                         f"{max(per_shard_records)} records, over the "
                         f"bound {args.cache}; the sharded arm would "
                         "thrash too")

    single = run_arm(1, args.cache, fleet, base, args.cycles,
                     encryption_key, frame)
    sharded = run_arm(args.shards, args.cache, fleet, base, args.cycles,
                      encryption_key, frame)
    speedup = sharded["submissions_per_s"] / single["submissions_per_s"]

    payload = {
        "config": {
            "drones": args.drones, "samples": args.samples,
            "cycles": args.cycles, "shards": args.shards,
            "cache_bound": args.cache, "key_bits": args.key_bits,
            "seed": args.seed, "smoke": args.smoke,
        },
        "working_set": {
            "records": working_set,
            "per_shard_records": per_shard_records,
            "single_shard_overflows": working_set > args.cache,
            "sharded_fits": max(per_shard_records) <= args.cache,
        },
        "single_shard": single,
        "sharded": sharded,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": not args.smoke,
    }
    path = write_bench_json("service", payload, out_dir=args.out_dir)

    print(f"service bench: {args.drones} drones x {args.samples} records, "
          f"{args.cycles} warm cycle(s), C={args.cache}")
    for arm in (single, sharded):
        conf = arm["conformance"]
        p99 = arm["intake_p99_s"]
        print(f"  {arm['shards']} shard(s): "
              f"{arm['submissions_per_s']:8.1f} sub/s   "
              f"hit ratio {arm['payload_cache_hit_ratio']:5.1%}   "
              f"intake p99 {p99 * 1e3:6.2f} ms   "
              f"conformance {conf['rows']} row(s), "
              f"{len(conf['mismatches'])} mismatch(es)")
    print(f"  speedup {speedup:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x{', not enforced' if args.smoke else ''})")
    print(f"  wrote {path}")

    failures = []
    for arm in (single, sharded):
        if arm["conformance"]["mismatches"]:
            failures.append(f"{arm['shards']}-shard arm diverged from the "
                            "reference verifier")
    if not args.smoke and speedup < SPEEDUP_FLOOR:
        failures.append(f"speedup {speedup:.2f}x below the "
                        f"{SPEEDUP_FLOOR}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
