"""Shared benchmark fixtures.

Each paper artefact gets one bench module.  The rendered, paper-comparable
output (tables, figure series) is emitted straight to the terminal via the
``emit`` fixture so it survives pytest's output capture, and is also
appended to ``benchmarks/out/`` for later inspection.
"""

from __future__ import annotations

import pathlib
import random

import pytest

from _emit import merge_bench_json
from repro.crypto.rsa import generate_rsa_keypair

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_sessionfinish(session, exitstatus):
    """Emit one ``BENCH_<module>.json`` per pytest-benchmark module.

    pytest-benchmark renders its table to the terminal only; this hook
    drains its collected stats into the same ``_emit`` artefacts the
    hand-rolled benchmarks write, so every benchmark run — fixture-based
    or not — leaves a machine-readable ``BENCH_*.json`` behind.  Modules
    that assemble their own richer payload (server_throughput,
    obs_overhead, nfz_scale) do not use the ``benchmark`` fixture and are
    untouched.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, dict] = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        module = pathlib.Path(bench.fullname.split("::")[0]).stem
        name = module.removeprefix("bench_")
        entry = by_module.setdefault(
            name, {"source": f"{module}.py", "benchmarks": {}})
        entry["benchmarks"][bench.name] = {
            "mean_s": stats.mean, "min_s": stats.min, "max_s": stats.max,
            "median_s": stats.median, "stddev_s": stats.stddev,
            "rounds": stats.rounds}
    # Merge rather than write: modules may have already emitted their own
    # hand-rolled sections (e.g. bench_crypto's per-scheme flight profile)
    # into the same artefact during the run.
    for name, payload in by_module.items():
        merge_bench_json(name, payload)


@pytest.fixture()
def emit(capsys, request):
    """Print a rendered artefact to the live terminal and archive it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        name = request.node.name.replace("/", "_")
        with open(OUT_DIR / f"{name}.txt", "w") as fh:
            fh.write(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def airport_scenario():
    from repro.workloads.airport import build_airport_scenario
    return build_airport_scenario(seed=0)


@pytest.fixture(scope="session")
def residential_scenario():
    from repro.workloads.residential import build_residential_scenario
    return build_residential_scenario(seed=0)


@pytest.fixture(scope="session")
def rsa_1024():
    return generate_rsa_keypair(1024, rng=random.Random(1))


@pytest.fixture(scope="session")
def rsa_2048():
    return generate_rsa_keypair(2048, rng=random.Random(2))
