"""Shared benchmark fixtures.

Each paper artefact gets one bench module.  The rendered, paper-comparable
output (tables, figure series) is emitted straight to the terminal via the
``emit`` fixture so it survives pytest's output capture, and is also
appended to ``benchmarks/out/`` for later inspection.
"""

from __future__ import annotations

import pathlib
import random

import pytest

from repro.crypto.rsa import generate_rsa_keypair

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture()
def emit(capsys, request):
    """Print a rendered artefact to the live terminal and archive it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        name = request.node.name.replace("/", "_")
        with open(OUT_DIR / f"{name}.txt", "w") as fh:
            fh.write(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def airport_scenario():
    from repro.workloads.airport import build_airport_scenario
    return build_airport_scenario(seed=0)


@pytest.fixture(scope="session")
def residential_scenario():
    from repro.workloads.residential import build_residential_scenario
    return build_residential_scenario(seed=0)


@pytest.fixture(scope="session")
def rsa_1024():
    return generate_rsa_keypair(1024, rng=random.Random(1))


@pytest.fixture(scope="session")
def rsa_2048():
    return generate_rsa_keypair(2048, rng=random.Random(2))
