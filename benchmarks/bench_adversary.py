"""Adversary matrix: rejection-path latency per attack class.

The paper's acceptance story is qualitative (zero false accepts); this
benchmark adds the quantitative angle — how much *work* the auditor does
to turn each attack away.  Rejection cost matters operationally: a
forged submission that is cheap to reject (bad signature, short-circuit
at stage 1) is a weaker DoS lever than one that must run the full
sufficiency geometry before failing.

For every built-in attack class the harness executes the attack
end-to-end (forge → submit → adjudicate) against one violation scenario
and reports the best-of-N wall time, alongside the differential
conformance throughput (trajectories verified per second through both
the staged pipeline and the naive reference).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_adversary.py``)
or under pytest via ``test_adversary``, which asserts zero false accepts
and that every attack rejects within a generous per-cell budget.
"""

from __future__ import annotations

import argparse
import random
import time

from _emit import write_bench_json
from repro.adversary import builtin_attacks
from repro.adversary.matrix import build_world, run_matrix
from repro.conformance import run_differential
from repro.workloads import build_violation_variants

CELL_BUDGET_S = 5.0  # generous: catches pathological rejection paths only


def time_attacks(scenario, old_run, *, seed: int = 0, key_bits: int = 512,
                 repetitions: int = 3) -> list[dict]:
    """Best-of-N end-to-end wall time for each attack class."""
    rows = []
    for attack in builtin_attacks():
        best = float("inf")
        outcome = None
        false_accept = False
        for rep in range(repetitions):
            world = build_world(scenario, old_run, seed=seed,
                                key_bits=key_bits)
            rng = random.Random(f"{seed}/{attack.name}/{rep}")
            start = time.perf_counter()
            result = attack.execute(world, rng)
            best = min(best, time.perf_counter() - start)
            outcome = result.outcome
            false_accept = false_accept or result.false_accept
        rows.append({"attack": attack.name, "outcome": outcome,
                     "false_accept": false_accept, "best_s": best})
    return rows


def run_benchmark(repetitions: int = 3, trajectories: int = 60,
                  seed: int = 0, key_bits: int = 512) -> tuple[str, dict]:
    scenario = build_violation_variants(seed)[0]
    # run_matrix builds the shared compliant "old flight" once; reuse its
    # construction path by running one matrix sweep first (this also
    # yields the zero-false-accept verdict the pytest entry asserts on).
    matrix_start = time.perf_counter()
    matrix = run_matrix(scenarios=[scenario], seed=seed, key_bits=key_bits)
    matrix_wall = time.perf_counter() - matrix_start

    # Reconstruct the shared compliant "old flight" the same way
    # run_matrix does, so per-attack timings exclude its (fixed) cost.
    from repro.adversary.matrix import _compliant_scenario
    from repro.tee.attestation import provision_device
    from repro.workloads.runner import run_policy

    compliant = _compliant_scenario(2_000.0, scenario.zones[0],
                                    scenario.frame)
    old_run = run_policy(compliant, "adaptive", key_bits=key_bits,
                         seed=seed,
                         device=provision_device(
                             f"adv-dev-{key_bits}-{seed}",
                             key_bits=key_bits,
                             rng=random.Random(seed ^ 0x5EED)))

    rows = time_attacks(scenario, old_run, seed=seed, key_bits=key_bits,
                        repetitions=repetitions)

    conf_start = time.perf_counter()
    conformance = run_differential(trajectories=trajectories, seed=seed,
                                   key_bits=key_bits,
                                   include_sampler=False)
    conf_wall = time.perf_counter() - conf_start

    lines = [
        f"Adversary rejection paths — {key_bits}-bit keys, "
        f"best of {repetitions}",
        "",
        "attack                  outcome                  best",
    ]
    for row in rows:
        flag = "   FALSE ACCEPT" if row["false_accept"] else ""
        lines.append(f"{row['attack']:<22}  {row['outcome']:<22} "
                     f"{row['best_s'] * 1e3:>7.1f} ms{flag}")
    lines += [
        "",
        f"full 12-attack matrix sweep    : {matrix_wall:.2f} s "
        f"(ok={matrix.ok})",
        f"conformance throughput         : "
        f"{trajectories / conf_wall:,.0f} trajectories/s "
        f"({trajectories} in {conf_wall:.2f} s, ok={conformance.ok})",
    ]
    payload = {
        "benchmark": "adversary",
        "config": {"repetitions": repetitions, "trajectories": trajectories,
                   "seed": seed, "key_bits": key_bits,
                   "cell_budget_s": CELL_BUDGET_S},
        "cells": rows,
        "matrix_wall_s": matrix_wall,
        "matrix_ok": matrix.ok,
        "conformance_wall_s": conf_wall,
        "conformance_ok": conformance.ok,
        "trajectories_per_s": trajectories / conf_wall,
    }
    return "\n".join(lines), payload


def test_adversary(emit):
    """Pytest entry: zero false accepts, every rejection within budget."""
    text, payload = run_benchmark(repetitions=2, trajectories=30)
    emit(text)
    write_bench_json("adversary", payload)
    assert payload["matrix_ok"]
    assert payload["conformance_ok"]
    assert all(not row["false_accept"] for row in payload["cells"])
    assert all(row["best_s"] < CELL_BUDGET_S for row in payload["cells"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--trajectories", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--key-bits", type=int, default=512,
                        choices=(512, 1024, 2048))
    args = parser.parse_args()
    text, payload = run_benchmark(repetitions=args.repetitions,
                                  trajectories=args.trajectories,
                                  seed=args.seed, key_bits=args.key_bits)
    print(text)
    path = write_bench_json("adversary", payload)
    print(f"\nmachine-readable result -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
