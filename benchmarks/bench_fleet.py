#!/usr/bin/env python
"""Fleet-scale intake benchmark: admission scheduling under flood.

The fleet simulator's claim (docs/FLEETSIM.md) is that the admission
scheduler converts a flooding storm from a *starvation* event into a
*containment* event: with no guard, junk floods fill the bounded intake
queue during storm seconds and honest traffic arriving behind them is
shed ``queue_full``; with the fair-share guard, the flooder's own
per-drone bucket turns the storm away at intake — before it costs queue
slots or store writes — and the honest fleet rides through.

This benchmark measures that A/B at fleet scale, per fleet size:

* a seeded honest fleet plus a few flooders is provisioned once
  (untimed — 512-bit keygen at 5k drones is minutes of RSA that says
  nothing about intake); both arms register the identical fleet;
* one merged deterministic event schedule (Poisson honest arrivals +
  storm-window floods alternating byte-identical duplicates with junk)
  is built once and replayed against both arms on the virtual clock;
* each arm is timed end to end — per-submit wall latency (p50/p99) and
  sustained submissions/sec over submit+drain — and closed out with
  per-class accounting: honest shed ratio, flood turned-away ratio;
* safety is enforced in *every* mode: a ``must_reject`` event whose
  verdict lands ACCEPTED fails the run — a throughput number produced
  by accepting garbage is meaningless.

The full run enforces the acceptance floor: the fair-share arm must
deliver strictly more accepted-and-audited honest submissions than the
no-guard arm under the same flood (the honest-throughput win).
``--smoke`` runs a tiny configuration for CI shape-checking (no floor:
at smoke size the queue never saturates).  Artefact:
``BENCH_fleet.json``.
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from _emit import write_bench_json

from repro.core.nfz import NoFlyZone
from repro.core.protocol import DroneRegistrationRequest
from repro.crypto.rsa import generate_rsa_keypair
from repro.fleetsim.traffic import (CLASS_FLOOD, flood_stream, honest_stream,
                                    merge_streams)
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.server.admission import build_scheduler
from repro.server.service import AuditorService
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import provision_fleet

T0 = DEFAULT_EPOCH
#: Target honest submissions per arm.  ``honest_stream``'s rate is
#: fleet-wide (Poisson arrivals assigned across the fleet), so the
#: audited work per arm is fixed while fleet size scales the *diversity*
#: of submitters — which is what the per-drone admission buckets and the
#: registry have to absorb.
HONEST_EVENTS_TARGET = 1500


def _percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def provision(drones: int, flooders: int, seed: int):
    """Generate the fleet once; ids match the service's issue order."""
    issued = []

    def probe(operator_public, tee_public, name):
        issued.append(f"drone-{len(issued) + 1:06d}")
        return issued[-1]

    fleet = provision_fleet(probe, drones=drones, seed=seed)
    flood_fleet = provision_fleet(probe, drones=flooders,
                                  seed=seed + 424_243)
    return fleet, flood_fleet


def build_schedule(fleet, flood_fleet, enc_public, frame, *, seed,
                   duration_s, flood_burst_per_s, flood_period_s):
    rate_hz = HONEST_EVENTS_TARGET / duration_s
    honest = honest_stream(fleet, enc_public, frame=frame, seed=seed,
                           rate_hz=rate_hz, duration_s=duration_s,
                           samples=3)
    flood = flood_stream(flood_fleet, enc_public, frame=frame, seed=seed,
                         burst_per_s=flood_burst_per_s,
                         storm_period_s=flood_period_s,
                         duration_s=duration_s, samples=3)
    return merge_streams(honest, flood)


def run_arm(policy: str, events, fleet, flood_fleet, encryption_key,
            frame, *, duration_s, queue_capacity, admission_rate_per_s,
            shards) -> dict:
    """Replay the schedule against one service configuration."""
    # Tight per-drone buckets: a flooder's storm must die at its own
    # bucket, not ride the global budget into the queue.
    admission = build_scheduler(
        policy, rate_per_s=(None if policy == "none"
                            else admission_rate_per_s),
        burst=64.0, drone_rate_per_s=5.0, drone_burst=8.0)
    service = AuditorService(frame, shards=shards,
                             queue_capacity=queue_capacity,
                             admission=admission,
                             encryption_key=encryption_key)
    center = frame.to_geo(0.0, 0.0)
    service.register_zone(NoFlyZone(center.lat, center.lon, 50.0))
    for drone in fleet + flood_fleet:
        issued = service.register_drone(DroneRegistrationRequest(
            operator_public_key=drone.operator_key.public_key,
            tee_public_key=drone.tee_key.public_key))
        assert issued == drone.drone_id, "fleet ids diverged between arms"

    outcomes = {}   # traffic class -> outcome -> count
    seq_events = {}
    latencies = []
    cursor = 0
    start = time.perf_counter()
    for tick in range(1, int(duration_s) + 2):
        now = T0 + float(tick)
        while cursor < len(events) and events[cursor].at <= now:
            event = events[cursor]
            cursor += 1
            t_submit = time.perf_counter()
            # Virtual intake time is the event's own arrival instant —
            # quantizing to the tick would cap every bucket at its
            # burst per tick and misreport admission behaviour.
            decision = service.submit(event.submission, now=event.at,
                                      region=event.region)
            latencies.append(time.perf_counter() - t_submit)
            per_class = outcomes.setdefault(event.traffic_class, {})
            per_class[decision.outcome] = \
                per_class.get(decision.outcome, 0) + 1
            if decision.outcome == "accepted":
                seq_events[decision.seq] = event
        service.drain(now=now)
    elapsed = time.perf_counter() - start

    false_accepts = 0
    honest_audited_accepted = 0
    for stored, verdict in service.audited_submissions():
        event = seq_events.get(stored.seq)
        if event is None:
            continue
        if event.must_reject and verdict.status == "accepted":
            false_accepts += 1
        if (event.traffic_class == "honest"
                and verdict.status == "accepted"):
            honest_audited_accepted += 1
    service.close()

    honest = outcomes.get("honest", {})
    flood = outcomes.get(CLASS_FLOOD, {})
    honest_total = sum(honest.values())
    flood_total = sum(flood.values())
    honest_shed = (honest.get("shed_rate_limited", 0)
                   + honest.get("shed_queue_full", 0))
    flood_turned_away = (flood.get("shed_rate_limited", 0)
                         + flood.get("shed_queue_full", 0)
                         + flood.get("deduplicated", 0))
    return {
        "policy": policy,
        "elapsed_s": elapsed,
        "submissions": len(events),
        "sustained_submissions_per_s": len(events) / elapsed,
        "intake_p50_s": _percentile(latencies, 0.50),
        "intake_p99_s": _percentile(latencies, 0.99),
        "outcomes": {name: dict(sorted(per.items()))
                     for name, per in sorted(outcomes.items())},
        "honest_accepted_audited": honest_audited_accepted,
        "honest_shed_ratio": (honest_shed / honest_total
                              if honest_total else 0.0),
        "flood_turned_away_ratio": (flood_turned_away / flood_total
                                    if flood_total else 0.0),
        "false_accepts": false_accepts,
    }


def run_fleet_size(drones: int, args, frame, encryption_key) -> dict:
    provision_start = time.perf_counter()
    fleet, flood_fleet = provision(drones, args.flooders, args.seed)
    provision_s = time.perf_counter() - provision_start
    events = build_schedule(fleet, flood_fleet,
                            encryption_key.public_key, frame,
                            seed=args.seed, duration_s=args.duration,
                            flood_burst_per_s=args.flood_burst,
                            flood_period_s=args.flood_period)
    arm_kwargs = dict(duration_s=args.duration,
                      queue_capacity=args.queue_capacity,
                      admission_rate_per_s=args.admission_rate,
                      shards=args.shards)
    guarded = run_arm("fair-share", events, fleet, flood_fleet,
                      encryption_key, frame, **arm_kwargs)
    unguarded = run_arm("none", events, fleet, flood_fleet,
                        encryption_key, frame, **arm_kwargs)
    win = (guarded["honest_accepted_audited"]
           / max(1, unguarded["honest_accepted_audited"]))
    return {
        "drones": drones,
        "flooders": args.flooders,
        "events": len(events),
        "provision_s": provision_s,
        "fair_share": guarded,
        "no_guard": unguarded,
        "honest_throughput_win": win,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fleets", default="1000,5000",
                        help="comma-separated fleet sizes (default "
                             "1000,5000)")
    parser.add_argument("--flooders", type=int, default=4)
    parser.add_argument("--duration", type=float, default=30.0,
                        help="virtual seconds of traffic per arm")
    parser.add_argument("--flood-burst", type=int, default=700,
                        help="total flood submissions per storm second")
    parser.add_argument("--flood-period", type=float, default=10.0)
    parser.add_argument("--queue-capacity", type=int, default=256,
                        help="intake queue bound; the no-guard arm's "
                             "only back-pressure")
    parser.add_argument("--admission-rate", type=float, default=400.0,
                        help="fair-share arm's global bucket rate")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--key-bits", type=int, default=512)
    parser.add_argument("--seed", type=int, default=19)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI configuration; skips the "
                             "honest-win floor (the queue never "
                             "saturates at smoke size)")
    parser.add_argument("--out-dir", default=None)
    args = parser.parse_args(argv)
    if args.smoke:
        args.fleets, args.flooders = "24", 2
        args.duration, args.flood_burst = 20.0, 64
        args.queue_capacity, args.admission_rate = 64, 100.0

    fleet_sizes = [int(s) for s in args.fleets.split(",") if s.strip()]
    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    encryption_key = generate_rsa_keypair(args.key_bits,
                                          rng=random.Random(args.seed))

    results = [run_fleet_size(drones, args, frame, encryption_key)
               for drones in fleet_sizes]

    payload = {
        "config": {
            "fleets": fleet_sizes, "flooders": args.flooders,
            "duration_s": args.duration,
            "flood_burst_per_s": args.flood_burst,
            "flood_period_s": args.flood_period,
            "queue_capacity": args.queue_capacity,
            "admission_rate_per_s": args.admission_rate,
            "shards": args.shards, "key_bits": args.key_bits,
            "seed": args.seed, "smoke": args.smoke,
            "honest_events_target": HONEST_EVENTS_TARGET,
        },
        "results": results,
        "win_floor": 1.0,
        "floor_enforced": not args.smoke,
    }
    path = write_bench_json("fleet", payload, out_dir=args.out_dir)

    failures = []
    for result in results:
        print(f"fleet bench: {result['drones']} drones "
              f"+ {result['flooders']} flooder(s), "
              f"{result['events']} event(s) "
              f"(provisioned in {result['provision_s']:.1f}s)")
        for arm_name in ("fair_share", "no_guard"):
            arm = result[arm_name]
            p99 = arm["intake_p99_s"]
            print(f"  {arm['policy']:>10}: "
                  f"{arm['sustained_submissions_per_s']:8.1f} sub/s   "
                  f"intake p99 {p99 * 1e3:6.2f} ms   "
                  f"honest shed {arm['honest_shed_ratio']:5.1%}   "
                  f"flood away {arm['flood_turned_away_ratio']:5.1%}")
            if arm["false_accepts"]:
                failures.append(
                    f"{result['drones']}-drone {arm['policy']} arm "
                    f"recorded {arm['false_accepts']} false accept(s)")
        win = result["honest_throughput_win"]
        print(f"  honest-throughput win {win:.2f}x "
              f"(floor 1.0x{', not enforced' if args.smoke else ''})")
        if not args.smoke and win <= 1.0:
            failures.append(
                f"{result['drones']}-drone honest win {win:.2f}x is not "
                "above the no-guard baseline")
    print(f"  wrote {path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
