"""Fig. 8 — residential scenario: distance, sampling rate, insufficiency.

Regenerates all three panels: (a) distance to the nearest of 94 house
NFZs, (b) instantaneous sampling rate of adaptive vs 2/3/5 Hz fix-rate,
(c) cumulative insufficient-PoA counts (paper: 39 @2 Hz, 9 @3 Hz, 1 @5 Hz
from a missed GPS update, adaptive comparable to 5 Hz).
"""

from __future__ import annotations

from repro.analysis.figures import (
    fig8a_nearest_distance,
    fig8b_instantaneous_rate,
    fig8c_cumulative_insufficiency,
)
from repro.analysis.report import render_series
from repro.core.sufficiency import count_insufficient_pairs
from repro.workloads import run_policy


def _insufficiency(run, scenario):
    samples = [entry.sample for entry in run.result.poa]
    return count_insufficient_pairs(samples, scenario.zones, scenario.frame)


def test_fig8_residential(benchmark, residential_scenario, emit):
    scenario = residential_scenario
    runs = {}

    def run_all():
        for rate in (2.0, 3.0, 5.0):
            runs[f"{rate:g} Hz fix-rate"] = run_policy(
                scenario, "fixed", rate, key_bits=1024, seed=0)
        runs["adaptive"] = run_policy(scenario, "adaptive", key_bits=1024,
                                      seed=0)
        return runs

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    from repro.analysis.ascii_chart import ascii_chart
    from repro.analysis.paper_reference import FIG8C_INSUFFICIENT

    paper = {"2 Hz fix-rate": FIG8C_INSUFFICIENT["2hz"],
             "3 Hz fix-rate": FIG8C_INSUFFICIENT["3hz"],
             "5 Hz fix-rate": FIG8C_INSUFFICIENT["5hz"],
             "adaptive": FIG8C_INSUFFICIENT["adaptive"]}
    lines = ["Fig. 8 — Residential scenario (94 house NFZs, r = 20 ft)", ""]
    lines.append(ascii_chart(
        {"nearest NFZ": fig8a_nearest_distance(scenario, step_s=1.0)},
        x_label="time (s)", y_label="distance (ft)",
        title="  (a) distance to the nearest NFZ:"))
    lines.append("")
    lines.append(ascii_chart(
        {"adaptive": fig8b_instantaneous_rate(runs["adaptive"]),
         "5Hz fix": fig8b_instantaneous_rate(runs["5 Hz fix-rate"])},
        x_label="time (s)", y_label="rate (Hz)",
        title="  (b) instantaneous sampling rate:"))
    lines.append("")
    lines.append(ascii_chart(
        {"2Hz": fig8c_cumulative_insufficiency(runs["2 Hz fix-rate"]),
         "3Hz": fig8c_cumulative_insufficiency(runs["3 Hz fix-rate"]),
         "adaptive": fig8c_cumulative_insufficiency(runs["adaptive"])},
        x_label="time (s)", y_label="insufficient PoAs",
        title="  (c) cumulative insufficient PoAs:"))
    lines.append("")
    lines.append("  (c) total insufficient PoA pairs:")
    lines.append(f"      {'policy':<16} {'samples':>8} {'insufficient':>13} "
                 f"{'paper':>6}")
    for name, run in runs.items():
        count = _insufficiency(run, scenario)
        lines.append(f"      {name:<16} {run.sample_count:>8} {count:>13} "
                     f"{paper[name]:>6}")
    emit("\n".join(lines))

    counts = {name: _insufficiency(run, scenario)
              for name, run in runs.items()}
    assert counts["2 Hz fix-rate"] > counts["3 Hz fix-rate"]
    assert counts["3 Hz fix-rate"] > counts["5 Hz fix-rate"]
    assert counts["adaptive"] <= counts["3 Hz fix-rate"]
    assert counts["5 Hz fix-rate"] <= 2
