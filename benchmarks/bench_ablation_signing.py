"""Ablation: per-sample RSA vs sign-all-at-once vs symmetric HMAC (§VII-A1).

The paper proposes two remedies for the RSA bottleneck: flight-scoped
symmetric keys, and buffering the trace in secure memory to sign once.
This bench replays the residential adaptive sample schedule under all
three schemes and compares signing work, modelled Pi CPU, and the batch
scheme's secure-memory cost.
"""

from __future__ import annotations

import random
import time

from repro.crypto.hmac_sign import generate_hmac_key, hmac_sign
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.extensions.batch_signing import batch_digest
from repro.perf.costs import RASPBERRY_PI_3
from repro.perf.cpu import CpuUtilizationModel
from repro.perf.memory import RASPBERRY_PI_MEMORY
from repro.workloads import run_policy


def test_signing_scheme_ablation(benchmark, residential_scenario, emit,
                                 rsa_1024):
    scenario = residential_scenario
    run = run_policy(scenario, "adaptive", key_bits=512, seed=0)
    payloads = [entry.payload for entry in run.result.poa]
    hmac_key = generate_hmac_key(random.Random(5))

    def per_sample_rsa():
        for payload in payloads:
            sign_pkcs1_v15(rsa_1024, payload)

    def batch_rsa():
        sign_pkcs1_v15(rsa_1024, batch_digest(tuple(payloads)))

    def per_sample_hmac():
        for payload in payloads:
            hmac_sign(hmac_key, payload)

    timings = {}
    for name, fn in [("per-sample RSA", per_sample_rsa),
                     ("batch RSA", batch_rsa),
                     ("per-sample HMAC", per_sample_hmac)]:
        start = time.perf_counter()
        fn()
        timings[name] = time.perf_counter() - start

    benchmark.pedantic(per_sample_hmac, rounds=3, iterations=1)

    model = CpuUtilizationModel(RASPBERRY_PI_3)
    pi_cpu_per_sample = model.mean_utilization_fraction(
        len(payloads), 1024, scenario.duration) * 100.0
    pi_cpu_batch = model.mean_utilization_fraction(
        1, 1024, scenario.duration) * 100.0
    batch_memory = RASPBERRY_PI_MEMORY.resident_mb(
        buffered_samples=len(payloads))

    emit("Ablation — signing schemes over the residential adaptive schedule\n"
         f"  samples signed         : {len(payloads)}\n"
         f"  per-sample RSA-1024    : {timings['per-sample RSA'] * 1e3:8.1f} ms"
         f"  (modelled Pi CPU {pi_cpu_per_sample:.2f}%)\n"
         f"  sign-all-at-once RSA   : {timings['batch RSA'] * 1e3:8.1f} ms"
         f"  (modelled Pi CPU {pi_cpu_batch:.3f}%, secure buffer "
         f"{batch_memory:.2f} MB)\n"
         f"  per-sample HMAC-SHA256 : {timings['per-sample HMAC'] * 1e3:8.2f} ms"
         f"  ({timings['per-sample RSA'] / max(timings['per-sample HMAC'], 1e-9):,.0f}x "
         f"cheaper than RSA)")

    assert timings["batch RSA"] < timings["per-sample RSA"]
    assert timings["per-sample HMAC"] < timings["per-sample RSA"] / 50.0
