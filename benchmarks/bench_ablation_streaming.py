"""Ablation: real-time PoA streaming vs store-and-upload-later (§IV-B).

The paper declines real-time auditing because it "would increase battery
drain, violating Goal G2".  This bench runs the residential flight both
ways over a lossy radio link and prices the difference with the radio
energy model — making the paper's qualitative design call quantitative.
"""

from __future__ import annotations

import random

from repro.core.poa import encrypt_poa
from repro.crypto.rsa import generate_rsa_keypair
from repro.net.energy import WIFI_RADIO
from repro.net.link import SimulatedLink
from repro.net.streaming import StreamingAuditorEndpoint, StreamingUploader
from repro.workloads import run_policy


def test_streaming_vs_deferred(benchmark, residential_scenario, emit):
    scenario = residential_scenario
    run = run_policy(scenario, "adaptive", key_bits=1024, seed=0)
    auditor_key = generate_rsa_keypair(1024, rng=random.Random(8))
    records = encrypt_poa(run.result.poa, auditor_key.public_key,
                          rng=random.Random(9))

    def stream_flight():
        uplink = SimulatedLink(latency_s=0.03, jitter_s=0.005,
                               loss_probability=0.05,
                               bandwidth_bps=250_000.0, seed=4)
        downlink = SimulatedLink(latency_s=0.03, jitter_s=0.005, seed=5)
        uploader = StreamingUploader(uplink, downlink, run.policy_label,
                                     retransmit_timeout_s=0.5)
        endpoint = StreamingAuditorEndpoint(uplink, downlink)
        t = scenario.t_start
        uploader.begin_flight(t)
        for sample_time, record in zip(run.sample_times, records):
            t = sample_time
            uploader.push(record, t)
            endpoint.poll(t)
            uploader.poll(t)
        uploader.end_flight(t)
        while not (endpoint.complete and uploader.fully_acked):
            t += 0.25
            endpoint.poll(t)
            uploader.poll(t)
        return uploader, endpoint

    uploader, endpoint = benchmark.pedantic(stream_flight, rounds=1,
                                            iterations=1)
    assert endpoint.complete
    assert endpoint.records() == list(records)

    duration = scenario.duration
    streaming_j = WIFI_RADIO.streaming_energy_j(duration,
                                                uploader.stats.air_time_s)
    streaming_pct = 100.0 * WIFI_RADIO.battery_fraction(streaming_j)
    deferred_j = WIFI_RADIO.deferred_energy_j()

    emit("Ablation — real-time streaming vs store-and-upload (paper §IV-B)\n"
         f"  flight               : residential adaptive, "
         f"{uploader.stats.entries_pushed} entries over {duration:.0f} s\n"
         f"  frames sent          : {uploader.stats.frames_sent} "
         f"({uploader.stats.retransmissions} retransmissions over a 5% "
         f"lossy link)\n"
         f"  bytes on air         : {uploader.stats.bytes_sent:,}\n"
         f"  in-flight energy     : streaming {streaming_j:.1f} J "
         f"({streaming_pct:.3f}% of a 60 Wh battery) vs deferred "
         f"{deferred_j:.1f} J\n"
         "  -> the paper's call: the radio's idle draw alone makes "
         "real-time auditing a measurable battery cost for zero "
         "verification benefit")

    assert streaming_j > deferred_j
    assert uploader.stats.retransmissions > 0
