"""Machine-readable benchmark artefacts.

Benchmarks historically printed human tables only, which made the perf
trajectory across PRs untrackable.  ``write_bench_json`` writes a
``BENCH_<name>.json`` next to the ``.txt`` artefacts in
``benchmarks/out/`` with whatever structured payload the benchmark
assembled (config, timings, speedups), so successive runs diff cleanly.
Every artefact carries a ``meta`` block (git SHA, python version, UTC
timestamp) so a number can always be traced back to the tree and
interpreter that produced it.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import subprocess
from typing import Any

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_meta() -> dict[str, str]:
    """Provenance for a benchmark artefact: commit, interpreter, when."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=pathlib.Path(__file__).parent, timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "git_sha": sha,
        "python": platform.python_version(),
        "timestamp_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
    }


def write_bench_json(name: str, payload: dict[str, Any],
                     out_dir: str | pathlib.Path | None = None,
                     ) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` and return the path written.

    A ``meta`` provenance block is added unless the payload already
    carries one (merge flows re-write the file with the original meta).
    """
    directory = pathlib.Path(out_dir) if out_dir is not None else OUT_DIR
    directory.mkdir(exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = dict(payload)
    payload.setdefault("meta", bench_meta())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def merge_bench_json(name: str, payload: dict[str, Any],
                     out_dir: str | pathlib.Path | None = None,
                     ) -> pathlib.Path:
    """Merge ``payload`` into ``BENCH_<name>.json``, creating it if absent.

    Top-level keys from ``payload`` win; other keys already in the file
    survive.  This lets a module combine pytest-benchmark stats (drained
    by the session hook) with hand-rolled sections (e.g. the per-scheme
    flight profile) in one artefact without either write clobbering the
    other.
    """
    directory = pathlib.Path(out_dir) if out_dir is not None else OUT_DIR
    path = directory / f"BENCH_{name}.json"
    merged: dict[str, Any] = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except json.JSONDecodeError:
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged.update(payload)
    return write_bench_json(name, merged, out_dir)
