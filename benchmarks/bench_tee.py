"""Micro-benchmarks of the TEE substrate: world switches and GetGPSAuth.

The adaptive sampler exists because "signature and world-switching
operations are costly" (§IV-C3); these benches quantify both halves in the
simulator.
"""

from __future__ import annotations

import random
import uuid

import pytest

from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import provision_device
from repro.tee.gps_sampler_ta import CMD_GET_GPS_AUTH, GPS_SAMPLER_UUID
from repro.tee.optee import sign_trusted_app
from repro.tee.trusted_app import PseudoTrustedApplication

T0 = DEFAULT_EPOCH


class _NopPTA(PseudoTrustedApplication):
    UUID = uuid.UUID(int=0xBE7C)

    def invoke_command(self, command, params):
        return None


@pytest.fixture(scope="module")
def device():
    from repro.geo.geodesy import GeoPoint, LocalFrame
    dev = provision_device("bench", key_bits=1024, rng=random.Random(9))
    frame = LocalFrame(GeoPoint(40.1, -88.22))
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 100_000.0, 1000.0, 0.0)])
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=1)
    clock = SimClock(T0 + 1.0)
    dev.attach_gps(receiver, clock)
    dev.core.register_pta(_NopPTA())
    return dev, clock


def test_smc_round_trip(benchmark, device):
    """One empty secure-monitor call (two world switches)."""
    dev, _ = device
    sid = dev.client.open_session(_NopPTA.UUID)
    benchmark(dev.client.invoke, sid, "nop")


def test_get_gps_auth_end_to_end(benchmark, device):
    """Full GetGPSAuth: SMC + driver NMEA read/parse + RSA-1024 sign."""
    dev, clock = device

    sid = dev.client.open_session(GPS_SAMPLER_UUID)

    def call():
        clock.advance(0.2)
        return dev.client.invoke(sid, CMD_GET_GPS_AUTH)

    result = benchmark(call)
    assert "signature" in result


def test_ta_load_and_session_open(benchmark, device):
    """Session open includes TA signature verification and key unseal."""
    dev, _ = device

    def open_close():
        sid = dev.client.open_session(GPS_SAMPLER_UUID)
        dev.client.close_session(sid)

    benchmark(open_close)


def test_device_provisioning(benchmark):
    """Manufacture-time provisioning (dominated by RSA keygen)."""
    counter = iter(range(10_000))

    def provision():
        return provision_device(f"bench-{next(counter)}", key_bits=512,
                                rng=random.Random(7))

    benchmark.pedantic(provision, rounds=3, iterations=1)
