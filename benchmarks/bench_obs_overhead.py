"""Observability overhead: what tracing costs when it is off (and on).

The ``repro.obs`` tracer is wired into every hot path — SMC dispatch, TA
signing, stage verification, batch audit — so its *disabled* cost has to
be provably negligible.  Two measurements establish that on the
``bench_server_throughput`` workload:

* **noop microbenchmark** — the cost of one disabled span site
  (``get_tracer()`` lookup + no-op context manager), multiplied by the
  number of span sites a batch audit crosses, expressed as a fraction of
  the batch wall time.  This bounds the disabled overhead analytically.
* **interleaved A/B** — the same ``AuditEngine.audit_batch`` run with the
  default noop tracer vs. a live ``Tracer``, best-of interleaved, which
  shows what *enabled* tracing costs end to end.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``)
or under pytest via ``test_obs_overhead``, which asserts the estimated
disabled overhead stays under the 2% budget.
"""

from __future__ import annotations

import argparse
import time

from _emit import write_bench_json
from bench_server_throughput import FRAME, build_workload
from repro.core.verification import PoaVerifier
from repro.obs import Tracer, get_tracer, use_tracer
from repro.server.engine import AuditEngine

DISABLED_BUDGET = 0.02  # acceptance: disabled-tracer cost < 2%


def noop_span_cost(iterations: int = 100_000) -> float:
    """Seconds per disabled span site: tracer lookup + no-op context."""
    start = time.perf_counter()
    for _ in range(iterations):
        with get_tracer().span("bench.noop", probe=1):
            pass
    return (time.perf_counter() - start) / iterations


def span_sites_per_batch(n_submissions: int) -> int:
    """Span sites one ``audit_batch`` crosses with screening on.

    One ``audit_batch`` root, then per submission: one ``audit.submission``
    span, one synthesized ``crypto`` span, and the five verification-stage
    spans inside ``PoaVerifier.verify``.
    """
    return 1 + n_submissions * (1 + 1 + 5)


def make_engine(encryption_key, tee_keys, zones, *, workers: int) -> AuditEngine:
    return AuditEngine(
        PoaVerifier(FRAME),
        tee_key_lookup=lambda d: tee_keys[d].public_key,
        encryption_key=encryption_key,
        zones_provider=lambda: zones,
        workers=workers)


def run_ab(encryption_key, tee_keys, zones, submissions, *,
           workers: int, repetitions: int) -> tuple[float, float, int]:
    """Best wall time disabled vs. enabled, interleaved per round."""
    best_off = best_on = float("inf")
    spans = 0
    for _ in range(repetitions):
        engine = make_engine(encryption_key, tee_keys, zones, workers=workers)
        result = engine.audit_batch(submissions, record_event=False)
        best_off = min(best_off, result.wall_time_s)

        tracer = Tracer()
        with use_tracer(tracer):
            engine = make_engine(encryption_key, tee_keys, zones,
                                 workers=workers)
            result = engine.audit_batch(submissions, record_event=False)
        best_on = min(best_on, result.wall_time_s)
        spans = len(tracer.spans)
    return best_off, best_on, spans


def run_benchmark(n_submissions: int = 50, samples: int = 20,
                  key_bits: int = 512, workers: int = 1,
                  repetitions: int = 5) -> tuple[str, dict]:
    encryption_key, tee_keys, zones, submissions, _ = build_workload(
        n_submissions=n_submissions, samples=samples, key_bits=key_bits)

    per_site = noop_span_cost()
    sites = span_sites_per_batch(n_submissions)
    best_off, best_on, spans = run_ab(
        encryption_key, tee_keys, zones, submissions,
        workers=workers, repetitions=repetitions)
    est_disabled = per_site * sites / best_off
    enabled_cost = best_on / best_off - 1.0

    lines = [
        f"Tracing overhead — {n_submissions} submissions × {samples} "
        f"samples, RSA-{key_bits}, {workers} worker(s) "
        f"(best of {repetitions}, interleaved)",
        "",
        f"noop span site                : {per_site * 1e9:,.0f} ns",
        f"span sites per batch          : {sites}",
        f"batch wall, tracer disabled   : {best_off:.3f} s",
        f"batch wall, tracer enabled    : {best_on:.3f} s "
        f"({spans} spans captured)",
        "",
        f"disabled overhead (estimated) : {est_disabled:.4%} "
        f"(budget {DISABLED_BUDGET:.0%})",
        f"enabled overhead (measured)   : {enabled_cost:+.2%}",
    ]
    payload = {
        "benchmark": "obs_overhead",
        "config": {"submissions": n_submissions, "samples": samples,
                   "key_bits": key_bits, "workers": workers,
                   "repetitions": repetitions},
        "noop_span_cost_ns": per_site * 1e9,
        "span_sites_per_batch": sites,
        "batch_wall_disabled_s": best_off,
        "batch_wall_enabled_s": best_on,
        "spans_captured": spans,
        "disabled_overhead_estimated": est_disabled,
        "disabled_overhead_budget": DISABLED_BUDGET,
        "enabled_overhead_measured": enabled_cost,
    }
    return "\n".join(lines), payload


def test_obs_overhead(emit):
    """Pytest entry point: asserts the disabled cost stays in budget."""
    text, payload = run_benchmark(repetitions=3)
    emit(text)
    write_bench_json("obs_overhead", payload)
    assert payload["disabled_overhead_estimated"] < DISABLED_BUDGET
    assert payload["spans_captured"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--submissions", type=int, default=50)
    parser.add_argument("--samples", type=int, default=20)
    parser.add_argument("--key-bits", type=int, default=512)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--repetitions", type=int, default=5)
    args = parser.parse_args()
    text, payload = run_benchmark(
        n_submissions=args.submissions, samples=args.samples,
        key_bits=args.key_bits, workers=args.workers,
        repetitions=args.repetitions)
    print(text)
    path = write_bench_json("obs_overhead", payload)
    print(f"\nmachine-readable result -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
