"""Micro-benchmarks of the sampling and sufficiency hot paths."""

from __future__ import annotations

import random

from repro.core.nfz import NoFlyZone
from repro.core.samples import GpsSample
from repro.core.sufficiency import (
    insufficient_pair_indices,
    pair_is_sufficient,
)
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.geo.spatial_index import GridIndex
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH
FRAME = LocalFrame(GeoPoint(40.1, -88.22))


def _zones(n, rng):
    zones = []
    for _ in range(n):
        center = FRAME.to_geo(rng.uniform(0, 2000), rng.uniform(-100, 100))
        zones.append(NoFlyZone(center.lat, center.lon,
                               rng.uniform(5.0, 30.0)))
    return zones


def _trace(n, rng):
    samples = []
    for i in range(n):
        point = FRAME.to_geo(i * 2.0, rng.uniform(-5, 5))
        samples.append(GpsSample(lat=point.lat, lon=point.lon,
                                 t=T0 + i * 0.2))
    return samples


def test_pair_sufficiency_94_zones(benchmark):
    """One adaptive-sampler decision against the residential zone count."""
    rng = random.Random(1)
    zones = _zones(94, rng)
    a = _trace(2, rng)[0]
    b = GpsSample(lat=a.lat, lon=a.lon + 1e-5, t=a.t + 0.2)
    benchmark(pair_is_sufficient, a, b, zones, FRAME)


def test_full_trace_sufficiency_check(benchmark):
    """Auditor-side eq. (1) over an 800-sample PoA and 94 zones."""
    rng = random.Random(2)
    zones = _zones(94, rng)
    samples = _trace(800, rng)
    benchmark.pedantic(insufficient_pair_indices, args=(samples, zones, FRAME),
                       rounds=3, iterations=1)


def test_exact_vs_conservative_single_pair(benchmark):
    rng = random.Random(3)
    zones = _zones(10, rng)
    samples = _trace(2, rng)
    benchmark(pair_is_sufficient, samples[0], samples[1], zones, FRAME,
              method="exact")


def test_grid_index_nearest(benchmark):
    rng = random.Random(4)
    index: GridIndex[int] = GridIndex(100.0)
    for i, zone in enumerate(_zones(500, rng)):
        index.insert(i, zone.to_circle(FRAME))
    benchmark(index.nearest, (1000.0, 0.0))


def test_adaptive_decision_loop(benchmark, residential_scenario):
    """The Adapter's per-update work, amortized over a full scenario run
    (GPS read + min-pair-distance + condition check; signatures excluded
    by using a huge margin so no sample ever triggers)."""
    from repro.workloads import run_policy

    def run():
        return run_policy(residential_scenario, "adaptive", key_bits=512,
                          seed=1, margin_updates=0.0)

    benchmark.pedantic(run, rounds=1, iterations=1)
