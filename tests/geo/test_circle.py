"""Tests for repro.geo.circle."""

import math

import pytest

from repro.errors import GeometryError
from repro.geo.circle import Circle, smallest_enclosing_circle


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Circle(0.0, 0.0, -1.0)

    def test_contains_center_and_boundary(self):
        c = Circle(1.0, 2.0, 5.0)
        assert c.contains((1.0, 2.0))
        assert c.contains((6.0, 2.0))
        assert not c.contains((6.1, 2.0))

    def test_distance_to_boundary_signs(self):
        c = Circle(0.0, 0.0, 10.0)
        assert c.distance_to_boundary((20.0, 0.0)) == pytest.approx(10.0)
        assert c.distance_to_boundary((5.0, 0.0)) == pytest.approx(-5.0)
        assert c.distance_to_boundary((10.0, 0.0)) == pytest.approx(0.0)

    def test_intersects_circle(self):
        a = Circle(0.0, 0.0, 5.0)
        assert a.intersects_circle(Circle(8.0, 0.0, 3.0))     # tangent
        assert a.intersects_circle(Circle(7.0, 0.0, 3.0))     # overlap
        assert not a.intersects_circle(Circle(9.0, 0.0, 3.0))

    def test_intersects_segment_through(self):
        c = Circle(0.0, 0.0, 2.0)
        assert c.intersects_segment((-10.0, 0.0), (10.0, 0.0))

    def test_intersects_segment_misses(self):
        c = Circle(0.0, 0.0, 2.0)
        assert not c.intersects_segment((-10.0, 5.0), (10.0, 5.0))

    def test_intersects_segment_endpoint_inside(self):
        c = Circle(0.0, 0.0, 2.0)
        assert c.intersects_segment((1.0, 0.0), (10.0, 0.0))

    def test_intersects_degenerate_segment(self):
        c = Circle(0.0, 0.0, 2.0)
        assert c.intersects_segment((1.0, 1.0), (1.0, 1.0))
        assert not c.intersects_segment((5.0, 5.0), (5.0, 5.0))


class TestSmallestEnclosingCircle:
    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            smallest_enclosing_circle([])

    def test_single_point(self):
        c = smallest_enclosing_circle([(3.0, 4.0)])
        assert (c.x, c.y, c.r) == (3.0, 4.0, 0.0)

    def test_two_points(self):
        c = smallest_enclosing_circle([(0.0, 0.0), (4.0, 0.0)])
        assert c.x == pytest.approx(2.0)
        assert c.r == pytest.approx(2.0)

    def test_equilateral_triangle(self):
        pts = [(0.0, 0.0), (2.0, 0.0), (1.0, math.sqrt(3.0))]
        c = smallest_enclosing_circle(pts)
        # Circumradius of an equilateral triangle with side 2 is 2/sqrt(3).
        assert c.r == pytest.approx(2.0 / math.sqrt(3.0), rel=1e-9)

    def test_obtuse_triangle_uses_diameter(self):
        # For an obtuse triangle the longest side is the diameter.
        pts = [(0.0, 0.0), (10.0, 0.0), (5.0, 0.5)]
        c = smallest_enclosing_circle(pts)
        assert c.r == pytest.approx(5.0, rel=1e-6)

    def test_collinear_points(self):
        pts = [(0.0, 0.0), (1.0, 1.0), (5.0, 5.0), (3.0, 3.0)]
        c = smallest_enclosing_circle(pts)
        assert c.r == pytest.approx(math.dist((0, 0), (5, 5)) / 2.0, rel=1e-9)

    def test_all_points_enclosed_random(self):
        import random
        rng = random.Random(7)
        pts = [(rng.uniform(-100, 100), rng.uniform(-100, 100))
               for _ in range(200)]
        c = smallest_enclosing_circle(pts)
        tolerance = 1e-7 * max(1.0, c.r)
        assert all(c.contains(p, tol=tolerance) for p in pts)

    def test_minimality_vs_brute_force(self):
        import random
        rng = random.Random(11)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(12)]
        c = smallest_enclosing_circle(pts)
        # Any circle through the two farthest points must be at least half
        # the diameter of the point set.
        max_pairwise = max(math.dist(a, b) for a in pts for b in pts)
        assert c.r >= max_pairwise / 2.0 - 1e-9

    def test_deterministic_given_seed(self):
        pts = [(1.0, 1.0), (2.0, 5.0), (-3.0, 2.0), (0.0, -4.0)]
        a = smallest_enclosing_circle(pts, seed=3)
        b = smallest_enclosing_circle(pts, seed=3)
        assert (a.x, a.y, a.r) == (b.x, b.y, b.r)

    def test_duplicate_points(self):
        c = smallest_enclosing_circle([(1.0, 1.0)] * 5)
        assert c.r == 0.0
        assert (c.x, c.y) == (1.0, 1.0)
