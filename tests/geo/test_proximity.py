"""Tests for repro.geo.proximity: the zone-proximity index.

Every query class is checked against the brute-force scan it replaces,
including the cutoff contract (bit-identical at/below the cutoff, only
the ``> cutoff`` predicate above it) and the ring-0 corner cases where
signed distances go negative.
"""

import math
import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.geo.circle import Circle
from repro.geo.proximity import ZoneIndexStats, ZoneProximityIndex


def brute_nearest(circles, point):
    best_i, best_d = -1, math.inf
    for i, c in enumerate(circles):
        d = c.distance_to_boundary(point)
        if d < best_d:
            best_i, best_d = i, d
    return best_i, best_d


def brute_pair_min(circles, a, b):
    return min(c.distance_to_boundary(a) + c.distance_to_boundary(b)
               for c in circles)


def random_circles(seed, n=60, spread=500.0, r_max=60.0):
    rng = random.Random(seed)
    return [Circle(rng.uniform(-spread, spread), rng.uniform(-spread, spread),
                   rng.uniform(1.0, r_max)) for _ in range(n)]


@pytest.fixture()
def field():
    return random_circles(seed=7)


@pytest.fixture()
def index(field):
    return ZoneProximityIndex.from_circles(field)


class TestConstruction:
    def test_from_zones_projects_once_via_cache(self, frame):
        center = frame.to_geo(120.0, -40.0)
        zone = NoFlyZone(center.lat, center.lon, 25.0)
        index = ZoneProximityIndex([zone], frame)
        assert len(index) == 1
        # Satellite: to_circle is cached per frame, so the index holds the
        # very same Circle object a later projection returns.
        assert index.circles[0] is zone.to_circle(frame)

    def test_from_circles_exposes_shared_list(self, field, index):
        assert index.circles == field
        assert len(index) == len(field)

    def test_explicit_cell_size(self, field):
        index = ZoneProximityIndex.from_circles(field, cell_size=42.0)
        assert index.cell_size == 42.0

    def test_auto_cell_size_positive_even_for_point_layouts(self):
        index = ZoneProximityIndex.from_circles([Circle(0.0, 0.0, 0.5)])
        assert index.cell_size > 0.0

    def test_shared_stats_accumulator(self, field):
        stats = ZoneIndexStats()
        a = ZoneProximityIndex.from_circles(field, stats=stats)
        b = ZoneProximityIndex.from_circles(field, stats=stats)
        a.nearest_boundary((0.0, 0.0))
        b.nearest_boundary((0.0, 0.0))
        assert stats.queries == 2


class TestEmptyIndex:
    @pytest.fixture()
    def empty(self):
        return ZoneProximityIndex.from_circles([])

    def test_all_queries_degrade_gracefully(self, empty):
        assert empty.nearest_boundary((0.0, 0.0)) is None
        assert empty.min_pair_distance((0.0, 0.0), (1.0, 0.0)) is None
        assert empty.k_nearest((0.0, 0.0), 3) == []
        assert empty.candidates_within((0.0, 0.0), 100.0) == []
        assert empty.pair_candidates((0.0, 0.0), (1.0, 0.0), 100.0) == []
        assert empty.stats.queries == 0


class TestNearestBoundary:
    def test_matches_brute_force(self, field, index):
        rng = random.Random(1)
        for _ in range(60):
            p = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            assert index.nearest_boundary(p) == brute_nearest(field, p)

    def test_tie_breaks_toward_smallest_index(self):
        # Two identical-distance boundaries either side of the query.
        circles = [Circle(-10.0, 0.0, 5.0), Circle(10.0, 0.0, 5.0)]
        index = ZoneProximityIndex.from_circles(circles)
        assert index.nearest_boundary((0.0, 0.0)) == (0, 5.0)

    def test_containment_is_negative_and_wins(self):
        circles = [Circle(0.0, 0.0, 50.0), Circle(10.0, 0.0, 2.0)]
        index = ZoneProximityIndex.from_circles(circles, cell_size=5.0)
        i, d = index.nearest_boundary((0.0, 0.0))
        assert i == 0
        assert d == pytest.approx(-50.0)

    def test_cutoff_still_finds_containing_circle(self):
        """Ring-0 guard: a tiny cutoff must not hide a zone we are inside."""
        circles = [Circle(0.0, 0.0, 50.0)]
        index = ZoneProximityIndex.from_circles(circles, cell_size=5.0)
        i, d = index.nearest_boundary((1.0, 1.0), cutoff_m=0.0)
        assert i == 0
        assert d < 0.0

    def test_cutoff_at_or_above_min_is_exact(self, field, index):
        p = (40.0, 40.0)
        exact = brute_nearest(field, p)
        assert index.nearest_boundary(p, cutoff_m=exact[1] + 1.0) == exact

    def test_cutoff_below_min_only_certifies_predicate(self, field):
        stats = ZoneIndexStats()
        index = ZoneProximityIndex.from_circles(field, stats=stats)
        # Far outside the populated extent with a tiny cutoff: whatever
        # comes back must exceed the cutoff (sentinel included).
        result = index.nearest_boundary((50_000.0, 50_000.0), cutoff_m=10.0)
        assert result is not None
        _, dist = result
        assert dist > 10.0
        assert stats.cutoff_exits >= 0  # counter exists; exit is layout-dependent

    def test_cutoff_prune_before_any_candidate_returns_sentinel(self):
        circles = [Circle(1_000.0, 0.0, 1.0)]
        index = ZoneProximityIndex.from_circles(circles, cell_size=10.0)
        result = index.nearest_boundary((0.0, 0.0), cutoff_m=5.0)
        assert result == (-1, math.inf)
        assert index.stats.cutoff_exits == 1


class TestKNearest:
    def test_matches_sorted_brute_force(self, field, index):
        rng = random.Random(2)
        for _ in range(20):
            p = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            brute = sorted((c.distance_to_boundary(p), i)
                           for i, c in enumerate(field))[:5]
            assert index.k_nearest(p, 5) == [(i, d) for d, i in brute]

    def test_k_exceeding_size_returns_all(self, field, index):
        result = index.k_nearest((0.0, 0.0), len(field) + 10)
        assert len(result) == len(field)

    def test_nonpositive_k(self, index):
        assert index.k_nearest((0.0, 0.0), 0) == []
        assert index.k_nearest((0.0, 0.0), -2) == []


class TestCandidatesWithin:
    def test_matches_brute_filter(self, field, index):
        rng = random.Random(3)
        for _ in range(20):
            p = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            radius = rng.uniform(0.0, 200.0)
            brute = [i for i, c in enumerate(field)
                     if c.distance_to_boundary(p) <= radius]
            assert index.candidates_within(p, radius) == brute

    def test_zero_radius_keeps_containing_zones(self):
        circles = [Circle(0.0, 0.0, 30.0), Circle(500.0, 0.0, 5.0)]
        index = ZoneProximityIndex.from_circles(circles, cell_size=20.0)
        assert index.candidates_within((0.0, 0.0), 0.0) == [0]


class TestMinPairDistance:
    def test_matches_brute_force(self, field, index):
        rng = random.Random(4)
        for _ in range(40):
            a = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            b = (a[0] + rng.uniform(-20, 20), a[1] + rng.uniform(-20, 20))
            assert index.min_pair_distance(a, b) == brute_pair_min(field, a, b)

    def test_cutoff_decision_equivalence(self, field, index):
        rng = random.Random(5)
        cutoff = 25.0
        for _ in range(40):
            a = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            b = (a[0] + rng.uniform(-10, 10), a[1] + rng.uniform(-10, 10))
            exact = brute_pair_min(field, a, b)
            pruned = index.min_pair_distance(a, b, cutoff_m=cutoff)
            assert (exact > cutoff) == (pruned > cutoff)
            if exact <= cutoff:
                assert pruned == exact

    def test_cutoff_zero_still_finds_negative_pair_sum(self):
        """Ring-0 guard: both fixes inside a zone -> negative sum survives."""
        circles = [Circle(0.0, 0.0, 40.0)]
        index = ZoneProximityIndex.from_circles(circles, cell_size=5.0)
        result = index.min_pair_distance((-2.0, 0.0), (2.0, 0.0), cutoff_m=0.0)
        assert result == pytest.approx(-76.0)

    def test_far_pair_prunes_with_cutoff(self, field):
        stats = ZoneIndexStats()
        index = ZoneProximityIndex.from_circles(field, stats=stats)
        full = ZoneIndexStats()
        full_index = ZoneProximityIndex.from_circles(field, stats=full)
        a, b = (40_000.0, 40_000.0), (40_010.0, 40_000.0)
        index.min_pair_distance(a, b, cutoff_m=10.0)
        full_index.min_pair_distance(a, b)
        assert stats.candidates <= full.candidates
        assert stats.cutoff_exits == 1


class TestPairCandidates:
    def test_matches_brute_filter(self, field, index):
        rng = random.Random(6)
        for _ in range(20):
            a = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            b = (a[0] + rng.uniform(-30, 30), a[1] + rng.uniform(-30, 30))
            max_sum = rng.uniform(0.0, 300.0)
            brute = [i for i, c in enumerate(field)
                     if c.distance_to_boundary(a)
                     + c.distance_to_boundary(b) <= max_sum]
            assert index.pair_candidates(a, b, max_sum) == brute

    def test_negative_budget_keeps_straddled_zone(self):
        circles = [Circle(0.0, 0.0, 40.0)]
        index = ZoneProximityIndex.from_circles(circles, cell_size=5.0)
        assert index.pair_candidates((-2.0, 0.0), (2.0, 0.0), -1.0) == [0]


class TestStats:
    def test_counters_accumulate(self, field):
        stats = ZoneIndexStats()
        index = ZoneProximityIndex.from_circles(field, stats=stats)
        index.nearest_boundary((0.0, 0.0))
        index.min_pair_distance((0.0, 0.0), (5.0, 0.0))
        index.candidates_within((0.0, 0.0), 50.0)
        assert stats.queries == 3
        assert stats.rings >= 3
        assert 0 < stats.candidates <= 3 * len(field)
        assert stats.mean_candidates_per_query == stats.candidates / 3
        assert stats.mean_rings_per_query == stats.rings / 3

    def test_means_are_zero_when_unused(self):
        stats = ZoneIndexStats()
        assert stats.mean_candidates_per_query == 0.0
        assert stats.mean_rings_per_query == 0.0

    def test_pruning_beats_brute_force_candidate_count(self):
        """The point of the index: far fewer candidates than Z per query."""
        field = random_circles(seed=11, n=400, spread=4_000.0, r_max=40.0)
        stats = ZoneIndexStats()
        index = ZoneProximityIndex.from_circles(field, stats=stats)
        rng = random.Random(12)
        n_queries = 50
        for _ in range(n_queries):
            index.nearest_boundary((rng.uniform(-4_000, 4_000),
                                    rng.uniform(-4_000, 4_000)))
        assert stats.mean_candidates_per_query < len(field) / 4
