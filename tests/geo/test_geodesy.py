"""Tests for repro.geo.geodesy."""

import math

import pytest

from repro.errors import GeometryError
from repro.geo.geodesy import (
    GeoPoint,
    LocalFrame,
    destination_point,
    haversine_distance_m,
    initial_bearing_deg,
)
from repro.units import EARTH_RADIUS_M


class TestGeoPoint:
    def test_valid_construction(self):
        p = GeoPoint(40.0, -88.0)
        assert p.lat == 40.0
        assert p.lon == -88.0

    @pytest.mark.parametrize("lat,lon", [(91.0, 0.0), (-90.5, 0.0),
                                         (0.0, 181.0), (0.0, -180.1)])
    def test_out_of_range_rejected(self, lat, lon):
        with pytest.raises(GeometryError):
            GeoPoint(lat, lon)

    def test_boundary_values_accepted(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_distance_to_delegates_to_haversine(self):
        a, b = GeoPoint(40.0, -88.0), GeoPoint(40.1, -88.0)
        assert a.distance_to(b) == haversine_distance_m(a, b)


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(40.0, -88.0)
        assert haversine_distance_m(p, p) == 0.0

    def test_one_degree_latitude(self):
        a, b = GeoPoint(40.0, -88.0), GeoPoint(41.0, -88.0)
        expected = math.radians(1.0) * EARTH_RADIUS_M
        assert haversine_distance_m(a, b) == pytest.approx(expected, rel=1e-9)

    def test_symmetry(self):
        a, b = GeoPoint(40.0, -88.0), GeoPoint(40.7, -87.3)
        assert haversine_distance_m(a, b) == pytest.approx(
            haversine_distance_m(b, a))

    def test_equator_longitude_span(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 90.0)
        quarter = math.pi * EARTH_RADIUS_M / 2.0
        assert haversine_distance_m(a, b) == pytest.approx(quarter, rel=1e-9)

    def test_antipodal_is_half_circumference(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0)
        assert haversine_distance_m(a, b) == pytest.approx(
            math.pi * EARTH_RADIUS_M, rel=1e-9)


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(GeoPoint(40.0, -88.0),
                                   GeoPoint(41.0, -88.0)) == pytest.approx(0.0)

    def test_due_east_on_equator(self):
        assert initial_bearing_deg(GeoPoint(0.0, 0.0),
                                   GeoPoint(0.0, 1.0)) == pytest.approx(90.0)

    def test_due_south(self):
        assert initial_bearing_deg(GeoPoint(40.0, -88.0),
                                   GeoPoint(39.0, -88.0)) == pytest.approx(180.0)

    def test_range_is_0_360(self):
        bearing = initial_bearing_deg(GeoPoint(40.0, -88.0),
                                      GeoPoint(40.5, -88.5))
        assert 0.0 <= bearing < 360.0


class TestDestinationPoint:
    def test_round_trip_distance(self):
        origin = GeoPoint(40.0, -88.0)
        dest = destination_point(origin, 37.0, 5_000.0)
        assert haversine_distance_m(origin, dest) == pytest.approx(5_000.0,
                                                                   rel=1e-9)

    def test_zero_distance_is_identity(self):
        origin = GeoPoint(40.0, -88.0)
        dest = destination_point(origin, 123.0, 0.0)
        assert dest.lat == pytest.approx(origin.lat)
        assert dest.lon == pytest.approx(origin.lon)

    def test_negative_distance_rejected(self):
        with pytest.raises(GeometryError):
            destination_point(GeoPoint(0.0, 0.0), 0.0, -1.0)

    def test_longitude_normalized(self):
        dest = destination_point(GeoPoint(0.0, 179.9), 90.0, 50_000.0)
        assert -180.0 <= dest.lon <= 180.0


class TestLocalFrame:
    def test_origin_maps_to_zero(self, frame):
        assert frame.to_local(frame.origin) == pytest.approx((0.0, 0.0))

    def test_round_trip(self, frame):
        point = GeoPoint(40.12, -88.19)
        x, y = frame.to_local(point)
        back = frame.to_geo(x, y)
        assert back.lat == pytest.approx(point.lat, abs=1e-12)
        assert back.lon == pytest.approx(point.lon, abs=1e-12)

    def test_north_is_positive_y(self, frame):
        north = GeoPoint(frame.origin.lat + 0.01, frame.origin.lon)
        x, y = frame.to_local(north)
        assert y > 0
        assert x == pytest.approx(0.0, abs=1e-9)

    def test_east_is_positive_x(self, frame):
        east = GeoPoint(frame.origin.lat, frame.origin.lon + 0.01)
        x, y = frame.to_local(east)
        assert x > 0
        assert y == pytest.approx(0.0, abs=1e-9)

    def test_projection_error_small_at_10km(self, frame):
        """Equirectangular distance is sub-metre at the 10 km scale.

        Sub-metre is well below GPS noise, so the planar frame is safe for
        the field-study footprints.
        """
        a = GeoPoint(frame.origin.lat + 0.04, frame.origin.lon + 0.05)
        b = GeoPoint(frame.origin.lat - 0.03, frame.origin.lon - 0.04)
        planar = frame.distance_m(a, b)
        true = haversine_distance_m(a, b)
        assert abs(planar - true) < 1.0

    def test_polar_origin_rejected(self):
        with pytest.raises(GeometryError):
            LocalFrame(GeoPoint(90.0, 0.0))

    def test_distance_m_zero(self, frame):
        p = GeoPoint(40.11, -88.21)
        assert frame.distance_m(p, p) == 0.0
