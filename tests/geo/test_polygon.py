"""Tests for repro.geo.polygon."""

import math

import pytest

from repro.errors import GeometryError
from repro.geo.polygon import Polygon

SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
TRIANGLE = Polygon([(0, 0), (6, 0), (0, 6)])


class TestConstruction:
    def test_too_few_vertices_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_vertices_are_read_back(self):
        assert SQUARE.vertices == ((0, 0), (4, 0), (4, 4), (0, 4))
        assert len(SQUARE) == 4


class TestAreaCentroid:
    def test_square_area(self):
        assert SQUARE.area() == pytest.approx(16.0)

    def test_winding_does_not_change_area(self):
        reverse = Polygon(list(reversed(SQUARE.vertices)))
        assert reverse.area() == pytest.approx(SQUARE.area())
        assert reverse.signed_area() == pytest.approx(-SQUARE.signed_area())

    def test_triangle_area(self):
        assert TRIANGLE.area() == pytest.approx(18.0)

    def test_square_centroid(self):
        assert SQUARE.centroid() == pytest.approx((2.0, 2.0))

    def test_triangle_centroid(self):
        assert TRIANGLE.centroid() == pytest.approx((2.0, 2.0))

    def test_perimeter(self):
        assert SQUARE.perimeter() == pytest.approx(16.0)


class TestContains:
    def test_interior(self):
        assert SQUARE.contains((2.0, 2.0))

    def test_exterior(self):
        assert not SQUARE.contains((5.0, 2.0))
        assert not SQUARE.contains((-0.1, 2.0))

    def test_boundary_counts_as_inside(self):
        assert SQUARE.contains((0.0, 2.0))
        assert SQUARE.contains((4.0, 4.0))  # vertex

    def test_concave_polygon(self):
        # A "C" shape: the notch must be outside.
        c_shape = Polygon([(0, 0), (4, 0), (4, 1), (1, 1), (1, 3), (4, 3),
                           (4, 4), (0, 4)])
        assert c_shape.contains((0.5, 2.0))
        assert not c_shape.contains((2.5, 2.0))  # inside the notch


class TestConvexity:
    def test_square_is_convex(self):
        assert SQUARE.is_convex()

    def test_concave_detected(self):
        arrow = Polygon([(0, 0), (4, 0), (2, 1), (2, 4)])
        assert not arrow.is_convex()

    def test_collinear_run_still_convex(self):
        poly = Polygon([(0, 0), (2, 0), (4, 0), (4, 4), (0, 4)])
        assert poly.is_convex()


class TestBoundingCircle:
    def test_square_bounding_circle(self):
        c = SQUARE.bounding_circle()
        assert (c.x, c.y) == pytest.approx((2.0, 2.0))
        assert c.r == pytest.approx(2.0 * math.sqrt(2.0), rel=1e-9)

    def test_all_vertices_covered(self):
        poly = Polygon([(0, 0), (10, 1), (7, 8), (2, 6), (-1, 3)])
        c = poly.bounding_circle()
        for v in poly.vertices:
            assert c.contains(v, tol=1e-6)
