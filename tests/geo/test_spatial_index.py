"""Tests for repro.geo.spatial_index."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.geo.circle import Circle
from repro.geo.spatial_index import GridIndex


@pytest.fixture()
def index():
    g: GridIndex[str] = GridIndex(cell_size=10.0)
    g.insert("a", Circle(0.0, 0.0, 5.0))
    g.insert("b", Circle(100.0, 100.0, 5.0))
    g.insert("c", Circle(50.0, 0.0, 2.0))
    return g


class TestBasics:
    def test_invalid_cell_size(self):
        with pytest.raises(ConfigurationError):
            GridIndex(cell_size=0.0)

    def test_len_contains_get(self, index):
        assert len(index) == 3
        assert "a" in index
        assert "missing" not in index
        assert index.get("b") == Circle(100.0, 100.0, 5.0)
        assert index.get("missing") is None

    def test_insert_replaces(self, index):
        index.insert("a", Circle(500.0, 500.0, 1.0))
        assert len(index) == 3
        assert index.get("a") == Circle(500.0, 500.0, 1.0)
        # No stale cells: a query near the old location misses "a".
        assert "a" not in index.query_rect(-10, -10, 10, 10)

    def test_remove(self, index):
        index.remove("a")
        assert "a" not in index
        with pytest.raises(KeyError):
            index.remove("a")

    def test_iteration(self, index):
        assert sorted(index) == ["a", "b", "c"]
        assert dict(index.items())["c"].r == 2.0


class TestQueryRect:
    def test_hit_and_miss(self, index):
        assert index.query_rect(-10, -10, 10, 10) == ["a"]
        assert index.query_rect(200, 200, 300, 300) == []

    def test_rect_touching_circle_edge(self, index):
        # Rectangle whose nearest edge is exactly r away from the centre.
        assert index.query_rect(5.0, -1.0, 6.0, 1.0) == ["a"]
        assert index.query_rect(5.1, -1.0, 6.0, 1.0) == []

    def test_swapped_corners_normalized(self, index):
        assert index.query_rect(10, 10, -10, -10) == ["a"]

    def test_multiple_hits_sorted(self, index):
        hits = index.query_rect(-10, -10, 110, 110)
        assert hits == ["a", "b", "c"]


class TestQueryPoint:
    def test_inside(self, index):
        assert index.query_point((1.0, 1.0)) == ["a"]

    def test_outside_all(self, index):
        assert index.query_point((70.0, 70.0)) == []

    def test_overlapping_circles(self):
        g: GridIndex[str] = GridIndex(5.0)
        g.insert("x", Circle(0, 0, 10))
        g.insert("y", Circle(3, 0, 10))
        assert g.query_point((1.0, 0.0)) == ["x", "y"]


class TestNearest:
    def test_empty_returns_none(self):
        g: GridIndex[str] = GridIndex(10.0)
        assert g.nearest((0.0, 0.0)) is None

    def test_nearest_by_boundary_distance(self, index):
        key, dist = index.nearest((60.0, 0.0))
        assert key == "c"
        assert dist == pytest.approx(8.0)

    def test_nearest_inside_a_circle_is_negative(self, index):
        key, dist = index.nearest((0.0, 0.0))
        assert key == "a"
        assert dist == pytest.approx(-5.0)

    def test_large_circle_in_far_cell_beats_near_small(self):
        """Boundary distance, not centre distance, decides nearest."""
        g: GridIndex[str] = GridIndex(10.0)
        g.insert("small", Circle(30.0, 0.0, 1.0))
        g.insert("huge", Circle(200.0, 0.0, 180.0))
        key, dist = g.nearest((0.0, 0.0))
        assert key == "huge"
        assert dist == pytest.approx(20.0)

    def test_nearest_matches_brute_force_random(self):
        rng = random.Random(3)
        g: GridIndex[int] = GridIndex(25.0)
        circles = {}
        for i in range(80):
            c = Circle(rng.uniform(-500, 500), rng.uniform(-500, 500),
                       rng.uniform(1, 60))
            circles[i] = c
            g.insert(i, c)
        for _ in range(40):
            p = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            key, dist = g.nearest(p)
            brute = min(circles.items(),
                        key=lambda kv: kv[1].distance_to_boundary(p))
            assert dist == pytest.approx(
                brute[1].distance_to_boundary(p), abs=1e-9)
            assert math.isclose(circles[key].distance_to_boundary(p), dist,
                                abs_tol=1e-9)

    def test_exact_tie_broken_by_key_repr(self):
        """Equidistant boundaries resolve deterministically by key repr."""
        g: GridIndex[str] = GridIndex(10.0)
        g.insert("b", Circle(-20.0, 0.0, 5.0))
        g.insert("a", Circle(20.0, 0.0, 5.0))
        key, dist = g.nearest((0.0, 0.0))
        assert (key, dist) == ("a", pytest.approx(15.0))
        # Insertion order must not matter.
        g2: GridIndex[str] = GridIndex(10.0)
        g2.insert("a", Circle(20.0, 0.0, 5.0))
        g2.insert("b", Circle(-20.0, 0.0, 5.0))
        assert g2.nearest((0.0, 0.0))[0] == "a"

    def test_query_far_outside_populated_cells(self, index):
        """A query many rings away still finds the true nearest boundary."""
        point = (1e6, -1e6)
        key, dist = index.nearest(point)
        brute_key, brute = min(
            ((k, c.distance_to_boundary(point)) for k, c in index.items()),
            key=lambda kv: kv[1])
        assert key == brute_key
        assert dist == brute


class TestRingCandidates:
    def test_empty_grid_yields_nothing(self):
        g: GridIndex[str] = GridIndex(10.0)
        assert list(g.ring_candidates((0.0, 0.0))) == []

    def test_lower_bound_values(self):
        g: GridIndex[str] = GridIndex(10.0)
        assert g.ring_lower_bound(0) == 0.0
        assert g.ring_lower_bound(1) == 0.0
        assert g.ring_lower_bound(2) == 10.0
        assert g.ring_lower_bound(5) == 40.0

    @pytest.mark.parametrize("point", [(0.0, 0.0), (55.0, -3.0),
                                       (5_000.0, 5_000.0)])
    def test_each_key_once_at_its_minimum_ring(self, point):
        """Keys appear exactly once, at the smallest ring holding a cell
        of their bounding box — including via the far-query fallback sweep.
        """
        rng = random.Random(9)
        g: GridIndex[int] = GridIndex(20.0)
        circles = {}
        for i in range(60):
            c = Circle(rng.uniform(-300, 300), rng.uniform(-300, 300),
                       rng.uniform(1, 40))
            circles[i] = c
            g.insert(i, c)

        def cells_of(circle):
            lo = g._cell_of(circle.x - circle.r, circle.y - circle.r)
            hi = g._cell_of(circle.x + circle.r, circle.y + circle.r)
            return [(x, y) for x in range(lo[0], hi[0] + 1)
                    for y in range(lo[1], hi[1] + 1)]

        home = g._cell_of(*point)
        expected_ring = {
            i: min(max(abs(x - home[0]), abs(y - home[1]))
                   for x, y in cells_of(c))
            for i, c in circles.items()}

        seen: dict[int, int] = {}
        last_ring = -1
        for ring, keys in g.ring_candidates(point):
            assert ring > last_ring, "rings must ascend"
            last_ring = ring
            for key in keys:
                assert key not in seen, f"key {key} yielded twice"
                seen[key] = ring
        assert seen == expected_ring

    def test_unyielded_keys_respect_lower_bound(self):
        """After ring r every remaining boundary is >= ring_lower_bound(r+1)."""
        rng = random.Random(10)
        g: GridIndex[int] = GridIndex(15.0)
        circles = {}
        for i in range(40):
            c = Circle(rng.uniform(-200, 200), rng.uniform(-200, 200),
                       rng.uniform(1, 25))
            circles[i] = c
            g.insert(i, c)
        point = (3.0, -7.0)
        remaining = set(circles)
        for ring, keys in g.ring_candidates(point):
            remaining -= set(keys)
            bound = g.ring_lower_bound(ring + 1)
            for i in remaining:
                assert circles[i].distance_to_boundary(point) >= bound
