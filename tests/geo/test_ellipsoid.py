"""Tests for repro.geo.ellipsoid (3-D extension geometry)."""

import math

import pytest

from repro.errors import GeometryError
from repro.geo.ellipsoid import (
    Cylinder,
    TravelRangeEllipsoid,
    ellipsoid_cylinder_disjoint,
    ellipsoid_cylinder_disjoint_conservative,
    min_focal_sum_over_cylinder,
)


class TestCylinder:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(GeometryError):
            Cylinder(0, 0, -1.0, 10.0)
        with pytest.raises(GeometryError):
            Cylinder(0, 0, 1.0, -10.0)

    def test_contains(self):
        c = Cylinder(0, 0, 5.0, 100.0)
        assert c.contains((0, 0, 50.0))
        assert c.contains((5, 0, 0.0))       # wall, ground
        assert c.contains((0, 5, 100.0))     # wall, ceiling
        assert not c.contains((0, 0, 100.1))  # above ceiling
        assert not c.contains((5.1, 0, 50.0))

    def test_distance_radial(self):
        c = Cylinder(0, 0, 5.0, 100.0)
        assert c.distance_to((15.0, 0.0, 50.0)) == pytest.approx(10.0)

    def test_distance_above_ceiling(self):
        c = Cylinder(0, 0, 5.0, 100.0)
        assert c.distance_to((0.0, 0.0, 130.0)) == pytest.approx(30.0)

    def test_distance_diagonal_corner(self):
        c = Cylinder(0, 0, 5.0, 100.0)
        # 3-4-5 from the rim at the ceiling.
        assert c.distance_to((8.0, 0.0, 104.0)) == pytest.approx(5.0)

    def test_distance_inside_is_zero(self):
        c = Cylinder(0, 0, 5.0, 100.0)
        assert c.distance_to((1.0, 1.0, 10.0)) == 0.0


class TestTravelRangeEllipsoid:
    def test_negative_focal_sum_rejected(self):
        with pytest.raises(GeometryError):
            TravelRangeEllipsoid((0, 0, 0), (1, 0, 0), -0.1)

    def test_feasibility(self):
        assert TravelRangeEllipsoid((0, 0, 0), (3, 4, 0), 5.0).is_feasible
        assert not TravelRangeEllipsoid((0, 0, 0), (3, 4, 0), 4.9).is_feasible

    def test_contains(self):
        e = TravelRangeEllipsoid((0, 0, 0), (6, 0, 0), 10.0)
        assert e.contains((3, 0, 4))  # 5 + 5
        assert not e.contains((3, 0, 4.1))


class TestDisjointness:
    def test_conservative_clear_separation(self):
        e = TravelRangeEllipsoid((0, 0, 50), (100, 0, 50), 120.0)
        z = Cylinder(50, 500, 20.0, 100.0)
        assert ellipsoid_cylinder_disjoint_conservative(e, z)

    def test_conservative_overlap(self):
        e = TravelRangeEllipsoid((0, 0, 50), (100, 0, 50), 120.0)
        z = Cylinder(50, 0, 20.0, 100.0)
        assert not ellipsoid_cylinder_disjoint_conservative(e, z)

    def test_overflight_above_ceiling_is_legal(self):
        """The 3-D model's point: flying over a low zone is allowed."""
        e = TravelRangeEllipsoid((0, 0, 120.0), (100, 0, 120.0), 101.0)
        z = Cylinder(50, 0, 30.0, 60.0)  # ceiling at 60 m
        assert ellipsoid_cylinder_disjoint(e, z, exact=True)
        # The 2-D footprint of the same geometry would flag it: the
        # horizontal track passes straight over the zone.
        assert not ellipsoid_cylinder_disjoint(
            TravelRangeEllipsoid((0, 0, 0.0), (100, 0, 0.0), 101.0), z,
            exact=True)

    def test_exact_min_matches_hand_computation(self):
        e = TravelRangeEllipsoid((0, 0, 0), (0, 0, 0), 1.0)
        z = Cylinder(10, 0, 2.0, 50.0)
        # Closest cylinder point to the single focus is (8, 0, 0): min sum 16.
        assert min_focal_sum_over_cylinder(e, z) == pytest.approx(16.0,
                                                                  abs=1e-4)

    def test_conservative_soundness_vs_exact(self):
        import random
        rng = random.Random(5)
        for _ in range(25):
            f1 = (rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(0, 100))
            f2 = (rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(0, 100))
            e = TravelRangeEllipsoid(f1, f2, math.dist(f1, f2) + rng.uniform(1, 30))
            z = Cylinder(rng.uniform(-60, 60), rng.uniform(-60, 60),
                         rng.uniform(2, 20), rng.uniform(10, 120))
            if ellipsoid_cylinder_disjoint_conservative(e, z):
                assert ellipsoid_cylinder_disjoint(e, z, exact=True)
