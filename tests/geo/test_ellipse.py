"""Tests for repro.geo.ellipse — the heart of the sufficiency predicate."""

import math

import pytest

from repro.errors import GeometryError
from repro.geo.circle import Circle
from repro.geo.ellipse import (
    TravelRangeEllipse,
    ellipse_disk_disjoint_conservative,
    ellipse_disk_disjoint_exact,
    min_focal_sum_over_disk,
)


class TestTravelRangeEllipse:
    def test_negative_focal_sum_rejected(self):
        with pytest.raises(GeometryError):
            TravelRangeEllipse((0, 0), (1, 0), -1.0)

    def test_feasibility(self):
        assert TravelRangeEllipse((0, 0), (10, 0), 10.0).is_feasible
        assert TravelRangeEllipse((0, 0), (10, 0), 12.0).is_feasible
        assert not TravelRangeEllipse((0, 0), (10, 0), 9.0).is_feasible

    def test_axes(self):
        e = TravelRangeEllipse((-3, 0), (3, 0), 10.0)
        assert e.semi_major == pytest.approx(5.0)
        assert e.semi_minor == pytest.approx(4.0)  # 3-4-5

    def test_contains_foci_and_boundary(self):
        e = TravelRangeEllipse((-3, 0), (3, 0), 10.0)
        assert e.contains((-3, 0))
        assert e.contains((3, 0))
        assert e.contains((5, 0))        # vertex
        assert e.contains((0, 4))        # co-vertex
        assert not e.contains((5.01, 0))
        assert not e.contains((0, 4.01))

    def test_degenerate_ellipse_is_segment(self):
        e = TravelRangeEllipse((0, 0), (10, 0), 10.0)
        assert e.contains((5, 0))
        assert not e.contains((5, 0.1))

    def test_focal_sum_at(self):
        e = TravelRangeEllipse((0, 0), (6, 0), 10.0)
        assert e.focal_sum_at((3, 4)) == pytest.approx(10.0)  # 5 + 5


class TestConservativePredicate:
    def test_clearly_disjoint(self):
        e = TravelRangeEllipse((0, 0), (10, 0), 12.0)
        assert ellipse_disk_disjoint_conservative(e, Circle(5, 100, 10))

    def test_clearly_intersecting(self):
        e = TravelRangeEllipse((0, 0), (10, 0), 12.0)
        assert not ellipse_disk_disjoint_conservative(e, Circle(5, 0, 3))

    def test_focus_inside_disk(self):
        e = TravelRangeEllipse((0, 0), (10, 0), 12.0)
        assert not ellipse_disk_disjoint_conservative(e, Circle(0, 0, 1))

    def test_soundness_vs_exact(self):
        """Conservative 'disjoint' always implies exact 'disjoint'."""
        import random
        rng = random.Random(13)
        for _ in range(200):
            f1 = (rng.uniform(-50, 50), rng.uniform(-50, 50))
            f2 = (rng.uniform(-50, 50), rng.uniform(-50, 50))
            focal_sum = math.dist(f1, f2) + rng.uniform(0, 40)
            e = TravelRangeEllipse(f1, f2, focal_sum)
            disk = Circle(rng.uniform(-80, 80), rng.uniform(-80, 80),
                          rng.uniform(1, 30))
            if ellipse_disk_disjoint_conservative(e, disk):
                assert ellipse_disk_disjoint_exact(e, disk)

    def test_conservative_false_positive_exists(self):
        """There are truly-disjoint pairs the conservative test flags.

        A disk beside the segment midpoint: the foci are far from the disk
        along the segment but D1+D2 undercounts because the closest disk
        point differs per focus.
        """
        e = TravelRangeEllipse((-10, 0), (10, 0), 20.5)
        disk = Circle(0.0, 3.5, 0.6)
        assert ellipse_disk_disjoint_exact(e, disk)
        assert not ellipse_disk_disjoint_conservative(e, disk)


class TestExactPredicate:
    def test_min_focal_sum_segment_through_disk(self):
        e = TravelRangeEllipse((-10, 0), (10, 0), 25.0)
        disk = Circle(0, 0, 2.0)
        assert min_focal_sum_over_disk(e, disk) == pytest.approx(20.0)

    def test_min_focal_sum_offset_disk(self):
        # Disk centred above the midpoint: nearest point is (0, 7), giving
        # d1 + d2 = 2 * sqrt(100 + 49).
        e = TravelRangeEllipse((-10, 0), (10, 0), 30.0)
        disk = Circle(0, 10, 3.0)
        expected = 2.0 * math.sqrt(100.0 + 49.0)
        assert min_focal_sum_over_disk(e, disk) == pytest.approx(expected,
                                                                 rel=1e-6)

    def test_min_focal_sum_point_disk(self):
        e = TravelRangeEllipse((0, 0), (6, 0), 10.0)
        disk = Circle(3, 4, 0.0)
        assert min_focal_sum_over_disk(e, disk) == pytest.approx(10.0)

    def test_tangency_threshold(self):
        # Circle tangent to the ellipse boundary from outside: the minimum
        # focal sum equals the focal-sum bound exactly at tangency.
        e = TravelRangeEllipse((-3, 0), (3, 0), 10.0)  # b = 4
        tangent_disk = Circle(0, 7, 3.0)    # touches (0, 4)
        outside_disk = Circle(0, 7, 2.9)
        assert not ellipse_disk_disjoint_exact(e, tangent_disk)
        assert ellipse_disk_disjoint_exact(e, outside_disk)

    def test_disk_engulfing_ellipse(self):
        e = TravelRangeEllipse((0, 0), (2, 0), 4.0)
        assert not ellipse_disk_disjoint_exact(e, Circle(1, 0, 50.0))

    def test_exact_matches_brute_force(self):
        """Boundary minimization agrees with dense point sampling."""
        import random
        rng = random.Random(23)
        for _ in range(30):
            f1 = (rng.uniform(-20, 20), rng.uniform(-20, 20))
            f2 = (rng.uniform(-20, 20), rng.uniform(-20, 20))
            e = TravelRangeEllipse(f1, f2, math.dist(f1, f2) + 5.0)
            disk = Circle(rng.uniform(-30, 30), rng.uniform(-30, 30),
                          rng.uniform(0.5, 10.0))
            got = min_focal_sum_over_disk(e, disk)
            brute = min(
                e.focal_sum_at((disk.x + r * math.cos(a),
                                disk.y + r * math.sin(a)))
                for a in [k * 2 * math.pi / 720 for k in range(720)]
                for r in (0.0, disk.r / 2, disk.r))
            assert got <= brute + 1e-6
