"""Tests for GeoJSON export and local cost-model calibration."""

import json
import math

import pytest

from repro.analysis.calibration import calibrate_local_cost_model
from repro.errors import ConfigurationError
from repro.workloads.export import (
    samples_to_feature,
    scenario_to_geojson,
    scenario_to_geojson_str,
    zones_to_features,
)


@pytest.fixture(scope="module")
def geojson(residential_scenario):
    return scenario_to_geojson(residential_scenario, track_step_s=5.0)


class TestGeoJsonExport:
    def test_top_level_structure(self, geojson, residential_scenario):
        assert geojson["type"] == "FeatureCollection"
        assert geojson["properties"]["name"] == residential_scenario.name
        assert geojson["features"]

    def test_zone_features_paired(self, geojson, residential_scenario):
        centers = [f for f in geojson["features"]
                   if f["properties"]["kind"] == "nfz-center"]
        footprints = [f for f in geojson["features"]
                      if f["properties"]["kind"] == "nfz-footprint"]
        assert len(centers) == len(residential_scenario.zones) == 94
        assert len(footprints) == 94

    def test_footprint_ring_closed(self, geojson):
        footprint = next(f for f in geojson["features"]
                         if f["properties"]["kind"] == "nfz-footprint")
        ring = footprint["geometry"]["coordinates"][0]
        assert ring[0] == ring[-1]
        assert len(ring) == 65

    def test_footprint_radius_correct(self, residential_scenario):
        frame = residential_scenario.frame
        zone = residential_scenario.zones[0]
        features = zones_to_features([zone], frame)
        ring = features[1]["geometry"]["coordinates"][0]
        from repro.geo.geodesy import GeoPoint
        for lon, lat in ring[:8]:
            x, y = frame.to_local(GeoPoint(lat, lon))
            zx, zy = frame.to_local(zone.center)
            assert math.hypot(x - zx, y - zy) == pytest.approx(
                zone.radius_m, rel=1e-3)

    def test_track_feature_spans_window(self, geojson, residential_scenario):
        track = next(f for f in geojson["features"]
                     if f["properties"]["kind"] == "ground-truth-track")
        assert track["geometry"]["type"] == "LineString"
        expected = int(residential_scenario.duration / 5.0) + 1
        assert len(track["geometry"]["coordinates"]) == pytest.approx(
            expected, abs=1)

    def test_poa_samples_feature(self, frame):
        from repro.core.samples import GpsSample
        from repro.sim.clock import DEFAULT_EPOCH
        samples = [GpsSample(lat=40.1, lon=-88.2, t=DEFAULT_EPOCH + i)
                   for i in range(3)]
        feature = samples_to_feature(samples)
        assert feature["geometry"]["type"] == "MultiPoint"
        assert len(feature["geometry"]["coordinates"]) == 3
        assert len(feature["properties"]["timestamps"]) == 3

    def test_serialized_form_is_valid_json(self, residential_scenario):
        text = scenario_to_geojson_str(residential_scenario,
                                       track_step_s=20.0)
        assert json.loads(text)["type"] == "FeatureCollection"


class TestCalibration:
    def test_invalid_repetitions_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrate_local_cost_model(repetitions=0)

    def test_calibrated_model_shape(self):
        model = calibrate_local_cost_model(repetitions=3,
                                           key_sizes=(512, 1024), seed=1)
        assert set(model.sign_seconds) == {512, 1024}
        assert model.sign_seconds[1024] > model.sign_seconds[512]
        assert all(v > 0 for v in model.sign_seconds.values())
        assert all(v > 0 for v in model.encrypt_seconds.values())
        assert model.smc_round_trip_seconds > 0
        # Private ops cost far more than public ops.
        assert model.sign_seconds[1024] > model.encrypt_seconds[1024]

    def test_calibrated_model_predicts_sustainability(self):
        """This machine signs in milliseconds, so every paper rate holds."""
        model = calibrate_local_cost_model(repetitions=3,
                                           key_sizes=(1024,), seed=2)
        assert model.can_sustain(5.0, 1024)
