"""The paper's headline field-study numbers, as executable assertions.

These are the reproduction's acceptance tests: the *shape* of Fig. 6 and
Fig. 8(c) — who wins, by what order of magnitude, and the insufficiency
ordering across sampling rates.
"""

import pytest

from repro.core.sufficiency import count_insufficient_pairs
from repro.workloads import run_policy


@pytest.fixture(scope="module")
def airport_runs(airport_scenario):
    return {
        "fixed1": run_policy(airport_scenario, "fixed", 1.0, key_bits=512),
        "adaptive": run_policy(airport_scenario, "adaptive", key_bits=512),
    }


@pytest.fixture(scope="module")
def residential_runs(residential_scenario):
    runs = {}
    for rate in (2.0, 3.0, 5.0):
        runs[f"fixed{rate:g}"] = run_policy(residential_scenario, "fixed",
                                            rate, key_bits=512)
    runs["adaptive"] = run_policy(residential_scenario, "adaptive",
                                  key_bits=512)
    return runs


def insufficiency(run, scenario):
    samples = [entry.sample for entry in run.result.poa]
    return count_insufficient_pairs(samples, scenario.zones, scenario.frame)


class TestFig6Airport:
    def test_fixed_1hz_takes_649_samples(self, airport_runs):
        """Paper: 'the 649 samples collected by 1Hz fix rate sampling'."""
        assert airport_runs["fixed1"].sample_count == 649

    def test_adaptive_takes_order_of_magnitude_fewer(self, airport_runs):
        """Paper: 'the adaptive sampling uses only 14 GPS samples'."""
        adaptive = airport_runs["adaptive"].sample_count
        assert adaptive <= 40                       # tens, not hundreds
        assert airport_runs["fixed1"].sample_count / adaptive > 20

    def test_adaptive_alibi_still_sufficient(self, airport_runs,
                                             airport_scenario):
        assert insufficiency(airport_runs["adaptive"], airport_scenario) == 0

    def test_adaptive_samples_cluster_near_boundary(self, airport_runs,
                                                    airport_scenario):
        """Fig. 6's shape: most samples while close to the NFZ."""
        run = airport_runs["adaptive"]
        circle = airport_scenario.zones[0].to_circle(airport_scenario.frame)
        distances = [circle.distance_to_boundary(
            airport_scenario.source.position_at(t))
            for t in run.sample_times]
        near = sum(1 for d in distances if d < 500.0)
        assert near >= len(distances) / 2


class TestFig8cResidential:
    def test_insufficiency_ordering(self, residential_runs,
                                    residential_scenario):
        """Paper: 39 @2 Hz > 9 @3 Hz > ~1 @5 Hz ~= adaptive."""
        counts = {name: insufficiency(run, residential_scenario)
                  for name, run in residential_runs.items()}
        assert counts["fixed2"] > counts["fixed3"] > counts["fixed5"]
        assert counts["adaptive"] <= counts["fixed3"]

    def test_2hz_count_in_paper_band(self, residential_runs,
                                     residential_scenario):
        count = insufficiency(residential_runs["fixed2"],
                              residential_scenario)
        assert 20 <= count <= 60    # paper: 39

    def test_3hz_count_in_paper_band(self, residential_runs,
                                     residential_scenario):
        count = insufficiency(residential_runs["fixed3"],
                              residential_scenario)
        assert 2 <= count <= 20     # paper: 9

    def test_5hz_only_the_missed_update(self, residential_runs,
                                        residential_scenario):
        count = insufficiency(residential_runs["fixed5"],
                              residential_scenario)
        assert count <= 2           # paper: 1, from the GPS hardware miss

    def test_adaptive_recovers_from_miss(self, residential_runs):
        stats = residential_runs["adaptive"].result.stats
        assert stats.late_samples <= 2

    def test_adaptive_uses_fewer_samples_than_5hz(self, residential_runs):
        assert (residential_runs["adaptive"].sample_count
                < residential_runs["fixed5"].sample_count)
