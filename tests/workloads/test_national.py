"""Tests for repro.workloads.national: the NFZ-scale synthetic workload."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.geo.geodesy import LocalFrame
from repro.workloads.national import (
    DEFAULT_ORIGIN,
    build_national_scenario,
    build_national_zone_field,
)


@pytest.fixture(scope="module")
def national_frame():
    return LocalFrame(DEFAULT_ORIGIN)


@pytest.fixture(scope="module")
def field(national_frame):
    return build_national_zone_field(300, national_frame, seed=1,
                                     corridor_length_m=5_000.0)


class TestZoneField:
    def test_requested_count(self, field):
        assert len(field) == 300

    def test_zones_do_not_overlap(self, field, national_frame):
        circles = [zone.to_circle(national_frame) for zone in field]
        cell = 300.0
        buckets = {}
        for i, c in enumerate(circles):
            buckets.setdefault((int(c.x // cell), int(c.y // cell)),
                               []).append(i)
        for (bx, by), members in buckets.items():
            neighbours = [j for dx in (-1, 0, 1) for dy in (-1, 0, 1)
                          for j in buckets.get((bx + dx, by + dy), [])]
            for i in members:
                for j in neighbours:
                    if j <= i:
                        continue
                    a, b = circles[i], circles[j]
                    gap = math.hypot(a.x - b.x, a.y - b.y) - a.r - b.r
                    # 10 m placement gap, small tolerance for the
                    # geo round-trip through zone centres.
                    assert gap > 9.0, f"zones {i} and {j} overlap"

    def test_corridor_clearance_guaranteed(self, field, national_frame):
        for zone in field:
            circle = zone.to_circle(national_frame)
            assert abs(circle.y) - circle.r >= 60.0 - 1e-3

    def test_deterministic_per_seed(self, national_frame):
        kwargs = dict(seed=4, corridor_length_m=2_000.0)
        first = build_national_zone_field(50, national_frame, **kwargs)
        second = build_national_zone_field(50, national_frame, **kwargs)
        assert first == second
        different = build_national_zone_field(50, national_frame, seed=5,
                                              corridor_length_m=2_000.0)
        assert first != different

    def test_zero_zones(self, national_frame):
        assert build_national_zone_field(0, national_frame) == []

    def test_invalid_parameters_rejected(self, national_frame):
        with pytest.raises(ConfigurationError):
            build_national_zone_field(-1, national_frame)
        with pytest.raises(ConfigurationError):
            build_national_zone_field(10, national_frame,
                                      zone_radius_range=(50.0, 20.0))

    def test_impossible_packing_raises(self, national_frame):
        # A placement gap wider than the whole band blocks every draw
        # after the first zone; the builder must fail loudly within its
        # attempt budget, not loop forever.
        with pytest.raises(ConfigurationError):
            build_national_zone_field(
                50, national_frame, seed=0,
                corridor_length_m=100.0,
                zone_radius_range=(1.0, 1.0),
                gap_m=50_000.0,
                max_attempts_per_zone=3)


class TestScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_national_scenario(seed=2, n_zones=150,
                                       corridor_length_m=3_000.0)

    def test_shape(self, scenario):
        assert scenario.name == "national-150"
        assert len(scenario.zones) == 150
        assert scenario.t_end > scenario.t_start

    def test_flight_is_compliant_by_construction(self, scenario):
        """The centerline trajectory keeps every zone's clearance."""
        circles = [zone.to_circle(scenario.frame) for zone in scenario.zones]
        t = scenario.t_start
        while t <= scenario.t_end:
            x, y = scenario.source.position_at(t)
            for circle in circles:
                assert circle.distance_to_boundary((x, y)) > 0.0
            t += 5.0
