"""Tests for repro.workloads.fleet: the Poisson fleet workload.

The fleet generator feeds the sustained-load benchmark and the
``alidrone serve`` loop, so determinism is the headline contract here:
the same seed must yield byte-identical submissions and identical
arrival instants, and every honest flight must verify ACCEPTED against
the reference verifier.
"""

import random

from repro.conformance.reference import reference_verify
from repro.core.poa import decrypt_poa
from repro.core.verification import VerificationStatus
from repro.crypto.rsa import generate_rsa_keypair
from repro.core.nfz import NoFlyZone
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import (
    TRACE_OFFSET_M,
    build_flight_submission,
    poisson_arrivals,
    provision_fleet,
)

T0 = DEFAULT_EPOCH


def registry_fixture():
    """A minimal register callback: a dict keyed by sequential ids."""
    table = {}

    def register(operator_public, tee_public, name):
        drone_id = "drone-%06d" % (len(table) + 1)
        table[drone_id] = (operator_public, tee_public, name)
        return drone_id

    return table, register


class TestProvisionFleet:
    def test_deterministic_and_registered(self):
        table, register = registry_fixture()
        fleet = provision_fleet(register, drones=4, seed=7, regions=3)
        assert [d.drone_id for d in fleet] == [
            "drone-%06d" % i for i in range(1, 5)]
        assert [d.region for d in fleet] == [
            "region-0", "region-1", "region-2", "region-0"]
        assert len(table) == 4
        # The registered TEE key is the provisioned one.
        for drone in fleet:
            _, tee_public, name = table[drone.drone_id]
            assert tee_public == drone.tee_key.public_key
            assert name.startswith("fleet-op-")
        # Same seed, fresh registry: identical key material.
        _, register2 = registry_fixture()
        again = provision_fleet(register2, drones=4, seed=7, regions=3)
        assert [d.tee_key.public_key for d in again] == [
            d.tee_key.public_key for d in fleet]

    def test_distinct_keys_across_drones_and_seeds(self):
        _, register = registry_fixture()
        fleet = provision_fleet(register, drones=3, seed=1)
        keys = [d.tee_key.public_key for d in fleet]
        keys += [d.operator_key.public_key for d in fleet]
        assert len({(k.n, k.e) for k in keys}) == len(keys)
        _, register2 = registry_fixture()
        other = provision_fleet(register2, drones=3, seed=2)
        assert other[0].tee_key.public_key != fleet[0].tee_key.public_key


class TestPoissonArrivals:
    def setup_method(self):
        self.encryption_key = generate_rsa_keypair(
            512, rng=random.Random(909))

    def make_fleet(self, frame, drones=3, seed=5):
        _, register = registry_fixture()
        return provision_fleet(register, drones=drones, seed=seed)

    def test_deterministic_stream(self, frame):
        fleet = self.make_fleet(frame)
        kwargs = dict(frame=frame, seed=5, rate_hz=3.0, duration_s=10.0,
                      samples=4)
        first = poisson_arrivals(fleet, self.encryption_key.public_key,
                                 **kwargs)
        second = poisson_arrivals(fleet, self.encryption_key.public_key,
                                  **kwargs)
        assert len(first) > 0
        assert [a.at for a in first] == [a.at for a in second]
        assert [a.submission for a in first] == [a.submission
                                                 for a in second]
        # A different seed perturbs the arrival instants.
        shifted = poisson_arrivals(fleet, self.encryption_key.public_key,
                                   frame=frame, seed=6, rate_hz=3.0,
                                   duration_s=10.0, samples=4)
        assert [a.at for a in shifted] != [a.at for a in first]

    def test_bounds_and_flight_ids(self, frame):
        fleet = self.make_fleet(frame)
        arrivals = poisson_arrivals(fleet, self.encryption_key.public_key,
                                    frame=frame, seed=8, rate_hz=4.0,
                                    duration_s=8.0, samples=3)
        ids = {d.drone_id for d in fleet}
        flights = [a.submission.flight_id for a in arrivals]
        assert len(set(flights)) == len(flights)
        prev = T0
        for arrival in arrivals:
            assert T0 < arrival.at < T0 + 8.0
            assert arrival.at >= prev
            prev = arrival.at
            # Uploads happen after landing: the claim closes by intake.
            assert arrival.submission.claimed_end <= arrival.at
            assert arrival.submission.drone_id in ids
            assert arrival.region.startswith("region-")
            assert len(arrival.submission.records) == 3

    def test_empty_fleet_yields_no_arrivals(self, frame):
        assert poisson_arrivals([], self.encryption_key.public_key,
                                frame=frame, duration_s=10.0) == []

    def test_honest_submissions_verify_accepted(self, frame):
        fleet = self.make_fleet(frame, drones=2)
        arrivals = poisson_arrivals(fleet, self.encryption_key.public_key,
                                    frame=frame, seed=9, rate_hz=2.0,
                                    duration_s=5.0, samples=4)
        assert arrivals
        zones = [NoFlyZone(frame.origin.lat, frame.origin.lon, 50.0)]
        tee_keys = {d.drone_id: d.tee_key.public_key for d in fleet}
        for arrival in arrivals:
            poa = decrypt_poa(arrival.submission.records,
                              self.encryption_key)
            report = reference_verify(
                poa, tee_keys[arrival.submission.drone_id], zones, frame)
            assert report.status == VerificationStatus.ACCEPTED

    def test_trace_stays_clear_of_origin_zone(self, frame):
        drone = self.make_fleet(frame, drones=1)[0]
        submission = build_flight_submission(
            drone, self.encryption_key.public_key, frame=frame,
            flight_index=0, samples=5, start=T0,
            rng=random.Random(42))
        poa = decrypt_poa(submission.records, self.encryption_key)
        for entry in poa:
            x, _ = frame.to_local(entry.sample.point)
            assert x >= TRACE_OFFSET_M


class TestSchemeParameterization:
    encryption_key = generate_rsa_keypair(512, rng=random.Random(31))

    def make_fleet(self, frame, drones=1):
        _, register = registry_fixture()
        return provision_fleet(register, drones=drones, seed=3)

    def test_every_scheme_produces_accepted_flights(self, frame):
        from repro.crypto.schemes import scheme_ids

        fleet = self.make_fleet(frame)
        zones = [NoFlyZone(frame.origin.lat, frame.origin.lon, 50.0)]
        for scheme in scheme_ids():
            submission = build_flight_submission(
                fleet[0], self.encryption_key.public_key, frame=frame,
                flight_index=0, samples=5, start=T0,
                rng=random.Random(17), scheme=scheme)
            assert submission.scheme == scheme
            poa = decrypt_poa(submission.records, self.encryption_key,
                              scheme=scheme,
                              finalizer=submission.finalizer)
            report = reference_verify(poa, fleet[0].tee_key.public_key,
                                      zones, frame)
            assert report.status == VerificationStatus.ACCEPTED, scheme

    def test_rsa_default_unchanged_by_parameterization(self, frame):
        """The scheme knob defaults to the paper's rsa-v15 wire format."""
        fleet = self.make_fleet(frame)
        explicit = build_flight_submission(
            fleet[0], self.encryption_key.public_key, frame=frame,
            flight_index=0, samples=4, start=T0, rng=random.Random(9),
            scheme="rsa-v15")
        default = build_flight_submission(
            fleet[0], self.encryption_key.public_key, frame=frame,
            flight_index=0, samples=4, start=T0, rng=random.Random(9))
        assert default == explicit
        assert default.scheme == "rsa-v15"
        assert default.finalizer == b""

    def test_merkle_fleet_flight_has_flight_level_commitment(self, frame):
        fleet = self.make_fleet(frame)
        submission = build_flight_submission(
            fleet[0], self.encryption_key.public_key, frame=frame,
            flight_index=0, samples=6, start=T0, rng=random.Random(4),
            scheme="merkle-disclosure")
        assert submission.finalizer
        poa = decrypt_poa(submission.records, self.encryption_key,
                          scheme="merkle-disclosure",
                          finalizer=submission.finalizer)
        assert all(entry.signature == b"" for entry in poa)
