"""Tests for the workload builders and the policy runner."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import feet_to_meters, meters_to_feet, miles_to_meters
from repro.workloads import (
    build_airport_scenario,
    build_random_scenario,
    run_policy,
)
from repro.workloads.scenario import Scenario


def nearest_distance_series(scenario, step_s=1.0):
    circles = [z.to_circle(scenario.frame) for z in scenario.zones]
    out = []
    t = scenario.t_start
    while t <= scenario.t_end:
        p = scenario.source.position_at(t)
        out.append(min(c.distance_to_boundary(p) for c in circles))
        t += step_s
    return out


class TestScenarioContainer:
    def test_invalid_window_rejected(self, airport_scenario):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", description="", frame=airport_scenario.frame,
                     zones=[], source=airport_scenario.source,
                     t_start=10.0, t_end=5.0)

    def test_receiver_is_fresh_per_call(self, airport_scenario):
        a = airport_scenario.make_receiver(seed=1)
        b = airport_scenario.make_receiver(seed=1)
        assert a is not b

    def test_forced_miss_times_map_to_indices(self, residential_scenario):
        receiver = residential_scenario.make_receiver(update_rate_hz=5.0)
        assert receiver.forced_miss_indices
        index = next(iter(receiver.forced_miss_indices))
        t_rel = index / 5.0
        assert 0 <= t_rel <= residential_scenario.duration


class TestAirportScenario:
    def test_matches_paper_setup(self, airport_scenario):
        sc = airport_scenario
        assert len(sc.zones) == 1
        assert sc.zones[0].radius_m == pytest.approx(miles_to_meters(5.0))
        # Starts ~30 ft outside the boundary.
        circle = sc.zones[0].to_circle(sc.frame)
        start = sc.source.position_at(sc.t_start)
        assert meters_to_feet(circle.distance_to_boundary(start)) == (
            pytest.approx(30.0, abs=2.0))

    def test_drives_about_three_miles_away(self, airport_scenario):
        sc = airport_scenario
        circle = sc.zones[0].to_circle(sc.frame)
        end = sc.source.position_at(sc.t_end)
        distance = circle.distance_to_boundary(end)
        assert distance == pytest.approx(miles_to_meters(3.0), rel=0.2)

    def test_distance_monotone_trend(self, airport_scenario):
        """The vehicle never drives back into the zone."""
        series = nearest_distance_series(airport_scenario, step_s=10.0)
        assert series[0] < series[-1]
        assert min(series) > 0.0

    def test_deterministic(self):
        a = build_airport_scenario(seed=3)
        b = build_airport_scenario(seed=3)
        assert (a.source.position_at(a.t_start + 100.0)
                == b.source.position_at(b.t_start + 100.0))


class TestResidentialScenario:
    def test_matches_paper_setup(self, residential_scenario):
        sc = residential_scenario
        assert len(sc.zones) == 94
        assert all(z.radius_m == pytest.approx(feet_to_meters(20.0))
                   for z in sc.zones)
        assert sc.duration == pytest.approx(160.0)

    def test_route_is_about_a_mile(self, residential_scenario):
        sc = residential_scenario
        length = 0.0
        prev = sc.source.position_at(sc.t_start)
        t = sc.t_start
        while t < sc.t_end:
            t += 1.0
            cur = sc.source.position_at(t)
            length += math.dist(prev, cur)
            prev = cur
        assert length == pytest.approx(miles_to_meters(1.0), rel=0.15)

    def test_closest_approach_about_21_feet(self, residential_scenario):
        series = nearest_distance_series(residential_scenario, step_s=0.2)
        closest_ft = meters_to_feet(min(series))
        assert closest_ft == pytest.approx(21.0, abs=2.5)

    def test_sparse_then_dense(self, residential_scenario):
        series = nearest_distance_series(residential_scenario)
        sparse = series[:45]
        dense = series[70:150]
        assert min(sparse) > min(dense)

    def test_never_enters_any_zone(self, residential_scenario):
        assert min(nearest_distance_series(residential_scenario, 0.5)) > 0.0

    def test_has_scripted_miss(self, residential_scenario):
        assert len(residential_scenario.forced_miss_times) == 1


class TestRandomScenario:
    def test_flight_avoids_all_zones(self):
        sc = build_random_scenario(seed=4, n_zones=8)
        circles = [z.to_circle(sc.frame) for z in sc.zones]
        t = sc.t_start
        while t <= sc.t_end:
            p = sc.source.position_at(t)
            assert all(c.distance_to_boundary(p) > 0 for c in circles)
            t += 1.0

    def test_deterministic(self):
        a = build_random_scenario(seed=9)
        b = build_random_scenario(seed=9)
        assert len(a.zones) == len(b.zones)
        assert a.source.duration == b.source.duration


class TestRunPolicy:
    def test_unknown_policy_rejected(self, residential_scenario):
        with pytest.raises(ConfigurationError):
            run_policy(residential_scenario, "warp-drive")

    def test_fixed_needs_rate(self, residential_scenario):
        with pytest.raises(ConfigurationError):
            run_policy(residential_scenario, "fixed")

    def test_poa_verifies_under_device_key(self, residential_scenario):
        run = run_policy(residential_scenario, "fixed", 1.0, key_bits=512)
        assert run.result.poa.verify_all(run.device.tee_public_key)

    def test_deterministic_runs(self, residential_scenario):
        a = run_policy(residential_scenario, "adaptive", key_bits=512, seed=2)
        b = run_policy(residential_scenario, "adaptive", key_bits=512, seed=2)
        assert a.sample_times == b.sample_times
