"""Tests for repro.crypto.rsa."""

import math
import random

import pytest

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.errors import CryptoError, KeyGenerationError


class TestKeyGeneration:
    def test_modulus_bit_length_exact(self, signing_key):
        assert signing_key.bits == 512
        assert signing_key.n.bit_length() == 512

    def test_key_consistency(self, signing_key):
        k = signing_key
        assert k.p * k.q == k.n
        lam = math.lcm(k.p - 1, k.q - 1)
        assert (k.e * k.d) % lam == 1

    def test_deterministic_given_rng(self):
        a = generate_rsa_keypair(256, rng=random.Random(42))
        b = generate_rsa_keypair(256, rng=random.Random(42))
        assert a == b

    def test_different_seeds_different_keys(self):
        a = generate_rsa_keypair(256, rng=random.Random(1))
        b = generate_rsa_keypair(256, rng=random.Random(2))
        assert a.n != b.n

    def test_too_small_modulus_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_keypair(64)

    def test_even_exponent_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_keypair(256, e=4)

    def test_inconsistent_private_key_rejected(self):
        with pytest.raises(CryptoError):
            RsaPrivateKey(n=15, e=3, d=3, p=3, q=7)


class TestRawOperations:
    def test_encrypt_decrypt_round_trip(self, signing_key):
        m = 0x1234567890ABCDEF
        c = signing_key.public_key.raw_encrypt(m)
        assert signing_key.raw_decrypt(c) == m

    def test_sign_verify_round_trip(self, signing_key):
        m = 9_876_543_210
        s = signing_key.raw_sign(m)
        assert signing_key.public_key.raw_verify(s) == m

    def test_crt_agrees_with_plain_exponentiation(self, signing_key):
        c = 123_456_789
        assert signing_key.raw_decrypt(c) == pow(c, signing_key.d,
                                                 signing_key.n)

    def test_out_of_range_rejected(self, signing_key):
        with pytest.raises(CryptoError):
            signing_key.public_key.raw_encrypt(signing_key.n)
        with pytest.raises(CryptoError):
            signing_key.raw_decrypt(-1)

    def test_byte_length(self, signing_key):
        assert signing_key.byte_length == 64
        assert signing_key.public_key.byte_length == 64

    def test_public_key_derivation(self, signing_key):
        pub = signing_key.public_key
        assert isinstance(pub, RsaPublicKey)
        assert pub.n == signing_key.n
        assert pub.e == signing_key.e


class TestCrtCache:
    def test_cache_computed_once_per_key(self, signing_key):
        first = signing_key._crt_params()
        assert signing_key._crt is not None
        assert signing_key._crt[0] == signing_key.n
        assert signing_key._crt_params() == first

    def test_stale_cache_from_rewritten_factors_recomputed(self):
        """Regression: the CRT cache is tagged with its modulus.

        A frozen key "mutated" via ``object.__setattr__`` (the only
        way to rewrite its factors, e.g. by a copy-and-patch test
        harness) used to keep decrypting with the *old* exponents; the
        modulus tag forces a recompute.
        """
        a = generate_rsa_keypair(256, rng=random.Random(11))
        b = generate_rsa_keypair(256, rng=random.Random(12))
        a._crt_params()  # warm the cache with a's exponents
        stale = a._crt
        for name in ("n", "e", "d", "p", "q"):
            object.__setattr__(a, name, getattr(b, name))
        assert a._crt == stale  # the stale cache is still planted...
        message = 0x1234
        assert a.raw_decrypt(pow(message, a.e, a.n)) == message
        assert a._crt[0] == b.n  # ...and was rebuilt for the new modulus

    def test_planted_foreign_cache_not_trusted(self, signing_key):
        other = generate_rsa_keypair(512, rng=random.Random(13))
        other._crt_params()
        object.__setattr__(signing_key, "_crt", other._crt)
        message = 0x5678
        cipher = pow(message, signing_key.e, signing_key.n)
        assert signing_key.raw_decrypt(cipher) == message
        assert signing_key._crt[0] == signing_key.n
