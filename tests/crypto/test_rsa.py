"""Tests for repro.crypto.rsa."""

import math
import random

import pytest

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.errors import CryptoError, KeyGenerationError


class TestKeyGeneration:
    def test_modulus_bit_length_exact(self, signing_key):
        assert signing_key.bits == 512
        assert signing_key.n.bit_length() == 512

    def test_key_consistency(self, signing_key):
        k = signing_key
        assert k.p * k.q == k.n
        lam = math.lcm(k.p - 1, k.q - 1)
        assert (k.e * k.d) % lam == 1

    def test_deterministic_given_rng(self):
        a = generate_rsa_keypair(256, rng=random.Random(42))
        b = generate_rsa_keypair(256, rng=random.Random(42))
        assert a == b

    def test_different_seeds_different_keys(self):
        a = generate_rsa_keypair(256, rng=random.Random(1))
        b = generate_rsa_keypair(256, rng=random.Random(2))
        assert a.n != b.n

    def test_too_small_modulus_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_keypair(64)

    def test_even_exponent_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_rsa_keypair(256, e=4)

    def test_inconsistent_private_key_rejected(self):
        with pytest.raises(CryptoError):
            RsaPrivateKey(n=15, e=3, d=3, p=3, q=7)


class TestRawOperations:
    def test_encrypt_decrypt_round_trip(self, signing_key):
        m = 0x1234567890ABCDEF
        c = signing_key.public_key.raw_encrypt(m)
        assert signing_key.raw_decrypt(c) == m

    def test_sign_verify_round_trip(self, signing_key):
        m = 9_876_543_210
        s = signing_key.raw_sign(m)
        assert signing_key.public_key.raw_verify(s) == m

    def test_crt_agrees_with_plain_exponentiation(self, signing_key):
        c = 123_456_789
        assert signing_key.raw_decrypt(c) == pow(c, signing_key.d,
                                                 signing_key.n)

    def test_out_of_range_rejected(self, signing_key):
        with pytest.raises(CryptoError):
            signing_key.public_key.raw_encrypt(signing_key.n)
        with pytest.raises(CryptoError):
            signing_key.raw_decrypt(-1)

    def test_byte_length(self, signing_key):
        assert signing_key.byte_length == 64
        assert signing_key.public_key.byte_length == 64

    def test_public_key_derivation(self, signing_key):
        pub = signing_key.public_key
        assert isinstance(pub, RsaPublicKey)
        assert pub.n == signing_key.n
        assert pub.e == signing_key.e
