"""Tests for repro.crypto.pkcs1."""

import random

import pytest

from repro.crypto.pkcs1 import (
    decrypt_pkcs1_v15,
    encrypt_pkcs1_v15,
    i2osp,
    os2ip,
    sign_pkcs1_v15,
    verify_pkcs1_v15,
)
from repro.errors import CryptoError, EncryptionError, SignatureError


class TestOctetPrimitives:
    def test_round_trip(self):
        assert os2ip(i2osp(123_456, 4)) == 123_456

    def test_fixed_length_padding(self):
        assert i2osp(1, 4) == b"\x00\x00\x00\x01"

    def test_too_large_rejected(self):
        with pytest.raises(CryptoError):
            i2osp(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(CryptoError):
            i2osp(-1, 4)


class TestSignatures:
    def test_sign_verify_sha1(self, signing_key):
        sig = sign_pkcs1_v15(signing_key, b"gps sample", "sha1")
        assert len(sig) == signing_key.byte_length
        assert verify_pkcs1_v15(signing_key.public_key, b"gps sample", sig,
                                "sha1")

    def test_sign_verify_sha256(self, signing_key):
        sig = sign_pkcs1_v15(signing_key, b"gps sample", "sha256")
        assert verify_pkcs1_v15(signing_key.public_key, b"gps sample", sig,
                                "sha256")

    def test_wrong_message_fails(self, signing_key):
        sig = sign_pkcs1_v15(signing_key, b"original")
        assert not verify_pkcs1_v15(signing_key.public_key, b"tampered", sig)

    def test_wrong_key_fails(self, signing_key, other_key):
        sig = sign_pkcs1_v15(signing_key, b"message")
        assert not verify_pkcs1_v15(other_key.public_key, b"message", sig)

    def test_wrong_hash_fails(self, signing_key):
        sig = sign_pkcs1_v15(signing_key, b"message", "sha1")
        assert not verify_pkcs1_v15(signing_key.public_key, b"message", sig,
                                    "sha256")

    def test_bitflip_fails(self, signing_key):
        sig = bytearray(sign_pkcs1_v15(signing_key, b"message"))
        sig[10] ^= 0x01
        assert not verify_pkcs1_v15(signing_key.public_key, b"message",
                                    bytes(sig))

    def test_truncated_signature_fails(self, signing_key):
        sig = sign_pkcs1_v15(signing_key, b"message")
        assert not verify_pkcs1_v15(signing_key.public_key, b"message",
                                    sig[:-1])

    def test_empty_message_signs(self, signing_key):
        sig = sign_pkcs1_v15(signing_key, b"")
        assert verify_pkcs1_v15(signing_key.public_key, b"", sig)

    def test_deterministic(self, signing_key):
        assert (sign_pkcs1_v15(signing_key, b"m")
                == sign_pkcs1_v15(signing_key, b"m"))

    def test_unsupported_hash_rejected(self, signing_key):
        with pytest.raises(CryptoError):
            sign_pkcs1_v15(signing_key, b"m", "md5")

    def test_sha512_needs_larger_modulus(self, signing_key):
        # 512-bit modulus (64 bytes) cannot frame a SHA-512 DigestInfo.
        with pytest.raises(SignatureError):
            sign_pkcs1_v15(signing_key, b"m", "sha512")


class TestEncryption:
    def test_round_trip(self, signing_key, rng):
        ct = encrypt_pkcs1_v15(signing_key.public_key, b"secret", rng=rng)
        assert decrypt_pkcs1_v15(signing_key, ct) == b"secret"

    def test_randomized_padding(self, signing_key, rng):
        a = encrypt_pkcs1_v15(signing_key.public_key, b"m", rng=rng)
        b = encrypt_pkcs1_v15(signing_key.public_key, b"m", rng=rng)
        assert a != b
        assert decrypt_pkcs1_v15(signing_key, a) == decrypt_pkcs1_v15(
            signing_key, b)

    def test_max_length_message(self, signing_key, rng):
        m = b"x" * (signing_key.byte_length - 11)
        ct = encrypt_pkcs1_v15(signing_key.public_key, m, rng=rng)
        assert decrypt_pkcs1_v15(signing_key, ct) == m

    def test_too_long_message_rejected(self, signing_key, rng):
        m = b"x" * (signing_key.byte_length - 10)
        with pytest.raises(EncryptionError):
            encrypt_pkcs1_v15(signing_key.public_key, m, rng=rng)

    def test_empty_message(self, signing_key, rng):
        ct = encrypt_pkcs1_v15(signing_key.public_key, b"", rng=rng)
        assert decrypt_pkcs1_v15(signing_key, ct) == b""

    def test_tampered_ciphertext_rejected(self, signing_key, rng):
        ct = bytearray(encrypt_pkcs1_v15(signing_key.public_key, b"secret",
                                         rng=rng))
        ct[5] ^= 0xFF
        with pytest.raises(EncryptionError):
            decrypt_pkcs1_v15(signing_key, bytes(ct))

    def test_out_of_range_ciphertext_rejected(self, signing_key):
        """A right-length ciphertext above the modulus is a decryption
        error (RFC 8017 RSADP), not an internal crypto failure."""
        too_big = b"\xff" * signing_key.byte_length
        with pytest.raises(EncryptionError):
            decrypt_pkcs1_v15(signing_key, too_big)

    def test_wrong_length_ciphertext_rejected(self, signing_key):
        with pytest.raises(EncryptionError):
            decrypt_pkcs1_v15(signing_key, b"\x00" * 10)

    def test_wrong_key_decryption_fails(self, signing_key, other_key, rng):
        ct = encrypt_pkcs1_v15(signing_key.public_key, b"secret", rng=rng)
        with pytest.raises(EncryptionError):
            decrypt_pkcs1_v15(other_key, ct)
