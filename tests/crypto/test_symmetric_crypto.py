"""Tests for hmac_sign, onetime, and keyexchange."""

import random

import pytest

from repro.crypto.hmac_sign import (
    HMAC_TAG_LENGTH,
    generate_hmac_key,
    hmac_sign,
    hmac_verify,
)
from repro.crypto.keyexchange import DiffieHellman, derive_session_key
from repro.crypto.onetime import OneTimeKey, onetime_decrypt, onetime_encrypt
from repro.errors import ConfigurationError, CryptoError, EncryptionError


class TestHmac:
    def test_sign_verify(self, rng):
        key = generate_hmac_key(rng)
        tag = hmac_sign(key, b"payload")
        assert len(tag) == HMAC_TAG_LENGTH
        assert hmac_verify(key, b"payload", tag)

    def test_wrong_message_fails(self, rng):
        key = generate_hmac_key(rng)
        tag = hmac_sign(key, b"payload")
        assert not hmac_verify(key, b"other", tag)

    def test_wrong_key_fails(self, rng):
        tag = hmac_sign(generate_hmac_key(rng), b"payload")
        assert not hmac_verify(generate_hmac_key(rng), b"payload", tag)

    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_hmac_key(length=8)

    def test_deterministic_key_generation(self):
        assert (generate_hmac_key(random.Random(1))
                == generate_hmac_key(random.Random(1)))


class TestOneTime:
    def test_round_trip(self, rng):
        key = OneTimeKey.generate(rng)
        blob = onetime_encrypt(key, b"a gps payload")
        assert onetime_decrypt(key, blob) == b"a gps payload"

    def test_empty_plaintext(self, rng):
        key = OneTimeKey.generate(rng)
        assert onetime_decrypt(key, onetime_encrypt(key, b"")) == b""

    def test_tamper_detected(self, rng):
        key = OneTimeKey.generate(rng)
        blob = bytearray(onetime_encrypt(key, b"payload"))
        blob[0] ^= 0x01
        with pytest.raises(EncryptionError):
            onetime_decrypt(key, bytes(blob))

    def test_tag_tamper_detected(self, rng):
        key = OneTimeKey.generate(rng)
        blob = bytearray(onetime_encrypt(key, b"payload"))
        blob[-1] ^= 0x01
        with pytest.raises(EncryptionError):
            onetime_decrypt(key, bytes(blob))

    def test_wrong_key_detected(self, rng):
        blob = onetime_encrypt(OneTimeKey.generate(rng), b"payload")
        with pytest.raises(EncryptionError):
            onetime_decrypt(OneTimeKey.generate(rng), blob)

    def test_too_short_blob_rejected(self, rng):
        with pytest.raises(EncryptionError):
            onetime_decrypt(OneTimeKey.generate(rng), b"short")

    def test_invalid_key_length_rejected(self):
        with pytest.raises(EncryptionError):
            OneTimeKey(b"short")

    def test_ciphertext_differs_from_plaintext(self, rng):
        key = OneTimeKey.generate(rng)
        blob = onetime_encrypt(key, b"payload-payload-payload")
        assert b"payload" not in blob

    def test_long_plaintext_multi_block(self, rng):
        key = OneTimeKey.generate(rng)
        plaintext = bytes(range(256)) * 5
        assert onetime_decrypt(key, onetime_encrypt(key, plaintext)) == plaintext


class TestDiffieHellman:
    def test_shared_secret_agreement(self):
        alice = DiffieHellman(rng=random.Random(1))
        bob = DiffieHellman(rng=random.Random(2))
        assert (alice.shared_secret(bob.public_value)
                == bob.shared_secret(alice.public_value))

    def test_different_pairs_different_secrets(self):
        alice = DiffieHellman(rng=random.Random(1))
        bob = DiffieHellman(rng=random.Random(2))
        eve = DiffieHellman(rng=random.Random(3))
        assert (alice.shared_secret(bob.public_value)
                != alice.shared_secret(eve.public_value))

    @pytest.mark.parametrize("bad", [0, 1])
    def test_degenerate_peer_values_rejected(self, bad):
        dh = DiffieHellman(rng=random.Random(1))
        with pytest.raises(CryptoError):
            dh.shared_secret(bad)

    def test_p_minus_one_rejected(self):
        dh = DiffieHellman(rng=random.Random(1))
        with pytest.raises(CryptoError):
            dh.shared_secret(dh.prime - 1)

    def test_invalid_group_rejected(self):
        with pytest.raises(CryptoError):
            DiffieHellman(prime=4, generator=2)


class TestKeyDerivation:
    def test_deterministic(self):
        secret = b"\x01" * 32
        assert (derive_session_key(secret, b"ctx")
                == derive_session_key(secret, b"ctx"))

    def test_context_separation(self):
        secret = b"\x01" * 32
        assert (derive_session_key(secret, b"flight-1")
                != derive_session_key(secret, b"flight-2"))

    def test_length_control(self):
        secret = b"\x02" * 32
        assert len(derive_session_key(secret, b"c", length=16)) == 16
        assert len(derive_session_key(secret, b"c", length=64)) == 64
        # Prefix property of the expand phase.
        assert derive_session_key(secret, b"c", 64)[:16] == derive_session_key(
            secret, b"c", 16)

    def test_invalid_length_rejected(self):
        with pytest.raises(CryptoError):
            derive_session_key(b"s", b"c", length=0)
