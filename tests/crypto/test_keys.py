"""Tests for repro.crypto.keys (serialization and fingerprints)."""

import pytest

from repro.crypto.keys import (
    key_fingerprint,
    private_key_from_bytes,
    private_key_to_bytes,
    public_key_from_bytes,
    public_key_to_bytes,
)
from repro.errors import EncodingError


class TestPublicKeyEncoding:
    def test_round_trip(self, signing_key):
        data = public_key_to_bytes(signing_key.public_key)
        assert public_key_from_bytes(data) == signing_key.public_key

    def test_magic_enforced(self, signing_key):
        data = public_key_to_bytes(signing_key.public_key)
        with pytest.raises(EncodingError):
            public_key_from_bytes(b"XXXX" + data[4:])

    def test_truncation_detected(self, signing_key):
        data = public_key_to_bytes(signing_key.public_key)
        with pytest.raises(EncodingError):
            public_key_from_bytes(data[:-3])

    def test_trailing_bytes_detected(self, signing_key):
        data = public_key_to_bytes(signing_key.public_key)
        with pytest.raises(EncodingError):
            public_key_from_bytes(data + b"\x00")


class TestPrivateKeyEncoding:
    def test_round_trip(self, signing_key):
        data = private_key_to_bytes(signing_key)
        assert private_key_from_bytes(data) == signing_key

    def test_magic_differs_from_public(self, signing_key):
        private = private_key_to_bytes(signing_key)
        with pytest.raises(EncodingError):
            public_key_from_bytes(private)

    def test_truncation_detected(self, signing_key):
        data = private_key_to_bytes(signing_key)
        with pytest.raises(EncodingError):
            private_key_from_bytes(data[:20])


class TestFingerprint:
    def test_stable(self, signing_key):
        assert (key_fingerprint(signing_key.public_key)
                == key_fingerprint(signing_key.public_key))

    def test_distinct_keys_distinct_fingerprints(self, signing_key, other_key):
        assert (key_fingerprint(signing_key.public_key)
                != key_fingerprint(other_key.public_key))

    def test_format_is_hex_sha256(self, signing_key):
        fp = key_fingerprint(signing_key.public_key)
        assert len(fp) == 64
        int(fp, 16)  # parses as hex
