"""Unit tests for the pluggable sample-authentication schemes.

Each scheme is exercised through the public :class:`AuthScheme` surface
only — ``new_signer`` / ``verify`` / ``verify_sample`` / ``screen`` —
because that is the contract every call site (TA, pipeline, audit engine,
conformance reference) depends on.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.schemes import (
    CHAIN_KEY_LENGTH,
    CHAIN_LINK_LENGTH,
    SCHEME_BATCH,
    SCHEME_CHAIN,
    SCHEME_MERKLE,
    SCHEME_RSA,
    ChainFinalizer,
    MerkleFinalizer,
    authenticate_payloads,
    chain_anchor,
    chain_link,
    get_scheme,
    scheme_ids,
)
from repro.errors import SchemeError
from repro.privacy.merkle import MembershipProof, MerkleTree

ALL_SCHEMES = (SCHEME_RSA, SCHEME_BATCH, SCHEME_CHAIN, SCHEME_MERKLE)


def _flight(signing_key, scheme_id, n=6, seed=7):
    rng = random.Random(seed)
    payloads = [rng.randbytes(36) for _ in range(n)]
    blobs, finalizer = authenticate_payloads(signing_key, payloads,
                                             scheme_id=scheme_id, rng=rng)
    return payloads, blobs, finalizer


class TestRegistry:
    def test_ids_default_first(self):
        assert scheme_ids()[0] == SCHEME_RSA
        assert set(scheme_ids()) == set(ALL_SCHEMES)

    def test_get_scheme_round_trip(self):
        for scheme_id in ALL_SCHEMES:
            assert get_scheme(scheme_id).id == scheme_id

    def test_unknown_id_raises_typed_error(self):
        with pytest.raises(SchemeError, match="unknown authentication"):
            get_scheme("rsa-v16")


@pytest.mark.parametrize("scheme_id", ALL_SCHEMES)
class TestEveryScheme:
    def test_honest_flight_verifies(self, signing_key, scheme_id):
        payloads, blobs, finalizer = _flight(signing_key, scheme_id)
        scheme = get_scheme(scheme_id)
        assert scheme.verify(signing_key.public_key,
                             list(zip(payloads, blobs)), finalizer) == []

    def test_wrong_key_rejects_everything(self, signing_key, other_key,
                                          scheme_id):
        payloads, blobs, finalizer = _flight(signing_key, scheme_id)
        bad = get_scheme(scheme_id).verify(
            other_key.public_key, list(zip(payloads, blobs)), finalizer)
        assert bad == list(range(len(payloads)))

    def test_payload_tamper_detected(self, signing_key, scheme_id):
        payloads, blobs, finalizer = _flight(signing_key, scheme_id)
        payloads[2] = b"\x00" * 36
        bad = get_scheme(scheme_id).verify(
            signing_key.public_key, list(zip(payloads, blobs)), finalizer)
        assert 2 in bad

    def test_empty_flight(self, signing_key, scheme_id):
        blobs, finalizer = authenticate_payloads(
            signing_key, [], scheme_id=scheme_id, rng=random.Random(1))
        assert blobs == []
        assert get_scheme(scheme_id).verify(signing_key.public_key, [],
                                            finalizer) == []


class TestRsaPerSample:
    def test_verify_sample_stands_alone(self, signing_key):
        payloads, blobs, _ = _flight(signing_key, SCHEME_RSA)
        scheme = get_scheme(SCHEME_RSA)
        assert scheme.verify_sample(signing_key.public_key, payloads[0],
                                    blobs[0])
        assert not scheme.verify_sample(signing_key.public_key, payloads[0],
                                        blobs[1])

    def test_smuggled_finalizer_rejects_all(self, signing_key):
        payloads, blobs, _ = _flight(signing_key, SCHEME_RSA)
        bad = get_scheme(SCHEME_RSA).verify(
            signing_key.public_key, list(zip(payloads, blobs)), b"extra")
        assert bad == list(range(len(payloads)))

    def test_screen_accepts_honest_flight(self, signing_key):
        payloads, blobs, _ = _flight(signing_key, SCHEME_RSA)
        assert get_scheme(SCHEME_RSA).screen(
            signing_key.public_key, list(zip(payloads, blobs))) is True


class TestBatchDigest:
    def test_blobs_empty_finalizer_signs_trace(self, signing_key):
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_BATCH)
        assert all(blob == b"" for blob in blobs)
        assert finalizer

    def test_flight_level_schemes_refuse_lone_samples(self, signing_key):
        payloads, blobs, _ = _flight(signing_key, SCHEME_BATCH)
        for scheme_id in (SCHEME_BATCH, SCHEME_CHAIN, SCHEME_MERKLE):
            assert not get_scheme(scheme_id).verify_sample(
                signing_key.public_key, payloads[0], blobs[0])
            assert get_scheme(scheme_id).screen(
                signing_key.public_key, list(zip(payloads, blobs))) is None

    def test_foreign_blob_condemned(self, signing_key):
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_BATCH)
        blobs[3] = b"not-from-this-scheme"
        bad = get_scheme(SCHEME_BATCH).verify(
            signing_key.public_key, list(zip(payloads, blobs)), finalizer)
        assert bad == [3]

    def test_reorder_rejected(self, signing_key):
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_BATCH)
        entries = list(zip(payloads, blobs))
        entries.reverse()
        assert get_scheme(SCHEME_BATCH).verify(
            signing_key.public_key, entries, finalizer) \
            == list(range(len(entries)))


class TestChainedHmac:
    def test_finalizer_round_trip(self, signing_key):
        _, _, finalizer = _flight(signing_key, SCHEME_CHAIN)
        fin = ChainFinalizer.from_bytes(finalizer)
        assert fin.to_bytes() == finalizer
        assert fin.count == 6
        assert len(fin.anchor) == CHAIN_LINK_LENGTH
        assert len(fin.chain_key) == CHAIN_KEY_LENGTH
        assert chain_anchor(fin.chain_key) == fin.anchor

    @pytest.mark.parametrize("mangle", [
        lambda fin: b"",
        lambda fin: b"XXXX" + fin[4:],
        lambda fin: fin[:20],
        lambda fin: fin + b"\x00",
    ])
    def test_malformed_finalizer_raises_typed_error(self, signing_key,
                                                    mangle):
        _, _, finalizer = _flight(signing_key, SCHEME_CHAIN)
        with pytest.raises(SchemeError):
            ChainFinalizer.from_bytes(mangle(finalizer))

    def test_malformed_finalizer_rejects_without_raising(self, signing_key):
        payloads, blobs, _ = _flight(signing_key, SCHEME_CHAIN)
        bad = get_scheme(SCHEME_CHAIN).verify(
            signing_key.public_key, list(zip(payloads, blobs)), b"garbage")
        assert bad == list(range(len(payloads)))

    def test_truncation_rejected_structurally(self, signing_key):
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_CHAIN)
        entries = list(zip(payloads, blobs))[:4]
        assert get_scheme(SCHEME_CHAIN).verify(
            signing_key.public_key, entries, finalizer) == [0, 1, 2, 3]

    def test_reorder_rejected_structurally(self, signing_key):
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_CHAIN)
        entries = list(zip(payloads, blobs))
        entries[1], entries[4] = entries[4], entries[1]
        bad = get_scheme(SCHEME_CHAIN).verify(
            signing_key.public_key, entries, finalizer)
        assert bad  # the swapped links no longer chain

    def test_splice_detected_at_seams_only(self, signing_key):
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_CHAIN)
        entries = list(zip(payloads, blobs))
        entries[2] = entries[0]  # copy a genuine entry over another
        bad = get_scheme(SCHEME_CHAIN).verify(
            signing_key.public_key, entries, finalizer)
        # The spliced position and its successor (whose predecessor link
        # changed) break; replay re-synchronizes after the seam.
        assert bad == [2, 3]

    def test_disclosed_key_cannot_forge(self, signing_key):
        """Re-MACing with the disclosed chain key fails the close sig."""
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_CHAIN)
        fin = ChainFinalizer.from_bytes(finalizer)
        forged_payloads = [b"\xff" * 36 for _ in payloads]
        previous = fin.anchor
        forged = []
        for payload in forged_payloads:
            link = chain_link(fin.chain_key, previous, payload)
            forged.append((payload, link))
            previous = link
        bad = get_scheme(SCHEME_CHAIN).verify(
            signing_key.public_key, forged, finalizer)
        assert bad == list(range(len(forged)))

    def test_seeded_signer_is_deterministic(self, signing_key):
        a = _flight(signing_key, SCHEME_CHAIN, seed=11)
        b = _flight(signing_key, SCHEME_CHAIN, seed=11)
        assert a == b

    def test_wire_bytes_amortized(self, signing_key):
        payloads, blobs, finalizer = _flight(signing_key, SCHEME_CHAIN,
                                             n=100)
        chain_bytes = get_scheme(SCHEME_CHAIN).wire_bytes(
            list(zip(payloads, blobs)), finalizer)
        r_payloads, r_blobs, r_fin = _flight(signing_key, SCHEME_RSA, n=100)
        rsa_bytes = get_scheme(SCHEME_RSA).wire_bytes(
            list(zip(r_payloads, r_blobs)), r_fin)
        assert chain_bytes < rsa_bytes


class TestMerkleDisclosure:
    def _disclosed(self, signing_key, indices, n=8):
        payloads, _blobs, finalizer = _flight(signing_key, SCHEME_MERKLE,
                                              n=n)
        tree = MerkleTree(payloads)
        entries = [(payloads[i], tree.membership_proof(i).to_bytes())
                   for i in indices]
        return payloads, entries, finalizer

    def test_finalizer_round_trip(self, signing_key):
        payloads, _, finalizer = _flight(signing_key, SCHEME_MERKLE)
        fin = MerkleFinalizer.from_bytes(finalizer)
        assert fin.to_bytes() == finalizer
        assert fin.count == 6
        assert fin.root == MerkleTree(payloads).root

    def test_disclosed_subset_verifies(self, signing_key):
        _, entries, finalizer = self._disclosed(signing_key, [0, 3, 7])
        assert get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, finalizer) == []

    def test_reordered_subset_rejected(self, signing_key):
        _, entries, finalizer = self._disclosed(signing_key, [3, 0, 7])
        assert get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, finalizer) \
            == list(range(len(entries)))

    def test_duplicated_leaf_rejected(self, signing_key):
        _, entries, finalizer = self._disclosed(signing_key, [0, 3, 3, 7])
        assert get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, finalizer) \
            == list(range(len(entries)))

    def test_out_of_range_index_rejected(self, signing_key):
        payloads, _, finalizer = self._disclosed(signing_key, [])
        # A proof against a *bigger* tree claims an index the signed
        # count does not admit.
        big = MerkleTree(payloads + [b"extra-leaf"])
        entries = [(b"extra-leaf", big.membership_proof(8).to_bytes())]
        assert get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, finalizer) == [0]

    def test_forged_sibling_rejected(self, signing_key):
        payloads, entries, finalizer = self._disclosed(signing_key, [0, 7])
        proof = MembershipProof.from_bytes(entries[0][1])
        forged = MembershipProof(
            leaf_index=proof.leaf_index,
            siblings=tuple(b"\x5a" * 32 for _ in proof.siblings))
        entries[0] = (b"somewhere-else-entirely", forged.to_bytes())
        bad = get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, finalizer)
        assert 0 in bad and 1 not in bad

    def test_malformed_proof_condemns_flight(self, signing_key):
        _, entries, finalizer = self._disclosed(signing_key, [0, 3, 7])
        entries[1] = (entries[1][0], b"\x00\x01")  # truncated header
        assert get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, finalizer) \
            == list(range(len(entries)))

    def test_malformed_finalizer_rejects_without_raising(self, signing_key):
        _, entries, _ = self._disclosed(signing_key, [0, 3, 7])
        assert get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, b"garbage") \
            == list(range(len(entries)))

    def test_partial_full_trace_rejected(self, signing_key):
        """Empty blobs but fewer entries than the signed count: not a
        disclosure (no proofs), not the flight (wrong count)."""
        payloads, _, finalizer = _flight(signing_key, SCHEME_MERKLE, n=8)
        entries = [(payload, b"") for payload in payloads[:5]]
        assert get_scheme(SCHEME_MERKLE).verify(
            signing_key.public_key, entries, finalizer) \
            == list(range(len(entries)))

    def test_subset_wire_bytes_beat_per_sample_rsa(self, signing_key):
        _, entries, finalizer = self._disclosed(signing_key, [0, 50, 99],
                                                n=100)
        merkle_bytes = get_scheme(SCHEME_MERKLE).wire_bytes(entries,
                                                            finalizer)
        r_payloads, r_blobs, r_fin = _flight(signing_key, SCHEME_RSA, n=100)
        rsa_bytes = get_scheme(SCHEME_RSA).wire_bytes(
            list(zip(r_payloads, r_blobs)), r_fin)
        assert merkle_bytes < rsa_bytes
