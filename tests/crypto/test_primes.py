"""Tests for repro.crypto.primes."""

import random

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime
from repro.errors import KeyGenerationError

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 65537, 2_147_483_647]  # includes M31
KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 1105, 2821, 65536,     # Carmichaels too
                    2_147_483_649]


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_known_primes(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites_including_carmichael(self, n):
        assert not is_probable_prime(n)

    def test_negative_numbers(self):
        assert not is_probable_prime(-7)

    def test_large_known_prime(self):
        # 2^127 - 1 (Mersenne prime) exceeds the deterministic bound.
        assert is_probable_prime(2 ** 127 - 1, rng=random.Random(1))

    def test_large_known_composite(self):
        assert not is_probable_prime((2 ** 127 - 1) * 3, rng=random.Random(1))

    def test_product_of_two_primes(self):
        assert not is_probable_prime(65537 * 65539)


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = random.Random(7)
        for bits in (16, 64, 256):
            p = generate_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        p = generate_prime(32, rng=random.Random(9))
        assert (p >> 30) & 0b11 == 0b11

    def test_always_odd(self):
        rng = random.Random(11)
        assert all(generate_prime(24, rng=rng) % 2 == 1 for _ in range(5))

    def test_deterministic_given_rng(self):
        assert (generate_prime(64, rng=random.Random(5))
                == generate_prime(64, rng=random.Random(5)))

    def test_too_small_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_prime(4)
