"""Tests for repro.units and the exception hierarchy."""

import math

import pytest

from repro import errors, units


class TestLengthConversions:
    def test_feet_round_trip(self):
        assert units.meters_to_feet(units.feet_to_meters(123.4)) == (
            pytest.approx(123.4))

    def test_foot_definition(self):
        assert units.feet_to_meters(1.0) == pytest.approx(0.3048)

    def test_mile_definition(self):
        assert units.miles_to_meters(1.0) == pytest.approx(1609.344)
        assert units.FEET_PER_MILE == 5280.0
        assert units.miles_to_meters(1.0) == pytest.approx(
            units.feet_to_meters(5280.0))

    def test_miles_round_trip(self):
        assert units.meters_to_miles(units.miles_to_meters(2.5)) == (
            pytest.approx(2.5))


class TestSpeedConversions:
    def test_mph_round_trip(self):
        assert units.mps_to_mph(units.mph_to_mps(55.0)) == pytest.approx(55.0)

    def test_faa_limit(self):
        assert units.FAA_MAX_SPEED_MPS == pytest.approx(44.704)

    def test_airport_radius(self):
        assert units.FAA_AIRPORT_NFZ_RADIUS_M == pytest.approx(8046.72)

    def test_knots(self):
        # 1 knot = 1852 m per hour.
        assert units.knots_to_mps(1.0) == pytest.approx(1852.0 / 3600.0)
        assert units.mps_to_knots(units.knots_to_mps(7.7)) == (
            pytest.approx(7.7))


class TestAngleHelpers:
    def test_degrees_radians_round_trip(self):
        assert units.radians_to_degrees(
            units.degrees_to_radians(73.2)) == pytest.approx(73.2)

    def test_known_value(self):
        assert units.degrees_to_radians(180.0) == pytest.approx(math.pi)


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.ConfigurationError, errors.GeometryError, errors.CryptoError,
        errors.KeyGenerationError, errors.SignatureError,
        errors.EncryptionError, errors.EncodingError, errors.TeeError,
        errors.WorldIsolationError, errors.TrustedAppError,
        errors.TeeStorageError, errors.GpsError, errors.NmeaError,
        errors.NoFixError, errors.ProtocolError, errors.RegistrationError,
        errors.AuthenticationError, errors.VerificationError,
        errors.InsufficientAlibiError, errors.SimulationError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_alidrone_error(self, exc):
        assert issubclass(exc, errors.AliDroneError)

    def test_crypto_family(self):
        for exc in (errors.KeyGenerationError, errors.SignatureError,
                    errors.EncryptionError, errors.EncodingError):
            assert issubclass(exc, errors.CryptoError)

    def test_tee_family(self):
        for exc in (errors.WorldIsolationError, errors.TrustedAppError,
                    errors.TeeStorageError):
            assert issubclass(exc, errors.TeeError)

    def test_protocol_family(self):
        for exc in (errors.RegistrationError, errors.AuthenticationError,
                    errors.VerificationError):
            assert issubclass(exc, errors.ProtocolError)

    def test_insufficient_is_verification(self):
        assert issubclass(errors.InsufficientAlibiError,
                          errors.VerificationError)

    def test_catchable_as_family(self):
        with pytest.raises(errors.AliDroneError):
            raise errors.NmeaError("bad sentence")
