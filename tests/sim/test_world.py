"""Tests for repro.sim.world: the multi-actor orchestrator."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH
from repro.sim.world import CompositeSource, World

T0 = DEFAULT_EPOCH


@pytest.fixture(scope="module")
def world():
    w = World(seed=5, key_bits=512)
    w.register_zone(400.0, 80.0, 40.0, owner_name="alice")
    w.register_zone(1200.0, -60.0, 50.0, owner_name="bob")
    w.add_drone("alpha", home=(0.0, 0.0))
    w.add_drone("beta", home=(50.0, 0.0))
    return w


class TestCompositeSource:
    def test_parked_before_and_after(self):
        source = CompositeSource((5.0, 6.0), T0)
        assert source.position_at(T0 - 100.0) == (5.0, 6.0)
        assert source.position_at(T0 + 100.0) == (5.0, 6.0)

    def test_append_and_interpolate(self):
        source = CompositeSource((0.0, 0.0), T0)
        source.append(WaypointSource([(T0 + 10.0, 0.0, 0.0),
                                      (T0 + 20.0, 100.0, 0.0)]))
        assert source.position_at(T0 + 15.0) == pytest.approx((50.0, 0.0))
        # Parked at the segment end afterwards.
        assert source.position_at(T0 + 50.0) == pytest.approx((100.0, 0.0))

    def test_parked_between_segments(self):
        source = CompositeSource((0.0, 0.0), T0)
        source.append(WaypointSource([(T0 + 10.0, 0.0, 0.0),
                                      (T0 + 20.0, 100.0, 0.0)]))
        source.append(WaypointSource([(T0 + 60.0, 100.0, 0.0),
                                      (T0 + 70.0, 100.0, 100.0)]))
        assert source.position_at(T0 + 40.0) == pytest.approx((100.0, 0.0))

    def test_overlapping_segment_rejected(self):
        source = CompositeSource((0.0, 0.0), T0)
        source.append(WaypointSource([(T0 + 10.0, 0.0, 0.0),
                                      (T0 + 20.0, 100.0, 0.0)]))
        with pytest.raises(SimulationError):
            source.append(WaypointSource([(T0 + 15.0, 0.0, 0.0),
                                          (T0 + 30.0, 0.0, 0.0)]))

    def test_last_position_tracks_appends(self):
        source = CompositeSource((0.0, 0.0), T0)
        assert source.last_position() == (0.0, 0.0)
        source.append(WaypointSource([(T0 + 1.0, 0.0, 0.0),
                                      (T0 + 2.0, 7.0, 8.0)]))
        assert source.last_position() == (7.0, 8.0)


class TestWorld:
    def test_duplicate_drone_name_rejected(self, world):
        with pytest.raises(ConfigurationError):
            world.add_drone("alpha")

    def test_drones_have_distinct_identities(self, world):
        alpha = world.drones["alpha"]
        beta = world.drones["beta"]
        assert alpha.drone_id != beta.drone_id
        assert alpha.device.tee_public_key != beta.device.tee_public_key

    def test_compliant_mission_clears_incident(self, world):
        record = world.fly_mission("alpha", [(800.0, 0.0)])
        assert record.poa.verify_all(
            world.drones["alpha"].device.tee_public_key)
        zone_id = next(iter(world.server.zones._zones))
        mid_flight = (record.result.stats.start_time
                      + record.result.stats.duration / 2.0)
        finding = world.report_incident(zone_id, "alpha", mid_flight)
        assert not finding.violation

    def test_consecutive_missions_share_timeline(self, world):
        beta = world.drones["beta"]
        first = world.fly_mission("beta", [(300.0, 200.0)])
        second = world.fly_mission("beta", [(0.0, 0.0)])
        assert second.result.stats.start_time >= first.result.stats.end_time
        assert len(beta.flights) == 2
        assert len(world.server.retained_for(beta.drone_id)) == 2

    def test_mission_without_submission(self, world):
        gamma = world.add_drone("gamma", home=(-100.0, -100.0))
        before = len(world.server.retained_for(gamma.drone_id))
        world.fly_mission("gamma", [(-300.0, -100.0)], submit=False)
        assert len(world.server.retained_for(gamma.drone_id)) == before

    def test_fixed_policy_mission(self, world):
        world.add_drone("delta", home=(2000.0, 2000.0))
        record = world.fly_mission("delta", [(2300.0, 2000.0)],
                                   policy="fixed", fixed_rate_hz=1.0)
        assert record.policy == "fixed-1hz"
        expected = record.result.stats.duration
        assert len(record.poa) == pytest.approx(expected + 1, abs=2)
