"""Tests for repro.sim.clock and repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.sim.events import Event, EventLog


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_advance(self):
        clock = SimClock(0.0)
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(10.0)
        clock.advance_to(12.0)
        assert clock.now == 12.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)

    def test_advance_to_now_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_callable_form(self):
        clock = SimClock(3.0)
        assert clock() == 3.0

    def test_default_epoch_is_2018(self):
        import datetime
        date = datetime.datetime.fromtimestamp(DEFAULT_EPOCH,
                                               tz=datetime.timezone.utc)
        assert date.year == 2018


class TestEventLog:
    def test_record_and_count(self):
        log = EventLog()
        log.record(1.0, "sample", rate=5.0)
        log.record(2.0, "sample")
        log.record(3.0, "miss")
        assert len(log) == 3
        assert log.count("sample") == 2
        assert log.count("nothing") == 0

    def test_of_kind_preserves_order(self):
        log = EventLog()
        log.record(1.0, "a", i=1)
        log.record(2.0, "b")
        log.record(3.0, "a", i=2)
        events = log.of_kind("a")
        assert [e.detail["i"] for e in events] == [1, 2]

    def test_between(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.record(t, "tick")
        assert len(log.between(2.0, 3.0)) == 2

    def test_event_is_frozen(self):
        event = Event(time=1.0, kind="x")
        with pytest.raises(AttributeError):
            event.time = 2.0

    def test_iteration(self):
        log = EventLog()
        log.record(1.0, "x")
        assert [e.kind for e in log] == ["x"]
