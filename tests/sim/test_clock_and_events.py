"""Tests for repro.sim.clock and repro.sim.events."""

import json

import pytest

from repro.errors import ConfigurationError, EncodingError, SimulationError
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.sim.events import Event, EventLog


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_advance(self):
        clock = SimClock(0.0)
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(10.0)
        clock.advance_to(12.0)
        assert clock.now == 12.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)

    def test_advance_to_now_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_callable_form(self):
        clock = SimClock(3.0)
        assert clock() == 3.0

    def test_default_epoch_is_2018(self):
        import datetime
        date = datetime.datetime.fromtimestamp(DEFAULT_EPOCH,
                                               tz=datetime.timezone.utc)
        assert date.year == 2018


class TestEventLog:
    def test_record_and_count(self):
        log = EventLog()
        log.record(1.0, "sample", rate=5.0)
        log.record(2.0, "sample")
        log.record(3.0, "miss")
        assert len(log) == 3
        assert log.count("sample") == 2
        assert log.count("nothing") == 0

    def test_of_kind_preserves_order(self):
        log = EventLog()
        log.record(1.0, "a", i=1)
        log.record(2.0, "b")
        log.record(3.0, "a", i=2)
        events = log.of_kind("a")
        assert [e.detail["i"] for e in events] == [1, 2]

    def test_between(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0, 4.0):
            log.record(t, "tick")
        assert len(log.between(2.0, 3.0)) == 2

    def test_event_is_frozen(self):
        event = Event(time=1.0, kind="x")
        with pytest.raises(AttributeError):
            event.time = 2.0

    def test_iteration(self):
        log = EventLog()
        log.record(1.0, "x")
        assert [e.kind for e in log] == ["x"]


class TestEventLogBound:
    def test_unbounded_by_default(self):
        log = EventLog()
        for t in range(1000):
            log.record(float(t), "tick")
        assert len(log) == 1000
        assert log.evicted == 0

    def test_bound_evicts_oldest_first(self):
        log = EventLog(max_events=3)
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            log.record(t, "tick", t=t)
        assert len(log) == 3
        assert [e.time for e in log] == [3.0, 4.0, 5.0]
        assert log.evicted == 2

    def test_queries_see_only_retained_events(self):
        log = EventLog(max_events=2)
        log.record(1.0, "old")
        log.record(2.0, "new")
        log.record(3.0, "new")
        assert log.count("old") == 0
        assert log.between(0.0, 10.0) == log.of_kind("new")

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            EventLog(max_events=0)


class TestEventLogSerialization:
    def test_jsonl_one_object_per_line(self):
        log = EventLog()
        log.record(1.0, "sample", rate=5.0)
        log.record(2.0, "violation")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"time": 1.0, "kind": "sample",
                         "detail": {"rate": 5.0}}

    def test_round_trip(self):
        log = EventLog()
        log.record(1.0, "sample", rate=5.0, zone="z1")
        log.record(2.5, "miss")
        clone = EventLog.from_jsonl(log.to_jsonl())
        assert [e.to_dict() for e in clone] == [e.to_dict() for e in log]

    def test_empty_log_round_trip(self):
        assert len(EventLog.from_jsonl(EventLog().to_jsonl())) == 0

    def test_from_jsonl_skips_blank_lines(self):
        log = EventLog.from_jsonl(
            '\n{"time": 1.0, "kind": "x", "detail": {}}\n\n')
        assert len(log) == 1

    def test_from_jsonl_applies_bound(self):
        source = EventLog()
        for t in (1.0, 2.0, 3.0):
            source.record(t, "tick")
        clone = EventLog.from_jsonl(source.to_jsonl(), max_events=2)
        assert [e.time for e in clone] == [2.0, 3.0]
        assert clone.evicted == 1

    def test_malformed_line_raises_encoding_error(self):
        with pytest.raises(EncodingError, match="line 2"):
            EventLog.from_jsonl(
                '{"time": 1.0, "kind": "x", "detail": {}}\nnot json')

    def test_missing_key_raises_encoding_error(self):
        with pytest.raises(EncodingError):
            EventLog.from_jsonl('{"time": 1.0}')
