"""A scaled-down disclosure differential sweep (CI runs 200+ trials)."""

from __future__ import annotations

import pytest

from repro.privacy.differential import (
    ADVERSARIAL_POLICIES,
    run_disclosure_differential,
)


@pytest.fixture(scope="module")
def report():
    return run_disclosure_differential(trajectories=18, seed=2,
                                       max_zones=6)


class TestDifferentialSweep:
    def test_sweep_is_clean(self, report):
        assert report.ok
        assert report.disagreements == []

    def test_honest_decisions_identical(self, report):
        assert report.honest_trials > 0
        assert report.honest_decision_matches == report.honest_trials

    def test_bad_flights_stay_rejected(self, report):
        assert report.bad_trials > 0
        assert report.bad_rejects_preserved == report.bad_trials

    def test_every_adversarial_policy_exercised(self, report):
        assert set(report.adversarial_outcomes) == set(ADVERSARIAL_POLICIES)
        for policy, outcome in report.adversarial_outcomes.items():
            assert outcome["trials"] > 0, policy
            assert outcome["false_accepts"] == 0, policy
        # Structural tampers must reject unconditionally.
        for policy in ("cross_flight_splice", "forged_sibling"):
            assert report.adversarial_outcomes[policy]["accepts"] == 0

    def test_wire_accounting_populated(self, report):
        assert report.full_wire_bytes > 0
        assert 0 < report.disclosed_wire_bytes
        assert 0 < report.revealed_samples <= report.total_samples
        assert report.bandwidth_reduction > 0.0

    def test_to_dict_round_trips_verdict(self, report):
        doc = report.to_dict()
        assert doc["ok"] is True
        assert doc["trajectories"] == 18
        assert doc["honest_trials"] + doc["bad_trials"] == 18
        assert doc["adversarial_false_accepts"] == 0
        assert doc["bandwidth_reduction"] == round(
            report.bandwidth_reduction, 3)

    def test_deterministic_for_a_seed(self):
        a = run_disclosure_differential(trajectories=6, seed=5)
        b = run_disclosure_differential(trajectories=6, seed=5)
        assert a.to_dict() == b.to_dict()
