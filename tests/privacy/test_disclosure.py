"""The operator disclosure policy and the verifier's disclosure stage.

Builds dense Merkle-committed flights around a zone and checks both
directions of the contract: honest disclosures verify exactly like the
full trace, and disclosures that hide too much are rejected with
``INSUFFICIENT_DISCLOSURE``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier
from repro.crypto.schemes import SCHEME_MERKLE, SCHEME_RSA, \
    authenticate_payloads
from repro.errors import ConfigurationError
from repro.privacy.disclosure import DisclosedAlibi, disclose
from repro.privacy.merkle import MerkleTree
from repro.sim.clock import DEFAULT_EPOCH


def _merkle_flight(signing_key, points, t0=DEFAULT_EPOCH, dt=1.0):
    """A full-trace merkle PoA over ``points`` (local metres)."""
    payloads = [GpsSample(*_geo(point), t0 + i * dt).to_signed_payload()
                for i, point in enumerate(points)]
    blobs, finalizer = authenticate_payloads(
        signing_key, payloads, SCHEME_MERKLE, rng=random.Random(5))
    return ProofOfAlibi(
        (SignedSample(payload=payload, signature=blob, scheme=SCHEME_MERKLE)
         for payload, blob in zip(payloads, blobs)),
        scheme=SCHEME_MERKLE, finalizer=finalizer)


_FRAME = None


def _geo(point):
    return _FRAME.to_geo(*point).lat, _FRAME.to_geo(*point).lon


@pytest.fixture(autouse=True)
def _bind_frame(frame):
    global _FRAME
    _FRAME = frame
    yield
    _FRAME = None


@pytest.fixture()
def zone(frame) -> NoFlyZone:
    point = frame.to_geo(0.0, 0.0)
    return NoFlyZone(point.lat, point.lon, 60.0)


def _bypass_points(n=120, offset=300.0, step=15.0):
    """A 1 Hz straight traverse passing ``offset`` metres from origin."""
    return [(-900.0 + i * step, offset) for i in range(n)]


def _subset(poa, indices):
    payloads = [entry.payload for entry in poa]
    tree = MerkleTree(payloads)
    return poa.replace_entries(
        [SignedSample(payload=payloads[i],
                      signature=tree.membership_proof(i).to_bytes(),
                      scheme=SCHEME_MERKLE)
         for i in indices])


class TestDisclosePolicy:
    def test_honest_disclosure_verifies_and_redacts(self, signing_key,
                                                    frame, zone):
        poa = _merkle_flight(signing_key, _bypass_points())
        verifier = PoaVerifier(frame)
        full = verifier.verify(poa, signing_key.public_key, [zone])
        assert full.compliant

        alibi = disclose(poa, [zone], frame)
        assert isinstance(alibi, DisclosedAlibi)
        assert alibi.total_samples == len(poa)
        assert 0 < alibi.revealed_count < alibi.total_samples
        assert 0.0 < alibi.redaction_ratio < 1.0
        disclosed = verifier.verify(alibi.poa, signing_key.public_key,
                                    [zone])
        assert disclosed.compliant

    def test_disclosure_beats_per_sample_rsa_on_wire(self, signing_key,
                                                     frame, zone):
        points = _bypass_points(n=240, offset=500.0)
        poa = _merkle_flight(signing_key, points)
        alibi = disclose(poa, [zone], frame)
        payloads = [entry.payload for entry in poa]
        blobs, _ = authenticate_payloads(signing_key, payloads, SCHEME_RSA,
                                         rng=random.Random(5))
        full_rsa = sum(len(payload) + len(blob)
                       for payload, blob in zip(payloads, blobs))
        assert alibi.wire_bytes() < full_rsa

    def test_no_zones_discloses_endpoints_and_brackets(self, signing_key,
                                                       frame):
        poa = _merkle_flight(signing_key, _bypass_points())
        alibi = disclose(poa, [], frame)
        n = alibi.total_samples
        assert 0 in alibi.revealed_indices
        assert n - 1 in alibi.revealed_indices
        assert alibi.revealed_count < n

    def test_infeasible_pair_is_never_redacted(self, signing_key, frame,
                                               zone):
        # A mid-flight teleport: both offending fixes must stay revealed
        # so the full-trace SPEED_INFEASIBLE verdict survives.
        points = _bypass_points(n=40)
        points[20] = (points[20][0] + 5_000.0, points[20][1])
        poa = _merkle_flight(signing_key, points)
        alibi = disclose(poa, [zone], frame)
        assert {19, 20, 21} <= set(alibi.revealed_indices)
        verifier = PoaVerifier(frame)
        disclosed = verifier.verify(alibi.poa, signing_key.public_key,
                                    [zone])
        assert not disclosed.compliant

    def test_rejects_non_merkle_input(self, signing_key, frame):
        payloads = [GpsSample(40.1, -88.2, DEFAULT_EPOCH)
                    .to_signed_payload()]
        blobs, finalizer = authenticate_payloads(
            signing_key, payloads, SCHEME_RSA, rng=random.Random(5))
        poa = ProofOfAlibi(
            (SignedSample(payload=payloads[0], signature=blobs[0],
                          scheme=SCHEME_RSA),),
            scheme=SCHEME_RSA, finalizer=finalizer)
        with pytest.raises(ConfigurationError):
            disclose(poa, [], frame)

    def test_rejects_already_disclosed_input(self, signing_key, frame):
        poa = _merkle_flight(signing_key, _bypass_points(n=8))
        once = disclose(poa, [], frame)
        with pytest.raises(ConfigurationError, match="full committed"):
            disclose(once.poa, [], frame)

    def test_rejects_empty_flight(self, signing_key, frame):
        poa = _merkle_flight(signing_key, [])
        with pytest.raises(ConfigurationError, match="empty flight"):
            disclose(poa, [], frame)


class TestDisclosureStage:
    def test_hiding_near_zone_fixes_is_insufficient(self, signing_key,
                                                    frame, zone):
        # Traverse straight through the zone, then "disclose" only the
        # fixes well outside it: valid proofs, damning gap.
        points = [(-900.0 + i * 15.0, 0.0) for i in range(120)]
        poa = _merkle_flight(signing_key, points)
        keep = [i for i, point in enumerate(points)
                if abs(point[0]) > 400.0]
        keep = sorted(set(keep) | {0, len(points) - 1})
        report = PoaVerifier(frame).verify(_subset(poa, keep),
                                           signing_key.public_key, [zone])
        assert not report.compliant
        assert report.reason.value == "insufficient_disclosure"

    def test_unpinned_endpoint_is_insufficient(self, signing_key, frame,
                                               zone):
        poa = _merkle_flight(signing_key, _bypass_points(n=30))
        report = PoaVerifier(frame).verify(
            _subset(poa, list(range(1, 30))),
            signing_key.public_key, [zone])
        assert not report.compliant
        assert report.reason.value == "insufficient_disclosure"

    def test_far_gap_clears_conservative_rule(self, signing_key, frame,
                                              zone):
        # Hiding samples hundreds of metres from the only zone is fine:
        # the ellipse around each gap cannot reach the disk.
        points = [(-100.0 + i * 2.0, 900.0) for i in range(60)]
        poa = _merkle_flight(signing_key, points)
        keep = sorted({0, 20, 40, 59})
        report = PoaVerifier(frame).verify(_subset(poa, keep),
                                           signing_key.public_key, [zone])
        assert report.compliant

    def test_stage_ignores_other_schemes(self, signing_key, frame, zone):
        payloads = [GpsSample(*_geo((500.0, 500.0 + i)), DEFAULT_EPOCH + i)
                    .to_signed_payload() for i in range(4)]
        blobs, finalizer = authenticate_payloads(
            signing_key, payloads, SCHEME_RSA, rng=random.Random(5))
        poa = ProofOfAlibi(
            (SignedSample(payload=payload, signature=blob, scheme=SCHEME_RSA)
             for payload, blob in zip(payloads, blobs)),
            scheme=SCHEME_RSA, finalizer=finalizer)
        report = PoaVerifier(frame).verify(poa, signing_key.public_key,
                                           [zone])
        assert report.compliant
