"""Merkle commitment edge cases the disclosure layer leans on.

Deliberately exercises the shapes where Merkle implementations
historically go wrong: single-leaf trees, power-of-two vs ragged
counts (odd-node promotion), the CVE-2012-2459 duplicate-leaf
construction, and empty inputs.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SchemeError
from repro.privacy.merkle import (
    EMPTY_ROOT,
    MembershipProof,
    MerkleTree,
    leaf_hash,
    merkle_root,
    node_hash,
    verify_membership,
)


def _payloads(n: int) -> list[bytes]:
    return [f"sample-{i:04d}".encode() for i in range(n)]


class TestTreeShapes:
    def test_empty_tree_has_sentinel_root(self):
        tree = MerkleTree([])
        assert tree.count == 0
        assert tree.root == EMPTY_ROOT
        assert merkle_root([]) == EMPTY_ROOT

    def test_single_leaf_root_is_framed_leaf_hash(self):
        payload = b"only-sample"
        tree = MerkleTree([payload])
        assert tree.count == 1
        assert tree.root == leaf_hash(payload)
        proof = tree.membership_proof(0)
        assert proof.siblings == ()
        assert verify_membership(tree.root, 1, 0, payload, ())

    def test_two_leaves_root_is_node_of_leaves(self):
        payloads = _payloads(2)
        tree = MerkleTree(payloads)
        assert tree.root == node_hash(leaf_hash(payloads[0]),
                                      leaf_hash(payloads[1]))

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 31, 33])
    def test_every_leaf_proves_membership(self, n):
        payloads = _payloads(n)
        tree = MerkleTree(payloads)
        assert tree.count == n
        for i, payload in enumerate(payloads):
            proof = tree.membership_proof(i)
            assert verify_membership(tree.root, n, i, payload,
                                     proof.siblings), (n, i)

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    def test_proof_fails_against_wrong_position(self, n):
        payloads = _payloads(n)
        tree = MerkleTree(payloads)
        proof = tree.membership_proof(0)
        for wrong in range(1, n):
            assert not verify_membership(tree.root, n, wrong, payloads[0],
                                         proof.siblings)

    def test_out_of_range_proof_request_raises(self):
        tree = MerkleTree(_payloads(4))
        with pytest.raises(ConfigurationError):
            tree.membership_proof(4)
        with pytest.raises(ConfigurationError):
            tree.membership_proof(-1)


class TestDuplicateLeafAmbiguity:
    """CVE-2012-2459: append a copy of the last leaf, same root.

    The promotion rule (odd node rises unchanged, never paired with
    itself) makes the construction structurally impossible: ``n`` and
    ``n + 1`` leaves can only share a root through a SHA-256 collision.
    """

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 15])
    def test_appending_duplicate_last_leaf_changes_root(self, n):
        payloads = _payloads(n)
        padded = payloads + [payloads[-1]]
        assert MerkleTree(payloads).root != MerkleTree(padded).root

    def test_duplicate_payload_proof_is_position_bound(self):
        # The same payload committed twice yields two distinct leaves:
        # a proof minted for one position fails at the other.
        payloads = [b"alpha", b"same", b"same", b"omega"]
        tree = MerkleTree(payloads)
        proof = tree.membership_proof(1)
        assert verify_membership(tree.root, 4, 1, b"same", proof.siblings)
        assert not verify_membership(tree.root, 4, 2, b"same",
                                     proof.siblings)


class TestVerifyMembershipHardening:
    def test_rejects_nonpositive_count_and_bad_index(self):
        payload = b"sample"
        assert not verify_membership(leaf_hash(payload), 0, 0, payload, ())
        assert not verify_membership(leaf_hash(payload), 1, 1, payload, ())
        assert not verify_membership(leaf_hash(payload), 1, -1, payload, ())

    def test_rejects_extra_and_missing_siblings(self):
        payloads = _payloads(4)
        tree = MerkleTree(payloads)
        proof = tree.membership_proof(2)
        assert not verify_membership(tree.root, 4, 2, payloads[2],
                                     proof.siblings + (b"\x00" * 32,))
        assert not verify_membership(tree.root, 4, 2, payloads[2],
                                     proof.siblings[:-1])

    def test_leaf_cannot_impersonate_node(self):
        # Domain separation: a leaf over a node-sized preimage does not
        # collapse into an interior node of a smaller tree.
        payloads = _payloads(2)
        tree = MerkleTree(payloads)
        fake_payload = leaf_hash(payloads[0]) + leaf_hash(payloads[1])
        assert leaf_hash(fake_payload) != tree.root


class TestProofEncoding:
    def test_round_trip(self):
        tree = MerkleTree(_payloads(9))
        for i in (0, 4, 8):
            proof = tree.membership_proof(i)
            assert MembershipProof.from_bytes(proof.to_bytes()) == proof

    @pytest.mark.parametrize("blob", [
        b"", b"\x00" * 5,
        b"\x00\x00\x00\x00\x00\x02" + b"\xaa" * 32,   # count says 2, one
        b"\x00\x00\x00\x00\x00\x00" + b"\xaa" * 32,   # trailing bytes
    ])
    def test_malformed_blob_raises_typed_error(self, blob):
        with pytest.raises(SchemeError):
            MembershipProof.from_bytes(blob)
