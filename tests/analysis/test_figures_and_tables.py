"""Tests for repro.analysis: figure series and Table II computation."""

import pytest

from repro.analysis.figures import (
    fig6_cumulative_samples,
    fig8a_nearest_distance,
    fig8b_instantaneous_rate,
    fig8c_cumulative_insufficiency,
)
from repro.analysis.report import format_feet, render_series, render_table2
from repro.analysis.tables import Table2Row, compute_table2
from repro.perf.meter import Measurement
from repro.workloads import run_policy


@pytest.fixture(scope="module")
def adaptive_run(residential_scenario):
    return run_policy(residential_scenario, "adaptive", key_bits=512)


@pytest.fixture(scope="module")
def airport_adaptive(airport_scenario):
    return run_policy(airport_scenario, "adaptive", key_bits=512)


class TestFigureSeries:
    def test_fig6_monotone_cumulative(self, airport_adaptive):
        series = fig6_cumulative_samples(airport_adaptive)
        counts = [c for _, c in series]
        assert counts == sorted(counts)
        assert counts[-1] == airport_adaptive.sample_count

    def test_fig6_starts_near_30ft(self, airport_adaptive):
        series = fig6_cumulative_samples(airport_adaptive)
        assert series[0][0] == pytest.approx(30.0, abs=15.0)

    def test_fig8a_covers_run_and_matches_paper_bands(self,
                                                      residential_scenario):
        series = fig8a_nearest_distance(residential_scenario)
        assert series[0][0] == 0.0
        assert series[-1][0] == pytest.approx(residential_scenario.duration,
                                              abs=1.0)
        distances = [d for _, d in series]
        assert 15.0 < min(distances) < 30.0       # closest approach ~21 ft
        assert max(distances) < 200.0

    def test_fig8b_rate_bounded_by_receiver(self, adaptive_run):
        series = fig8b_instantaneous_rate(adaptive_run)
        rates = [r for _, r in series]
        assert max(rates) <= 5.0 + 0.5
        assert min(rates) >= 0.0

    def test_fig8b_total_integrates_to_sample_count(self, adaptive_run):
        series = fig8b_instantaneous_rate(adaptive_run, window_s=4.0,
                                          step_s=1.0)
        integrated = sum(rate for _, rate in series)
        assert integrated == pytest.approx(adaptive_run.sample_count,
                                           rel=0.15)

    def test_fig8c_cumulative_monotone(self, residential_scenario):
        run = run_policy(residential_scenario, "fixed", 2.0, key_bits=512)
        series = fig8c_cumulative_insufficiency(run)
        counts = [c for _, c in series]
        assert counts == sorted(counts)
        assert counts[-1] > 0


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        # Fixed-rate rows only: the scenario rows are exercised by the
        # benchmark harness (they re-run the field studies).
        return compute_table2(include_scenarios=False)

    def _cell(self, rows, bits, case):
        for row in rows:
            if row.key_bits == bits and row.case == case:
                return row
        raise AssertionError(f"missing row {bits}/{case}")

    def test_paper_1024_cells(self, rows):
        for rate, expected in [(2, 2.17), (3, 3.17), (5, 5.59)]:
            row = self._cell(rows, 1024, f"Fixed {rate} Hz")
            assert row.cpu_percent.mean == pytest.approx(expected, abs=0.45)

    def test_paper_2048_cells(self, rows):
        assert self._cell(rows, 2048, "Fixed 2 Hz").cpu_percent.mean == (
            pytest.approx(10.94, abs=0.6))
        assert self._cell(rows, 2048, "Fixed 3 Hz").cpu_percent.mean == (
            pytest.approx(16.81, abs=0.8))

    def test_2048_5hz_unsustainable(self, rows):
        row = self._cell(rows, 2048, "Fixed 5 Hz")
        assert row.cpu_percent is None
        assert not row.sustained

    def test_power_column_follows_equation_4(self, rows):
        row = self._cell(rows, 1024, "Fixed 2 Hz")
        expected = 1.5778 + 0.181 * row.cpu_percent.mean / 100.0
        assert row.power_w == pytest.approx(expected, abs=1e-6)


class TestRendering:
    def test_render_table2_layout(self):
        rows = [Table2Row(1024, "Fixed 2 Hz", Measurement(2.17, 0.05),
                          1.5817, 600),
                Table2Row(2048, "Fixed 5 Hz", None, None)]
        text = render_table2(rows)
        assert "Fixed 2 Hz" in text
        assert "-" in text
        assert "Memory: 3.27 MB" in text

    def test_render_series_decimates(self):
        series = [(float(i), float(i * i)) for i in range(100)]
        text = render_series("title", series, "x", "y", max_points=10)
        assert text.count("\n") <= 13
        assert "99.0" in text            # endpoint kept

    def test_render_empty_series(self):
        assert "(empty)" in render_series("t", [], "x", "y")

    def test_format_feet(self):
        assert format_feet(30.0) == "30.0 ft"
        assert format_feet(15840.0) == "15,840 ft"
