"""Tests for the ASCII chart renderer and the paper-reference data."""

import pytest

from repro.analysis.ascii_chart import ascii_chart
from repro.analysis import paper_reference as ref
from repro.errors import ConfigurationError


class TestAsciiChart:
    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart({"a": [(0, 0)]}, width=4, height=2)

    def test_contains_markers_and_legend(self):
        text = ascii_chart({"alpha": [(0.0, 1.0), (10.0, 5.0)],
                            "beta": [(5.0, 3.0)]})
        assert "*" in text and "+" in text
        assert "*=alpha" in text and "+=beta" in text

    def test_axis_extremes_labeled(self):
        text = ascii_chart({"s": [(2.0, 10.0), (20.0, 100.0)]},
                           x_label="t", y_label="v")
        assert "100" in text
        assert "10" in text
        assert "20" in text

    def test_monotone_series_renders_monotone(self):
        series = [(float(i), float(i)) for i in range(20)]
        text = ascii_chart({"line": series}, width=20, height=10)
        rows = [line.split("|", 1)[1] for line in text.splitlines()
                if "|" in line]
        # Marker columns must be non-increasing in row index as x grows.
        positions = {}
        for row_index, row in enumerate(rows):
            for col, char in enumerate(row):
                if char == "*":
                    positions.setdefault(col, row_index)
        columns = sorted(positions)
        row_indices = [positions[c] for c in columns]
        assert row_indices == sorted(row_indices, reverse=True)

    def test_log_scale_compresses_high_values(self):
        series = [(0.0, 1.0), (1.0, 10.0), (2.0, 100.0), (3.0, 1000.0)]
        text = ascii_chart({"s": series}, log_y=True, height=10, width=20)
        assert "(log y)" in text

    def test_title_included(self):
        assert ascii_chart({"s": [(0, 0), (1, 1)]},
                           title="My Chart").startswith("My Chart")

    def test_constant_series(self):
        text = ascii_chart({"flat": [(0.0, 5.0), (10.0, 5.0)]})
        assert "*" in text


class TestPaperReference:
    def test_fig6_constants(self):
        assert ref.FIG6_FIXED_1HZ_SAMPLES == 649
        assert ref.FIG6_ADAPTIVE_SAMPLES == 14

    def test_fig8_ordering(self):
        c = ref.FIG8C_INSUFFICIENT
        assert c["2hz"] > c["3hz"] > c["5hz"] == c["adaptive"] == 1

    def test_table2_dash_cells(self):
        assert not ref.table2_cell(2048, "Fixed 5 Hz").sustained
        assert not ref.table2_cell(2048, "Residential").sustained
        assert ref.table2_cell(1024, "Fixed 5 Hz").sustained

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            ref.table2_cell(4096, "Fixed 9 Hz")

    def test_power_cells_satisfy_equation_4(self):
        for cell in ref.TABLE2.values():
            if cell.cpu_mean is None or cell.power_w is None:
                continue
            expected = ref.POWER_IDLE_W + ref.POWER_SLOPE_W * cell.cpu_mean / 100.0
            assert cell.power_w == pytest.approx(expected, abs=3e-4)

    def test_derived_ratio(self):
        assert ref.derived_sign_cost_ratio() == pytest.approx(5.1, abs=0.1)

    def test_derived_costs_consistent_with_cells(self):
        """t_sign(bits) * rate * 100 / cores ~= the fixed-rate CPU cells."""
        for bits in (1024, 2048):
            for rate in (2.0, 3.0):
                cell = ref.table2_cell(bits, f"Fixed {rate:g} Hz")
                implied = ref.DERIVED_SIGN_COST_S[bits] * rate * 100.0 / 4.0
                assert implied == pytest.approx(cell.cpu_mean, rel=0.03)
