"""Unit tests for analysis.tables internals and the scenario rows."""

import pytest

from repro.analysis.tables import _peak_rate_hz, compute_table2
from repro.perf.costs import CostModel


class TestPeakRate:
    def test_empty(self):
        assert _peak_rate_hz([]) == 0.0

    def test_uniform_rate(self):
        times = [i * 0.5 for i in range(20)]          # 2 Hz
        assert _peak_rate_hz(times, window_s=2.0) == pytest.approx(2.0)

    def test_burst_detected(self):
        # 1 Hz background with a 5 Hz burst in the middle.
        times = [float(i) for i in range(10)]
        times += [5.0 + 0.2 * i for i in range(10)]
        times.sort()
        assert _peak_rate_hz(sorted(times), window_s=2.0) >= 5.0

    def test_single_sample(self):
        assert _peak_rate_hz([3.0], window_s=2.0) == pytest.approx(0.5)


class TestScenarioSustainability:
    def test_slow_platform_cannot_sustain_any_scenario(self):
        """A hypothetical platform with 1-second signs fails everything."""
        glacial = CostModel(sign_seconds={1024: 1.0, 2048: 5.0},
                            encrypt_seconds={1024: 0.01, 2048: 0.05})
        rows = compute_table2(costs=glacial, key_sizes=(1024,),
                              rates=(2.0,), include_scenarios=False)
        assert all(row.cpu_percent is None for row in rows)

    def test_fast_platform_sustains_everything(self):
        instant = CostModel(sign_seconds={1024: 1e-4, 2048: 5e-4},
                            encrypt_seconds={1024: 1e-5, 2048: 5e-5})
        rows = compute_table2(costs=instant, include_scenarios=False)
        assert all(row.cpu_percent is not None for row in rows)

    def test_unknown_scenario_rejected(self):
        from repro.analysis.tables import _scenario_row
        from repro.perf.costs import RASPBERRY_PI_3
        with pytest.raises(ValueError):
            _scenario_row("Volcano", 1024, RASPBERRY_PI_3, seed=0)
