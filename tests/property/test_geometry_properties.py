"""Property-based tests on the geometric core (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.circle import Circle, smallest_enclosing_circle
from repro.geo.ellipse import (
    TravelRangeEllipse,
    ellipse_disk_disjoint_conservative,
    ellipse_disk_disjoint_exact,
    min_focal_sum_over_disk,
)
from repro.geo.geodesy import GeoPoint, LocalFrame, haversine_distance_m

coords = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False)
radii = st.floats(min_value=0.1, max_value=200.0, allow_nan=False)
points = st.tuples(coords, coords)


@st.composite
def ellipses(draw):
    f1 = draw(points)
    f2 = draw(points)
    slack = draw(st.floats(min_value=0.0, max_value=500.0))
    return TravelRangeEllipse(f1, f2, math.dist(f1, f2) + slack)


@st.composite
def disks(draw):
    x, y = draw(points)
    return Circle(x, y, draw(radii))


class TestEllipseDiskProperties:
    @given(e=ellipses(), d=disks())
    @settings(max_examples=150, deadline=None)
    def test_conservative_is_sound(self, e, d):
        """Conservative 'disjoint' implies exact 'disjoint' — always."""
        if ellipse_disk_disjoint_conservative(e, d):
            assert ellipse_disk_disjoint_exact(e, d)

    @given(e=ellipses(), d=disks())
    @settings(max_examples=100, deadline=None)
    def test_min_focal_sum_lower_bounded_by_conservative_quantity(self, e, d):
        bound = d.distance_to_boundary(e.f1) + d.distance_to_boundary(e.f2)
        assert min_focal_sum_over_disk(e, d) >= bound - 1e-6

    @given(e=ellipses(), d=disks())
    @settings(max_examples=100, deadline=None)
    def test_min_focal_sum_at_least_focal_distance(self, e, d):
        assert min_focal_sum_over_disk(e, d) >= e.focal_distance - 1e-6

    @given(e=ellipses(), d=disks(),
           theta=st.floats(min_value=0.0, max_value=2 * math.pi),
           rho=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=150, deadline=None)
    def test_disjoint_means_no_disk_point_in_ellipse(self, e, d, theta, rho):
        """Exact disjointness: arbitrary disk points stay outside."""
        if ellipse_disk_disjoint_exact(e, d):
            p = (d.x + rho * d.r * math.cos(theta),
                 d.y + rho * d.r * math.sin(theta))
            assert not e.contains(p, tol=-1e-9) or e.focal_sum_at(p) >= (
                e.focal_sum - 1e-5)

    @given(e=ellipses(), d=disks())
    @settings(max_examples=100, deadline=None)
    def test_growing_focal_sum_never_creates_disjointness(self, e, d):
        """Monotonicity: a bigger travel range can only intersect more."""
        bigger = TravelRangeEllipse(e.f1, e.f2, e.focal_sum * 1.5 + 1.0)
        if not ellipse_disk_disjoint_exact(e, d):
            assert not ellipse_disk_disjoint_exact(bigger, d)


class TestWelzlProperties:
    @given(st.lists(points, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_encloses_all_points(self, pts):
        circle = smallest_enclosing_circle(pts)
        tol = 1e-6 * max(1.0, circle.r)
        assert all(circle.contains(p, tol=tol) for p in pts)

    @given(st.lists(points, min_size=2, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_radius_at_least_half_diameter(self, pts):
        circle = smallest_enclosing_circle(pts)
        max_dist = max(math.dist(a, b) for a in pts for b in pts)
        # The implementation treats points within 1e-7 * r as enclosed, so
        # the radius may undershoot by that relative amount.
        assert circle.r >= max_dist / 2.0 - 1e-6 - 1e-6 * circle.r

    @given(st.lists(points, min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_radius_at_most_bounding_box_diagonal(self, pts):
        circle = smallest_enclosing_circle(pts)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        diagonal = math.hypot(max(xs) - min(xs), max(ys) - min(ys))
        assert circle.r <= diagonal / math.sqrt(2.0) + 1e-6 + diagonal * 1e-9


class TestGeodesyProperties:
    lats = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
    lons = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)

    @given(lat1=lats, lon1=lons, lat2=lats, lon2=lons)
    @settings(max_examples=100, deadline=None)
    def test_haversine_symmetry_and_nonnegativity(self, lat1, lon1, lat2,
                                                  lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        d_ab = haversine_distance_m(a, b)
        assert d_ab >= 0.0
        assert math.isclose(d_ab, haversine_distance_m(b, a), rel_tol=1e-9,
                            abs_tol=1e-9)

    @given(lat=st.floats(min_value=-60.0, max_value=60.0),
           lon=lons,
           x=st.floats(min_value=-5000.0, max_value=5000.0),
           y=st.floats(min_value=-5000.0, max_value=5000.0))
    @settings(max_examples=100, deadline=None)
    def test_local_frame_round_trip(self, lat, lon, x, y):
        frame = LocalFrame(GeoPoint(lat, lon))
        point = frame.to_geo(x, y)
        bx, by = frame.to_local(point)
        assert math.isclose(bx, x, abs_tol=1e-6)
        assert math.isclose(by, y, abs_tol=1e-6)
