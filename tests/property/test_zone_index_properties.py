"""Equivalence properties of the zone-proximity index.

The index is a pure optimisation: every query must agree with the O(Z)
brute-force scan it replaces, and every consumer (sampler, verifier)
must behave identically with and without it.  These properties are the
contract the NFZ-scale benchmark's speedups rest on.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sufficiency import (
    insufficient_pairs_indexed,
    insufficient_pairs_projected,
)
from repro.geo.circle import Circle
from repro.geo.proximity import ZoneProximityIndex
from repro.workloads import build_random_scenario, run_policy

finite = {"allow_nan": False, "allow_infinity": False}


@st.composite
def circle_fields(draw, max_circles=40):
    n = draw(st.integers(min_value=1, max_value=max_circles))
    circles = []
    for _ in range(n):
        x = draw(st.floats(min_value=-800.0, max_value=800.0, **finite))
        y = draw(st.floats(min_value=-800.0, max_value=800.0, **finite))
        r = draw(st.floats(min_value=0.5, max_value=150.0, **finite))
        circles.append(Circle(x, y, r))
    return circles


@st.composite
def query_points(draw, lo=-1_000.0, hi=1_000.0):
    return (draw(st.floats(min_value=lo, max_value=hi, **finite)),
            draw(st.floats(min_value=lo, max_value=hi, **finite)))


class TestNearestBoundaryProperty:
    @given(circles=circle_fields(), point=query_points())
    @settings(max_examples=120, deadline=None)
    def test_equals_brute_force_min(self, circles, point):
        index = ZoneProximityIndex.from_circles(circles)
        got_i, got_d = index.nearest_boundary(point)
        best_i, best_d = -1, math.inf
        for i, circle in enumerate(circles):
            d = circle.distance_to_boundary(point)
            if d < best_d:
                best_i, best_d = i, d
        assert (got_i, got_d) == (best_i, best_d)

    @given(circles=circle_fields(), point=query_points(),
           cutoff=st.floats(min_value=0.0, max_value=400.0, **finite))
    @settings(max_examples=120, deadline=None)
    def test_cutoff_contract(self, circles, point, cutoff):
        index = ZoneProximityIndex.from_circles(circles)
        true_min = min(c.distance_to_boundary(point) for c in circles)
        _, got = index.nearest_boundary(point, cutoff_m=cutoff)
        assert (true_min > cutoff) == (got > cutoff)
        if true_min <= cutoff:
            assert got == true_min


class TestPairDistanceProperty:
    @given(circles=circle_fields(), a=query_points(),
           cutoff=st.floats(min_value=0.0, max_value=400.0, **finite),
           dx=st.floats(min_value=-30.0, max_value=30.0, **finite),
           dy=st.floats(min_value=-30.0, max_value=30.0, **finite))
    @settings(max_examples=120, deadline=None)
    def test_min_pair_sum_and_cutoff_contract(self, circles, a, cutoff,
                                              dx, dy):
        b = (a[0] + dx, a[1] + dy)
        index = ZoneProximityIndex.from_circles(circles)
        true_min = min(c.distance_to_boundary(a) + c.distance_to_boundary(b)
                       for c in circles)
        assert index.min_pair_distance(a, b) == true_min
        pruned = index.min_pair_distance(a, b, cutoff_m=cutoff)
        assert (true_min > cutoff) == (pruned > cutoff)
        if true_min <= cutoff:
            assert pruned == true_min

    @given(circles=circle_fields(), a=query_points(),
           max_sum=st.floats(min_value=0.0, max_value=500.0, **finite))
    @settings(max_examples=80, deadline=None)
    def test_pair_candidates_is_exact_filter(self, circles, a, max_sum):
        b = (a[0] + 11.0, a[1] - 7.0)
        index = ZoneProximityIndex.from_circles(circles)
        brute = [i for i, c in enumerate(circles)
                 if c.distance_to_boundary(a)
                 + c.distance_to_boundary(b) <= max_sum]
        assert index.pair_candidates(a, b, max_sum) == brute


@st.composite
def tracks_and_circles(draw):
    circles = draw(circle_fields(max_circles=25))
    n = draw(st.integers(min_value=2, max_value=12))
    positions = []
    x = draw(st.floats(min_value=-500.0, max_value=500.0, **finite))
    y = draw(st.floats(min_value=-500.0, max_value=500.0, **finite))
    times = [0.0]
    for _ in range(n):
        positions.append((x, y))
        x += draw(st.floats(min_value=-15.0, max_value=15.0, **finite))
        y += draw(st.floats(min_value=-15.0, max_value=15.0, **finite))
        times.append(times[-1]
                     + draw(st.floats(min_value=0.0, max_value=3.0, **finite)))
    return circles, positions, times[:n]


class TestSufficiencyEquivalence:
    @given(case=tracks_and_circles())
    @settings(max_examples=60, deadline=None)
    def test_conservative_method_identical(self, case):
        circles, positions, times = case
        index = ZoneProximityIndex.from_circles(circles)
        assert (insufficient_pairs_indexed(positions, times, index)
                == insufficient_pairs_projected(positions, times, circles))

    @given(case=tracks_and_circles())
    @settings(max_examples=25, deadline=None)
    def test_exact_method_identical(self, case):
        circles, positions, times = case
        index = ZoneProximityIndex.from_circles(circles)
        assert (insufficient_pairs_indexed(positions, times, index,
                                           method="exact")
                == insufficient_pairs_projected(positions, times, circles,
                                                method="exact"))


class TestSamplerReplayEquivalence:
    def test_decisions_identical_with_and_without_index(self):
        """One replayed flight, same device/receiver seeds: the indexed
        sampler must take the same samples at the same instants and emit
        the same events and PoA payloads as the brute-force scan.
        """
        scenario = build_random_scenario(seed=5, n_zones=12, area_m=800.0)
        runs = [run_policy(scenario, "adaptive", key_bits=512, seed=5,
                           use_index=flag) for flag in (True, False)]
        indexed, brute = runs
        assert indexed.sample_times == brute.sample_times
        assert ([(e.time, e.kind, e.detail) for e in indexed.result.events]
                == [(e.time, e.kind, e.detail) for e in brute.result.events])
        assert ([(s.payload, s.signature) for s in indexed.result.poa]
                == [(s.payload, s.signature) for s in brute.result.poa])
