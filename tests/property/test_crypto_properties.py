"""Property-based tests on the crypto substrate (hypothesis).

Keys are expensive, so all properties run against a handful of
session-fixture keypairs rather than generating keys per example.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_sign import hmac_sign, hmac_verify
from repro.crypto.keys import (
    private_key_from_bytes,
    private_key_to_bytes,
    public_key_from_bytes,
    public_key_to_bytes,
)
from repro.crypto.onetime import OneTimeKey, onetime_decrypt, onetime_encrypt
from repro.crypto.pkcs1 import (
    decrypt_pkcs1_v15,
    encrypt_pkcs1_v15,
    sign_pkcs1_v15,
    verify_pkcs1_v15,
)

messages = st.binary(min_size=0, max_size=53)  # fits 512-bit RSAES
long_messages = st.binary(min_size=0, max_size=4096)


class TestPkcs1Properties:
    @given(message=long_messages)
    @settings(max_examples=50, deadline=None)
    def test_sign_verify_round_trip(self, signing_key, message):
        signature = sign_pkcs1_v15(signing_key, message)
        assert verify_pkcs1_v15(signing_key.public_key, message, signature)

    @given(message=long_messages, suffix=st.binary(min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_extended_message_fails(self, signing_key, message, suffix):
        signature = sign_pkcs1_v15(signing_key, message)
        assert not verify_pkcs1_v15(signing_key.public_key,
                                    message + suffix, signature)

    @given(message=messages, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_encrypt_decrypt_round_trip(self, signing_key, message, seed):
        ciphertext = encrypt_pkcs1_v15(signing_key.public_key, message,
                                       rng=random.Random(seed))
        assert decrypt_pkcs1_v15(signing_key, ciphertext) == message

    @given(message=long_messages)
    @settings(max_examples=30, deadline=None)
    def test_cross_key_verification_fails(self, signing_key, other_key,
                                          message):
        signature = sign_pkcs1_v15(signing_key, message)
        assert not verify_pkcs1_v15(other_key.public_key, message, signature)


class TestKeyEncodingProperties:
    def test_round_trips(self, signing_key):
        assert public_key_from_bytes(
            public_key_to_bytes(signing_key.public_key)) == signing_key.public_key
        assert private_key_from_bytes(
            private_key_to_bytes(signing_key)) == signing_key


class TestSymmetricProperties:
    @given(message=long_messages, key_seed=st.integers(0, 2**32))
    @settings(max_examples=80, deadline=None)
    def test_onetime_round_trip(self, message, key_seed):
        key = OneTimeKey.generate(random.Random(key_seed))
        assert onetime_decrypt(key, onetime_encrypt(key, message)) == message

    @given(message=long_messages, key_seed=st.integers(0, 2**32),
           flip=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_onetime_any_bitflip_detected(self, message, key_seed, flip):
        from repro.errors import EncryptionError
        import pytest
        key = OneTimeKey.generate(random.Random(key_seed))
        blob = bytearray(onetime_encrypt(key, message))
        blob[flip % len(blob)] ^= 0x01
        with pytest.raises(EncryptionError):
            onetime_decrypt(key, bytes(blob))

    @given(message=long_messages, key_seed=st.integers(0, 2**32))
    @settings(max_examples=80, deadline=None)
    def test_hmac_round_trip(self, message, key_seed):
        key = random.Random(key_seed).randbytes(32)
        assert hmac_verify(key, message, hmac_sign(key, message))

    @given(message=long_messages, key_seed=st.integers(0, 2**32),
           flip=st.integers(min_value=0, max_value=31))
    @settings(max_examples=60, deadline=None)
    def test_hmac_tag_bitflip_detected(self, message, key_seed, flip):
        key = random.Random(key_seed).randbytes(32)
        tag = bytearray(hmac_sign(key, message))
        tag[flip] ^= 0x01
        assert not hmac_verify(key, message, bytes(tag))
