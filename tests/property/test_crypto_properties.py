"""Property-based tests on the crypto substrate (hypothesis).

Keys are expensive, so all properties run against a handful of
session-fixture keypairs rather than generating keys per example.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_sign import hmac_sign, hmac_verify
from repro.crypto.keys import (
    private_key_from_bytes,
    private_key_to_bytes,
    public_key_from_bytes,
    public_key_to_bytes,
)
from repro.crypto.onetime import OneTimeKey, onetime_decrypt, onetime_encrypt
from repro.crypto.pkcs1 import (
    decrypt_pkcs1_v15,
    encrypt_pkcs1_v15,
    i2osp,
    os2ip,
    sign_pkcs1_v15,
    verify_pkcs1_v15,
)
from repro.crypto.schemes import authenticate_payloads, get_scheme, scheme_ids
from repro.errors import CryptoError, SchemeError

messages = st.binary(min_size=0, max_size=53)  # fits 512-bit RSAES
long_messages = st.binary(min_size=0, max_size=4096)


class TestPkcs1Properties:
    @given(message=long_messages)
    @settings(max_examples=50, deadline=None)
    def test_sign_verify_round_trip(self, signing_key, message):
        signature = sign_pkcs1_v15(signing_key, message)
        assert verify_pkcs1_v15(signing_key.public_key, message, signature)

    @given(message=long_messages, suffix=st.binary(min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_extended_message_fails(self, signing_key, message, suffix):
        signature = sign_pkcs1_v15(signing_key, message)
        assert not verify_pkcs1_v15(signing_key.public_key,
                                    message + suffix, signature)

    @given(message=messages, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_encrypt_decrypt_round_trip(self, signing_key, message, seed):
        ciphertext = encrypt_pkcs1_v15(signing_key.public_key, message,
                                       rng=random.Random(seed))
        assert decrypt_pkcs1_v15(signing_key, ciphertext) == message

    @given(message=long_messages)
    @settings(max_examples=30, deadline=None)
    def test_cross_key_verification_fails(self, signing_key, other_key,
                                          message):
        signature = sign_pkcs1_v15(signing_key, message)
        assert not verify_pkcs1_v15(other_key.public_key, message, signature)


class TestKeyEncodingProperties:
    def test_round_trips(self, signing_key):
        assert public_key_from_bytes(
            public_key_to_bytes(signing_key.public_key)) == signing_key.public_key
        assert private_key_from_bytes(
            private_key_to_bytes(signing_key)) == signing_key


class TestSymmetricProperties:
    @given(message=long_messages, key_seed=st.integers(0, 2**32))
    @settings(max_examples=80, deadline=None)
    def test_onetime_round_trip(self, message, key_seed):
        key = OneTimeKey.generate(random.Random(key_seed))
        assert onetime_decrypt(key, onetime_encrypt(key, message)) == message

    @given(message=long_messages, key_seed=st.integers(0, 2**32),
           flip=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_onetime_any_bitflip_detected(self, message, key_seed, flip):
        from repro.errors import EncryptionError
        import pytest
        key = OneTimeKey.generate(random.Random(key_seed))
        blob = bytearray(onetime_encrypt(key, message))
        blob[flip % len(blob)] ^= 0x01
        with pytest.raises(EncryptionError):
            onetime_decrypt(key, bytes(blob))

    @given(message=long_messages, key_seed=st.integers(0, 2**32))
    @settings(max_examples=80, deadline=None)
    def test_hmac_round_trip(self, message, key_seed):
        key = random.Random(key_seed).randbytes(32)
        assert hmac_verify(key, message, hmac_sign(key, message))

    @given(message=long_messages, key_seed=st.integers(0, 2**32),
           flip=st.integers(min_value=0, max_value=31))
    @settings(max_examples=60, deadline=None)
    def test_hmac_tag_bitflip_detected(self, message, key_seed, flip):
        key = random.Random(key_seed).randbytes(32)
        tag = bytearray(hmac_sign(key, message))
        tag[flip] ^= 0x01
        assert not hmac_verify(key, message, bytes(tag))

    @given(message=long_messages, key_seed=st.integers(0, 2**32),
           tamper=st.binary(min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_hmac_message_tamper_detected(self, message, key_seed, tamper):
        key = random.Random(key_seed).randbytes(32)
        tag = hmac_sign(key, message)
        altered = message + tamper
        assert not hmac_verify(key, altered, tag)
        assert hmac_verify(key, message, tag)


class TestOctetStringProperties:
    @given(length=st.integers(min_value=0, max_value=64),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_i2osp_os2ip_round_trip(self, length, data):
        x = data.draw(st.integers(min_value=0,
                                  max_value=256 ** length - 1))
        octets = i2osp(x, length)
        assert len(octets) == length
        assert os2ip(octets) == x

    @given(length=st.integers(min_value=0, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_i2osp_boundaries(self, length):
        # The largest representable integer fits exactly; one past it is a
        # *typed* error, never a silent wrap or a bare exception.
        top = 256 ** length - 1
        assert os2ip(i2osp(top, length)) == top
        import pytest
        with pytest.raises(CryptoError):
            i2osp(top + 1, length)

    @given(octets=st.binary(min_size=0, max_size=64),
           pad=st.integers(min_value=0, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_os2ip_ignores_leading_zeros(self, octets, pad):
        assert os2ip(b"\x00" * pad + octets) == os2ip(octets)


class TestSchemeProperties:
    """The AuthScheme contract: verify() never raises, errors are typed."""

    @given(scheme_id=st.sampled_from(sorted(scheme_ids())),
           count=st.integers(min_value=1, max_value=6),
           seed=st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_honest_flight_verifies(self, signing_key, scheme_id, count,
                                    seed):
        rng = random.Random(seed)
        payloads = [rng.randbytes(36) for _ in range(count)]
        blobs, finalizer = authenticate_payloads(
            signing_key, payloads, scheme_id=scheme_id, rng=rng)
        scheme = get_scheme(scheme_id)
        assert scheme.verify(signing_key.public_key,
                             list(zip(payloads, blobs)), finalizer) == []

    @given(signed_under=st.sampled_from(sorted(scheme_ids())),
           verified_as=st.sampled_from(sorted(scheme_ids())),
           seed=st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_wrong_scheme_rejects_without_raising(self, signing_key,
                                                  signed_under, verified_as,
                                                  seed):
        rng = random.Random(seed)
        payloads = [rng.randbytes(36) for _ in range(4)]
        blobs, finalizer = authenticate_payloads(
            signing_key, payloads, scheme_id=signed_under, rng=rng)
        bad = get_scheme(verified_as).verify(
            signing_key.public_key, list(zip(payloads, blobs)), finalizer)
        assert bad == sorted(bad)
        assert all(0 <= i < len(payloads) for i in bad)
        if signed_under != verified_as:
            # A flight authenticated under one scheme must not pass
            # wholesale under another; at least one entry is condemned.
            assert bad

    @given(scheme_id=st.sampled_from(sorted(scheme_ids())),
           blobs=st.lists(st.binary(min_size=0, max_size=80), min_size=1,
                          max_size=5),
           finalizer=st.binary(min_size=0, max_size=120),
           seed=st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_garbage_blobs_reject_without_raising(self, signing_key,
                                                  scheme_id, blobs,
                                                  finalizer, seed):
        rng = random.Random(seed)
        entries = [(rng.randbytes(36), blob) for blob in blobs]
        bad = get_scheme(scheme_id).verify(signing_key.public_key, entries,
                                           finalizer)
        assert bad == sorted(bad)
        assert set(bad) <= set(range(len(entries)))
        assert bad  # random authenticators never verify

    @given(name=st.text(min_size=0, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_unknown_scheme_is_typed_error(self, name):
        import pytest
        if name in scheme_ids():
            return
        with pytest.raises(SchemeError):
            get_scheme(name)
