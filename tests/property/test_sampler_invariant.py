"""The adaptive sampler's core guarantee, as a property test.

Claim (paper §IV-C3): with a receiver that never misses an update and a
drone that keeps clear of every zone, Algorithm 1 (with the 2/R margin)
produces a Proof-of-Alibi that is *sufficient* — equation (1) holds for
every consecutive pair — no matter the zone layout or flight path.

The test double below drives the algorithm directly over a ground-truth
trajectory (no TEE, no signatures — the invariant under test is geometric),
generating random zone fields and random piecewise-linear flights with
hypothesis.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.nfz import NoFlyZone
from repro.core.poa import SignedSample
from repro.core.samples import GpsSample
from repro.core.sampling import AdaptiveSampler
from repro.core.sufficiency import alibi_is_sufficient
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH
from repro.units import FAA_MAX_SPEED_MPS

T0 = DEFAULT_EPOCH
FRAME = LocalFrame(GeoPoint(40.1, -88.22))

#: The sampler can react within one update period; a zone can close in on
#: the drone's *position* at most v_drone per second, but the sufficiency
#: bound consumes v_max * dt, so the path must keep at least one update
#: period of v_max in D1+D2 headroom: clearance > v_max / (2 R) per focus.
GPS_RATE_HZ = 5.0
MIN_CLEARANCE_M = FAA_MAX_SPEED_MPS / GPS_RATE_HZ  # 2x the strict bound


class ScriptedHarness:
    """A SamplingHarness over a trajectory, with a perfect 5 Hz receiver."""

    def __init__(self, source: WaypointSource, rate_hz: float = GPS_RATE_HZ):
        self.source = source
        self.period = 1.0 / rate_hz
        self._now = source.start_time

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        self._now = max(self._now, t)

    def _fix_time(self, t: float) -> float:
        # Tolerance must exceed float granularity at epoch scale (~2.4e-7
        # near 1.5e9), or grid arithmetic stalls.
        k = math.floor((t - self.source.start_time) / self.period + 1e-6)
        return self.source.start_time + k * self.period

    def _sample_at(self, t: float) -> GpsSample:
        x, y = self.source.position_at(t)
        point = FRAME.to_geo(x, y)
        return GpsSample(lat=point.lat, lon=point.lon, t=t)

    def read_gps(self) -> GpsSample:
        return self._sample_at(self._fix_time(self._now))

    def next_update_after(self, t: float) -> float:
        nxt = self._fix_time(t) + self.period
        # Guarantee progress despite float rounding at epoch magnitude.
        while nxt <= t + 1e-7:
            nxt += self.period
        return nxt

    def next_fix_time_after(self, t: float) -> float:
        return self.next_update_after(t)

    def get_gps_auth(self) -> SignedSample:
        sample = self.read_gps()
        return SignedSample(payload=sample.to_signed_payload(),
                            signature=b"")


@st.composite
def flight_and_zones(draw):
    """A piecewise-linear sub-v_max flight plus clear-of-path zones."""
    n_legs = draw(st.integers(min_value=1, max_value=4))
    speed = draw(st.floats(min_value=2.0, max_value=17.0))
    waypoints = [(T0, 0.0, 0.0)]
    x = y = 0.0
    t = T0
    for _ in range(n_legs):
        heading = draw(st.floats(min_value=0.0, max_value=2.0 * math.pi))
        length = draw(st.floats(min_value=30.0, max_value=300.0))
        dt = length / speed
        x += length * math.cos(heading)
        y += length * math.sin(heading)
        t += dt
        waypoints.append((t, x, y))
    source = WaypointSource(waypoints)

    n_zones = draw(st.integers(min_value=1, max_value=5))
    zones = []
    for _ in range(n_zones):
        zx = draw(st.floats(min_value=-600.0, max_value=900.0))
        zy = draw(st.floats(min_value=-600.0, max_value=900.0))
        radius = draw(st.floats(min_value=3.0, max_value=60.0))
        zones.append((zx, zy, radius))
    return source, zones


def _path_clearance(source: WaypointSource, zx, zy, r) -> float:
    worst = math.inf
    t = source.start_time
    while t <= source.end_time + 1e-9:
        x, y = source.position_at(t)
        worst = min(worst, math.hypot(x - zx, y - zy) - r)
        t += 0.05
    return worst


class TestAdaptiveSamplerInvariant:
    @given(case=flight_and_zones())
    @settings(max_examples=40, deadline=None)
    def test_poa_always_sufficient_without_misses(self, case):
        source, raw_zones = case
        zones = []
        for zx, zy, r in raw_zones:
            # Keep only zones the flight actually stays clear of (with the
            # reaction-headroom margin); a flight through a zone can never
            # prove alibi, with any sampler.
            if _path_clearance(source, zx, zy, r) > MIN_CLEARANCE_M:
                center = FRAME.to_geo(zx, zy)
                zones.append(NoFlyZone(center.lat, center.lon, r))
        assume(zones)

        harness = ScriptedHarness(source)
        sampler = AdaptiveSampler(zones, FRAME, gps_rate_hz=GPS_RATE_HZ)
        result = sampler.run(harness, source.end_time)

        samples = [entry.sample for entry in result.poa]
        assert result.stats.auth_samples >= 1
        assert alibi_is_sufficient(samples, zones, FRAME), (
            f"insufficient PoA with {len(samples)} samples over "
            f"{source.duration:.1f} s")

    @given(case=flight_and_zones())
    @settings(max_examples=20, deadline=None)
    def test_samples_are_subset_of_receiver_updates(self, case):
        """Every authenticated sample lies on the receiver's update grid."""
        source, _ = case
        center = FRAME.to_geo(100.0, 100.0)
        zones = [NoFlyZone(center.lat, center.lon, 10.0)]
        harness = ScriptedHarness(source)
        result = AdaptiveSampler(zones, FRAME,
                                 gps_rate_hz=GPS_RATE_HZ).run(
            harness, source.end_time)
        for entry in result.poa:
            offset = (entry.sample.t - T0) / (1.0 / GPS_RATE_HZ)
            assert abs(offset - round(offset)) < 1e-3
