"""Property-based tests on protocol data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.sufficiency import (
    alibi_is_sufficient,
    insufficient_pair_indices,
    pair_is_sufficient,
)
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.nmea import GpsFix, format_gprmc, parse_gprmc
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH
FRAME = LocalFrame(GeoPoint(40.1, -88.22))

lat_small = st.floats(min_value=40.05, max_value=40.15, allow_nan=False)
lon_small = st.floats(min_value=-88.27, max_value=-88.17, allow_nan=False)
times = st.floats(min_value=T0, max_value=T0 + 3600.0, allow_nan=False)


@st.composite
def samples(draw):
    return GpsSample(lat=draw(lat_small), lon=draw(lon_small), t=draw(times))


@st.composite
def zones(draw):
    return NoFlyZone(draw(lat_small), draw(lon_small),
                     draw(st.floats(min_value=1.0, max_value=500.0)))


class TestPayloadProperties:
    @given(s=samples())
    @settings(max_examples=150, deadline=None)
    def test_payload_round_trip_within_quantization(self, s):
        back = GpsSample.from_signed_payload(s.to_signed_payload())
        assert math.isclose(back.lat, s.lat, abs_tol=1e-7)
        assert math.isclose(back.lon, s.lon, abs_tol=1e-7)
        assert math.isclose(back.t, s.t, abs_tol=1e-6)

    @given(s=samples())
    @settings(max_examples=100, deadline=None)
    def test_canonicalization_is_idempotent(self, s):
        assert s.canonical().canonical() == s.canonical()

    @given(entries=st.lists(samples(), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_poa_serialization_round_trip(self, entries):
        poa = ProofOfAlibi(
            SignedSample(payload=s.to_signed_payload(), signature=b"\x01" * 64)
            for s in entries)
        assert ProofOfAlibi.from_bytes(poa.to_bytes()).entries == poa.entries


class TestSufficiencyProperties:
    @given(a=samples(), b=samples(), zone=zones())
    @settings(max_examples=150, deadline=None)
    def test_pair_order_normalization(self, a, b, zone):
        first, second = (a, b) if a.t <= b.t else (b, a)
        # A shorter time gap (same endpoints) can only help sufficiency.
        if pair_is_sufficient(first, second, [zone], FRAME):
            squeezed = GpsSample(lat=second.lat, lon=second.lon,
                                 t=max(first.t,
                                       second.t - (second.t - first.t) / 2))
            assert pair_is_sufficient(first, squeezed, [zone], FRAME)

    @given(trace=st.lists(samples(), min_size=2, max_size=12),
           zone_list=st.lists(zones(), min_size=0, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_subset_of_zones_never_harder(self, trace, zone_list):
        ordered = sorted(trace, key=lambda s: s.t)
        full = insufficient_pair_indices(ordered, zone_list, FRAME)
        for k in range(len(zone_list)):
            subset = zone_list[:k]
            partial = insufficient_pair_indices(ordered, subset, FRAME)
            assert set(partial) <= set(full)

    @given(data=st.data(), zone_list=st.lists(zones(), min_size=1,
                                              max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_removing_samples_never_helps(self, data, zone_list):
        """Dropping samples from a *feasible* trace never turns an
        insufficient alibi sufficient.

        This is the paper's E(Si, Sj) subset-of E(Si, Sk) argument; it
        requires physical feasibility (consecutive displacement at most
        v_max * dt) — infeasible traces are rejected by the verifier's
        feasibility stage instead, where this monotonicity does not hold.
        """
        from repro.units import FAA_MAX_SPEED_MPS
        n = data.draw(st.integers(min_value=3, max_value=10))
        x, y = data.draw(st.tuples(
            st.floats(-2000, 2000), st.floats(-2000, 2000)))
        t = T0
        ordered = []
        for _ in range(n):
            point = FRAME.to_geo(x, y)
            ordered.append(GpsSample(lat=point.lat, lon=point.lon, t=t))
            dt = data.draw(st.floats(min_value=0.1, max_value=5.0))
            heading = data.draw(st.floats(min_value=0.0,
                                          max_value=2 * math.pi))
            step = data.draw(st.floats(min_value=0.0, max_value=0.9))
            distance = step * FAA_MAX_SPEED_MPS * dt
            x += distance * math.cos(heading)
            y += distance * math.sin(heading)
            t += dt
        if alibi_is_sufficient(ordered, zone_list, FRAME):
            return
        # Thin interior samples but keep both endpoints: dropping the final
        # sample would also shrink the time interval the alibi covers, and
        # the monotonicity argument only applies to the covered interval
        # (a trace whose sole insufficient pair is its last could otherwise
        # become vacuously "sufficient" by forgetting that pair existed).
        thinned = ordered[::2]
        if thinned[-1] is not ordered[-1]:
            thinned.append(ordered[-1])
        assert not alibi_is_sufficient(thinned, zone_list, FRAME)


class TestNmeaProperties:
    @given(lat=st.floats(min_value=-89.9, max_value=89.9, allow_nan=False),
           lon=st.floats(min_value=-179.9, max_value=179.9, allow_nan=False),
           t=times,
           speed=st.floats(min_value=0.0, max_value=100.0),
           course=st.floats(min_value=0.0, max_value=359.99))
    @settings(max_examples=150, deadline=None)
    def test_gprmc_round_trip(self, lat, lon, t, speed, course):
        fix = GpsFix(lat=lat, lon=lon, time=t, speed_mps=speed,
                     course_deg=course)
        parsed = parse_gprmc(format_gprmc(fix))
        assert math.isclose(parsed.lat, lat, abs_tol=2e-6)
        assert math.isclose(parsed.lon, lon, abs_tol=2e-6)
        assert math.isclose(parsed.time, t, abs_tol=0.011)
        assert math.isclose(parsed.speed_mps, speed, abs_tol=0.01)
