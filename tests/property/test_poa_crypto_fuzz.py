"""Property + fuzz coverage for the signed-sample crypto envelope.

Complements ``test_crypto_properties.py``: those tests exercise the raw
PKCS#1 v1.5 primitives; these pin the *protocol* layer — the canonical
GPS payload encoding, the :class:`SignedSample` envelope, and the claim
the adversary subsystem leans on everywhere: **any** single-byte
mutation of a signed sample (payload or signature, any position, any
value) makes verification fail.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.poa import SignedSample
from repro.core.samples import GpsSample
from repro.crypto.pkcs1 import (
    decrypt_pkcs1_v15,
    encrypt_pkcs1_v15,
    sign_pkcs1_v15,
)
from repro.errors import CryptoError, EncodingError

lats = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
lons = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=4e9, allow_nan=False)
alts = st.none() | st.floats(min_value=-400.0, max_value=20_000.0,
                             allow_nan=False)


def make_signed(key, lat, lon, t, alt=None) -> SignedSample:
    payload = GpsSample(lat, lon, t, alt).to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


class TestPayloadRoundTrip:
    @given(lat=lats, lon=lons, t=times, alt=alts)
    @settings(max_examples=100, deadline=None)
    def test_payload_encoding_round_trips(self, lat, lon, t, alt):
        sample = GpsSample(lat, lon, t, alt)
        decoded = GpsSample.from_signed_payload(sample.to_signed_payload())
        # The encoding quantizes (1.1 cm / 1 us / 1 mm) — round-tripping
        # must be exact at the second encoding even when the first one
        # rounded the raw floats.
        assert decoded.to_signed_payload() == sample.to_signed_payload()
        assert abs(decoded.lat - lat) <= 1e-7
        assert abs(decoded.lon - lon) <= 1e-7
        assert abs(decoded.t - t) <= 1e-5
        if alt is None:
            assert decoded.alt is None

    @given(lat=lats, lon=lons, t=times)
    @settings(max_examples=50, deadline=None)
    def test_sign_then_verify_then_decode(self, signing_key, lat, lon, t):
        entry = make_signed(signing_key, lat, lon, t)
        assert entry.verify(signing_key.public_key, "sha1")
        decoded = entry.sample
        assert decoded.to_signed_payload() == entry.payload

    @given(payload_size=st.integers(min_value=0, max_value=53),
           seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_rsaes_round_trip_over_payload_sizes(self, signing_key,
                                                 payload_size, seed):
        rng = random.Random(seed)
        message = rng.randbytes(payload_size)
        ciphertext = encrypt_pkcs1_v15(signing_key.public_key, message,
                                       rng=random.Random(seed + 1))
        assert decrypt_pkcs1_v15(signing_key, ciphertext) == message


class TestSingleByteMutation:
    """No single-byte corruption of a signed sample survives verification."""

    @given(lat=lats, lon=lons, t=times,
           offset=st.integers(min_value=0),
           delta=st.integers(min_value=1, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_payload_mutation_fails_verification(self, signing_key,
                                                 lat, lon, t, offset, delta):
        entry = make_signed(signing_key, lat, lon, t)
        mutated = bytearray(entry.payload)
        index = offset % len(mutated)
        mutated[index] = (mutated[index] + delta) % 256
        forged = SignedSample(payload=bytes(mutated),
                              signature=entry.signature)
        assert not forged.verify(signing_key.public_key, "sha1")

    @given(lat=lats, lon=lons, t=times,
           offset=st.integers(min_value=0),
           delta=st.integers(min_value=1, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_signature_mutation_fails_verification(self, signing_key,
                                                   lat, lon, t, offset,
                                                   delta):
        entry = make_signed(signing_key, lat, lon, t)
        mutated = bytearray(entry.signature)
        index = offset % len(mutated)
        mutated[index] = (mutated[index] + delta) % 256
        forged = SignedSample(payload=entry.payload,
                              signature=bytes(mutated))
        assert not forged.verify(signing_key.public_key, "sha1")

    def test_exhaustive_single_byte_sweep_on_one_sample(self, signing_key):
        """Deterministic exhaustion at one point: every byte of payload
        and signature, corruption never verifies and never escapes as an
        untyped error."""
        entry = make_signed(signing_key, 40.1, -88.2, 1_234_567.0, 120.0)
        blob = entry.payload + entry.signature
        cut = len(entry.payload)
        for index in range(len(blob)):
            mutated = bytearray(blob)
            mutated[index] ^= 0xFF
            forged = SignedSample(payload=bytes(mutated[:cut]),
                                  signature=bytes(mutated[cut:]))
            try:
                ok = forged.verify(signing_key.public_key, "sha1")
            except CryptoError:
                continue  # typed failure counts as rejection
            assert not ok, f"mutation at byte {index} verified"

    @given(data=st.binary(min_size=0, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_truncated_payload_decodes_to_typed_error(self, data):
        try:
            GpsSample.from_signed_payload(data)
        except EncodingError:
            pass
        else:  # pragma: no cover - would be a conformance bug
            raise AssertionError("truncated payload decoded")
