"""Metamorphic security property: NO single-byte tamper survives the verifier.

The unforgeability goal (G3) as a hypothesis property: take an honestly
produced, Auditor-accepted PoA submission; flip any single bit of any
record (ciphertext or signature); the verifier must no longer return
ACCEPTED.  This covers the whole receive path — decryption, signature
check, payload decode — against arbitrary bit-level tampering.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfz import NoFlyZone
from repro.core.poa import (
    EncryptedPoaRecord,
    ProofOfAlibi,
    SignedSample,
    encrypt_poa,
)
from repro.core.protocol import PoaSubmission
from repro.core.samples import GpsSample
from repro.core.verification import VerificationStatus
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH
FRAME = LocalFrame(GeoPoint(40.1, -88.22))


@pytest.fixture(scope="module")
def accepted_submission(signing_key, other_key):
    """An honest, accepted submission against a fresh server."""
    from repro.core.protocol import (
        DroneRegistrationRequest,
        ZoneRegistrationRequest,
    )
    from repro.server.auditor import AliDroneServer

    server = AliDroneServer(FRAME, rng=random.Random(71),
                            encryption_key_bits=512)
    center = FRAME.to_geo(0.0, 0.0)
    server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 50.0),
        proof_of_ownership="deed"))
    drone_id = server.register_drone(DroneRegistrationRequest(
        operator_public_key=other_key.public_key,
        tee_public_key=signing_key.public_key))

    entries = []
    for i in range(6):
        point = FRAME.to_geo(200.0 + 20.0 * i, 0.0)
        sample = GpsSample(lat=point.lat, lon=point.lon, t=T0 + i)
        payload = sample.to_signed_payload()
        entries.append(SignedSample(
            payload=payload, signature=sign_pkcs1_v15(signing_key, payload)))
    poa = ProofOfAlibi(entries)
    records = encrypt_poa(poa, server.public_encryption_key,
                          rng=random.Random(72))
    baseline = server.receive_poa(PoaSubmission(
        drone_id=drone_id, flight_id="honest", records=records,
        claimed_start=T0, claimed_end=T0 + 5.0))
    assert baseline.status is VerificationStatus.ACCEPTED
    return server, drone_id, records


class TestNoTamperSurvives:
    @given(record_index=st.integers(min_value=0, max_value=5),
           byte_index=st.integers(min_value=0, max_value=10_000),
           bit=st.integers(min_value=0, max_value=7),
           target=st.sampled_from(["ciphertext", "signature"]))
    @settings(max_examples=120, deadline=None)
    def test_single_bitflip_never_accepted(self, accepted_submission,
                                           record_index, byte_index, bit,
                                           target):
        server, drone_id, records = accepted_submission
        original = records[record_index]
        field = getattr(original, target)
        mutated = bytearray(field)
        mutated[byte_index % len(mutated)] ^= (1 << bit)
        if bytes(mutated) == field:  # pragma: no cover - mask always != 0
            return
        tampered = list(records)
        if target == "ciphertext":
            tampered[record_index] = EncryptedPoaRecord(
                ciphertext=bytes(mutated), signature=original.signature)
        else:
            tampered[record_index] = EncryptedPoaRecord(
                ciphertext=original.ciphertext, signature=bytes(mutated))
        report = server.receive_poa(PoaSubmission(
            drone_id=drone_id, flight_id="tampered", records=tampered,
            claimed_start=T0, claimed_end=T0 + 5.0))
        assert report.status is not VerificationStatus.ACCEPTED

    @given(drop=st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_dropping_interior_records_near_zone_not_accepted(
            self, accepted_submission, drop):
        """Removing interior samples widens a pair near the zone; dropping
        them must not improve the verdict (here: it stays accepted only if
        the remaining pairs still clear the zone — and the Auditor's
        retained trace shrinks, which an incident check would notice)."""
        server, drone_id, records = accepted_submission
        thinned = [r for i, r in enumerate(records)
                   if i == 0 or i == len(records) - 1 or i % (drop + 1) == 0]
        report = server.receive_poa(PoaSubmission(
            drone_id=drone_id, flight_id="thinned", records=thinned,
            claimed_start=T0, claimed_end=T0 + 5.0))
        # Thinning an honest compliant trace can stay accepted (pairs are
        # still sufficient) but must never produce a *better* status class.
        assert report.status in (VerificationStatus.ACCEPTED,
                                 VerificationStatus.INSUFFICIENT)

    @given(swap_a=st.integers(min_value=0, max_value=5),
           swap_b=st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_record_reordering_never_accepted(self, accepted_submission,
                                              swap_a, swap_b):
        server, drone_id, records = accepted_submission
        if swap_a == swap_b:
            return
        reordered = list(records)
        reordered[swap_a], reordered[swap_b] = (reordered[swap_b],
                                                reordered[swap_a])
        report = server.receive_poa(PoaSubmission(
            drone_id=drone_id, flight_id="reordered", records=reordered,
            claimed_start=T0, claimed_end=T0 + 5.0))
        assert report.status is VerificationStatus.REJECTED_MALFORMED
