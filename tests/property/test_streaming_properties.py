"""Property tests on the streaming protocol: delivery under arbitrary loss."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.poa import EncryptedPoaRecord
from repro.net.framing import FrameType, decode_frame, encode_frame
from repro.net.link import SimulatedLink
from repro.net.streaming import StreamingAuditorEndpoint, StreamingUploader


class TestFramingProperties:
    @given(frame_type=st.sampled_from(list(FrameType)),
           sequence=st.integers(min_value=0, max_value=2 ** 63 - 1),
           payload=st.binary(max_size=512))
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, frame_type, sequence, payload):
        frame = decode_frame(encode_frame(frame_type, sequence, payload))
        assert frame.frame_type is frame_type
        assert frame.sequence == sequence
        assert frame.payload == payload

    @given(payload=st.binary(max_size=128),
           flip=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_any_single_bitflip_detected(self, payload, flip):
        import pytest
        from repro.errors import EncodingError
        data = bytearray(encode_frame(FrameType.POA_ENTRY, 1, payload))
        data[flip % len(data)] ^= 1 << (flip % 8) or 1
        if bytes(data) == encode_frame(FrameType.POA_ENTRY, 1, payload):
            return  # the "flip" was a no-op mask; nothing to detect
        with pytest.raises(EncodingError):
            decode_frame(bytes(data))


class TestStreamingDelivery:
    @given(n_entries=st.integers(min_value=1, max_value=25),
           loss=st.floats(min_value=0.0, max_value=0.5),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=40, deadline=None)
    def test_everything_eventually_delivered_in_order(self, n_entries, loss,
                                                      seed):
        """Under any loss rate < 1 the retransmission loop converges and
        the Auditor receives the exact entry sequence."""
        uplink = SimulatedLink(latency_s=0.02, jitter_s=0.0,
                               loss_probability=loss, seed=seed)
        downlink = SimulatedLink(latency_s=0.02, jitter_s=0.0,
                                 loss_probability=loss, seed=seed + 1)
        uploader = StreamingUploader(uplink, downlink, "flight-p",
                                     retransmit_timeout_s=0.3)
        endpoint = StreamingAuditorEndpoint(uplink, downlink)
        records = [EncryptedPoaRecord(ciphertext=bytes([i]) * 20,
                                      signature=bytes([i + 1]) * 20)
                   for i in range(n_entries)]
        t = 0.0
        uploader.begin_flight(t)
        for i, record in enumerate(records):
            t = (i + 1) * 0.1
            uploader.push(record, t)
        uploader.end_flight(t)
        deadline = t + 600.0
        while t < deadline and not (endpoint.complete
                                    and uploader.fully_acked):
            t += 0.2
            endpoint.poll(t)
            uploader.poll(t)
        # FLIGHT_END itself can be lost; completeness then needs one more
        # poll cycle after the final retransmission — allow either state
        # as long as all entries arrived in order.
        assert endpoint.records() == records

    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_stats_accounting_consistent(self, seed):
        uplink = SimulatedLink(latency_s=0.01, jitter_s=0.0,
                               loss_probability=0.2, seed=seed)
        downlink = SimulatedLink(latency_s=0.01, jitter_s=0.0)
        uploader = StreamingUploader(uplink, downlink, "flight-s",
                                     retransmit_timeout_s=0.2)
        endpoint = StreamingAuditorEndpoint(uplink, downlink)
        records = [EncryptedPoaRecord(ciphertext=b"\x01" * 16,
                                      signature=b"\x02" * 16)
                   for _ in range(10)]
        t = 0.0
        uploader.begin_flight(t)
        for i, record in enumerate(records):
            t = (i + 1) * 0.1
            uploader.push(record, t)
            endpoint.poll(t)
            uploader.poll(t)
        uploader.end_flight(t)
        for _ in range(500):
            t += 0.2
            endpoint.poll(t)
            uploader.poll(t)
            if uploader.fully_acked:
                break
        stats = uploader.stats
        assert stats.entries_pushed == 10
        # begin + end + entries + retransmissions == frames sent.
        assert stats.frames_sent == 2 + 10 + stats.retransmissions
        assert stats.air_time_s > 0.0
        assert stats.bytes_sent >= stats.frames_sent * 17  # header+crc
