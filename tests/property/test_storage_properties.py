"""Property tests on persistence: vault round trips and index consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.poa import EncryptedPoaRecord
from repro.geo.circle import Circle
from repro.geo.spatial_index import GridIndex
from repro.storage.vault import PoaVault


records_strategy = st.lists(
    st.tuples(st.binary(min_size=1, max_size=128),
              st.binary(min_size=1, max_size=128)),
    min_size=0, max_size=12)


class TestVaultProperties:
    @given(raw=records_strategy,
           flight_id=st.text(min_size=1, max_size=40),
           start=st.floats(min_value=0, max_value=2e9, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_store_load_round_trip(self, tmp_path_factory, raw, flight_id,
                                   start):
        vault = PoaVault(tmp_path_factory.mktemp("vault"))
        records = [EncryptedPoaRecord(ciphertext=ct, signature=sig)
                   for ct, sig in raw]
        vault.store(flight_id, "adaptive", start, start + 60.0, records)
        entry = vault.load(flight_id)
        assert entry.records == tuple(records)
        assert entry.flight_id == flight_id
        assert entry.claimed_start == start


class TestGridIndexProperties:
    circles = st.lists(
        st.tuples(st.floats(-1000, 1000), st.floats(-1000, 1000),
                  st.floats(0.5, 120.0)),
        min_size=1, max_size=30)

    @given(layout=circles,
           rect=st.tuples(st.floats(-1200, 1200), st.floats(-1200, 1200),
                          st.floats(1.0, 500.0), st.floats(1.0, 500.0)))
    @settings(max_examples=80, deadline=None)
    def test_rect_query_matches_brute_force(self, layout, rect):
        import math
        index: GridIndex[int] = GridIndex(cell_size=150.0)
        for i, (x, y, r) in enumerate(layout):
            index.insert(i, Circle(x, y, r))
        rx, ry, w, h = rect
        hits = set(index.query_rect(rx, ry, rx + w, ry + h))
        for i, (x, y, r) in enumerate(layout):
            nx = min(max(x, rx), rx + w)
            ny = min(max(y, ry), ry + h)
            intersects = math.hypot(x - nx, y - ny) <= r
            assert (i in hits) == intersects, (i, layout[i], rect)

    @given(layout=circles,
           probe=st.tuples(st.floats(-1200, 1200), st.floats(-1200, 1200)))
    @settings(max_examples=80, deadline=None)
    def test_nearest_matches_brute_force(self, layout, probe):
        index: GridIndex[int] = GridIndex(cell_size=150.0)
        circles = {}
        for i, (x, y, r) in enumerate(layout):
            c = Circle(x, y, r)
            circles[i] = c
            index.insert(i, c)
        key, dist = index.nearest(probe)
        best = min(c.distance_to_boundary(probe) for c in circles.values())
        assert dist <= best + 1e-9
