"""Tests for repro.obs.metrics and the accumulator adapters."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.net.link import SimulatedLink
from repro.obs import (
    MetricsRegistry,
    get_registry,
    quantile,
    register_event_log,
    register_link_stats,
    register_smc_stats,
    register_stage_metrics,
    set_registry,
)
from repro.perf.meter import StageMetrics
from repro.sim.events import EventLog


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.collect()["hits"] == {"type": "counter", "value": 5}

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.counter("hits").inc(-1)


class TestGauge:
    def test_set_and_read(self, registry):
        registry.gauge("depth").set(3)
        assert registry.collect()["depth"]["value"] == 3.0

    def test_callback_backed(self, registry):
        backing = {"n": 7}
        registry.gauge("live", fn=lambda: backing["n"])
        assert registry.collect()["live"]["value"] == 7
        backing["n"] = 9
        assert registry.collect()["live"]["value"] == 9

    def test_set_on_callback_gauge_rejected(self, registry):
        gauge = registry.gauge("live", fn=lambda: 1)
        with pytest.raises(ConfigurationError):
            gauge.set(2)


class TestQuantile:
    def test_interpolates(self):
        assert quantile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ConfigurationError):
            quantile([], 0.5)
        with pytest.raises(ConfigurationError):
            quantile([1.0], 1.5)


class TestHistogram:
    def test_snapshot_summary(self, registry):
        histogram = registry.histogram("wall_s")
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(15.0)
        assert snap["mean"] == pytest.approx(3.0)
        assert (snap["min"], snap["max"]) == (1.0, 5.0)
        assert snap["p50"] == pytest.approx(3.0)

    def test_empty_snapshot_has_no_quantiles(self, registry):
        snap = registry.histogram("empty").snapshot()
        assert snap == {"type": "histogram", "count": 0, "sum": 0.0}

    def test_compaction_keeps_count_and_sum_exact(self, registry):
        histogram = registry.histogram("small", max_samples=4)
        for value in range(10):
            histogram.observe(float(value))
        assert histogram.count == 10
        assert histogram.sum == pytest.approx(45.0)
        assert len(histogram.values()) <= 4
        # Retained values are the most recent observations.
        assert histogram.values()[-1] == 9.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_to_json_is_valid(self, registry):
        registry.counter("a").inc()
        parsed = json.loads(registry.to_json())
        assert parsed["a"]["value"] == 1

    def test_sources_merge_into_snapshot(self, registry):
        registry.add_source(lambda: {"ext.n": {"type": "counter", "value": 2}})
        snapshot = registry.collect()
        assert snapshot["ext.n"]["value"] == 2
        assert "ext.n" in registry

    def test_global_registry_swap(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)


class TestAdapters:
    def test_stage_metrics_source(self, registry):
        meter = StageMetrics()
        meter.record("signature", 0.010, 8)
        meter.record("signature", 0.030, 8)
        register_stage_metrics(registry, meter, prefix="audit")
        snapshot = registry.collect()
        assert snapshot["audit.signature.runs"]["value"] == 2
        assert snapshot["audit.signature.samples"]["value"] == 16
        assert snapshot["audit.signature.seconds"]["mean"] == \
            pytest.approx(0.020)
        # Live view: later recordings show without re-registering.
        meter.record("decode", 0.001, 8)
        assert registry.collect()["audit.decode.runs"]["value"] == 1

    def test_link_stats_source(self, registry):
        link = SimulatedLink(latency_s=0.0, jitter_s=0.0)
        link.send(b"payload", now=0.0)
        link.receive(now=10.0)
        register_link_stats(registry, link.stats)
        snapshot = registry.collect()
        assert snapshot["net.link.sent"]["value"] == 1
        assert snapshot["net.link.delivered"]["value"] == 1
        assert snapshot["net.link.bytes_sent"]["value"] == len(b"payload")

    def test_smc_stats_source(self, registry):
        class Stats:
            world_switches = 6
            total_calls = 3
            calls_by_command = {"GetGPSAuth": 3}

        register_smc_stats(registry, Stats())
        snapshot = registry.collect()
        assert snapshot["tee.smc.world_switches"]["value"] == 6
        assert snapshot["tee.smc.calls.GetGPSAuth"]["value"] == 3

    def test_zone_index_stats_source(self, registry):
        from repro.geo.circle import Circle
        from repro.geo.proximity import ZoneIndexStats, ZoneProximityIndex
        from repro.obs import register_zone_index_stats

        stats = ZoneIndexStats()
        index = ZoneProximityIndex.from_circles(
            [Circle(0.0, 0.0, 10.0), Circle(50.0, 0.0, 5.0)], stats=stats)
        register_zone_index_stats(registry, stats)
        index.nearest_boundary((20.0, 0.0))
        snapshot = registry.collect()
        assert snapshot["geo.zone_index.queries"]["value"] == 1
        assert snapshot["geo.zone_index.queries"]["type"] == "counter"
        assert snapshot["geo.zone_index.candidates"]["value"] >= 1
        assert snapshot["geo.zone_index.mean_candidates_per_query"][
            "type"] == "gauge"
        assert snapshot["geo.zone_index.mean_rings_per_query"]["value"] == \
            pytest.approx(stats.mean_rings_per_query)
        # Live view: more queries show without re-registering.
        index.min_pair_distance((0.0, 0.0), (5.0, 0.0))
        assert registry.collect()["geo.zone_index.queries"]["value"] == 2
        assert registry.collect()["geo.zone_index.cutoff_exits"]["value"] == 0

    def test_attack_stats_source(self, registry):
        from repro.adversary import AttackStats
        from repro.adversary.attacks import AttackResult
        from repro.obs.adapters import register_attack_stats

        stats = AttackStats()
        stats.record(AttackResult(outcome="bad_signature", accepted=False,
                                  cleared=False, detail=""),
                     expected_ok=True)
        register_attack_stats(registry, stats)
        snapshot = registry.collect()
        assert snapshot["adversary.attacks_run"]["value"] == 1
        assert snapshot["adversary.rejected"]["value"] == 1
        assert snapshot["adversary.false_accepts"]["value"] == 0
        assert snapshot["adversary.outcome.bad_signature"]["value"] == 1
        # Live view: later recordings show without re-registering.
        stats.record(AttackResult(outcome="no_poa", accepted=False,
                                  cleared=False, detail=""),
                     expected_ok=True)
        assert registry.collect()["adversary.outcome.no_poa"]["value"] == 1

    def test_event_log_source(self, registry):
        log = EventLog()
        log.record(1.0, "sample")
        log.record(2.0, "sample")
        log.record(3.0, "violation")
        register_event_log(registry, log)
        snapshot = registry.collect()
        assert snapshot["sim.events.total"]["value"] == 3
        assert snapshot["sim.events.kind.sample"]["value"] == 2
        assert snapshot["sim.events.kind.violation"]["value"] == 1

    def test_fault_stats_source(self, registry):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan, FaultRule
        from repro.obs import register_fault_stats

        injector = FaultInjector(FaultPlan("t", (
            FaultRule("link.uplink.send", "drop"),)))
        register_fault_stats(registry, injector.stats)
        injector.link_deliveries("link.uplink.send", b"m")
        snapshot = registry.collect()
        assert snapshot["fault.opportunities.total"]["value"] == 1
        assert snapshot["fault.opportunities.link.uplink.send"]["value"] == 1
        assert snapshot["fault.injected.total"]["value"] == 1
        assert snapshot["fault.injected.link.uplink.send.drop"] == {
            "type": "counter", "value": 1}
        # Live view: later injections show without re-registering.
        injector.link_deliveries("link.uplink.send", b"m")
        assert registry.collect()["fault.injected.total"]["value"] == 2

    def test_retry_stats_source(self, registry):
        import random

        from repro.errors import TransientError
        from repro.faults.retry import (
            RetryPolicy,
            RetryStats,
            execute_with_retry,
        )
        from repro.obs import register_retry_stats
        from repro.sim.clock import SimClock

        stats = RetryStats()
        register_retry_stats(registry, stats)
        attempts = iter([TransientError("busy"), "ok"])

        def flaky():
            item = next(attempts)
            if isinstance(item, Exception):
                raise item
            return item

        execute_with_retry(flaky, clock=SimClock(0.0),
                           policy=RetryPolicy(max_attempts=3),
                           rng=random.Random(0), stats=stats,
                           operation="register")
        snapshot = registry.collect()
        assert snapshot["retry.calls"]["value"] == 1
        assert snapshot["retry.attempts"]["value"] == 2
        assert snapshot["retry.retries"]["value"] == 1
        assert snapshot["retry.recoveries"]["value"] == 1
        assert snapshot["retry.giveups"]["value"] == 0
        assert snapshot["retry.total_backoff_seconds"]["value"] > 0
        assert snapshot["retry.op.register.retries"] == {
            "type": "counter", "value": 1}
