"""Tests for repro.obs.timeseries: sketches and windowed instruments."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs.timeseries import (
    QuantileSketch,
    WindowedCounter,
    WindowedRate,
    WindowedSketch,
)


class TestQuantileSketch:
    def test_empty_sketch_rejects_queries(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.bins == 0
        with pytest.raises(ConfigurationError):
            sketch.quantile(0.5)
        with pytest.raises(ConfigurationError):
            _ = sketch.mean
        assert sketch.summary() == {"count": 0}

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(ConfigurationError):
            QuantileSketch(alpha=1.0)
        with pytest.raises(ConfigurationError):
            QuantileSketch(max_bins=1)
        with pytest.raises(ConfigurationError):
            QuantileSketch(min_value=0.0)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch().observe(float("nan"))

    def test_quantile_range_checked(self):
        sketch = QuantileSketch()
        sketch.observe(1.0)
        with pytest.raises(ConfigurationError):
            sketch.quantile(1.5)
        with pytest.raises(ConfigurationError):
            sketch.quantile(-0.1)

    def test_extremes_clamped_to_observed_range(self):
        sketch = QuantileSketch()
        for value in (0.5, 3.0, 100.0, 7.0):
            sketch.observe(value)
        assert sketch.min == 0.5
        assert sketch.max == 100.0
        # Estimates never leave the observed range, and the extreme
        # quantiles honour the relative bound against min/max.
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert 0.5 <= sketch.quantile(q) <= 100.0
        assert abs(sketch.quantile(0.0) - 0.5) <= sketch.alpha * 0.5
        assert abs(sketch.quantile(1.0) - 100.0) <= sketch.alpha * 100.0

    def test_relative_error_bound_lognormal(self):
        rng = random.Random(11)
        sketch = QuantileSketch()
        values = [rng.lognormvariate(0.0, 1.5) for _ in range(20_000)]
        for value in values:
            sketch.observe(value)
        values.sort()
        for q in (0.01, 0.25, 0.50, 0.75, 0.90, 0.99):
            exact = values[round(q * (len(values) - 1))]
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= sketch.alpha * abs(exact)
        assert sketch.bins <= sketch.max_bins
        assert sketch.bins < len(values)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6),
                    min_size=1, max_size=200),
           st.floats(min_value=0.0, max_value=1.0))
    def test_relative_error_bound_property(self, values, q):
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        values = sorted(values)
        exact = values[round(q * (len(values) - 1))]
        estimate = sketch.quantile(q)
        # The rank estimate may land one bucket off the floor/round
        # convention; the documented guarantee still bounds the error
        # against *some* nearby order statistic — assert against the
        # loosest neighbouring pair, which is what DDSketch promises.
        rank = q * (len(values) - 1)
        neighbours = {values[int(math.floor(rank))],
                      values[min(int(math.floor(rank)) + 1,
                                 len(values) - 1)], exact}
        assert any(abs(estimate - x) <= sketch.alpha * abs(x) + 1e-12
                   for x in neighbours)

    def test_negative_values_mirrored(self):
        sketch = QuantileSketch()
        for value in (-10.0, -1.0, 1.0, 10.0):
            sketch.observe(value)
        assert abs(sketch.quantile(0.0) - (-10.0)) <= sketch.alpha * 10.0
        # rank 0.4*(4-1)=1.2 lands on the second order statistic (-1.0).
        assert abs(sketch.quantile(0.40) - (-1.0)) <= sketch.alpha * 1.0
        assert abs(sketch.quantile(1.0) - 10.0) <= sketch.alpha * 10.0

    def test_zero_bucket(self):
        sketch = QuantileSketch()
        for _ in range(10):
            sketch.observe(0.0)
        sketch.observe(5.0)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.bins == 2  # zero bucket + one positive bucket

    def test_collapse_keeps_bins_bounded(self):
        sketch = QuantileSketch(max_bins=8)
        rng = random.Random(3)
        for _ in range(5_000):
            sketch.observe(rng.lognormvariate(0.0, 4.0))
        assert sketch.bins <= 8
        assert sketch.count == 5_000
        # The collapse degrades the small-magnitude tail only: the top
        # quantile still honours the relative bound against the max.
        assert (abs(sketch.quantile(1.0) - sketch.max)
                <= sketch.alpha * sketch.max)

    def test_merge(self):
        a, b = QuantileSketch(), QuantileSketch()
        combined = QuantileSketch()
        rng = random.Random(5)
        for i in range(2_000):
            value = rng.lognormvariate(0.0, 1.0)
            (a if i % 2 else b).observe(value)
            combined.observe(value)
        a.merge(b)
        assert a.count == combined.count
        assert a.sum == pytest.approx(combined.sum)
        assert a.min == combined.min and a.max == combined.max
        for q in (0.1, 0.5, 0.9, 0.99):
            assert a.quantile(q) == combined.quantile(q)

    def test_merge_alpha_mismatch_rejected(self):
        a = QuantileSketch(alpha=0.01)
        b = QuantileSketch(alpha=0.02)
        with pytest.raises(ConfigurationError):
            a.merge(b)
        with pytest.raises(ConfigurationError):
            a.merge("not a sketch")


class TestWindowedCounter:
    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            WindowedCounter(window_s=0.0)
        with pytest.raises(ConfigurationError):
            WindowedCounter(buckets=0)

    def test_negative_inc_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedCounter().inc(-1.0, now=0.0)

    def test_total_and_cumulative(self):
        counter = WindowedCounter(window_s=60.0, buckets=12)
        for t in range(10):
            counter.inc(now=float(t))
        assert counter.total(10.0) == 10.0
        assert counter.cumulative == 10.0
        assert counter.rate(10.0) == pytest.approx(10.0 / 60.0)

    def test_boundary_sample_lands_in_new_bucket(self):
        # Bucket width is 5s: an event stamped exactly at t=5.0 belongs
        # to bucket [5, 10), so it survives a query at t=64.9 (59.9s
        # later) but has expired by t=65.0.
        counter = WindowedCounter(window_s=60.0, buckets=12)
        counter.inc(now=5.0)
        assert counter.total(64.9) == 1.0
        assert counter.total(65.0) == 0.0
        assert counter.cumulative == 1.0

    def test_window_expiry(self):
        counter = WindowedCounter(window_s=60.0, buckets=12)
        counter.inc(now=0.0, amount=7.0)
        assert counter.total(59.0) == 7.0
        assert counter.total(60.0) == 0.0
        assert counter.cumulative == 7.0  # lifetime total never expires

    def test_long_gap_clears_all_slots(self):
        counter = WindowedCounter(window_s=60.0, buckets=12)
        for t in range(12):
            counter.inc(now=t * 5.0)
        assert counter.total(55.0) == 12.0
        assert counter.total(10_000.0) == 0.0
        assert counter.cumulative == 12.0

    def test_backwards_clock_clamped(self):
        counter = WindowedCounter(window_s=60.0, buckets=12)
        counter.inc(now=100.0)
        # A skewed producer stamping t=3 cannot resurrect an expired
        # region or crash the ring: it is treated as happening at the
        # newest time already seen.
        counter.inc(now=3.0)
        assert counter.last_seen == 100.0
        assert counter.total(100.0) == 2.0
        # Nor can a backwards query expire or rewind anything.
        assert counter.total(50.0) == 2.0

    def test_windowed_rate_mark(self):
        rate = WindowedRate(window_s=10.0, buckets=10)
        for t in range(5):
            rate.mark(now=float(t), amount=2.0)
        assert rate.rate(4.0) == pytest.approx(1.0)


class TestWindowedSketch:
    def test_empty_window_queries(self):
        sketch = WindowedSketch()
        assert sketch.quantile(0.5, now=0.0) is None
        assert sketch.summary(0.0) == {"count": 0}

    def test_window_quantiles_and_expiry(self):
        sketch = WindowedSketch(window_s=60.0, buckets=12)
        for t in range(10):
            sketch.observe(float(t + 1), now=t * 5.0)
        summary = sketch.summary(45.0)
        assert summary["count"] == 10
        assert summary["min"] == 1.0 and summary["max"] == 10.0
        # Drive far past the window: everything expires, back to empty.
        assert sketch.quantile(0.5, now=500.0) is None
        assert sketch.summary(500.0) == {"count": 0}

    def test_old_observations_leave_window(self):
        sketch = WindowedSketch(window_s=60.0, buckets=12)
        sketch.observe(1000.0, now=0.0)
        for t in range(1, 13):
            sketch.observe(1.0, now=t * 5.0)
        # The 1000.0 at t=0 has expired by t=60; only the 1.0s remain.
        merged = sketch.merged(60.0)
        assert merged.max == 1.0

    def test_backwards_clock_clamped(self):
        sketch = WindowedSketch(window_s=60.0, buckets=12)
        sketch.observe(2.0, now=30.0)
        sketch.observe(3.0, now=1.0)  # clamped to t=30
        assert sketch.merged(30.0).count == 2
