"""Tests for repro.obs.dash: sparklines, frames, and the live session."""

import io

from repro.obs.dash import (
    ANSI_CLEAR,
    Dashboard,
    LiveTelemetrySession,
    sparkline,
)
from repro.obs.hub import read_rollups_jsonl
from repro.obs.monitor import MonitorRule


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""
        assert sparkline([1.0], width=0) == ""

    def test_flat_zero_draws_baseline(self):
        assert sparkline([0.0, 0.0, 0.0]) == "▁▁▁"

    def test_scales_to_max(self):
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_trailing_width_window(self):
        assert len(sparkline([1.0] * 50, width=24)) == 24


class TestDashboard:
    def test_no_data_frame(self):
        dash = Dashboard(title="t")
        assert "(no telemetry yet)" in dash.render()

    def test_sections_render(self):
        dash = Dashboard(title="fleet")
        dash.update({
            "t": 10.0, "window_s": 60.0,
            "counters": {"audit.submissions":
                         {"total": 3.0, "rate": 0.05, "cumulative": 3.0}},
            "quantiles": {"audit.intake.seconds":
                          {"count": 3, "p50": 0.01, "p95": 0.02,
                           "p99": 0.03},
                          "quiet": {"count": 0}},
            "gauges": {"depth": 2.0},
            "stages": {"verify": {"runs": 3, "mean_seconds": 0.001}},
        })
        frame = dash.render()
        assert "rates" in frame and "audit.submissions" in frame
        assert "latency" in frame and "p99 0.03" in frame
        assert "(empty window)" in frame
        assert "gauges" in frame and "depth" in frame
        assert "stages (mean seconds)" in frame
        assert "alerts (0 firing)" in frame and "none" in frame

    def test_live_frame_prefixes_clear(self):
        dash = Dashboard()
        dash.update({"t": 0.0, "window_s": 60.0, "counters": {},
                     "quantiles": {}, "gauges": {}})
        assert dash.frame().startswith(ANSI_CLEAR)

    def test_color_disabled_means_no_escapes(self):
        dash = Dashboard(color=False)
        dash.update({"t": 0.0, "window_s": 60.0, "counters": {},
                     "quantiles": {}, "gauges": {}})
        assert "\x1b[" not in dash.render()


class TestLiveTelemetrySession:
    def run_session(self, tmp_path, name):
        sink = io.StringIO()
        session = LiveTelemetrySession(
            rollup_path=str(tmp_path / name), stream=sink, title="test")
        for i in range(4):
            session.tick(lambda hub, now: hub.record_audit(
                seconds=0.01, status="accepted", samples=10, now=now))
        summary = session.close()
        return session, summary, sink.getvalue()

    def test_tick_pipeline_and_summary(self, tmp_path):
        session, summary, frames = self.run_session(tmp_path, "r.jsonl")
        assert summary["ticks"] == 4
        assert summary["alerts_fired"] == []
        assert summary["rollup_lines"] == 4
        assert summary["rules_evaluated"] >= 1
        assert session.now == 4 * session.tick_s
        assert "test — t=" in frames and "alerts (0 firing)" in frames
        rollups = read_rollups_jsonl(tmp_path / "r.jsonl")
        assert [r["t"] for r in rollups] == [5.0, 10.0, 15.0, 20.0]
        for rollup in rollups:
            assert rollup["alerts_fired"] == []
            assert rollup["rules_evaluated"] == summary["rules_evaluated"]

    def test_deterministic_replay(self, tmp_path):
        _, _, frames_a = self.run_session(tmp_path, "a.jsonl")
        _, _, frames_b = self.run_session(tmp_path, "b.jsonl")
        assert frames_a == frames_b
        assert ((tmp_path / "a.jsonl").read_text()
                == (tmp_path / "b.jsonl").read_text())

    def test_alert_edge_lands_in_rollup_and_events(self, tmp_path):
        session = LiveTelemetrySession(rules=[MonitorRule(
            name="hot", metric="load", op=">", threshold=1.0)])
        session.hub.gauge("load", lambda: 5.0)
        rollup = session.tick()
        assert [a["rule"] for a in rollup["alerts_fired"]] == ["hot"]
        assert rollup["alerts_firing"] == ["hot"]
        assert session.events.count("alert_fired") == 1
        summary = session.close()
        assert summary["alerts_firing"] == ["hot"]
