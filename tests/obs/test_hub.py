"""Tests for repro.obs.hub: the hub, rollups, and the JSONL stream."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.hub import (
    RollupWriter,
    TelemetryHub,
    flatten_rollup,
    read_rollups_jsonl,
)


@pytest.fixture()
def hub():
    return TelemetryHub()


class TestInstruments:
    def test_get_or_create_is_idempotent(self, hub):
        assert hub.counter("a") is hub.counter("a")
        assert hub.sketch("b") is hub.sketch("b")

    def test_kind_conflicts_rejected(self, hub):
        hub.counter("a")
        with pytest.raises(ConfigurationError):
            hub.sketch("a")
        hub.gauge("g", lambda: 1.0)
        with pytest.raises(ConfigurationError):
            hub.counter("g")

    def test_mark_and_observe(self, hub):
        hub.mark("events", now=1.0, amount=3.0)
        hub.observe("lat", 0.25, now=1.0)
        assert hub.counter("events").cumulative == 3.0
        assert hub.sketch("lat").summary(1.0)["count"] == 1


class TestRecordAudit:
    def test_accepted_namespace(self, hub):
        hub.record_audit(seconds=0.01, status="accepted", samples=20, now=5.0)
        rollup = hub.rollup(5.0)
        counters = rollup["counters"]
        assert counters["audit.submissions"]["cumulative"] == 1.0
        assert counters["audit.samples"]["cumulative"] == 20.0
        assert counters["audit.status.accepted"]["cumulative"] == 1.0
        assert "audit.rejections" not in counters
        assert rollup["quantiles"]["audit.intake.seconds"]["count"] == 1

    def test_rejection_namespace(self, hub):
        hub.record_audit(seconds=0.02, status="infeasible",
                         reason="speed_infeasible", now=5.0)
        counters = hub.rollup(5.0)["counters"]
        assert counters["audit.rejections"]["cumulative"] == 1.0
        assert (counters["audit.rejections.speed_infeasible"]["cumulative"]
                == 1.0)
        assert counters["audit.status.infeasible"]["cumulative"] == 1.0


class TestRollup:
    def test_shape_and_sections(self, hub):
        hub.mark("x", now=1.0)
        hub.gauge("g", lambda: 42.0)
        hub.add_section("stages", lambda: {"verify": {"runs": 3}})
        rollup = hub.rollup(1.0)
        assert rollup["t"] == 1.0
        assert rollup["window_s"] == hub.window_s
        assert rollup["gauges"] == {"g": 42.0}
        assert rollup["stages"] == {"verify": {"runs": 3}}

    def test_flatten(self, hub):
        hub.mark("x", now=1.0, amount=2.0)
        hub.observe("lat", 0.5, now=1.0)
        hub.gauge("g", lambda: 7.0)
        flat = flatten_rollup(hub.rollup(1.0))
        assert flat["x.cumulative"] == 2.0
        assert flat["x.total"] == 2.0
        assert flat["x.rate"] == pytest.approx(2.0 / hub.window_s)
        assert flat["lat.count"] == 1
        assert "lat.p99" in flat and "lat.mean" in flat
        assert flat["g"] == 7.0

    def test_flatten_empty_sketch_paths_absent(self, hub):
        hub.sketch("lat")  # created but never observed
        flat = flatten_rollup(hub.rollup(1.0))
        assert flat["lat.count"] == 0
        assert "lat.p50" not in flat  # absent, not NaN/None


class TestRollupWriter:
    def test_round_trip(self, hub, tmp_path):
        path = tmp_path / "rollups.jsonl"
        hub.mark("x", now=1.0)
        with RollupWriter(path) as writer:
            writer.write(hub.rollup(1.0))
            hub.mark("x", now=6.0)
            writer.write(hub.rollup(6.0))
            assert writer.lines_written == 2
        rollups = read_rollups_jsonl(path)
        assert [r["t"] for r in rollups] == [1.0, 6.0]
        assert rollups[1]["counters"]["x"]["cumulative"] == 2.0

    def test_lines_are_sorted_keys(self, hub, tmp_path):
        path = tmp_path / "rollups.jsonl"
        hub.mark("z", now=1.0)
        hub.mark("a", now=1.0)
        with RollupWriter(path) as writer:
            writer.write(hub.rollup(1.0))
        line = path.read_text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_closed_writer_rejects_writes(self, hub, tmp_path):
        writer = RollupWriter(tmp_path / "r.jsonl")
        writer.close()
        with pytest.raises(ConfigurationError):
            writer.write(hub.rollup(1.0))
