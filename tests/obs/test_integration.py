"""The tentpole acceptance check: one connected simulate-to-audit trace.

A real flight (TrustZone device, adaptive sampler, actual RSA signing)
followed by a staged audit must produce ONE trace in which the TA signing
span is an ancestor-linked descendant of the flight span, and the audit
span has exactly one child per verification-pipeline stage, named after
the stages in :mod:`repro.core.verification`.
"""

import pytest

from repro.core.verification import PoaVerifier
from repro.obs import Span, Tracer, format_tree, use_tracer
from repro.workloads import build_random_scenario, run_policy

STAGE_NAMES = ["signature", "decode", "ordering", "feasibility",
               "disclosure", "sufficiency"]


def ancestors(span: Span, by_id: dict[str, Span]) -> list[str]:
    """Span names from ``span``'s parent up to its trace root."""
    chain = []
    current = span
    while current.parent_id is not None:
        current = by_id[current.parent_id]
        chain.append(current.name)
    return chain


@pytest.fixture(scope="module")
def traced_run():
    """One small flight plus its audit, captured under a single root."""
    scenario = build_random_scenario(seed=3, n_zones=2, area_m=600.0)
    with use_tracer(Tracer()) as tracer:
        with tracer.span("simulate"):
            run = run_policy(scenario, "adaptive", key_bits=512, seed=3)
            with tracer.span("audit"):
                report = PoaVerifier(scenario.frame).verify(
                    run.result.poa, run.device.tee_public_key,
                    scenario.zones)
    return tracer.spans, report


class TestConnectedTrace:
    def test_single_trace(self, traced_run):
        spans, _ = traced_run
        assert len({span.trace_id for span in spans}) == 1
        assert all(span.end_s is not None for span in spans)

    def test_signing_span_descends_from_flight(self, traced_run):
        spans, _ = traced_run
        by_id = {span.span_id: span for span in spans}
        signing = [s for s in spans if s.name == "tee.gps_sampler_ta.sign"]
        assert signing, "no TA signing spans captured"
        for span in signing:
            chain = ancestors(span, by_id)
            assert chain == ["tee.monitor.smc_call",
                             "drone.adapter.get_gps_auth",
                             "sampling.auth_sample", "flight", "simulate"]

    def test_one_signing_span_per_auth_sample(self, traced_run):
        spans, report = traced_run
        signing = [s for s in spans if s.name == "tee.gps_sampler_ta.sign"]
        assert len(signing) == report.sample_count

    def test_audit_has_one_child_per_pipeline_stage(self, traced_run):
        spans, _ = traced_run
        audit = next(s for s in spans if s.name == "audit")
        stage_spans = [s for s in spans if s.parent_id == audit.span_id]
        assert [s.name for s in stage_spans] == STAGE_NAMES

    def test_gps_fix_read_inside_signing_path(self, traced_run):
        spans, _ = traced_run
        by_id = {span.span_id: span for span in spans}
        fixes = [s for s in spans if s.name == "gps.receiver.get_fix"]
        assert fixes
        assert all("tee.gps_sampler_ta.sign" not in ancestors(f, by_id)
                   for f in fixes)
        assert all("tee.monitor.smc_call" in ancestors(f, by_id)
                   for f in fixes)

    def test_tree_renders_whole_journey(self, traced_run):
        spans, _ = traced_run
        text = format_tree(spans)
        for name in ("simulate", "flight", "sampling.auth_sample",
                     "tee.monitor.smc_call", "tee.gps_sampler_ta.sign",
                     "audit", *STAGE_NAMES):
            assert name in text
