"""Tests for repro.obs.monitor: rules, hysteresis, and alert events."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.monitor import (
    SEVERITY_PAGE,
    SEVERITY_WARN,
    MonitorEngine,
    MonitorRule,
    builtin_rules,
)
from repro.sim.events import EventLog


def run_series(engine, metric, series, *, start=0.0, step=5.0):
    """Evaluate a single-metric series; returns fired-alert lists per tick."""
    fired = []
    for i, value in enumerate(series):
        values = {} if value is None else {metric: value}
        fired.append(engine.evaluate(values, start + (i + 1) * step))
    return fired


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MonitorRule(name="r", metric="m", kind="median")

    def test_unknown_op(self):
        with pytest.raises(ConfigurationError):
            MonitorRule(name="r", metric="m", op="==")

    def test_unknown_severity(self):
        with pytest.raises(ConfigurationError):
            MonitorRule(name="r", metric="m", severity="critical")

    def test_bad_counts_and_alpha(self):
        with pytest.raises(ConfigurationError):
            MonitorRule(name="r", metric="m", for_count=0)
        with pytest.raises(ConfigurationError):
            MonitorRule(name="r", metric="m", ewma_alpha=0.0)

    def test_duplicate_rule_name(self):
        engine = MonitorEngine([MonitorRule(name="r", metric="m")])
        with pytest.raises(ConfigurationError):
            engine.add_rule(MonitorRule(name="r", metric="other"))


class TestThreshold:
    def test_fire_and_clear(self):
        engine = MonitorEngine([MonitorRule(
            name="hot", metric="m", op=">", threshold=10.0)])
        fired = run_series(engine, "m", [5.0, 15.0, 5.0])
        assert [len(f) for f in fired] == [0, 1, 0]
        assert engine.firing == {}
        alert = fired[1][0]
        assert alert.rule == "hot" and alert.value == 15.0

    def test_missing_metric_is_not_a_breach(self):
        engine = MonitorEngine([MonitorRule(
            name="hot", metric="m", op=">", threshold=10.0)])
        fired = run_series(engine, "m", [None, None])
        assert all(not f for f in fired)

    def test_hysteresis_no_flap_on_single_boundary_sample(self):
        # for_count=2: one breaching sample surrounded by clean ones —
        # a window-boundary artefact — must not fire.
        engine = MonitorEngine([MonitorRule(
            name="hot", metric="m", op=">", threshold=10.0, for_count=2)])
        fired = run_series(engine, "m", [5.0, 15.0, 5.0, 15.0, 5.0])
        assert engine.alerts_fired == 0
        assert all(not f for f in fired)
        # Two consecutive breaches do fire.
        fired = run_series(engine, "m", [15.0, 15.0], start=100.0)
        assert [len(f) for f in fired] == [0, 1]

    def test_clear_count_hysteresis(self):
        engine = MonitorEngine([MonitorRule(
            name="hot", metric="m", op=">", threshold=10.0, clear_count=2)])
        run_series(engine, "m", [15.0])
        assert "hot" in engine.firing
        run_series(engine, "m", [5.0], start=5.0)
        assert "hot" in engine.firing  # one clean tick is not enough
        run_series(engine, "m", [5.0], start=10.0)
        assert engine.firing == {}

    def test_firing_alert_does_not_refire(self):
        engine = MonitorEngine([MonitorRule(
            name="hot", metric="m", op=">", threshold=10.0)])
        fired = run_series(engine, "m", [15.0, 20.0, 30.0])
        assert [len(f) for f in fired] == [1, 0, 0]
        assert engine.alerts_fired == 1


class TestEwma:
    def test_spike_after_warmup(self):
        engine = MonitorEngine([MonitorRule(
            name="spike", metric="m", kind="ewma", sigma=4.0, warmup=5,
            min_delta=0.5)])
        series = [1.0, 1.1, 0.9, 1.0, 1.1, 1.0, 50.0]
        fired = run_series(engine, "m", series)
        assert [len(f) for f in fired] == [0, 0, 0, 0, 0, 0, 1]

    def test_no_fire_during_warmup(self):
        engine = MonitorEngine([MonitorRule(
            name="spike", metric="m", kind="ewma", warmup=5, min_delta=0.5)])
        fired = run_series(engine, "m", [1.0, 50.0, 1.0])
        assert all(not f for f in fired)

    def test_level_shift_rebaselines(self):
        # The anomalous sample folds back into the EWMA, so a genuine
        # level shift alerts once and then resolves instead of paging
        # forever at the new normal.
        engine = MonitorEngine([MonitorRule(
            name="spike", metric="m", kind="ewma", sigma=4.0, warmup=3,
            min_delta=0.5, ewma_alpha=0.5)])
        series = [1.0] * 5 + [100.0] * 20
        fired = run_series(engine, "m", series)
        assert sum(len(f) for f in fired) == 1
        assert engine.firing == {}

    def test_min_delta_floors_flat_series(self):
        # A flat-zero baseline has zero variance; without the floor the
        # first nonzero epsilon would page.
        engine = MonitorEngine([MonitorRule(
            name="spike", metric="m", kind="ewma", warmup=3, min_delta=0.5)])
        fired = run_series(engine, "m", [0.0] * 6 + [0.3])
        assert all(not f for f in fired)


class TestAbsence:
    def test_plain_absence_fires_on_missing(self):
        engine = MonitorEngine([MonitorRule(
            name="gone", metric="m", kind="absence")])
        fired = run_series(engine, "m", [1.0, None, 1.0])
        assert [len(f) for f in fired] == [0, 1, 0]

    def test_staleness_after_seen(self):
        engine = MonitorEngine([MonitorRule(
            name="stale", metric="m", kind="absence", max_age_s=12.0)])
        fired = run_series(engine, "m", [1.0, None, None, None], step=5.0)
        # Last seen t=5; stale once now - 5 > 12, i.e. at t=20.
        assert [len(f) for f in fired] == [0, 0, 0, 1]

    def test_never_seen_is_not_stale(self):
        # A metric that never appeared is a stream that hasn't begun —
        # a run with no such producer must not page, no matter how long
        # it goes on.
        engine = MonitorEngine([MonitorRule(
            name="stale", metric="m", kind="absence", max_age_s=10.0)])
        fired = run_series(engine, "m", [None] * 50)
        assert all(not f for f in fired)


class TestAlertEvents:
    def test_fired_and_resolved_events(self):
        events = EventLog()
        engine = MonitorEngine([MonitorRule(
            name="hot", metric="m", op=">", threshold=10.0)], events=events)
        run_series(engine, "m", [15.0, 5.0])
        fired = events.of_kind("alert_fired")
        resolved = events.of_kind("alert_resolved")
        assert len(fired) == 1 and len(resolved) == 1
        # The rule kind travels as rule_kind ("kind" is the event kind).
        assert fired[0].detail["rule"] == "hot"
        assert fired[0].detail["rule_kind"] == "threshold"
        assert "kind" not in fired[0].detail
        assert resolved[0].detail["fired_at"] == fired[0].time


class TestBuiltinRules:
    def test_false_accept_pages_immediately_and_latches(self):
        engine = MonitorEngine(builtin_rules())
        metric = "audit.false_accepts.cumulative"
        fired = engine.evaluate({metric: 1.0}, 5.0)
        assert [a.rule for a in fired] == ["false_accept"]
        assert fired[0].severity == SEVERITY_PAGE
        # Quiet windows never resolve it: the cumulative counter stays
        # nonzero and clear_count is effectively infinite.
        for t in range(2, 100):
            assert engine.evaluate({metric: 1.0}, t * 5.0) == []
        assert "false_accept" in engine.firing

    def test_honest_rollups_fire_nothing(self):
        engine = MonitorEngine(builtin_rules())
        for t in range(1, 40):
            fired = engine.evaluate({
                "audit.false_accepts.cumulative": 0.0,
                "audit.rejections.rate": 0.1,
                "retry.retries.rate": 2.0,
                "audit.zone_index.cache_hit_ratio": 0.95,
                "audit.intake.seconds.count": 10.0,
                "service.shed.rate": 0.0,
                "service.queue_fill_ratio": 0.05,
            }, t * 5.0)
            assert fired == []
        assert engine.alerts_fired == 0

    def test_intake_shedding_warns_after_sustained_breach(self):
        engine = MonitorEngine(builtin_rules())
        # One noisy window is tolerated (for_count=2)...
        assert engine.evaluate({"service.shed.rate": 4.0}, 5.0) == []
        # ...a second consecutive breach fires the warn.
        fired = engine.evaluate({"service.shed.rate": 4.0}, 10.0)
        assert [a.rule for a in fired] == ["intake_shedding"]
        assert fired[0].severity == SEVERITY_WARN
        # Back-pressure released: the alert eventually resolves.
        for t in range(3, 10):
            engine.evaluate({"service.shed.rate": 0.0}, t * 5.0)
        assert "intake_shedding" not in engine.firing

    def test_queue_saturation_warns_above_ninety_percent(self):
        engine = MonitorEngine(builtin_rules())
        assert engine.evaluate({"service.queue_fill_ratio": 0.95},
                               5.0) == []
        fired = engine.evaluate({"service.queue_fill_ratio": 0.97}, 10.0)
        assert [a.rule for a in fired] == ["queue_saturated"]
        assert fired[0].severity == SEVERITY_WARN
        # A busy-but-bounded queue never trips it.
        quiet = MonitorEngine(builtin_rules())
        for t in range(1, 20):
            assert quiet.evaluate({"service.queue_fill_ratio": 0.85},
                                  t * 5.0) == []

    def test_unique_names(self):
        rules = builtin_rules()
        assert len({rule.name for rule in rules}) == len(rules)
        MonitorEngine(rules)  # all register cleanly
