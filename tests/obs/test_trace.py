"""Tests for repro.obs.trace: spans, tracers, and the global hook."""

import pytest

from repro.obs import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class FakeClock:
    """A deterministic monotonic clock that ticks on every read."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture()
def tracer():
    return Tracer(clock=FakeClock())


class TestSpanLifecycle:
    def test_root_span_opens_new_trace(self, tracer):
        span = tracer.start_span("root")
        assert span.parent_id is None
        assert span.trace_id
        assert span.end_s is None and span.duration_s is None

    def test_nested_spans_share_trace_and_link_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_end_span_records_duration_and_retains(self, tracer):
        span = tracer.start_span("op")
        tracer.end_span(span)
        assert span.duration_s == pytest.approx(1.0)
        assert tracer.spans == [span]
        assert len(tracer) == 1

    def test_end_span_pops_open_children(self, tracer):
        outer = tracer.start_span("outer")
        tracer.start_span("leaked-child")
        tracer.end_span(outer)
        assert tracer.current_span is None

    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.spans[-1].status == "error"
        assert tracer.current_span is None

    def test_attributes_via_kwargs_and_setter(self, tracer):
        with tracer.span("op", command="GetGPSAuth") as span:
            span.set_attribute("samples", 8)
        assert span.attributes == {"command": "GetGPSAuth", "samples": 8}

    def test_record_span_synthesizes_completed_child(self, tracer):
        with tracer.span("batch") as batch:
            crypto = tracer.record_span("crypto", 0.5, parent=batch,
                                        attributes={"records": 3})
        assert crypto.parent_id == batch.span_id
        assert crypto.duration_s == pytest.approx(0.5)
        assert crypto.status == "ok"
        # record_span must not disturb the active stack.
        assert tracer.spans[-1] is batch

    def test_span_dict_round_trip(self, tracer):
        with tracer.span("op", key_bits=512) as span:
            pass
        clone = Span.from_dict(span.to_dict())
        assert clone == span


class TestTracerIdentity:
    def test_span_ids_unique_across_tracers(self):
        a, b = Tracer(), Tracer()
        span_a = a.end_span(a.start_span("x"))
        span_b = b.end_span(b.start_span("x"))
        assert span_a.span_id != span_b.span_id
        assert span_a.trace_id != span_b.trace_id

    def test_merge_folds_spans_like_stage_metrics(self):
        main, worker = Tracer(), Tracer()
        main.end_span(main.start_span("a"))
        worker.end_span(worker.start_span("b"))
        assert main.merge(worker) is main
        assert [s.name for s in main.spans] == ["a", "b"]
        assert len({s.span_id for s in main.spans}) == 2

    def test_clear_drops_finished_spans(self, tracer):
        tracer.end_span(tracer.start_span("x"))
        tracer.clear()
        assert len(tracer) == 0


class TestGlobalTracer:
    def test_default_is_noop(self):
        tracer = get_tracer()
        assert isinstance(tracer, NoopTracer)
        assert not tracer.enabled

    def test_truthiness_means_tracing_live(self):
        # An empty-but-real tracer must not read as False in guards.
        assert bool(Tracer())
        assert not bool(NOOP_TRACER)

    def test_noop_costs_nothing_and_collects_nothing(self):
        with NOOP_TRACER.span("op", a=1) as span:
            span.set_attribute("b", 2)
        assert len(NOOP_TRACER) == 0
        assert NOOP_TRACER.spans == ()
        assert NOOP_TRACER.record_span("x", 1.0) is NOOP_TRACER.start_span("y")

    def test_use_tracer_scopes_and_restores(self):
        before = get_tracer()
        with use_tracer() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before

    def test_use_tracer_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with use_tracer():
                raise RuntimeError
        assert get_tracer() is before

    def test_set_tracer_returns_previous(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            assert set_tracer(previous) is mine
