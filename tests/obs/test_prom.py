"""Tests for repro.obs.prom: exposition rendering and grammar checking."""

from repro.obs.prom import (
    prometheus_name,
    to_prometheus,
    validate_exposition,
)


class TestPrometheusName:
    def test_dots_map_to_underscores_under_prefix(self):
        assert (prometheus_name("audit.intake.seconds")
                == "alidrone_audit_intake_seconds")

    def test_hostile_characters_sanitized(self):
        name = prometheus_name("weird metric-name!")
        assert name == "alidrone_weird_metric_name_"

    def test_custom_prefix(self):
        assert prometheus_name("x", prefix="p_") == "p_x"


class TestToPrometheus:
    def test_counter_and_gauge(self):
        text = to_prometheus({
            "hits": {"type": "counter", "value": 5},
            "depth": {"type": "gauge", "value": 2.5},
        })
        assert "# TYPE alidrone_hits counter" in text
        assert "alidrone_hits 5.0" in text
        assert "# TYPE alidrone_depth gauge" in text
        assert validate_exposition(text) == []

    def test_histogram_becomes_summary(self):
        text = to_prometheus({
            "lat": {"type": "histogram", "count": 4, "sum": 1.0,
                    "p50": 0.2, "p90": 0.4, "p95": 0.45, "p99": 0.5},
        })
        assert "# TYPE alidrone_lat summary" in text
        assert 'alidrone_lat{quantile="0.5"} 0.2' in text
        assert "alidrone_lat_sum 1.0" in text
        assert "alidrone_lat_count 4.0" in text
        assert validate_exposition(text) == []

    def test_unknown_type_with_value_is_untyped(self):
        text = to_prometheus({"odd": {"type": "mystery", "value": 1}})
        assert "# TYPE alidrone_odd untyped" in text
        assert validate_exposition(text) == []

    def test_unknown_type_without_value_skipped(self):
        assert to_prometheus({"odd": {"type": "mystery"}}) == ""

    def test_nan_and_inf_render(self):
        text = to_prometheus({
            "a": {"type": "gauge", "value": float("nan")},
            "b": {"type": "gauge", "value": float("inf")},
            "c": {"type": "gauge", "value": float("-inf")},
        })
        assert "alidrone_a NaN" in text
        assert "alidrone_b +Inf" in text
        assert "alidrone_c -Inf" in text
        assert validate_exposition(text) == []

    def test_output_sorted_and_deterministic(self):
        snapshot = {"z": {"type": "counter", "value": 1},
                    "a": {"type": "counter", "value": 2}}
        text = to_prometheus(snapshot)
        assert text.index("alidrone_a") < text.index("alidrone_z")
        assert text == to_prometheus(dict(reversed(list(snapshot.items()))))


class TestValidateExposition:
    def test_undeclared_sample_flagged(self):
        problems = validate_exposition("mystery 1.0\n")
        assert any("no TYPE declaration" in p for p in problems)

    def test_malformed_sample_flagged(self):
        text = "# TYPE m counter\nm one_point_zero\n"
        assert any("unparseable value" in p
                   for p in validate_exposition(text))

    def test_unknown_type_flagged(self):
        assert any("unknown type" in p
                   for p in validate_exposition("# TYPE m widget\n"))

    def test_blank_line_flagged(self):
        text = "# TYPE m counter\n\nm 1.0\n"
        assert any("blank line" in p for p in validate_exposition(text))

    def test_summary_children_resolve_to_family(self):
        text = ("# TYPE m summary\n"
                'm{quantile="0.5"} 1.0\n'
                "m_sum 2.0\n"
                "m_count 2.0\n")
        assert validate_exposition(text) == []
