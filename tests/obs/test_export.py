"""Tests for repro.obs.export: JSONL round-trips and tree rendering."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    format_tree,
    read_spans_jsonl,
    spans_to_jsonl,
    write_metrics_json,
    write_spans_jsonl,
)


@pytest.fixture()
def spans():
    tracer = Tracer()
    with tracer.span("flight", policy="adaptive"):
        with tracer.span("sampling.auth_sample"):
            pass
        with tracer.span("net.stream.push", sequence=0):
            pass
    return tracer.spans


class TestJsonl:
    def test_one_object_per_line(self, spans):
        lines = spans_to_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        for line in lines:
            row = json.loads(line)
            assert {"name", "span_id", "trace_id", "parent_id",
                    "start_s", "end_s", "duration_s",
                    "status", "attributes"} <= set(row)

    def test_file_round_trip(self, spans, tmp_path):
        path = write_spans_jsonl(tmp_path / "trace.jsonl", spans)
        assert read_spans_jsonl(path) == spans

    def test_empty_export_writes_empty_file(self, tmp_path):
        path = write_spans_jsonl(tmp_path / "trace.jsonl", [])
        assert path.read_text() == ""
        assert read_spans_jsonl(path) == []


class TestFormatTree:
    def test_indents_children_under_parent(self, spans):
        text = format_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "  - flight" in text
        assert "    - sampling.auth_sample" in text
        assert "policy='adaptive'" in text

    def test_children_ordered_by_start_time(self, spans):
        text = format_tree(spans)
        assert text.index("sampling.auth_sample") < \
            text.index("net.stream.push")

    def test_orphan_parent_promoted_to_root(self):
        orphan = Span(name="lost", span_id="s9", trace_id="t1",
                      parent_id="missing", start_s=0.0, end_s=2.0)
        text = format_tree([orphan])
        assert "- lost 2.000s" in text

    def test_error_status_marked(self):
        span = Span(name="boom", span_id="s1", trace_id="t1",
                    parent_id=None, start_s=0.0, end_s=0.001,
                    status="error")
        assert "!error" in format_tree([span])

    def test_open_span_rendered_as_open(self):
        span = Span(name="pending", span_id="s1", trace_id="t1",
                    parent_id=None, start_s=0.0)
        assert "(open)" in format_tree([span])


class TestMetricsJson:
    def test_writes_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("audit.batches").inc(3)
        path = write_metrics_json(tmp_path / "metrics.json", registry)
        parsed = json.loads(path.read_text())
        assert parsed["audit.batches"] == {"type": "counter", "value": 3}
