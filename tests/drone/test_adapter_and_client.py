"""Tests for repro.drone.adapter and repro.drone.client."""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import decrypt_poa
from repro.core.protocol import ZoneRegistrationRequest
from repro.drone.adapter import Adapter
from repro.drone.client import AliDroneClient
from repro.drone.flightplan import FlightPlan
from repro.errors import (
    ProtocolError,
    ServiceUnavailableError,
    TeeError,
    TeeTransientError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.retry import RetryPolicy
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


@pytest.fixture()
def platform(make_platform):
    return make_platform()


@pytest.fixture()
def server(frame):
    return AliDroneServer(frame, rng=random.Random(99),
                          encryption_key_bits=512)


@pytest.fixture()
def client(platform, frame, signing_key, rng):
    device, receiver, clock = platform
    return AliDroneClient(device, receiver, clock, frame,
                          operator_key=signing_key,
                          operator_name="test-op", rng=rng)


class TestAdapter:
    def test_get_gps_auth_requires_start(self, platform):
        device, receiver, clock = platform
        adapter = Adapter(device, receiver, clock)
        with pytest.raises(TeeError):
            adapter.get_gps_auth()

    def test_start_is_idempotent(self, platform):
        device, receiver, clock = platform
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        first = adapter._session_id
        adapter.start()
        assert adapter._session_id == first
        adapter.stop()
        adapter.stop()  # also idempotent

    def test_read_gps_matches_receiver(self, platform):
        device, receiver, clock = platform
        adapter = Adapter(device, receiver, clock)
        clock.advance(2.0)
        sample = adapter.read_gps()
        fix = receiver.fix_at(clock.now)
        assert sample.t == fix.time
        assert sample.lat == fix.lat

    def test_read_gps_none_before_first_update(self, make_device, frame):
        from repro.gps.receiver import SimulatedGpsReceiver
        from repro.gps.replay import WaypointSource
        from repro.sim.clock import SimClock
        source = WaypointSource([(T0, 0, 0), (T0 + 10, 1, 0)])
        clock = SimClock(T0)
        receiver = SimulatedGpsReceiver(source, frame, start_time=T0 + 100.0)
        device = make_device()
        device.attach_gps(receiver, clock)
        adapter = Adapter(device, receiver, clock)
        assert adapter.read_gps() is None

    def test_auth_sample_decodes_to_current_fix(self, platform):
        device, receiver, clock = platform
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        clock.advance(3.0)
        signed = adapter.get_gps_auth()
        assert signed.sample.t == pytest.approx(T0 + 3.0, abs=0.011)
        assert signed.verify(device.tee_public_key)


class TestClientProtocolFlow:
    def test_registration(self, client, server):
        drone_id = client.register(server)
        assert drone_id.startswith("drone-")
        assert client.drone_id == drone_id

    def test_zone_query_requires_registration(self, client, server, frame):
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(300, 0)])
        with pytest.raises(ProtocolError):
            client.query_zones(server, plan)

    def test_zone_query_returns_zones_in_rect(self, client, server, frame):
        inside = frame.to_geo(150.0, 50.0)
        outside = frame.to_geo(5_000.0, 5_000.0)
        server.register_zone(ZoneRegistrationRequest(
            zone=NoFlyZone(inside.lat, inside.lon, 20.0),
            proof_of_ownership="deed-1"))
        server.register_zone(ZoneRegistrationRequest(
            zone=NoFlyZone(outside.lat, outside.lon, 20.0),
            proof_of_ownership="deed-2"))
        client.register(server)
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(300, 0)])
        zones = client.query_zones(server, plan)
        assert len(zones) == 1
        assert zones[0].radius_m == 20.0
        assert client.known_zones == zones

    def test_fly_adaptive_and_submit(self, client, server, frame):
        center = frame.to_geo(150.0, 80.0)
        server.register_zone(ZoneRegistrationRequest(
            zone=NoFlyZone(center.lat, center.lon, 20.0),
            proof_of_ownership="deed-1"))
        client.register(server)
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(300, 0)])
        client.query_zones(server, plan)
        record = client.fly(T0 + 50.0, policy="adaptive")
        assert record.policy == "adaptive"
        assert len(record.poa) >= 1
        report = client.submit_poa(server, record)
        assert report.compliant

    def test_fly_fixed_policy(self, client, server):
        client.register(server)
        record = client.fly(T0 + 10.0, policy="fixed", fixed_rate_hz=2.0)
        assert record.policy == "fixed-2hz"
        assert len(record.poa) == pytest.approx(21, abs=2)

    def test_fixed_policy_requires_rate(self, client, server):
        client.register(server)
        with pytest.raises(ProtocolError):
            client.fly(T0 + 10.0, policy="fixed")

    def test_unknown_policy_rejected(self, client, server):
        client.register(server)
        with pytest.raises(ProtocolError):
            client.fly(T0 + 10.0, policy="quantum")

    def test_flight_ids_unique(self, client, server):
        client.register(server)
        a = client.fly(T0 + 2.0, policy="fixed", fixed_rate_hz=1.0)
        b = client.fly(T0 + 4.0, policy="fixed", fixed_rate_hz=1.0)
        assert a.flight_id != b.flight_id

    def test_submission_encrypts_payloads(self, client, server):
        client.register(server)
        record = client.fly(T0 + 5.0, policy="fixed", fixed_rate_hz=1.0)
        submission = client.build_submission(record,
                                             server.public_encryption_key)
        for rec, entry in zip(submission.records, record.poa):
            assert entry.payload not in rec.ciphertext
        # The server can decrypt them back.
        restored = decrypt_poa(submission.records, server._encryption_key)
        assert restored.entries == record.poa.entries

    def test_submission_requires_registration(self, client, server):
        record = client.fly(T0 + 2.0, policy="fixed", fixed_rate_hz=1.0)
        with pytest.raises(ProtocolError):
            client.build_submission(record, server.public_encryption_key)


class _FlakyAuditor:
    """Delegates to a real server but fails the first N calls per method."""

    def __init__(self, server, failures):
        self._server = server
        self._failures = dict(failures)  # method name -> remaining fails
        self.seen_nonces: list[bytes] = []

    def _maybe_fail(self, method):
        remaining = self._failures.get(method, 0)
        if remaining > 0:
            self._failures[method] = remaining - 1
            raise ServiceUnavailableError(f"{method}: auditor unavailable")

    def register_drone(self, request):
        self._maybe_fail("register_drone")
        return self._server.register_drone(request)

    def handle_zone_query(self, query):
        self.seen_nonces.append(query.nonce)
        self._maybe_fail("handle_zone_query")
        return self._server.handle_zone_query(query)

    def receive_poa(self, submission):
        self._maybe_fail("receive_poa")
        return self._server.receive_poa(submission)

    @property
    def public_encryption_key(self):
        return self._server.public_encryption_key


class TestClientRetries:
    POLICY = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=1.0)

    def retrying_client(self, platform, frame, signing_key, rng):
        device, receiver, clock = platform
        return AliDroneClient(device, receiver, clock, frame,
                              operator_key=signing_key, rng=rng,
                              retry_policy=self.POLICY,
                              retry_rng=random.Random(0))

    def test_register_rides_out_auditor_outage(self, platform, frame,
                                               signing_key, rng, server):
        client = self.retrying_client(platform, frame, signing_key, rng)
        flaky = _FlakyAuditor(server, {"register_drone": 2})
        drone_id = client.register(flaky)
        assert drone_id.startswith("drone-")
        assert client.retry_stats.by_operation["register"] == 2
        assert client.clock.now > T0  # backoff consumed virtual time

    def test_register_without_policy_fails_fast(self, client, server):
        flaky = _FlakyAuditor(server, {"register_drone": 1})
        with pytest.raises(ServiceUnavailableError):
            client.register(flaky)

    def test_query_zones_uses_fresh_nonce_per_attempt(self, platform, frame,
                                                      signing_key, rng,
                                                      server):
        """Nonces are single-use on the server, so a retry must re-sign a
        new one rather than replay the failed attempt's query."""
        client = self.retrying_client(platform, frame, signing_key, rng)
        flaky = _FlakyAuditor(server, {"handle_zone_query": 2})
        client.register(flaky)
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(300, 0)])
        client.query_zones(flaky, plan)
        assert len(flaky.seen_nonces) == 3
        assert len(set(flaky.seen_nonces)) == 3

    def test_submit_poa_rides_out_auditor_outage(self, platform, frame,
                                                 signing_key, rng, server):
        client = self.retrying_client(platform, frame, signing_key, rng)
        flaky = _FlakyAuditor(server, {"receive_poa": 2})
        client.register(flaky)
        record = client.fly(T0 + 5.0, policy="fixed", fixed_rate_hz=1.0)
        report = client.submit_poa(flaky, record)
        assert report.compliant
        assert client.retry_stats.by_operation["submit_poa"] == 2

    def test_gives_up_when_outage_outlasts_policy(self, platform, frame,
                                                  signing_key, rng, server):
        client = self.retrying_client(platform, frame, signing_key, rng)
        flaky = _FlakyAuditor(server, {"register_drone": 99})
        with pytest.raises(ServiceUnavailableError):
            client.register(flaky)
        assert client.retry_stats.giveups == 1


class TestAdapterTeeRetry:
    def smc_outage_injector(self, clock, fails):
        plan = FaultPlan("smc-outage", (
            FaultRule("tee.smc", "fail", max_count=fails),))
        return FaultInjector(plan, now_fn=lambda: clock.now)

    def test_transient_smc_failure_retried(self, platform):
        device, receiver, clock = platform
        adapter = Adapter(device, receiver, clock,
                          retry_policy=RetryPolicy(max_attempts=4,
                                                   base_delay_s=0.05,
                                                   max_delay_s=0.2),
                          retry_rng=random.Random(0))
        adapter.start()  # session setup itself is not under retry
        device.monitor.attach_injector(self.smc_outage_injector(clock, 2))
        signed = adapter.get_gps_auth()
        assert signed.verify(device.tee_public_key)

    def test_failed_smc_does_not_switch_worlds(self, platform):
        """A fail rule fires *before* the world switch: the secure world
        never serviced the call, so no switches are counted for it."""
        device, receiver, clock = platform
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        switches_before = device.monitor.stats.world_switches
        device.monitor.attach_injector(self.smc_outage_injector(clock, 1))
        with pytest.raises(TeeTransientError):
            adapter.get_gps_auth()
        assert device.monitor.stats.world_switches == switches_before

    def test_without_policy_transient_error_propagates(self, platform):
        device, receiver, clock = platform
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        device.monitor.attach_injector(self.smc_outage_injector(clock, 1))
        with pytest.raises(TeeTransientError):
            adapter.get_gps_auth()
        device.monitor.attach_injector(None)
        assert adapter.get_gps_auth().verify(device.tee_public_key)
