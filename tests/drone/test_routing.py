"""Tests for repro.drone.routing."""

import math

import pytest

from repro.core.nfz import NoFlyZone
from repro.drone.routing import (
    RouteError,
    plan_route,
    route_clearance,
    route_length,
)
from repro.errors import ConfigurationError


def zone_at(frame, x, y, r):
    center = frame.to_geo(x, y)
    return NoFlyZone(center.lat, center.lon, r)


class TestPlanRoute:
    def test_no_zones_straight_line(self, frame):
        route = plan_route((0, 0), (1000, 0), [], frame)
        assert route == [(0, 0), (1000, 0)]

    def test_clear_path_stays_straight(self, frame):
        zone = zone_at(frame, 500, 800, 50.0)
        route = plan_route((0, 0), (1000, 0), [zone], frame)
        assert route == [(0, 0), (1000, 0)]

    def test_detour_around_blocking_zone(self, frame):
        zone = zone_at(frame, 500, 0, 100.0)
        route = plan_route((0, 0), (1000, 0), [zone], frame,
                           clearance_m=30.0)
        assert len(route) > 2
        assert route[0] == (0, 0)
        assert route[-1] == (1000, 0)
        assert route_clearance(route, [zone], frame) > 0.0

    def test_detour_length_reasonable(self, frame):
        zone = zone_at(frame, 500, 0, 100.0)
        route = plan_route((0, 0), (1000, 0), [zone], frame,
                           clearance_m=30.0)
        straight = 1000.0
        # A detour around a 130 m obstacle should cost well under 20%.
        assert route_length(route) < straight * 1.2

    def test_multiple_zones(self, frame):
        zones = [zone_at(frame, 300, 0, 80.0), zone_at(frame, 600, 50, 80.0),
                 zone_at(frame, 800, -60, 80.0)]
        route = plan_route((0, 0), (1000, 0), zones, frame, clearance_m=20.0)
        assert route_clearance(route, zones, frame) > 0.0

    def test_start_inside_zone_rejected(self, frame):
        zone = zone_at(frame, 0, 0, 100.0)
        with pytest.raises(RouteError):
            plan_route((0, 0), (1000, 0), [zone], frame)

    def test_goal_inside_inflated_zone_rejected(self, frame):
        zone = zone_at(frame, 1000, 0, 50.0)
        with pytest.raises(RouteError):
            plan_route((0, 0), (1020, 0), [zone], frame, clearance_m=30.0)

    def test_walled_off_goal_rejected(self, frame):
        # A ring of zones around the goal.
        zones = []
        for k in range(12):
            angle = 2 * math.pi * k / 12
            zones.append(zone_at(frame, 1000 + 150 * math.cos(angle),
                                 150 * math.sin(angle), 60.0))
        with pytest.raises(RouteError):
            plan_route((0, 0), (1000, 0), zones, frame, clearance_m=20.0,
                       boundary_points=8)

    def test_invalid_boundary_points(self, frame):
        with pytest.raises(ConfigurationError):
            plan_route((0, 0), (10, 0), [], frame, boundary_points=3)


class TestRouteMetrics:
    def test_route_length(self):
        assert route_length([(0, 0), (3, 4), (3, 10)]) == pytest.approx(11.0)

    def test_clearance_no_zones_infinite(self, frame):
        assert route_clearance([(0, 0), (10, 0)], [], frame) == math.inf

    def test_clearance_signs(self, frame):
        zone = zone_at(frame, 5, 10, 2.0)
        clear = route_clearance([(0, 0), (10, 0)], [zone], frame)
        assert clear == pytest.approx(8.0, abs=0.05)
        through = route_clearance([(0, 0), (10, 20)], [zone], frame)
        assert through < 0.0
