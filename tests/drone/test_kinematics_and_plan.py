"""Tests for repro.drone.kinematics and repro.drone.flightplan."""

import math

import pytest

from repro.drone.flightplan import FlightPlan
from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.errors import ConfigurationError
from repro.geo.geodesy import GeoPoint
from repro.sim.clock import DEFAULT_EPOCH
from repro.units import FAA_MAX_SPEED_MPS

T0 = DEFAULT_EPOCH


class TestDroneKinematics:
    def test_invalid_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            DroneKinematics(max_speed_mps=0.0)
        with pytest.raises(ConfigurationError):
            DroneKinematics(max_accel_mps2=-1.0)

    def test_faster_than_faa_rejected(self):
        with pytest.raises(ConfigurationError):
            DroneKinematics(max_speed_mps=FAA_MAX_SPEED_MPS + 1.0)

    def test_long_segment_duration(self):
        k = DroneKinematics(max_speed_mps=10.0, max_accel_mps2=5.0)
        # 2 s accel + 2 s decel covering 10+10=20 m, plus 98 m cruise.
        assert k.segment_duration(118.0) == pytest.approx(4.0 + 9.8)

    def test_short_segment_triangular(self):
        k = DroneKinematics(max_speed_mps=10.0, max_accel_mps2=5.0)
        # Peak speed sqrt(d*a) = sqrt(50) < vmax; duration 2*sqrt(d/a).
        assert k.segment_duration(10.0) == pytest.approx(
            2.0 * math.sqrt(10.0 / 5.0))

    def test_zero_segment(self):
        assert DroneKinematics().segment_duration(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            DroneKinematics().segment_duration(-1.0)

    def test_positions_start_and_end(self):
        k = DroneKinematics(max_speed_mps=10.0, max_accel_mps2=5.0)
        points = k.segment_positions((0.0, 0.0), (100.0, 0.0), T0)
        assert points[0] == (T0, 0.0, 0.0)
        assert points[-1][1] == pytest.approx(100.0)

    def test_speed_never_exceeds_limit(self):
        k = DroneKinematics(max_speed_mps=10.0, max_accel_mps2=5.0)
        points = k.segment_positions((0.0, 0.0), (200.0, 0.0), T0,
                                     step_s=0.05)
        for (t0, x0, _), (t1, x1, _) in zip(points, points[1:]):
            # Loose tolerance: epoch-scale timestamps lose sub-microsecond
            # precision in the subtraction.
            assert (x1 - x0) / (t1 - t0) <= 10.0 * 1.001


class TestSimulateWaypointFlight:
    def test_needs_two_waypoints(self):
        with pytest.raises(ConfigurationError):
            simulate_waypoint_flight([(0.0, 0.0)], T0)

    def test_passes_through_waypoints(self):
        src = simulate_waypoint_flight([(0, 0), (100, 0), (100, 100)], T0)
        assert src.position_at(T0) == pytest.approx((0.0, 0.0))
        assert src.position_at(src.end_time) == pytest.approx((100.0, 100.0))

    def test_hover_extends_duration(self):
        quick = simulate_waypoint_flight([(0, 0), (100, 0), (200, 0)], T0)
        hover = simulate_waypoint_flight([(0, 0), (100, 0), (200, 0)], T0,
                                         hover_s=5.0)
        assert hover.duration == pytest.approx(quick.duration + 5.0, abs=0.2)

    def test_monotone_time(self):
        src = simulate_waypoint_flight([(0, 0), (50, 50), (0, 100)], T0)
        assert src.duration > 0


class TestFlightPlan:
    def test_needs_two_waypoints(self):
        with pytest.raises(ConfigurationError):
            FlightPlan([GeoPoint(40.0, -88.0)])

    def test_query_rectangle_covers_route(self, frame):
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(500, 300)],
                          margin_m=100.0)
        low, high = plan.query_rectangle(frame)
        lx, ly = frame.to_local(low)
        hx, hy = frame.to_local(high)
        assert lx == pytest.approx(-100.0, abs=0.1)
        assert ly == pytest.approx(-100.0, abs=0.1)
        assert hx == pytest.approx(600.0, abs=0.1)
        assert hy == pytest.approx(400.0, abs=0.1)

    def test_to_source_covers_route(self, frame):
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(300, 0)])
        src = plan.to_source(frame, T0)
        assert src.position_at(src.end_time) == pytest.approx((300.0, 0.0),
                                                              abs=0.5)

    def test_local_waypoints(self, frame):
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(10, 20)])
        pts = plan.local_waypoints(frame)
        assert pts[1] == pytest.approx((10.0, 20.0), abs=1e-6)
