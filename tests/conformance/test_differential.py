"""Differential conformance: staged pipeline vs. naive reference verifier.

Every test here asserts *full report equality* (``VerificationReport`` is
a plain dataclass, so ``==`` covers status, reason, indices, counts, and
message text) between :class:`repro.core.verification.PoaVerifier` and the
independent straight-line implementation in
:mod:`repro.conformance.reference`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import reference_verify, run_differential
from repro.conformance.harness import (
    MUTATIONS,
    _mutate,
    random_honest_poa,
    random_zones,
)
from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import (
    PoaVerifier,
    RejectionReason,
    VerificationStatus,
)
from repro.crypto.pkcs1 import sign_pkcs1_v15


@pytest.fixture(scope="module")
def verifier(frame) -> PoaVerifier:
    return PoaVerifier(frame)


def signed(key, sample: GpsSample) -> SignedSample:
    payload = sample.to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


def both(verifier, frame, poa, key, zones):
    got = verifier.verify(poa, key.public_key, zones)
    want = reference_verify(poa, key.public_key, zones, frame)
    return got, want


# Trajectories as relative steps so hypothesis explores feasible *and*
# infeasible geometry: dx/dy in metres, dt in seconds (0 allowed — the
# same-instant edge case), around an anchor inside the frame.
steps = st.tuples(st.floats(-800.0, 800.0, allow_nan=False),
                  st.floats(-800.0, 800.0, allow_nan=False),
                  st.floats(0.0, 30.0, allow_nan=False))
zone_specs = st.tuples(st.floats(-500.0, 2_500.0, allow_nan=False),
                       st.floats(-500.0, 2_500.0, allow_nan=False),
                       st.floats(10.0, 300.0, allow_nan=False))


class TestRandomizedAgreement:
    @given(walk=st.lists(steps, min_size=0, max_size=6),
           zones=st.lists(zone_specs, min_size=0, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_trajectories_agree(self, verifier, frame,
                                          signing_key, walk, zones):
        x, y, t = 100.0, 100.0, 1_000_000.0
        poa = ProofOfAlibi()
        for dx, dy, dt in walk:
            point = frame.to_geo(x, y)
            poa.append(signed(signing_key,
                              GpsSample(point.lat, point.lon, t)))
            x, y, t = x + dx, y + dy, t + dt
        nfzs = []
        for zx, zy, zr in zones:
            center = frame.to_geo(zx, zy)
            nfzs.append(NoFlyZone(center.lat, center.lon, zr))
        got, want = both(verifier, frame, poa, signing_key, nfzs)
        assert got == want

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_harness_generators_agree(self, verifier, frame, signing_key,
                                      seed):
        rng = random.Random(seed)
        zones = random_zones(rng, frame, rng.randint(0, 8))
        poa = random_honest_poa(rng, frame, signing_key)
        got, want = both(verifier, frame, poa, signing_key, zones)
        assert got == want

    @given(seed=st.integers(0, 10_000),
           mutation=st.sampled_from(MUTATIONS))
    @settings(max_examples=40, deadline=None)
    def test_mutated_trajectories_agree_and_reject(self, verifier, frame,
                                                   signing_key, seed,
                                                   mutation):
        rng = random.Random(seed)
        zones = random_zones(rng, frame, rng.randint(1, 8))
        poa = _mutate(mutation, random_honest_poa(rng, frame, signing_key),
                      rng, signing_key)
        got, want = both(verifier, frame, poa, signing_key, zones)
        assert got == want
        assert not got.compliant


class TestDirectedCases:
    """One case per rejection reason, asserting exact agreement."""

    def make_walk(self, frame, key, coords):
        poa = ProofOfAlibi()
        for x, y, t in coords:
            point = frame.to_geo(x, y)
            poa.append(signed(key, GpsSample(point.lat, point.lon, t)))
        return poa

    def test_empty(self, verifier, frame, signing_key):
        got, want = both(verifier, frame, ProofOfAlibi(), signing_key, [])
        assert got == want
        assert got.reason is RejectionReason.EMPTY_POA

    def test_bad_signature(self, verifier, frame, signing_key, other_key):
        poa = self.make_walk(frame, other_key, [(0, 0, 0.0), (5, 5, 10.0)])
        got, want = both(verifier, frame, poa, signing_key, [])
        assert got == want
        assert got.reason is RejectionReason.BAD_SIGNATURE
        assert got.bad_signature_indices == [0, 1]

    def test_malformed_payload(self, verifier, frame, signing_key):
        payload = b"not-a-sample"
        poa = ProofOfAlibi([SignedSample(
            payload=payload,
            signature=sign_pkcs1_v15(signing_key, payload, "sha1"))])
        got, want = both(verifier, frame, poa, signing_key, [])
        assert got == want
        assert got.reason is RejectionReason.MALFORMED_PAYLOAD

    def test_out_of_order(self, verifier, frame, signing_key):
        poa = self.make_walk(frame, signing_key,
                             [(0, 0, 100.0), (5, 0, 50.0)])
        got, want = both(verifier, frame, poa, signing_key, [])
        assert got == want
        assert got.reason is RejectionReason.OUT_OF_ORDER

    def test_speed_infeasible(self, verifier, frame, signing_key):
        poa = self.make_walk(frame, signing_key,
                             [(0, 0, 0.0), (5_000, 0, 1.0)])
        got, want = both(verifier, frame, poa, signing_key, [])
        assert got == want
        assert got.reason is RejectionReason.SPEED_INFEASIBLE
        assert got.infeasible_pair_indices == [0]

    def test_insufficient(self, verifier, frame, signing_key):
        center = frame.to_geo(500.0, 0.0)
        zone = NoFlyZone(center.lat, center.lon, 400.0)
        poa = self.make_walk(frame, signing_key,
                             [(0, 0, 0.0), (1_000, 0, 60.0)])
        got, want = both(verifier, frame, poa, signing_key, [zone])
        assert got == want
        assert got.reason is RejectionReason.INSUFFICIENT_COVERAGE

    def test_accepted(self, verifier, frame, signing_key):
        center = frame.to_geo(500.0, 5_000.0)
        zone = NoFlyZone(center.lat, center.lon, 50.0)
        poa = self.make_walk(frame, signing_key,
                             [(0, 0, 0.0), (100, 0, 60.0)])
        got, want = both(verifier, frame, poa, signing_key, [zone])
        assert got == want
        assert got.status is VerificationStatus.ACCEPTED
        assert got.reason is None

    def test_boundary_pair_agrees_either_way(self, verifier, frame,
                                             signing_key):
        """A pair sitting near the sufficiency threshold must not split
        the implementations, whatever side of it the epsilon lands on."""
        for gap in (0.0, 1e-10, 1e-6, 0.01, 1.0):
            dt = 10.0
            reach = verifier.vmax_mps * dt
            center = frame.to_geo(0.0, reach / 2.0 + 100.0 + gap)
            zone = NoFlyZone(center.lat, center.lon, 100.0)
            poa = self.make_walk(frame, signing_key,
                                 [(0, 0, 0.0), (0, 0, dt)])
            got, want = both(verifier, frame, poa, signing_key, [zone])
            assert got == want, f"split at gap={gap}"


class TestHarnessRun:
    def test_small_differential_run_is_clean(self):
        report = run_differential(trajectories=24, seed=7,
                                  include_sampler=False)
        assert report.ok
        assert report.trajectories == 24
        assert report.honest_trials + report.mutated_trials == 24
        assert report.honest_agreements == report.honest_trials
        assert report.mutated_agreements == report.mutated_trials
        assert report.mutated_false_accepts == 0
        assert report.disagreements == []
        # Some honest runs must genuinely be accepted, or the honest
        # agreement number proves nothing.
        assert report.honest_accepts > 0

    def test_report_dict_shape(self):
        report = run_differential(trajectories=6, seed=1,
                                  include_sampler=False)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["trajectories"] == 6
        assert isinstance(payload["disagreements"], list)

    def test_disagreement_is_detected(self, frame, signing_key):
        """Sanity: a deliberately wrong 'reference' would be caught —
        i.e. report equality is a discriminating oracle, not a tautology."""
        verifier = PoaVerifier(frame)
        poa = ProofOfAlibi()
        for i, t in enumerate((0.0, 30.0)):
            point = frame.to_geo(200.0 * i, 0.0)
            poa.append(signed(signing_key,
                              GpsSample(point.lat, point.lon, t)))
        got = verifier.verify(poa, signing_key.public_key, [])
        wrong = reference_verify(poa, signing_key.public_key, [], frame,
                                 vmax_mps=1.0)  # a mis-specified bound
        assert got != wrong
