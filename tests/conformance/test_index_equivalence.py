"""Decision equivalence: zone-indexed paths vs. exhaustive scans.

PR 3 introduced :class:`ZoneProximityIndex` as a pure accelerator — it
must never change a verdict.  These tests pin that down on both sides of
the system: the verification pipeline (indexed vs. linear sufficiency
scan) and the adaptive on-drone sampler (indexed vs. exhaustive zone
distance queries).
"""

from __future__ import annotations

import random

import pytest

from repro.conformance import run_sampler_equivalence
from repro.conformance.harness import random_honest_poa, random_zones
from repro.core.verification import PoaVerifier


@pytest.fixture(scope="module")
def verifier(frame) -> PoaVerifier:
    return PoaVerifier(frame)


@pytest.mark.parametrize("seed", range(6))
def test_pipeline_reports_identical_with_and_without_index(
        verifier, frame, signing_key, seed):
    rng = random.Random(seed)
    # Enough zones that the index path actually engages its grid, not a
    # degenerate one-zone shortcut.
    zones = random_zones(rng, frame, 8 + rng.randint(0, 6))
    poa = random_honest_poa(rng, frame, signing_key, max_samples=8)

    default = verifier.verify(poa, signing_key.public_key, zones)
    with_index = verifier.pipeline().run(
        verifier.context(poa, signing_key.public_key, zones,
                         use_zone_index=True))
    without_index = verifier.pipeline().run(
        verifier.context(poa, signing_key.public_key, zones,
                         use_zone_index=False))

    assert with_index == without_index
    assert default == without_index


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_adaptive_sampler_is_index_invariant(seed):
    result = run_sampler_equivalence(seed=seed)
    assert result["sample_times_equal"] is True
    assert result["poa_digest_equal"] is True
    # The run must be non-trivial for the equality to mean anything.
    assert result["samples_with_index"] > 2
    assert result["samples_with_index"] == result["samples_without_index"]
