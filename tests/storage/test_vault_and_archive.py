"""Tests for repro.storage: the PoA vault and server snapshots."""

import json
import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import (
    EncryptedPoaRecord,
    ProofOfAlibi,
    SignedSample,
    encrypt_poa,
)
from repro.core.protocol import (
    DroneRegistrationRequest,
    IncidentReport,
    PoaSubmission,
    ZoneRegistrationRequest,
)
from repro.core.samples import GpsSample
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.errors import EncodingError
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH
from repro.storage import PoaVault, load_server_state, save_server_state

T0 = DEFAULT_EPOCH


def record(i: int) -> EncryptedPoaRecord:
    return EncryptedPoaRecord(ciphertext=bytes([i]) * 32,
                              signature=bytes([i + 1]) * 32)


class TestPoaVault:
    def test_store_and_load(self, tmp_path):
        vault = PoaVault(tmp_path / "vault")
        records = [record(i) for i in range(5)]
        vault.store("flight-1", "adaptive", T0, T0 + 60.0, records)
        entry = vault.load("flight-1")
        assert entry.policy == "adaptive"
        assert entry.records == tuple(records)
        assert entry.claimed_end == T0 + 60.0

    def test_overwrite_refused(self, tmp_path):
        vault = PoaVault(tmp_path)
        vault.store("flight-1", "adaptive", T0, T0 + 1, [record(0)])
        with pytest.raises(EncodingError):
            vault.store("flight-1", "adaptive", T0, T0 + 1, [record(0)])

    def test_missing_flight(self, tmp_path):
        with pytest.raises(EncodingError):
            PoaVault(tmp_path).load("nope")

    def test_flight_listing_sorted(self, tmp_path):
        vault = PoaVault(tmp_path)
        for fid in ("b-flight", "a-flight"):
            vault.store(fid, "fixed-2hz", T0, T0 + 1, [record(1)])
        assert vault.flights() == ["a-flight", "b-flight"]

    def test_corrupt_file_skipped_in_listing(self, tmp_path):
        vault = PoaVault(tmp_path)
        vault.store("good", "adaptive", T0, T0 + 1, [record(1)])
        (tmp_path / "bad.poa.json").write_text("{not json")
        assert vault.flights() == ["good"]
        with pytest.raises(EncodingError):
            vault.load("bad")

    def test_unsafe_flight_ids_sanitized(self, tmp_path):
        vault = PoaVault(tmp_path)
        path = vault.store("../../etc/passwd", "adaptive", T0, T0 + 1,
                           [record(1)])
        assert path.parent == tmp_path
        assert vault.load("../../etc/passwd").records == (record(1),)

    def test_delete(self, tmp_path):
        vault = PoaVault(tmp_path)
        vault.store("f", "adaptive", T0, T0 + 1, [record(1)])
        vault.delete("f")
        assert vault.flights() == []
        with pytest.raises(EncodingError):
            vault.delete("f")


@pytest.fixture()
def populated_server(frame, signing_key, other_key):
    server = AliDroneServer(frame, rng=random.Random(6),
                            encryption_key_bits=512)
    drone_id = server.register_drone(DroneRegistrationRequest(
        operator_public_key=other_key.public_key,
        tee_public_key=signing_key.public_key, operator_name="op"))
    center = frame.to_geo(0.0, 0.0)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 50.0),
        proof_of_ownership="deed", owner_name="alice"))

    entries = []
    for i in range(6):
        point = frame.to_geo(200.0 + 20.0 * i, 0.0)
        sample = GpsSample(lat=point.lat, lon=point.lon, t=T0 + i)
        payload = sample.to_signed_payload()
        entries.append(SignedSample(
            payload=payload, signature=sign_pkcs1_v15(signing_key, payload)))
    poa = ProofOfAlibi(entries)
    records = encrypt_poa(poa, server.public_encryption_key,
                          rng=random.Random(7))
    server.receive_poa(PoaSubmission(drone_id=drone_id, flight_id="f-1",
                                     records=records, claimed_start=T0,
                                     claimed_end=T0 + 5.0))
    # One adjudicated violation for the ledger.
    server.handle_incident(IncidentReport(zone_id=zone_id,
                                          drone_id=drone_id,
                                          incident_time=T0 + 9999.0))
    return server, drone_id, zone_id


class TestServerArchive:
    def test_round_trip_preserves_everything(self, tmp_path, frame,
                                             populated_server):
        server, drone_id, zone_id = populated_server
        path = tmp_path / "server.json"
        save_server_state(server, path)

        restored = AliDroneServer(frame, rng=random.Random(99),
                                  encryption_key_bits=512)
        load_server_state(path, restored)

        assert drone_id in restored.drones
        assert zone_id in restored.zones
        assert restored.public_encryption_key == server.public_encryption_key
        assert len(restored.retained_for(drone_id)) == 1
        assert restored.ledger.offences(drone_id) == 1
        assert restored.ledger.total_fines(drone_id) == (
            server.ledger.total_fines(drone_id))

    def test_restored_server_adjudicates_identically(self, tmp_path, frame,
                                                     populated_server):
        server, drone_id, zone_id = populated_server
        path = tmp_path / "server.json"
        save_server_state(server, path)
        restored = load_server_state(
            path, AliDroneServer(frame, rng=random.Random(98),
                                 encryption_key_bits=512))
        original = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=drone_id, incident_time=T0 + 2.5))
        again = restored.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=drone_id, incident_time=T0 + 2.5))
        assert original.violation == again.violation

    def test_wrong_frame_rejected(self, tmp_path, populated_server):
        from repro.geo.geodesy import GeoPoint, LocalFrame
        server, _, _ = populated_server
        path = tmp_path / "server.json"
        save_server_state(server, path)
        other = AliDroneServer(LocalFrame(GeoPoint(30.0, -97.0)),
                               rng=random.Random(1),
                               encryption_key_bits=512)
        with pytest.raises(EncodingError):
            load_server_state(path, other)

    def test_tampered_evidence_detected_on_restore(self, tmp_path, frame,
                                                   populated_server):
        """Editing a stored verdict (or evidence) fails the re-verification
        cross-check at load time."""
        server, _, _ = populated_server
        path = tmp_path / "server.json"
        save_server_state(server, path)
        document = json.loads(path.read_text())
        document["retained"][0]["status"] = "insufficient"  # doctor verdict
        path.write_text(json.dumps(document))
        with pytest.raises(EncodingError):
            load_server_state(path, AliDroneServer(
                frame, rng=random.Random(2), encryption_key_bits=512))

    def test_garbage_file_rejected(self, tmp_path, frame):
        path = tmp_path / "junk.json"
        path.write_text("{definitely not json")
        with pytest.raises(EncodingError):
            load_server_state(path, AliDroneServer(
                frame, rng=random.Random(3), encryption_key_bits=512))
