"""Tests for repro.server.store: the SQLite/WAL-backed flight ledger.

The store is the service's crash-safety layer, so the suite pins the
contracts recovery depends on: lossless submission round-trips, dedup
idempotency, the pending set as verdict-row absence, and durability of
every table across a close/reopen cycle on a real file.
"""

import random

import pytest

from repro.core.poa import EncryptedPoaRecord
from repro.core.protocol import PoaSubmission
from repro.core.verification import (
    RejectionReason,
    VerificationReport,
    VerificationStatus,
)
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import ConfigurationError, EncodingError, RegistrationError
from repro.server.store import (
    EPOCH_BUCKET_S,
    FlightStore,
    decode_records,
    encode_records,
    submission_dedup_key,
)
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def make_submission(drone="drone-000001", flight="f-1", n=3, start=T0,
                    seed=0, scheme="rsa-v15"):
    rng = random.Random(seed)
    records = tuple(
        EncryptedPoaRecord(ciphertext=rng.randbytes(64),
                           signature=rng.randbytes(64))
        for _ in range(n))
    return PoaSubmission(drone_id=drone, flight_id=flight, records=records,
                         claimed_start=start, claimed_end=start + n - 1.0,
                         scheme=scheme)


def make_report(status=VerificationStatus.ACCEPTED, reason=None, n=3,
                message="ok", bad=()):
    return VerificationReport(status=status, sample_count=n, message=message,
                              bad_signature_indices=list(bad), reason=reason)


@pytest.fixture()
def store():
    with FlightStore(":memory:") as s:
        yield s


class TestRecordCodec:
    def test_round_trip(self):
        records = make_submission(n=4).records
        assert decode_records(encode_records(records)) == records

    def test_empty(self):
        assert decode_records(encode_records(())) == ()

    def test_truncated_blob_raises(self):
        blob = encode_records(make_submission(n=2).records)
        with pytest.raises(EncodingError):
            decode_records(blob[:-3])
        with pytest.raises(EncodingError):
            decode_records(b"\x00\x00")

    def test_trailing_bytes_raise(self):
        blob = encode_records(make_submission(n=1).records)
        with pytest.raises(EncodingError):
            decode_records(blob + b"\x00")


class TestDedupKey:
    def test_stable_and_sensitive(self):
        a = make_submission()
        assert submission_dedup_key(a) == submission_dedup_key(
            make_submission())
        for variant in (make_submission(flight="f-2"),
                        make_submission(drone="drone-000002"),
                        make_submission(seed=1),
                        make_submission(start=T0 + 1.0)):
            assert submission_dedup_key(variant) != submission_dedup_key(a)


class TestDroneRegistry:
    def test_sequential_ids_and_round_trip(self, store, signing_key,
                                           other_key):
        drone_id = store.register_drone(other_key.public_key,
                                        signing_key.public_key,
                                        operator_name="op", registered_at=T0)
        assert drone_id == "drone-000001"
        second = generate_rsa_keypair(512, rng=random.Random(404))
        assert store.register_drone(other_key.public_key,
                                    second.public_key) == "drone-000002"
        stored = store.get_drone(drone_id)
        assert stored.tee_public_key == signing_key.public_key
        assert stored.operator_public_key == other_key.public_key
        assert stored.operator_name == "op"
        assert store.drone_count() == 2
        assert [d.drone_id for d in store.load_drones()] == [
            "drone-000001", "drone-000002"]

    def test_duplicate_tee_key_rejected(self, store, signing_key, other_key):
        store.register_drone(other_key.public_key, signing_key.public_key)
        with pytest.raises(RegistrationError):
            store.register_drone(other_key.public_key,
                                 signing_key.public_key)

    def test_unknown_drone_raises(self, store):
        with pytest.raises(RegistrationError):
            store.get_drone("drone-404404")

    def test_find_by_tee(self, store, signing_key, other_key):
        assert store.find_drone_by_tee(signing_key.public_key) is None
        drone_id = store.register_drone(other_key.public_key,
                                        signing_key.public_key)
        assert store.find_drone_by_tee(
            signing_key.public_key).drone_id == drone_id


class TestSubmissions:
    def test_round_trip(self, store):
        submission = make_submission()
        seq, inserted = store.put_submission(submission, region="region-1",
                                             received_at=T0 + 5.0)
        assert inserted
        stored = store.get_submission(seq)
        assert stored.submission == submission
        assert stored.region == "region-1"
        assert stored.received_at == T0 + 5.0

    def test_dedup_returns_original_seq(self, store):
        seq, inserted = store.put_submission(make_submission())
        again, inserted_again = store.put_submission(make_submission())
        assert (inserted, inserted_again) == (True, False)
        assert again == seq
        assert store.submission_count() == 1

    def test_missing_seq_raises(self, store):
        with pytest.raises(ConfigurationError):
            store.get_submission(99)

    def test_indexed_lookups(self, store):
        store.put_submission(make_submission(drone="drone-000001",
                                             flight="a"), region="east")
        store.put_submission(make_submission(drone="drone-000001",
                                             flight="b", seed=1),
                             region="west")
        store.put_submission(
            make_submission(drone="drone-000002", flight="c", seed=2,
                            start=T0 + 2 * EPOCH_BUCKET_S), region="east")
        assert len(store.submissions_for_drone("drone-000001")) == 2
        assert len(store.submissions_for_drone("drone-000002")) == 1
        east = store.submissions_in_region("east")
        assert [s.submission.flight_id for s in east] == ["a", "c"]
        epoch = int(T0 // EPOCH_BUCKET_S)
        assert [s.submission.flight_id
                for s in store.submissions_in_region("east", epoch=epoch)
                ] == ["a"]

    def test_counts_by_scheme(self, store):
        assert store.submission_counts_by_scheme() == {}
        store.put_submission(make_submission(flight="r1"))
        store.put_submission(make_submission(flight="r2", seed=1))
        store.put_submission(make_submission(flight="m1", seed=2,
                                             scheme="merkle-disclosure"))
        store.put_submission(make_submission(flight="m1", seed=2,
                                             scheme="merkle-disclosure"))
        # Dedup keeps the duplicate out of the per-scheme partition.
        assert store.submission_counts_by_scheme() == {
            "merkle-disclosure": 1, "rsa-v15": 2}
        total = sum(store.submission_counts_by_scheme().values())
        assert total == store.submission_count()


class TestVerdictsAndPending:
    def test_report_round_trip(self, store):
        seq, _ = store.put_submission(make_submission())
        report = make_report(status=VerificationStatus.REJECTED_BAD_SIGNATURE,
                             reason=RejectionReason.BAD_SIGNATURE,
                             message="1 of 3 signatures failed", bad=[1])
        store.record_verdict(seq, report, audited_at=T0 + 9.0)
        verdict = store.get_verdict(seq)
        assert verdict.to_report() == report
        assert verdict.audited_at == T0 + 9.0

    def test_pending_is_verdict_absence(self, store):
        seqs = [store.put_submission(make_submission(flight=f"f-{i}",
                                                     seed=i))[0]
                for i in range(3)]
        assert store.pending_count() == 3
        store.record_verdict(seqs[1], make_report(), audited_at=T0)
        pending = store.pending()
        assert [p.seq for p in pending] == [seqs[0], seqs[2]]
        assert store.pending_count() == 2
        assert store.get_verdict(seqs[0]) is None
        assert store.pending(limit=1)[0].seq == seqs[0]

    def test_intake_error_leaves_pending_set(self, store):
        seq, _ = store.put_submission(make_submission())
        store.record_intake_error(seq, "unknown drone id", audited_at=T0)
        assert store.pending_count() == 0
        verdict = store.get_verdict(seq)
        assert verdict.status == "intake_error"
        with pytest.raises(ConfigurationError):
            verdict.to_report()

    def test_audited_pairs_in_arrival_order(self, store):
        reports = {}
        for i in range(3):
            seq, _ = store.put_submission(make_submission(flight=f"f-{i}",
                                                          seed=i))
            reports[seq] = make_report(message=f"r-{i}")
            store.record_verdict(seq, reports[seq], audited_at=T0 + i)
        pairs = list(store.audited())
        assert [stored.seq for stored, _ in pairs] == sorted(reports)
        for stored, verdict in pairs:
            assert verdict.to_report() == reports[stored.seq]


class TestDurability:
    def test_everything_survives_reopen(self, tmp_path, signing_key,
                                        other_key):
        path = tmp_path / "flights.db"
        with FlightStore(path) as store:
            store.register_drone(other_key.public_key,
                                 signing_key.public_key, operator_name="op")
            audited_seq, _ = store.put_submission(
                make_submission(flight="done"), region="east")
            store.record_verdict(audited_seq, make_report(), audited_at=T0)
            pending_seq, _ = store.put_submission(
                make_submission(flight="interrupted", seed=1))

        with FlightStore(path) as store:
            assert store.get_drone("drone-000001").operator_name == "op"
            assert store.submission_count() == 2
            assert [p.seq for p in store.pending()] == [pending_seq]
            assert store.get_verdict(
                audited_seq).to_report() == make_report()
            # Id issuance continues where it left off.
            key = generate_rsa_keypair(512, rng=random.Random(505))
            assert store.register_drone(other_key.public_key,
                                        key.public_key) == "drone-000002"
            # The dedup constraint survives too.
            seq, inserted = store.put_submission(
                make_submission(flight="done"), region="east")
            assert (seq, inserted) == (audited_seq, False)
