"""Tests for the Auditor's operational event log (audit trail)."""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample, encrypt_poa
from repro.core.protocol import (
    DroneRegistrationRequest,
    IncidentReport,
    PoaSubmission,
    ZoneQuery,
    ZoneRegistrationRequest,
)
from repro.core.samples import GpsSample
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


@pytest.fixture()
def server(frame):
    return AliDroneServer(frame, rng=random.Random(91),
                          encryption_key_bits=512)


def register_all(server, frame, signing_key, other_key):
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(frame.to_geo(0, 0).lat, frame.to_geo(0, 0).lon, 50.0),
        proof_of_ownership="deed", owner_name="alice"))
    drone_id = server.register_drone(DroneRegistrationRequest(
        operator_public_key=other_key.public_key,
        tee_public_key=signing_key.public_key, operator_name="op"))
    return zone_id, drone_id


class TestAuditTrail:
    def test_registrations_logged(self, server, frame, signing_key,
                                  other_key):
        zone_id, drone_id = register_all(server, frame, signing_key,
                                         other_key)
        zone_events = server.events.of_kind("zone_registered")
        drone_events = server.events.of_kind("drone_registered")
        assert zone_events[0].detail["zone_id"] == zone_id
        assert zone_events[0].detail["owner"] == "alice"
        assert drone_events[0].detail["drone_id"] == drone_id
        assert drone_events[0].detail["attested"] is False

    def test_zone_query_logged(self, server, frame, signing_key, other_key,
                               rng):
        _, drone_id = register_all(server, frame, signing_key, other_key)
        query = ZoneQuery.create(drone_id, frame.to_geo(-100, -100),
                                 frame.to_geo(100, 100), other_key, rng=rng)
        server.handle_zone_query(query)
        events = server.events.of_kind("zone_query")
        assert events[0].detail == {"drone_id": drone_id,
                                    "zones_returned": 1}

    def test_poa_and_incident_logged(self, server, frame, signing_key,
                                     other_key):
        zone_id, drone_id = register_all(server, frame, signing_key,
                                         other_key)
        entries = []
        for i in range(4):
            point = frame.to_geo(300.0 + 20 * i, 0.0)
            sample = GpsSample(lat=point.lat, lon=point.lon, t=T0 + i)
            payload = sample.to_signed_payload()
            entries.append(SignedSample(
                payload=payload,
                signature=sign_pkcs1_v15(signing_key, payload)))
        records = encrypt_poa(ProofOfAlibi(entries),
                              server.public_encryption_key,
                              rng=random.Random(92))
        server.receive_poa(PoaSubmission(
            drone_id=drone_id, flight_id="f-1", records=records,
            claimed_start=T0, claimed_end=T0 + 3.0))
        poa_events = server.events.of_kind("poa_received")
        assert poa_events[0].detail["flight_id"] == "f-1"
        assert poa_events[0].detail["status"] == "accepted"

        server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=drone_id, incident_time=T0 + 1.5))
        incident_events = server.events.of_kind("incident_adjudicated")
        assert incident_events[0].detail["violation"] is False

        server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=drone_id,
            incident_time=T0 + 9_999.0))
        incident_events = server.events.of_kind("incident_adjudicated")
        assert incident_events[1].detail["violation"] is True
        assert incident_events[1].detail["violation_kind"] == "no_poa"

    def test_trail_is_chronological_per_kind(self, server, frame,
                                             signing_key, other_key):
        zone_id, drone_id = register_all(server, frame, signing_key,
                                         other_key)
        for offset in (10.0, 20.0, 30.0):
            server.handle_incident(IncidentReport(
                zone_id=zone_id, drone_id=drone_id,
                incident_time=T0 + offset))
        times = [e.time for e in server.events.of_kind("incident_adjudicated")]
        assert times == sorted(times)
