"""Tests for repro.server.service: the persistent sharded auditor.

The headline tests are the crash-recovery suite — a service killed
mid-batch and reopened on the same store must replay exactly the
unaudited rows, once, with verdicts bit-identical to an uninterrupted
run — and the conformance replay, which re-derives every stored verdict
with the independent reference verifier.
"""

import random

import pytest

from repro.conformance.reference import reference_verify
from repro.core.nfz import NoFlyZone
from repro.core.poa import decrypt_poa
from repro.core.protocol import DroneRegistrationRequest, PoaSubmission
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import ConfigurationError
from repro.obs.hub import TelemetryHub, flatten_rollup
from repro.server.service import (
    OUTCOME_ACCEPTED,
    OUTCOME_DEDUPLICATED,
    OUTCOME_SHED_QUEUE,
    OUTCOME_SHED_RATE,
    AuditorService,
    TokenBucket,
)
from repro.server.store import FlightStore
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import (
    build_flight_submission,
    poisson_arrivals,
    provision_fleet,
)

T0 = DEFAULT_EPOCH


@pytest.fixture(scope="module")
def encryption_key():
    return generate_rsa_keypair(512, rng=random.Random(606))


def make_service(frame, encryption_key, store=":memory:", **kwargs):
    service = AuditorService(frame, store, encryption_key=encryption_key,
                            **kwargs)
    center = frame.to_geo(0.0, 0.0)
    service.register_zone(NoFlyZone(center.lat, center.lon, 50.0))
    return service


def register_fleet(service, drones=3, seed=5):
    def register(operator_public, tee_public, name):
        return service.register_drone(DroneRegistrationRequest(
            operator_public_key=operator_public, tee_public_key=tee_public,
            operator_name=name), now=T0)

    return provision_fleet(register, drones=drones, seed=seed)


def fleet_arrivals(fleet, service, frame, duration_s=20.0, rate_hz=0.5,
                   seed=5):
    return poisson_arrivals(fleet, service.public_encryption_key,
                            frame=frame, seed=seed, rate_hz=rate_hz,
                            duration_s=duration_s, samples=3)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(1.0)   # one second refills one token
        assert not bucket.try_take(1.0)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        assert not bucket.try_take(5.0)   # stale timestamp refills nothing
        assert bucket.try_take(11.0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=0.0, burst=2.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_s=1.0, burst=0.5)


class TestIntakeAndDrain:
    def test_submit_drain_verdicts(self, frame, encryption_key):
        service = make_service(frame, encryption_key, shards=2)
        fleet = register_fleet(service)
        arrivals = fleet_arrivals(fleet, service, frame)
        assert arrivals
        for arrival in arrivals:
            decision = service.submit(arrival.submission, now=arrival.at,
                                      region=arrival.region)
            assert decision.outcome == OUTCOME_ACCEPTED
        assert service.queue_depth == len(arrivals)
        records = service.drain(now=T0 + 30.0)
        assert len(records) == len(arrivals)
        assert service.queue_depth == 0
        assert service.store.pending_count() == 0
        assert sum(service.stats.per_shard_audited) == len(arrivals)
        for stored, verdict in service.audited_submissions():
            assert verdict.status == "accepted"

    def test_scheme_accounting_live_and_durable(self, frame,
                                                encryption_key):
        service = make_service(frame, encryption_key)
        fleet = register_fleet(service, drones=2)
        rsa = build_flight_submission(fleet[0],
                                      service.public_encryption_key,
                                      frame=frame, flight_index=0, samples=3,
                                      start=T0, rng=random.Random(1))
        merkle = build_flight_submission(fleet[1],
                                         service.public_encryption_key,
                                         frame=frame, flight_index=0,
                                         samples=3, start=T0,
                                         rng=random.Random(2),
                                         scheme="merkle-disclosure")
        service.submit(rsa, now=T0 + 10.0)
        service.submit(merkle, now=T0 + 11.0)
        service.drain(now=T0 + 12.0)
        assert service.stats.submissions_by_scheme == {
            "rsa-v15": 1, "merkle-disclosure": 1}
        # The store's indexed partition is the durable equivalent of the
        # live counters, and a dedup must not inflate either.
        assert service.store.submission_counts_by_scheme() == {
            "merkle-disclosure": 1, "rsa-v15": 1}
        service.submit(rsa, now=T0 + 13.0)
        assert service.stats.submissions_by_scheme["rsa-v15"] == 1
        doc = service.stats.to_dict()
        assert doc["submissions_by_scheme"] == {
            "merkle-disclosure": 1, "rsa-v15": 1}
        for stored, verdict in service.audited_submissions():
            assert verdict.status == "accepted"

    def test_resubmission_dedups_onto_original(self, frame, encryption_key):
        service = make_service(frame, encryption_key)
        fleet = register_fleet(service, drones=1)
        sub = build_flight_submission(fleet[0],
                                      service.public_encryption_key,
                                      frame=frame, flight_index=0, samples=3,
                                      start=T0, rng=random.Random(1))
        first = service.submit(sub, now=T0 + 10.0)
        service.drain(now=T0 + 11.0)
        again = service.submit(sub, now=T0 + 12.0)
        assert again.outcome == OUTCOME_DEDUPLICATED
        assert again.seq == first.seq
        assert service.queue_depth == 0          # no second audit queued
        assert service.stats.audited == 1

    def test_rate_limit_sheds_deterministically(self, frame, encryption_key):
        outcomes = []
        for _ in range(2):
            service = make_service(frame, encryption_key,
                                   admission_rate_per_s=0.5,
                                   admission_burst=2.0)
            fleet = register_fleet(service, drones=2)
            arrivals = fleet_arrivals(fleet, service, frame, rate_hz=2.0)
            run = [service.submit(a.submission, now=a.at).outcome
                   for a in arrivals]
            outcomes.append(run)
            service.close()
        assert outcomes[0] == outcomes[1]
        assert OUTCOME_SHED_RATE in outcomes[0]
        assert OUTCOME_ACCEPTED in outcomes[0]

    def test_full_queue_sheds(self, frame, encryption_key):
        service = make_service(frame, encryption_key, queue_capacity=2)
        fleet = register_fleet(service, drones=1)
        subs = [build_flight_submission(fleet[0],
                                        service.public_encryption_key,
                                        frame=frame, flight_index=i,
                                        samples=2, start=T0 + 10.0 * i,
                                        rng=random.Random(i))
                for i in range(3)]
        decisions = [service.submit(s, now=T0 + 40.0) for s in subs]
        assert [d.outcome for d in decisions] == [
            OUTCOME_ACCEPTED, OUTCOME_ACCEPTED, OUTCOME_SHED_QUEUE]
        # Shed submissions never reached the store.
        assert service.store.submission_count() == 2
        service.drain(now=T0 + 41.0)
        assert service.submit(subs[2], now=T0 + 42.0).outcome == \
            OUTCOME_ACCEPTED

    def test_unknown_drone_becomes_intake_error(self, frame, encryption_key):
        service = make_service(frame, encryption_key)
        fleet = register_fleet(service, drones=1)
        sub = build_flight_submission(fleet[0],
                                      service.public_encryption_key,
                                      frame=frame, flight_index=0, samples=2,
                                      start=T0, rng=random.Random(1))
        orphan = PoaSubmission(drone_id="drone-404404", flight_id="f",
                               records=sub.records, claimed_start=T0,
                               claimed_end=T0 + 1.0)
        service.submit(orphan, now=T0 + 5.0)
        service.drain(now=T0 + 6.0)
        assert service.stats.intake_errors == 1
        (verdict,) = [v for _, v in service.audited_submissions()]
        assert verdict.status == "intake_error"
        # Terminally unprocessable: never replayed.
        assert service.store.pending_count() == 0

    def test_shard_routing_is_deterministic_and_region_keyed(
            self, frame, encryption_key):
        service = make_service(frame, encryption_key, shards=4)
        assert service.shard_of("drone-1", "east") == \
            service.shard_of("drone-2", "east")
        assert service.shard_of("drone-1") == service.shard_of("drone-1")
        assert all(0 <= service.shard_of(f"drone-{i}") < 4
                   for i in range(50))

    def test_rejects_bad_configuration(self, frame, encryption_key):
        with pytest.raises(ConfigurationError):
            make_service(frame, encryption_key, shards=0)
        with pytest.raises(ConfigurationError):
            make_service(frame, encryption_key, queue_capacity=0)


class TestCrashRecovery:
    def run_uninterrupted(self, frame, encryption_key, path):
        """The reference run: same workload, never interrupted."""
        service = make_service(frame, encryption_key, store=str(path))
        fleet = register_fleet(service)
        arrivals = fleet_arrivals(fleet, service, frame)
        for arrival in arrivals:
            service.submit(arrival.submission, now=arrival.at,
                           region=arrival.region)
        service.drain(now=T0 + 30.0)
        verdicts = [(stored.submission.flight_id, verdict.to_report())
                    for stored, verdict in service.audited_submissions()]
        service.close()
        return arrivals, verdicts

    def test_replay_is_exactly_once_and_bit_identical(self, frame,
                                                      encryption_key,
                                                      tmp_path):
        arrivals, want = self.run_uninterrupted(frame, encryption_key,
                                                tmp_path / "reference.db")
        assert len(arrivals) >= 4

        # The crashing run: same workload, killed after auditing only 3.
        path = tmp_path / "crashed.db"
        service = make_service(frame, encryption_key, store=str(path))
        register_fleet(service)
        for arrival in arrivals:
            service.submit(arrival.submission, now=arrival.at,
                           region=arrival.region)
        service.drain(now=T0 + 30.0, max_submissions=3)
        # "Crash": the in-memory queue dies with the process; only the
        # store survives.
        service.close()

        reopened = make_service(frame, encryption_key, store=str(path))
        assert reopened.store.pending_count() == len(arrivals) - 3
        replayed = reopened.recover(now=T0 + 60.0)
        assert replayed == len(arrivals) - 3
        assert reopened.store.pending_count() == 0
        got = [(stored.submission.flight_id, verdict.to_report())
               for stored, verdict in reopened.audited_submissions()]
        assert got == want
        # Recovery is idempotent: nothing left to replay.
        assert reopened.recover(now=T0 + 90.0) == 0
        reopened.close()

    def test_interrupted_recovery_still_exactly_once(self, frame,
                                                     encryption_key,
                                                     tmp_path):
        """Recovery killed mid-replay and rerun audits each row once."""
        path = tmp_path / "crashed-twice.db"
        service = make_service(frame, encryption_key, store=str(path))
        fleet = register_fleet(service)
        arrivals = fleet_arrivals(fleet, service, frame)
        for arrival in arrivals:
            service.submit(arrival.submission, now=arrival.at,
                           region=arrival.region)
        service.close()

        # First recovery attempt dies after one batch.
        first = make_service(frame, encryption_key, store=str(path))
        pending = first.store.pending(limit=2)
        for stored in pending:
            first.submit(stored.submission, now=T0 + 50.0)  # dedup, no-op
        first.recover(now=T0 + 50.0, batch_size=2)
        audited_so_far = first.store.verdict_count()
        assert audited_so_far == len(arrivals)
        first.close()

        second = make_service(frame, encryption_key, store=str(path))
        assert second.recover(now=T0 + 70.0) == 0
        assert second.store.verdict_count() == len(arrivals)
        second.close()

    def test_recover_requires_idle_queue(self, frame, encryption_key):
        service = make_service(frame, encryption_key)
        fleet = register_fleet(service, drones=1)
        sub = build_flight_submission(fleet[0],
                                      service.public_encryption_key,
                                      frame=frame, flight_index=0, samples=2,
                                      start=T0, rng=random.Random(1))
        service.submit(sub, now=T0 + 5.0)
        with pytest.raises(ConfigurationError):
            service.recover(now=T0 + 6.0)

    def test_restart_resumes_registered_fleet(self, frame, encryption_key,
                                              tmp_path):
        path = tmp_path / "fleet.db"
        service = make_service(frame, encryption_key, store=str(path))
        fleet = register_fleet(service)
        service.close()
        reopened = make_service(frame, encryption_key, store=str(path))
        sub = build_flight_submission(fleet[0],
                                      reopened.public_encryption_key,
                                      frame=frame, flight_index=0, samples=2,
                                      start=T0, rng=random.Random(2))
        reopened.submit(sub, now=T0 + 5.0)
        reopened.drain(now=T0 + 6.0)
        (verdict,) = [v for _, v in reopened.audited_submissions()]
        assert verdict.status == "accepted"
        reopened.close()


class TestConformanceReplay:
    def test_stored_verdicts_match_reference_verifier(self, frame,
                                                      encryption_key):
        """Every service verdict re-derives identically from the store —
        including rejections (one flight straight through the zone)."""
        service = make_service(frame, encryption_key, shards=2)
        fleet = register_fleet(service)
        arrivals = fleet_arrivals(fleet, service, frame, duration_s=12.0)
        for arrival in arrivals:
            service.submit(arrival.submission, now=arrival.at,
                           region=arrival.region)
        # One violating flight: samples inside the origin zone.
        violator = build_flight_submission(
            fleet[0], service.public_encryption_key, frame=frame,
            flight_index=99, samples=3, start=T0, rng=random.Random(9))
        intrusive = PoaSubmission(
            drone_id=violator.drone_id, flight_id="flight-violation",
            records=violator.records[:1], claimed_start=T0,
            claimed_end=T0)
        service.submit(intrusive, now=T0 + 15.0)
        service.drain(now=T0 + 30.0)

        zones = [record.zone for record in service.zones.all_zones()]
        statuses = set()
        for stored, verdict in service.audited_submissions():
            poa = decrypt_poa(stored.submission.records, encryption_key,
                              scheme=stored.submission.scheme,
                              finalizer=stored.submission.finalizer)
            tee_key = service.store.get_drone(
                stored.submission.drone_id).tee_public_key
            want = reference_verify(poa, tee_key, zones, frame)
            assert verdict.to_report() == want
            statuses.add(verdict.status)
        assert "accepted" in statuses
        assert len(statuses) > 1   # the truncated flight must not pass


class TestServiceTelemetry:
    def test_gauges_and_section_in_rollup(self, frame, encryption_key):
        hub = TelemetryHub(window_s=120.0)
        service = make_service(frame, encryption_key, shards=2,
                               telemetry=hub)
        fleet = register_fleet(service, drones=2)
        arrivals = fleet_arrivals(fleet, service, frame)
        for arrival in arrivals:
            service.submit(arrival.submission, now=arrival.at,
                           region=arrival.region)
        service.drain(now=T0 + 30.0)
        flat = flatten_rollup(hub.rollup(T0 + 30.0))
        assert flat["service.queue_depth"] == 0.0
        assert flat["service.queue_fill_ratio"] == 0.0
        assert flat["service.store.pending"] == 0.0
        assert flat["service.intake.accepted.total"] == len(arrivals)
        assert "service.payload_cache_hit_ratio" in flat
        assert "service.store.seconds.p99" in flat
        assert "audit.intake.seconds.p99" in flat
        rollup = hub.rollup(T0 + 30.0)
        assert rollup["service"]["audited"] == len(arrivals)

    def test_shed_counters_feed_monitor_metric(self, frame, encryption_key):
        hub = TelemetryHub(window_s=120.0)
        service = make_service(frame, encryption_key, queue_capacity=1,
                               telemetry=hub)
        fleet = register_fleet(service, drones=1)
        subs = [build_flight_submission(fleet[0],
                                        service.public_encryption_key,
                                        frame=frame, flight_index=i,
                                        samples=2, start=T0 + 10.0 * i,
                                        rng=random.Random(i))
                for i in range(3)]
        for sub in subs:
            service.submit(sub, now=T0 + 40.0)
        flat = flatten_rollup(hub.rollup(T0 + 40.0))
        assert flat["service.shed.total"] == 2.0
        assert flat["service.intake.shed_queue_full.total"] == 2.0


class TestSharedStore:
    def test_accepts_open_store_instance(self, frame, encryption_key):
        store = FlightStore(":memory:")
        service = AuditorService(frame, store,
                                 encryption_key=encryption_key)
        assert service.store is store
