"""Tests for repro.server.violations."""

import pytest

from repro.server.violations import (
    PenaltyPolicy,
    ViolationFinding,
    ViolationKind,
    ViolationLedger,
)


def finding(drone="drone-1", violation=True,
            kind=ViolationKind.INSUFFICIENT_ALIBI):
    return ViolationFinding(drone_id=drone, zone_id="zone-1",
                            incident_time=0.0, violation=violation,
                            kind=kind if violation else None)


class TestPenaltyPolicy:
    def test_base_fine(self):
        policy = PenaltyPolicy(base_fine=100.0)
        assert policy.fine_for(ViolationKind.INSUFFICIENT_ALIBI, 0) == 100.0

    def test_repeat_escalation(self):
        policy = PenaltyPolicy(base_fine=100.0, repeat_multiplier=2.0)
        assert policy.fine_for(ViolationKind.INSUFFICIENT_ALIBI, 2) == 400.0

    def test_forgery_multiplier(self):
        policy = PenaltyPolicy(base_fine=100.0, forgery_multiplier=5.0)
        assert policy.fine_for(ViolationKind.BAD_SIGNATURE, 0) == 500.0
        assert policy.fine_for(ViolationKind.INFEASIBLE_TRACE, 0) == 500.0

    def test_cap(self):
        policy = PenaltyPolicy(base_fine=100.0, repeat_multiplier=10.0,
                               max_fine=1_000.0)
        assert policy.fine_for(ViolationKind.NO_POA, 5) == 1_000.0


class TestViolationLedger:
    def test_non_violation_not_recorded(self):
        ledger = ViolationLedger()
        assert ledger.adjudicate(finding(violation=False)) is None
        assert len(ledger) == 0

    def test_violation_recorded_with_fine(self):
        ledger = ViolationLedger(PenaltyPolicy(base_fine=100.0))
        entry = ledger.adjudicate(finding())
        assert entry is not None
        assert entry.fine == 100.0
        assert ledger.offences("drone-1") == 1

    def test_missing_kind_rejected(self):
        ledger = ViolationLedger()
        bad = ViolationFinding(drone_id="d", zone_id="z", incident_time=0.0,
                               violation=True, kind=None)
        with pytest.raises(ValueError):
            ledger.adjudicate(bad)

    def test_per_drone_escalation(self):
        ledger = ViolationLedger(PenaltyPolicy(base_fine=100.0,
                                               repeat_multiplier=2.0))
        ledger.adjudicate(finding(drone="a"))
        ledger.adjudicate(finding(drone="b"))
        entry = ledger.adjudicate(finding(drone="a"))
        assert entry.fine == 200.0            # a's second offence
        assert ledger.offences("b") == 1

    def test_total_fines(self):
        ledger = ViolationLedger(PenaltyPolicy(base_fine=100.0,
                                               repeat_multiplier=2.0))
        ledger.adjudicate(finding())
        ledger.adjudicate(finding())
        assert ledger.total_fines("drone-1") == 300.0
        assert ledger.total_fines("drone-x") == 0.0

    def test_iteration(self):
        ledger = ViolationLedger()
        ledger.adjudicate(finding())
        assert len(list(ledger)) == 1
