"""Tests for repro.server.auditor: the AliDrone Server."""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample, encrypt_poa
from repro.core.protocol import (
    DroneRegistrationRequest,
    IncidentReport,
    PoaSubmission,
    ZoneQuery,
    ZoneRegistrationRequest,
)
from repro.core.samples import GpsSample
from repro.core.verification import VerificationStatus
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.errors import AuthenticationError, RegistrationError
from repro.server.auditor import AliDroneServer
from repro.server.violations import ViolationKind
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def signed(key, sample):
    payload = sample.to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


def sample_at(frame, x, y, t):
    point = frame.to_geo(x, y)
    return GpsSample(lat=point.lat, lon=point.lon, t=T0 + t)


@pytest.fixture()
def server(frame):
    return AliDroneServer(frame, rng=random.Random(7),
                          encryption_key_bits=512)


@pytest.fixture()
def registered(server, signing_key, other_key):
    """Register a drone whose TEE key is `signing_key` (operator: other)."""
    drone_id = server.register_drone(DroneRegistrationRequest(
        operator_public_key=other_key.public_key,
        tee_public_key=signing_key.public_key, operator_name="op"))
    return drone_id


@pytest.fixture()
def zone_id(server, frame):
    center = frame.to_geo(0.0, 0.0)
    return server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 50.0),
        proof_of_ownership="deed", owner_name="alice"))


def make_submission(server, frame, signing_key, drone_id, *, t_offset=0.0,
                    n=8, flight="f-1"):
    poa = ProofOfAlibi(
        signed(signing_key,
               sample_at(frame, 200.0 + 20 * i, 0.0, t_offset + i))
        for i in range(n))
    records = encrypt_poa(poa, server.public_encryption_key,
                          rng=random.Random(3))
    return PoaSubmission(drone_id=drone_id, flight_id=flight,
                         records=records, claimed_start=T0 + t_offset,
                         claimed_end=T0 + t_offset + n - 1)


class TestZoneQuery:
    def test_valid_query_answered(self, server, frame, registered, zone_id,
                                  other_key, rng):
        query = ZoneQuery.create(registered, frame.to_geo(-200, -200),
                                 frame.to_geo(400, 400), other_key, rng=rng)
        response = server.handle_zone_query(query)
        assert len(response.zones) == 1
        assert response.zones[0][0] == zone_id

    def test_unregistered_drone_rejected(self, server, frame, other_key, rng):
        query = ZoneQuery.create("drone-999999", frame.to_geo(0, 0),
                                 frame.to_geo(1, 1), other_key, rng=rng)
        with pytest.raises(RegistrationError):
            server.handle_zone_query(query)

    def test_wrong_signer_rejected(self, server, frame, registered,
                                   signing_key, rng):
        # Signed with the TEE key, not the operator key D-.
        query = ZoneQuery.create(registered, frame.to_geo(0, 0),
                                 frame.to_geo(1, 1), signing_key, rng=rng)
        with pytest.raises(AuthenticationError):
            server.handle_zone_query(query)

    def test_nonce_replay_rejected(self, server, frame, registered,
                                   other_key, rng):
        query = ZoneQuery.create(registered, frame.to_geo(0, 0),
                                 frame.to_geo(1, 1), other_key, rng=rng)
        server.handle_zone_query(query)
        with pytest.raises(AuthenticationError):
            server.handle_zone_query(query)

    def test_nonce_survives_purge_inside_window(self, server, frame,
                                                registered, other_key, rng):
        query = ZoneQuery.create(registered, frame.to_geo(0, 0),
                                 frame.to_geo(1, 1), other_key, rng=rng)
        server.handle_zone_query(query, now=T0)
        server.purge_expired(T0 + server.nonce_window_s / 2)
        with pytest.raises(AuthenticationError):
            server.handle_zone_query(query, now=T0 + server.nonce_window_s / 2)

    def test_stale_nonce_evicted_by_purge(self, server, frame, registered,
                                          other_key, rng):
        """The nonce set is bounded: the retention sweep forgets old ones."""
        query = ZoneQuery.create(registered, frame.to_geo(0, 0),
                                 frame.to_geo(1, 1), other_key, rng=rng)
        server.handle_zone_query(query, now=T0)
        later = T0 + server.nonce_window_s + 1.0
        assert server.purge_expired(later) == 0  # counts submissions only
        # Outside the replay window the nonce is no longer remembered.
        server.handle_zone_query(query, now=later)


class TestPoaIntake:
    def test_valid_submission_accepted_and_retained(self, server, frame,
                                                    registered, zone_id,
                                                    signing_key):
        submission = make_submission(server, frame, signing_key, registered)
        report = server.receive_poa(submission)
        assert report.status is VerificationStatus.ACCEPTED
        assert len(server.retained_for(registered)) == 1

    def test_unknown_drone_rejected(self, server, frame, signing_key):
        submission = make_submission(server, frame, signing_key,
                                     "drone-404404")
        with pytest.raises(RegistrationError):
            server.receive_poa(submission)

    def test_garbage_records_reported_malformed(self, server, registered):
        from repro.core.poa import EncryptedPoaRecord
        submission = PoaSubmission(
            drone_id=registered, flight_id="f",
            records=[EncryptedPoaRecord(ciphertext=b"\x00" * 64,
                                        signature=b"\x00" * 64)],
            claimed_start=T0, claimed_end=T0 + 1)
        report = server.receive_poa(submission)
        assert report.status is VerificationStatus.REJECTED_MALFORMED

    def test_retention_purge(self, server, frame, registered, signing_key):
        submission = make_submission(server, frame, signing_key, registered)
        server.receive_poa(submission, now=T0)
        assert server.purge_expired(T0 + server.retention_s + 1.0) == 1
        assert server.retained_for(registered) == []

    def test_retention_keeps_recent(self, server, frame, registered,
                                    signing_key):
        submission = make_submission(server, frame, signing_key, registered)
        server.receive_poa(submission, now=T0)
        assert server.purge_expired(T0 + 10.0) == 0
        assert len(server.retained_for(registered)) == 1


class TestIncidentAdjudication:
    def test_cleared_by_sufficient_poa(self, server, frame, registered,
                                       zone_id, signing_key):
        server.receive_poa(make_submission(server, frame, signing_key,
                                           registered))
        finding = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=registered, incident_time=T0 + 3.5))
        assert not finding.violation
        assert server.ledger.offences(registered) == 0

    def test_no_poa_is_violation(self, server, frame, registered, zone_id):
        finding = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=registered, incident_time=T0 + 3.5))
        assert finding.violation
        assert finding.kind is ViolationKind.NO_POA
        assert server.ledger.offences(registered) == 1

    def test_incident_outside_window_is_violation(self, server, frame,
                                                  registered, zone_id,
                                                  signing_key):
        server.receive_poa(make_submission(server, frame, signing_key,
                                           registered))
        finding = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=registered,
            incident_time=T0 + 3600.0))
        assert finding.violation
        assert finding.kind is ViolationKind.NO_POA

    def test_insufficient_poa_is_violation(self, server, frame, registered,
                                           zone_id, signing_key):
        # Two samples 60 s apart near the zone: covers the window but
        # cannot rule out entrance.
        poa = ProofOfAlibi([
            signed(signing_key, sample_at(frame, 200, 0, 0.0)),
            signed(signing_key, sample_at(frame, 260, 0, 60.0))])
        records = encrypt_poa(poa, server.public_encryption_key,
                              rng=random.Random(3))
        server.receive_poa(PoaSubmission(
            drone_id=registered, flight_id="f", records=records,
            claimed_start=T0, claimed_end=T0 + 60.0))
        finding = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=registered, incident_time=T0 + 30.0))
        assert finding.violation
        assert finding.kind is ViolationKind.INSUFFICIENT_ALIBI

    def test_forged_poa_is_forgery_violation(self, server, frame, registered,
                                             zone_id, other_key):
        # Signed by a key other than the registered TEE key.
        poa = ProofOfAlibi(
            signed(other_key, sample_at(frame, 200 + 20 * i, 0, float(i)))
            for i in range(8))
        records = encrypt_poa(poa, server.public_encryption_key,
                              rng=random.Random(3))
        server.receive_poa(PoaSubmission(
            drone_id=registered, flight_id="f", records=records,
            claimed_start=T0, claimed_end=T0 + 7.0))
        finding = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=registered, incident_time=T0 + 3.0))
        assert finding.violation
        assert finding.kind is ViolationKind.BAD_SIGNATURE

    def test_unknown_zone_rejected(self, server, registered):
        with pytest.raises(RegistrationError):
            server.handle_incident(IncidentReport(
                zone_id="zone-404404", drone_id=registered,
                incident_time=T0))

    def test_unknown_drone_rejected(self, server, zone_id):
        with pytest.raises(RegistrationError):
            server.handle_incident(IncidentReport(
                zone_id=zone_id, drone_id="drone-404404", incident_time=T0))

    def test_repeat_offences_escalate_fines(self, server, frame, registered,
                                            zone_id):
        first = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=registered, incident_time=T0 + 1.0))
        second = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=registered, incident_time=T0 + 2.0))
        assert first.violation and second.violation
        entries = list(server.ledger)
        assert entries[1].fine > entries[0].fine
