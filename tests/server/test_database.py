"""Tests for repro.server.database."""

import pytest

from repro.core.nfz import NoFlyZone
from repro.errors import RegistrationError
from repro.server.database import DroneRegistry, NfzDatabase


class TestDroneRegistry:
    def test_register_and_lookup(self, signing_key, other_key):
        registry = DroneRegistry()
        record = registry.register(signing_key.public_key,
                                   other_key.public_key, "op")
        assert record.drone_id == "drone-000001"
        assert registry.lookup(record.drone_id) == record
        assert record.drone_id in registry
        assert len(registry) == 1

    def test_sequential_ids(self, signing_key, other_key, vendor_key):
        registry = DroneRegistry()
        a = registry.register(signing_key.public_key, other_key.public_key)
        b = registry.register(signing_key.public_key, vendor_key.public_key)
        assert a.drone_id != b.drone_id

    def test_duplicate_tee_key_rejected(self, signing_key, other_key):
        """One physical TEE = one license plate."""
        registry = DroneRegistry()
        registry.register(signing_key.public_key, other_key.public_key)
        with pytest.raises(RegistrationError):
            registry.register(signing_key.public_key, other_key.public_key)

    def test_same_operator_key_many_drones_allowed(self, signing_key,
                                                   other_key, vendor_key):
        """One operator can own a fleet (distinct TEEs)."""
        registry = DroneRegistry()
        registry.register(signing_key.public_key, other_key.public_key)
        registry.register(signing_key.public_key, vendor_key.public_key)
        assert len(registry) == 2

    def test_unknown_lookup_rejected(self):
        with pytest.raises(RegistrationError):
            DroneRegistry().lookup("drone-999999")


class TestNfzDatabase:
    def zone_at(self, frame, x, y, r):
        center = frame.to_geo(x, y)
        return NoFlyZone(center.lat, center.lon, r)

    def test_register_requires_ownership_proof(self, frame):
        db = NfzDatabase(frame)
        with pytest.raises(RegistrationError):
            db.register(self.zone_at(frame, 0, 0, 10.0))

    def test_register_and_lookup(self, frame):
        db = NfzDatabase(frame)
        record = db.register(self.zone_at(frame, 0, 0, 10.0),
                             owner_name="alice", proof_of_ownership="deed")
        assert db.lookup(record.zone_id).owner_name == "alice"
        assert record.zone_id in db
        assert len(db) == 1

    def test_unknown_lookup_rejected(self, frame):
        with pytest.raises(RegistrationError):
            NfzDatabase(frame).lookup("zone-404")

    def test_query_rect_hits(self, frame):
        db = NfzDatabase(frame)
        inside = db.register(self.zone_at(frame, 100, 100, 20.0),
                             proof_of_ownership="deed")
        db.register(self.zone_at(frame, 9_000, 9_000, 20.0),
                    proof_of_ownership="deed")
        hits = db.query_rect(frame.to_geo(0, 0), frame.to_geo(500, 500))
        assert [r.zone_id for r in hits] == [inside.zone_id]

    def test_query_rect_corner_order_irrelevant(self, frame):
        db = NfzDatabase(frame)
        record = db.register(self.zone_at(frame, 100, 100, 20.0),
                             proof_of_ownership="deed")
        hits = db.query_rect(frame.to_geo(500, 500), frame.to_geo(0, 0))
        assert [r.zone_id for r in hits] == [record.zone_id]

    def test_zone_overlapping_rect_edge_included(self, frame):
        db = NfzDatabase(frame)
        # Zone centre outside the rect, but its circle pokes in.
        record = db.register(self.zone_at(frame, 510, 250, 30.0),
                             proof_of_ownership="deed")
        hits = db.query_rect(frame.to_geo(0, 0), frame.to_geo(500, 500))
        assert [r.zone_id for r in hits] == [record.zone_id]

    def test_all_zones(self, frame):
        db = NfzDatabase(frame)
        db.register(self.zone_at(frame, 0, 0, 5.0), proof_of_ownership="d")
        db.register(self.zone_at(frame, 50, 0, 5.0), proof_of_ownership="d")
        assert len(list(db.all_zones())) == 2
