"""Tests for NFZ deregistration/update and the pre-flight plan check."""

import pytest

from repro.core.nfz import NoFlyZone
from repro.drone.flightplan import FlightPlan
from repro.errors import RegistrationError
from repro.server.database import NfzDatabase


def zone_at(frame, x, y, r):
    center = frame.to_geo(x, y)
    return NoFlyZone(center.lat, center.lon, r)


class TestZoneLifecycle:
    def test_deregister_removes_from_queries(self, frame):
        db = NfzDatabase(frame)
        record = db.register(zone_at(frame, 100, 100, 20.0),
                             proof_of_ownership="deed")
        assert db.query_rect(frame.to_geo(0, 0), frame.to_geo(200, 200))
        removed = db.deregister(record.zone_id)
        assert removed.zone_id == record.zone_id
        assert record.zone_id not in db
        assert not db.query_rect(frame.to_geo(0, 0), frame.to_geo(200, 200))

    def test_deregister_unknown_rejected(self, frame):
        with pytest.raises(RegistrationError):
            NfzDatabase(frame).deregister("zone-999")

    def test_update_moves_zone(self, frame):
        db = NfzDatabase(frame)
        record = db.register(zone_at(frame, 100, 100, 20.0),
                             owner_name="alice", proof_of_ownership="deed")
        db.update(record.zone_id, zone_at(frame, 5_000, 5_000, 20.0))
        assert not db.query_rect(frame.to_geo(0, 0), frame.to_geo(200, 200))
        hits = db.query_rect(frame.to_geo(4_900, 4_900),
                             frame.to_geo(5_100, 5_100))
        assert [r.zone_id for r in hits] == [record.zone_id]
        # Ownership metadata preserved.
        assert db.lookup(record.zone_id).owner_name == "alice"

    def test_update_unknown_rejected(self, frame):
        with pytest.raises(RegistrationError):
            NfzDatabase(frame).update("zone-404",
                                      zone_at(frame, 0, 0, 1.0))

    def test_id_not_reused_after_deregister(self, frame):
        db = NfzDatabase(frame)
        first = db.register(zone_at(frame, 0, 0, 5.0),
                            proof_of_ownership="d")
        db.deregister(first.zone_id)
        second = db.register(zone_at(frame, 0, 0, 5.0),
                             proof_of_ownership="d")
        assert second.zone_id != first.zone_id


class TestPreFlightCheck:
    def test_clear_plan_is_compliant(self, frame):
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(500, 0)])
        zones = [zone_at(frame, 250, 300, 40.0)]
        assert plan.is_compliant(zones, frame)
        assert plan.min_zone_clearance(zones, frame) == pytest.approx(
            260.0, abs=1.0)

    def test_crossing_plan_is_not(self, frame):
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(500, 0)])
        zones = [zone_at(frame, 250, 0, 40.0)]
        assert not plan.is_compliant(zones, frame)
        assert plan.min_zone_clearance(zones, frame) < 0

    def test_clearance_threshold(self, frame):
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(500, 0)])
        zones = [zone_at(frame, 250, 100, 40.0)]  # 60 m clearance
        assert plan.is_compliant(zones, frame, clearance_m=50.0)
        assert not plan.is_compliant(zones, frame, clearance_m=70.0)

    def test_no_zones_infinite_clearance(self, frame):
        import math
        plan = FlightPlan([frame.to_geo(0, 0), frame.to_geo(10, 0)])
        assert plan.min_zone_clearance([], frame) == math.inf
