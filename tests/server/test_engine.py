"""Tests for repro.server.engine: the batch audit engine.

The heart of this module is the equivalence suite: a literal replica of
the seed's monolithic ``PoaVerifier.verify`` is kept here as the
reference, and every intake path — the staged pipeline, the engine's
verify-only batch, and the full decrypt-and-verify batch — must produce
reports equal to it field for field, across every outcome class.
"""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import (
    EncryptedPoaRecord,
    ProofOfAlibi,
    SignedSample,
    encrypt_poa,
)
from repro.core.protocol import DroneRegistrationRequest, PoaSubmission
from repro.core.samples import GpsSample
from repro.core.sufficiency import insufficient_pair_indices
from repro.core.verification import (
    PoaVerifier,
    RejectionReason,
    VerificationReport,
    VerificationStatus,
)
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.errors import ConfigurationError, EncodingError, RegistrationError
from repro.server.auditor import AliDroneServer
from repro.server.engine import AuditEngine, _BoundedCache
from repro.sim.clock import DEFAULT_EPOCH
from repro.sim.events import EventLog

T0 = DEFAULT_EPOCH


def signed(key, sample):
    payload = sample.to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


def sample_at(frame, x, y, t):
    point = frame.to_geo(x, y)
    return GpsSample(lat=point.lat, lon=point.lon, t=T0 + t)


def seed_reference_verify(verifier, poa, tee_public_key, zones):
    """The seed's monolithic verify, kept verbatim as the oracle.

    The only post-seed addition is the stable ``reason`` on every
    non-accepted report: the pipeline's rejection taxonomy is part of the
    report contract this suite pins down, so the oracle names the exact
    reason each path must produce.
    """
    if len(poa) == 0:
        return VerificationReport(status=VerificationStatus.REJECTED_EMPTY,
                                  message="PoA contains no samples",
                                  reason=RejectionReason.EMPTY_POA)

    bad = verifier.check_signatures(poa, tee_public_key)
    if bad:
        return VerificationReport(
            status=VerificationStatus.REJECTED_BAD_SIGNATURE,
            bad_signature_indices=bad, sample_count=len(poa),
            message=f"{len(bad)} of {len(poa)} signatures failed",
            reason=RejectionReason.BAD_SIGNATURE)

    try:
        samples = verifier.decode_samples(poa)
    except EncodingError as exc:
        return VerificationReport(
            status=VerificationStatus.REJECTED_MALFORMED,
            sample_count=len(poa), message=str(exc),
            reason=RejectionReason.MALFORMED_PAYLOAD)

    if not verifier.check_ordering(samples):
        return VerificationReport(
            status=VerificationStatus.REJECTED_MALFORMED,
            sample_count=len(poa),
            message="sample timestamps are not non-decreasing",
            reason=RejectionReason.OUT_OF_ORDER)

    infeasible = verifier.infeasible_pairs(samples)
    if infeasible:
        return VerificationReport(
            status=VerificationStatus.REJECTED_INFEASIBLE,
            infeasible_pair_indices=infeasible, sample_count=len(poa),
            message=f"{len(infeasible)} pairs exceed v_max",
            reason=RejectionReason.SPEED_INFEASIBLE)

    insufficient = insufficient_pair_indices(
        samples, list(zones), verifier.frame, verifier.vmax_mps,
        verifier.method)
    if len(samples) < 2 and zones:
        insufficient = [0]
    if insufficient:
        return VerificationReport(
            status=VerificationStatus.INSUFFICIENT,
            insufficient_pair_indices=insufficient, sample_count=len(poa),
            message=f"{len(insufficient)} pairs cannot rule out NFZ entrance",
            reason=RejectionReason.INSUFFICIENT_COVERAGE)

    return VerificationReport(status=VerificationStatus.ACCEPTED,
                              sample_count=len(poa))


@pytest.fixture()
def zone(frame):
    center = frame.to_geo(0.0, 0.0)
    return NoFlyZone(center.lat, center.lon, 50.0)


def build_poa(name, frame, signing_key, other_key):
    """One PoA per outcome class of the verification pipeline."""
    if name == "accepted":
        return ProofOfAlibi(
            signed(signing_key,
                   sample_at(frame, 200.0 + 20.0 * i, 0.0, float(i)))
            for i in range(8))
    if name == "insufficient":
        return ProofOfAlibi([
            signed(signing_key, sample_at(frame, 200, 0, 0.0)),
            signed(signing_key, sample_at(frame, 260, 0, 60.0))])
    if name == "infeasible":
        return ProofOfAlibi([
            signed(signing_key, sample_at(frame, 300, 0, 0.0)),
            signed(signing_key, sample_at(frame, 10_300, 0, 1.0))])
    if name == "bad_signature":
        entries = [signed(signing_key,
                          sample_at(frame, 200.0 + 20.0 * i, 0.0, float(i)))
                   for i in range(4)]
        entries[2] = SignedSample(payload=entries[2].payload,
                                  signature=b"\x01" * 64)
        return ProofOfAlibi(entries)
    if name == "forged":
        return ProofOfAlibi(
            signed(other_key,
                   sample_at(frame, 200.0 + 20.0 * i, 0.0, float(i)))
            for i in range(4))
    if name == "malformed_payload":
        payload = b"not a GPS sample payload"
        return ProofOfAlibi([SignedSample(
            payload=payload,
            signature=sign_pkcs1_v15(signing_key, payload, "sha1"))])
    if name == "out_of_order":
        return ProofOfAlibi([
            signed(signing_key, sample_at(frame, 300, 0, 5.0)),
            signed(signing_key, sample_at(frame, 310, 0, 2.0))])
    if name == "empty":
        return ProofOfAlibi()
    raise AssertionError(name)


SCENARIOS = ["accepted", "insufficient", "infeasible", "bad_signature",
             "forged", "malformed_payload", "out_of_order", "empty"]

EXPECTED_STATUS = {
    "accepted": VerificationStatus.ACCEPTED,
    "insufficient": VerificationStatus.INSUFFICIENT,
    "infeasible": VerificationStatus.REJECTED_INFEASIBLE,
    "bad_signature": VerificationStatus.REJECTED_BAD_SIGNATURE,
    "forged": VerificationStatus.REJECTED_BAD_SIGNATURE,
    "malformed_payload": VerificationStatus.REJECTED_MALFORMED,
    "out_of_order": VerificationStatus.REJECTED_MALFORMED,
    "empty": VerificationStatus.REJECTED_EMPTY,
}

EXPECTED_REASON = {
    "accepted": None,
    "insufficient": RejectionReason.INSUFFICIENT_COVERAGE,
    "infeasible": RejectionReason.SPEED_INFEASIBLE,
    "bad_signature": RejectionReason.BAD_SIGNATURE,
    "forged": RejectionReason.BAD_SIGNATURE,
    "malformed_payload": RejectionReason.MALFORMED_PAYLOAD,
    "out_of_order": RejectionReason.OUT_OF_ORDER,
    "empty": RejectionReason.EMPTY_POA,
}


class TestReportEquivalence:
    """Every path must equal the seed's monolithic verify, field for field."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_pipeline_matches_seed(self, scenario, frame, signing_key,
                                   other_key, zone):
        verifier = PoaVerifier(frame)
        poa = build_poa(scenario, frame, signing_key, other_key)
        expected = seed_reference_verify(verifier, poa,
                                         signing_key.public_key, [zone])
        got = verifier.verify(poa, signing_key.public_key, [zone])
        assert expected.status is EXPECTED_STATUS[scenario]
        assert expected.reason is EXPECTED_REASON[scenario]
        assert got == expected

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("screen", [True, False])
    def test_engine_verify_only_matches_seed(self, scenario, screen, frame,
                                             signing_key, other_key, zone):
        verifier = PoaVerifier(frame)
        poa = build_poa(scenario, frame, signing_key, other_key)
        expected = seed_reference_verify(verifier, poa,
                                         signing_key.public_key, [zone])
        engine = AuditEngine(verifier,
                             tee_key_lookup=lambda d: signing_key.public_key,
                             screen_signatures=screen)
        reports = engine.audit_poas([(poa, signing_key.public_key)], [zone])
        assert reports == [expected]
        assert reports[0].reason is EXPECTED_REASON[scenario]

    def test_engine_mixed_batch_matches_seed(self, frame, signing_key,
                                             other_key, zone):
        """All outcome classes audited as one batch, order preserved."""
        verifier = PoaVerifier(frame)
        poas = [build_poa(s, frame, signing_key, other_key)
                for s in SCENARIOS]
        expected = [seed_reference_verify(verifier, poa,
                                          signing_key.public_key, [zone])
                    for poa in poas]
        engine = AuditEngine(verifier,
                             tee_key_lookup=lambda d: signing_key.public_key)
        reports = engine.audit_poas(
            [(poa, signing_key.public_key) for poa in poas], [zone])
        assert reports == expected


class TestFullIntakeEquivalence:
    """The decrypt-and-verify batch path against the seed's intake."""

    @pytest.fixture()
    def server(self, frame):
        server = AliDroneServer(frame, rng=random.Random(7),
                                encryption_key_bits=512)
        return server

    @pytest.fixture()
    def registered(self, server, signing_key, other_key):
        return server.register_drone(DroneRegistrationRequest(
            operator_public_key=other_key.public_key,
            tee_public_key=signing_key.public_key, operator_name="op"))

    def submit(self, server, poa, drone_id, flight="f"):
        records = encrypt_poa(poa, server.public_encryption_key,
                              rng=random.Random(3))
        return PoaSubmission(drone_id=drone_id, flight_id=flight,
                             records=records, claimed_start=T0,
                             claimed_end=T0 + 60.0)

    @pytest.mark.parametrize("scenario",
                             [s for s in SCENARIOS if s != "empty"])
    def test_batch_intake_matches_seed(self, scenario, server, frame,
                                       registered, signing_key, other_key,
                                       zone):
        server.zones.register(zone, proof_of_ownership="deed")
        verifier = PoaVerifier(frame)
        poa = build_poa(scenario, frame, signing_key, other_key)
        expected = seed_reference_verify(verifier, poa,
                                         signing_key.public_key, [zone])
        result = server.receive_poa_batch(
            [self.submit(server, poa, registered)], now=T0)
        assert result.reports == [expected]
        assert result.reports[0].reason is EXPECTED_REASON[scenario]

    def test_single_submission_api_is_batch_of_one(self, server, frame,
                                                   registered, signing_key,
                                                   other_key, zone):
        server.zones.register(zone, proof_of_ownership="deed")
        poa = build_poa("accepted", frame, signing_key, other_key)
        single = server.receive_poa(
            self.submit(server, poa, registered, flight="a"), now=T0)
        batch = server.receive_poa_batch(
            [self.submit(server, poa, registered, flight="b")], now=T0)
        assert batch.reports == [single]

    def test_undecryptable_records_reported_malformed(self, server,
                                                      registered):
        submission = PoaSubmission(
            drone_id=registered, flight_id="f",
            records=[EncryptedPoaRecord(ciphertext=b"\x00" * 64,
                                        signature=b"\x00" * 64)],
            claimed_start=T0, claimed_end=T0 + 1)
        result = server.receive_poa_batch([submission], now=T0)
        (report,) = result.reports
        assert report.status is VerificationStatus.REJECTED_MALFORMED
        assert report.reason is RejectionReason.DECRYPT_FAILED
        assert report.message.startswith("PoA decryption failed:")
        assert report.sample_count == 1

    def test_unknown_drone_does_not_poison_batch(self, server, frame,
                                                 registered, signing_key,
                                                 other_key, zone):
        server.zones.register(zone, proof_of_ownership="deed")
        poa = build_poa("accepted", frame, signing_key, other_key)
        good = self.submit(server, poa, registered, flight="good")
        bad = self.submit(server, poa, "drone-404404", flight="bad")
        result = server.receive_poa_batch([bad, good], now=T0)
        assert result.outcomes[0].report is None
        assert isinstance(result.outcomes[0].error, RegistrationError)
        assert result.outcomes[1].report.status is VerificationStatus.ACCEPTED
        assert len(server.retained_for(registered)) == 1


class TestEngineMechanics:
    @pytest.fixture()
    def engine_parts(self, frame, signing_key, zone):
        verifier = PoaVerifier(frame)
        lookups = []

        def lookup(drone_id):
            lookups.append(drone_id)
            if drone_id.startswith("drone-"):
                return signing_key.public_key
            raise RegistrationError(f"unknown drone: {drone_id}")

        return verifier, lookup, lookups

    def make_submission(self, frame, signing_key, encryption_key, *,
                        drone_id="drone-1", n=4, flight="f"):
        poa = ProofOfAlibi(
            signed(signing_key,
                   sample_at(frame, 200.0 + 20.0 * i, 0.0, float(i)))
            for i in range(n))
        records = encrypt_poa(poa, encryption_key.public_key,
                              rng=random.Random(3))
        return PoaSubmission(drone_id=drone_id, flight_id=flight,
                             records=records, claimed_start=T0,
                             claimed_end=T0 + n - 1.0)

    def test_rejects_bad_configuration(self, frame, signing_key):
        verifier = PoaVerifier(frame)
        with pytest.raises(ConfigurationError):
            AuditEngine(verifier, tee_key_lookup=lambda d: None, workers=0)
        with pytest.raises(ConfigurationError):
            AuditEngine(verifier, tee_key_lookup=lambda d: None,
                        executor="fiber")

    def test_worker_counts_agree(self, frame, signing_key, other_key, zone):
        """Reports are identical at 1, 2 and 3 workers (determinism)."""
        encryption_key = other_key
        submissions = [
            self.make_submission(frame, signing_key, encryption_key,
                                 flight=f"f-{i}") for i in range(6)]
        per_worker = []
        for workers in (1, 2, 3):
            engine = AuditEngine(
                PoaVerifier(frame),
                tee_key_lookup=lambda d: signing_key.public_key,
                encryption_key=encryption_key,
                zones_provider=lambda: [zone], workers=workers)
            result = engine.audit_batch(submissions)
            per_worker.append(result.reports)
            assert result.workers == workers
            assert result.batch_size == len(submissions)
        assert per_worker[0] == per_worker[1] == per_worker[2]

    def test_payload_cache_fills_and_hits(self, frame, signing_key,
                                          other_key, zone):
        encryption_key = other_key
        submission = self.make_submission(frame, signing_key, encryption_key,
                                          n=5)
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone])
        first = engine.audit_batch([submission])
        assert engine.payload_cache_size == 5
        second = engine.audit_batch([submission])
        assert engine.payload_cache_size == 5
        assert first.reports == second.reports

    def test_tee_key_lookup_cached_per_drone(self, frame, signing_key,
                                             engine_parts):
        verifier, lookup, lookups = engine_parts
        engine = AuditEngine(verifier, tee_key_lookup=lookup)
        for _ in range(3):
            engine.tee_key_for("drone-1")
        assert lookups == ["drone-1"]
        engine.invalidate_drone("drone-1")
        engine.tee_key_for("drone-1")
        assert lookups == ["drone-1", "drone-1"]

    def test_position_memo_shared_across_batches(self, frame, signing_key,
                                                 zone):
        poa = build_poa("accepted", frame, signing_key, signing_key)
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key)
        engine.audit_poas([(poa, signing_key.public_key)], [zone])
        assert engine.position_memo_size == len(poa)
        engine.audit_poas([(poa, signing_key.public_key)], [zone])
        assert engine.position_memo_size == len(poa)

    def test_zone_index_cached_across_batches(self, frame, signing_key,
                                              other_key, zone):
        encryption_key = other_key
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone])
        submission = self.make_submission(frame, signing_key, encryption_key)
        first = engine.audit_batch([submission])
        assert (engine.zone_index_builds, engine.zone_index_hits) == (1, 0)
        second = engine.audit_batch([submission])
        assert (engine.zone_index_builds, engine.zone_index_hits) == (1, 1)
        assert first.reports == second.reports

    def test_zone_index_rebuilt_when_zones_change(self, frame, signing_key,
                                                  other_key, zone):
        encryption_key = other_key
        zones = [zone]
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: list(zones))
        submission = self.make_submission(frame, signing_key, encryption_key)
        engine.audit_batch([submission])
        zones.append(NoFlyZone(frame.origin.lat, frame.origin.lon, 5.0))
        engine.audit_batch([submission])
        assert engine.zone_index_builds == 2
        assert engine.zone_index_hits == 0

    def test_zone_index_stats_shared_across_batches(self, frame, signing_key,
                                                    other_key, zone):
        encryption_key = other_key
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone])
        submission = self.make_submission(frame, signing_key, encryption_key)
        engine.audit_batch([submission])
        after_first = engine.zone_index_stats.queries
        assert after_first > 0
        engine.audit_batch([submission])
        assert engine.zone_index_stats.queries > after_first

    def test_batch_audited_event_recorded(self, frame, signing_key,
                                          other_key, zone):
        encryption_key = other_key
        events = EventLog()
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone],
            workers=2, events=events)
        submissions = [
            self.make_submission(frame, signing_key, encryption_key,
                                 flight=f"f-{i}") for i in range(3)]
        engine.audit_batch(submissions, now=T0 + 5.0)
        (event,) = events.of_kind("batch_audited")
        assert event.time == T0 + 5.0
        assert event.detail["batch_size"] == 3
        assert event.detail["workers"] == 2
        assert event.detail["wall_time_s"] > 0.0

    def test_metrics_accumulate_per_stage(self, frame, signing_key,
                                          other_key, zone):
        encryption_key = other_key
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone])
        engine.audit_batch([self.make_submission(frame, signing_key,
                                                 encryption_key, n=4)])
        stages = set(engine.metrics.stages())
        assert {"crypto", "signature", "decode", "ordering", "feasibility",
                "sufficiency"} <= stages
        assert engine.metrics.total_samples("crypto") == 4


def make_distinct_submission(frame, signing_key, encryption_key, *,
                             drone_id="drone-1", n=4, flight="f",
                             offset=0.0, seed=3):
    """Like ``TestEngineMechanics.make_submission`` but with disjoint
    positions and encryption randomness per call, so two submissions
    never share ciphertexts (cache-identity tests need distinct keys)."""
    poa = ProofOfAlibi(
        signed(signing_key,
               sample_at(frame, 200.0 + offset + 20.0 * i, 0.0, float(i)))
        for i in range(n))
    records = encrypt_poa(poa, encryption_key.public_key,
                          rng=random.Random(seed))
    return PoaSubmission(drone_id=drone_id, flight_id=flight,
                         records=records, claimed_start=T0,
                         claimed_end=T0 + n - 1.0)


class TestBoundedCacheLru:
    """The engine caches are LRU, not insertion-order FIFO: a read
    refreshes recency, so hot entries survive cold churn."""

    def test_eviction_order_is_least_recently_used(self):
        evicted = []
        cache = _BoundedCache(3, on_evict=lambda k, v: evicted.append(k))
        cache["a"], cache["b"], cache["c"] = 1, 2, 3
        assert cache.get("a") == 1        # touch: "a" is now most recent
        cache["d"] = 4                    # evicts "b", NOT "a"
        assert evicted == ["b"]
        cache["e"] = 5                    # next-oldest untouched: "c"
        assert evicted == ["b", "c"]
        assert list(cache) == ["a", "d", "e"]

    def test_overwrite_refreshes_without_evicting(self):
        evicted = []
        cache = _BoundedCache(2, on_evict=lambda k, v: evicted.append(k))
        cache["a"], cache["b"] = 1, 2
        cache["a"] = 10                   # overwrite: refresh, no eviction
        assert evicted == []
        cache["c"] = 3                    # now "b" is the LRU entry
        assert evicted == ["b"]
        assert cache.get("a") == 10

    def test_get_miss_returns_default_untouched(self):
        cache = _BoundedCache(2)
        cache["a"] = 1
        assert cache.get("zzz") is None
        assert cache.get("zzz", 7) == 7
        assert list(cache) == ["a"]

    def test_insert_alias_and_evict_hook_sees_values(self):
        evicted = []
        cache = _BoundedCache(1, on_evict=lambda k, v: evicted.append((k, v)))
        cache.insert("a", 1)
        cache.insert("b", 2)
        assert evicted == [("a", 1)]
        assert dict(cache) == {"b": 2}

    def test_engine_hot_records_survive_cold_churn(self, frame, signing_key,
                                                   other_key, zone):
        """The LRU property at the engine level: a re-hit submission's
        payloads outlive one-shot traffic that would have flushed them
        under insertion-order eviction."""
        encryption_key = other_key
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone],
            payload_cache_max=6)
        hot = make_distinct_submission(frame, signing_key, encryption_key,
                                       n=4, flight="hot", seed=100)
        engine.audit_batch([hot])
        assert (engine.payload_cache_hits,
                engine.payload_cache_misses) == (0, 4)
        for i in range(3):
            engine.audit_batch([hot])     # touch the hot records...
            cold = make_distinct_submission(
                frame, signing_key, encryption_key, n=2,
                flight=f"cold-{i}", offset=1000.0 + 100.0 * i,
                seed=200 + i)             # ...then 2 one-shot records
            engine.audit_batch([cold])
        # Every hot re-audit hit; insertion-order eviction would have
        # flushed the hot set after the first rounds of cold churn.
        assert engine.payload_cache_hits == 12
        assert engine.payload_cache_misses == 4 + 6

    def test_position_memo_is_bounded(self, frame, signing_key, other_key,
                                      zone):
        encryption_key = other_key
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone],
            position_memo_max=3)
        submission = TestEngineMechanics().make_submission(
            frame, signing_key, encryption_key, n=5)
        engine.audit_batch([submission])
        assert engine.position_memo_size <= 3


class TestInvalidateDronePurgesPayloads:
    def audit_two_drones(self, frame, signing_key, encryption_key, zone):
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone])
        sub_a = make_distinct_submission(frame, signing_key, encryption_key,
                                         drone_id="drone-a", n=3,
                                         flight="fa", seed=11)
        sub_b = make_distinct_submission(frame, signing_key, encryption_key,
                                         drone_id="drone-b", n=2,
                                         flight="fb", offset=500.0, seed=22)
        engine.audit_batch([sub_a, sub_b])
        return engine, sub_a, sub_b

    def test_purges_only_that_drones_payloads(self, frame, signing_key,
                                              other_key, zone):
        engine, sub_a, sub_b = self.audit_two_drones(
            frame, signing_key, other_key, zone)
        assert engine.payload_cache_size == 5
        engine.invalidate_drone("drone-a")
        assert engine.payload_cache_size == 2
        engine.payload_cache_hits = engine.payload_cache_misses = 0
        engine.audit_batch([sub_a, sub_b])
        # drone-a decrypts again, drone-b still hits.
        assert (engine.payload_cache_hits,
                engine.payload_cache_misses) == (2, 3)

    def test_reverse_index_tracks_evictions(self, frame, signing_key,
                                            other_key, zone):
        """Invalidating after natural evictions must not over-purge."""
        encryption_key = other_key
        engine = AuditEngine(
            PoaVerifier(frame),
            tee_key_lookup=lambda d: signing_key.public_key,
            encryption_key=encryption_key, zones_provider=lambda: [zone],
            payload_cache_max=2)
        engine.audit_batch([make_distinct_submission(
            frame, signing_key, encryption_key, drone_id="drone-a", n=3,
            flight="fa", seed=31)])
        # Bound 2: drone-a holds at most 2 cached records and the reverse
        # index matches what is actually cached.
        assert engine.payload_cache_size == 2
        engine.audit_batch([make_distinct_submission(
            frame, signing_key, encryption_key, drone_id="drone-b", n=2,
            flight="fb", offset=300.0, seed=32)])
        assert engine.payload_cache_size == 2
        engine.invalidate_drone("drone-a")   # fully evicted already
        assert engine.payload_cache_size == 2
        engine.invalidate_drone("drone-b")
        assert engine.payload_cache_size == 0

    def test_invalidate_unknown_drone_is_noop(self, frame, signing_key,
                                              other_key, zone):
        engine, _sub_a, _sub_b = self.audit_two_drones(
            frame, signing_key, other_key, zone)
        engine.invalidate_drone("drone-unknown")
        assert engine.payload_cache_size == 5
