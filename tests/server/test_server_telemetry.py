"""Engine/server integration with the streaming telemetry hub.

The audit engine feeds per-intake windows (latency sketch + status
counters) and the server registers its stateful gauges and the stage
section; together one ``receive_poa_batch`` call should leave a complete
rollup behind without the caller touching the hub.
"""

import random

import pytest

from repro.core.protocol import DroneRegistrationRequest, PoaSubmission
from repro.obs.hub import TelemetryHub, flatten_rollup
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH
from tests.server.test_auditor import make_submission

T0 = DEFAULT_EPOCH


@pytest.fixture()
def server(frame):
    return AliDroneServer(frame, rng=random.Random(7),
                          encryption_key_bits=512)


@pytest.fixture()
def registered(server, signing_key, other_key):
    return server.register_drone(DroneRegistrationRequest(
        operator_public_key=other_key.public_key,
        tee_public_key=signing_key.public_key, operator_name="op"))


class TestEngineTelemetry:
    def test_batch_feeds_intake_windows(self, server, frame, registered,
                                        signing_key):
        hub = server.attach_telemetry(TelemetryHub())
        submissions = [
            make_submission(server, frame, signing_key, registered,
                            flight=f"f-{i}", t_offset=20.0 * i)
            for i in range(3)]
        server.receive_poa_batch(submissions, now=T0)
        rollup = hub.rollup(T0)
        counters = rollup["counters"]
        assert counters["audit.submissions"]["cumulative"] == 3.0
        assert counters["audit.status.accepted"]["cumulative"] == 3.0
        assert counters["audit.samples"]["cumulative"] == 3.0 * 8
        intake = rollup["quantiles"]["audit.intake.seconds"]
        assert intake["count"] == 3
        assert intake["p99"] > 0.0

    def test_rejection_reason_recorded(self, server, frame, registered,
                                       signing_key):
        hub = server.attach_telemetry(TelemetryHub())
        good = make_submission(server, frame, signing_key, registered)
        bad = PoaSubmission(drone_id=registered, flight_id="f-bad",
                            records=good.records[:0], claimed_start=T0,
                            claimed_end=T0 + 1.0)
        server.receive_poa(bad, now=T0)
        counters = hub.rollup(T0)["counters"]
        assert counters["audit.rejections"]["cumulative"] == 1.0
        assert counters["audit.status.empty"]["cumulative"] == 1.0
        assert counters["audit.rejections.empty_poa"]["cumulative"] == 1.0

    def test_gauges_and_stage_section(self, server, frame, registered,
                                      signing_key):
        hub = server.attach_telemetry(TelemetryHub())
        server.receive_poa(
            make_submission(server, frame, signing_key, registered), now=T0)
        rollup = hub.rollup(T0)
        gauges = rollup["gauges"]
        assert gauges["server.registered_drones"] == 1.0
        assert gauges["server.retained_submissions"] == 1.0
        assert 0.0 <= gauges["audit.zone_index.cache_hit_ratio"] <= 1.0
        assert "signature" in rollup["stages"]
        assert rollup["stages"]["signature"]["runs"] >= 1
        flat = flatten_rollup(rollup)
        assert flat["audit.submissions.cumulative"] == 1.0

    def test_engine_without_hub_unchanged(self, server, frame, registered,
                                          signing_key):
        # No telemetry attached: the audit path must not create a hub or
        # change behaviour.
        assert server.engine.telemetry is None
        report = server.receive_poa(
            make_submission(server, frame, signing_key, registered), now=T0)
        assert report.status.value == "accepted"
