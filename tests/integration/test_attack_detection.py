"""Integration: every GPS-forgery strategy ends in a violation finding.

The unforgeability goal (G3) end to end: a dishonest operator flies
through an NFZ and tries each §III-B attack to hide it; in every case the
Auditor's adjudication pipeline produces a violation.
"""

import random

import pytest

from repro.core.attacks import forge_straight_route, tamper_with_samples
from repro.core.nfz import NoFlyZone
from repro.core.poa import encrypt_poa
from repro.core.protocol import (
    IncidentReport,
    PoaSubmission,
    ZoneRegistrationRequest,
)
from repro.drone.client import AliDroneClient
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.server.auditor import AliDroneServer
from repro.server.violations import ViolationKind
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import provision_device

T0 = DEFAULT_EPOCH


@pytest.fixture()
def attack_world(frame, vendor_key):
    """A rogue drone that ACTUALLY flies through the zone at T0+30."""
    server = AliDroneServer(frame, rng=random.Random(41),
                            encryption_key_bits=512)
    center = frame.to_geo(300.0, 0.0)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 40.0),
        proof_of_ownership="deed"))

    # The illicit trajectory: straight through the zone centre.
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 60.0, 600.0, 0.0)])
    device = provision_device("rogue", key_bits=512, rng=random.Random(42),
                              vendor_key=vendor_key)
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=3)
    device.attach_gps(receiver, clock)
    client = AliDroneClient(device, receiver, clock, frame,
                            rng=random.Random(43))
    drone_id = client.register(server)
    incident = IncidentReport(zone_id=zone_id, drone_id=drone_id,
                              incident_time=T0 + 30.0,
                              description="drone spotted over my yard")
    return dict(server=server, client=client, incident=incident,
                frame=frame, zone_id=zone_id, drone_id=drone_id)


def submit(world, poa, start=T0, end=T0 + 60.0):
    records = encrypt_poa(poa, world["server"].public_encryption_key,
                          rng=random.Random(55))
    world["server"].receive_poa(PoaSubmission(
        drone_id=world["drone_id"], flight_id="rogue-flight",
        records=records, claimed_start=start, claimed_end=end))


class TestHonestSubmissionConvictsItself:
    def test_truthful_poa_shows_violation(self, attack_world):
        """Submitting the real trace cannot prove alibi — the drone WAS
        inside the zone."""
        record = attack_world["client"].fly(T0 + 60.0, policy="fixed",
                                            fixed_rate_hz=2.0)
        submit(attack_world, record.poa)
        finding = attack_world["server"].handle_incident(
            attack_world["incident"])
        assert finding.violation
        assert finding.kind is ViolationKind.INSUFFICIENT_ALIBI


class TestPrecomputedRoute:
    def test_forged_route_detected(self, attack_world, other_key, frame):
        forged = forge_straight_route(
            frame.to_geo(0.0, 500.0), frame.to_geo(600.0, 500.0),
            T0, T0 + 60.0, 30, attacker_key=other_key)
        submit(attack_world, forged)
        finding = attack_world["server"].handle_incident(
            attack_world["incident"])
        assert finding.violation
        assert finding.kind is ViolationKind.BAD_SIGNATURE


class TestTamperedTrace:
    def test_shifted_genuine_trace_detected(self, attack_world):
        record = attack_world["client"].fly(T0 + 60.0, policy="fixed",
                                            fixed_rate_hz=2.0)
        # Shift the trace 500 m north, away from the zone.
        moved = tamper_with_samples(record.poa, 0.0045, 0.0)
        submit(attack_world, moved)
        finding = attack_world["server"].handle_incident(
            attack_world["incident"])
        assert finding.violation
        assert finding.kind is ViolationKind.BAD_SIGNATURE


class TestReplayAttack:
    def test_yesterdays_poa_does_not_cover_todays_incident(self,
                                                           attack_world,
                                                           frame, vendor_key):
        """The operator replays a compliant PoA recorded earlier (a real
        flight along a legal route, signed by the real TEE)."""
        legal_source = WaypointSource([(T0 - 7200.0, 0.0, 500.0),
                                       (T0 - 7140.0, 600.0, 500.0)])
        device = attack_world["client"].device
        # Reuse the same physical device for the earlier flight by
        # replaying through a second receiver-less client is not possible
        # (one receiver per device), so provision the twin flight record
        # from a fresh identical device and keep only the PoA timestamps.
        old_device = provision_device("rogue-past", key_bits=512,
                                      rng=random.Random(42),
                                      vendor_key=vendor_key)
        clock = SimClock(T0 - 7200.0)
        receiver = SimulatedGpsReceiver(legal_source, frame,
                                        update_rate_hz=5.0,
                                        start_time=T0 - 7200.0, seed=4)
        old_device.attach_gps(receiver, clock)
        old_client = AliDroneClient(old_device, receiver, clock, frame,
                                    rng=random.Random(45))
        old_record = old_client.fly(T0 - 7140.0, policy="fixed",
                                    fixed_rate_hz=1.0)
        # Same provisioning rng => same TEE key: signatures verify under
        # the registered key, making this a *perfect* replay.
        assert old_record.poa.verify_all(device.tee_public_key)
        submit(attack_world, old_record.poa,
               start=T0 - 7200.0, end=T0 - 7140.0)
        finding = attack_world["server"].handle_incident(
            attack_world["incident"])
        assert finding.violation
        assert finding.kind is ViolationKind.NO_POA


class TestRelayAttack:
    def test_accomplice_poa_detected(self, attack_world, frame, vendor_key):
        """A second drone flies a legal route concurrently; its PoA is
        submitted for the rogue drone."""
        accomplice_source = WaypointSource([(T0, 0.0, 500.0),
                                            (T0 + 60.0, 600.0, 500.0)])
        accomplice_device = provision_device("accomplice", key_bits=512,
                                             rng=random.Random(99),
                                             vendor_key=vendor_key)
        clock = SimClock(T0)
        receiver = SimulatedGpsReceiver(accomplice_source, frame,
                                        update_rate_hz=5.0, start_time=T0,
                                        seed=5)
        accomplice_device.attach_gps(receiver, clock)
        accomplice = AliDroneClient(accomplice_device, receiver, clock,
                                    frame, rng=random.Random(100))
        record = accomplice.fly(T0 + 60.0, policy="fixed", fixed_rate_hz=2.0)
        # Perfect timestamps, wrong TEE: submitted under the rogue's id.
        submit(attack_world, record.poa)
        finding = attack_world["server"].handle_incident(
            attack_world["incident"])
        assert finding.violation
        assert finding.kind is ViolationKind.BAD_SIGNATURE


class TestNoSubmission:
    def test_silence_is_a_violation(self, attack_world):
        finding = attack_world["server"].handle_incident(
            attack_world["incident"])
        assert finding.violation
        assert finding.kind is ViolationKind.NO_POA
