"""Integration: evidence retention over a multi-day horizon.

The server keeps PoAs "for a couple of days" (§IV-C2).  This test runs
three flights across three days, purges on a daily schedule, and checks
the documented consequence: accusations against purged windows fall back
to the burden-of-proof default (violation, `no_poa`), while retained
windows still clear the drone.
"""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample, encrypt_poa
from repro.core.protocol import (
    DroneRegistrationRequest,
    IncidentReport,
    PoaSubmission,
    ZoneRegistrationRequest,
)
from repro.core.samples import GpsSample
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.server.auditor import AliDroneServer
from repro.server.violations import ViolationKind
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH
DAY = 86_400.0


@pytest.fixture()
def world(frame, signing_key, other_key):
    server = AliDroneServer(frame, rng=random.Random(81),
                            encryption_key_bits=512,
                            retention_s=3 * DAY)
    center = frame.to_geo(0.0, 0.0)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 50.0),
        proof_of_ownership="deed"))
    drone_id = server.register_drone(DroneRegistrationRequest(
        operator_public_key=other_key.public_key,
        tee_public_key=signing_key.public_key))

    def fly_and_submit(day: int) -> None:
        start = T0 + day * DAY
        entries = []
        for i in range(6):
            point = frame.to_geo(200.0 + 20.0 * i, 0.0)
            sample = GpsSample(lat=point.lat, lon=point.lon, t=start + i)
            payload = sample.to_signed_payload()
            entries.append(SignedSample(
                payload=payload,
                signature=sign_pkcs1_v15(signing_key, payload)))
        records = encrypt_poa(ProofOfAlibi(entries),
                              server.public_encryption_key,
                              rng=random.Random(100 + day))
        server.receive_poa(PoaSubmission(
            drone_id=drone_id, flight_id=f"day-{day}", records=records,
            claimed_start=start, claimed_end=start + 5.0), now=start + 5.0)

    for day in (0, 2, 5):
        fly_and_submit(day)
    return server, drone_id, zone_id


class TestRetentionLifecycle:
    def test_all_evidence_initially_retained(self, world):
        server, drone_id, _ = world
        assert len(server.retained_for(drone_id)) == 3

    def test_purge_is_age_selective(self, world):
        server, drone_id, _ = world
        # At day 6, the day-0 and day-2 submissions are beyond 3 days.
        dropped = server.purge_expired(T0 + 6 * DAY)
        assert dropped == 2
        remaining = server.retained_for(drone_id)
        assert len(remaining) == 1
        assert remaining[0].submission.flight_id == "day-5"

    def test_incident_in_retained_window_clears(self, world):
        server, drone_id, zone_id = world
        server.purge_expired(T0 + 6 * DAY)
        finding = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=drone_id,
            incident_time=T0 + 5 * DAY + 2.5))
        assert not finding.violation

    def test_incident_in_purged_window_is_no_poa(self, world):
        """The documented sharp edge: once evidence ages out, a late
        accusation cannot be rebutted."""
        server, drone_id, zone_id = world
        server.purge_expired(T0 + 6 * DAY)
        finding = server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=drone_id,
            incident_time=T0 + 2.5))           # day-0 flight, purged
        assert finding.violation
        assert finding.kind is ViolationKind.NO_POA

    def test_purge_is_idempotent(self, world):
        server, _, _ = world
        server.purge_expired(T0 + 6 * DAY)
        assert server.purge_expired(T0 + 6 * DAY) == 0

    def test_everything_purges_eventually(self, world):
        server, drone_id, _ = world
        assert server.purge_expired(T0 + 30 * DAY) == 3
        assert server.retained_for(drone_id) == []
