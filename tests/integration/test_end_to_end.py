"""End-to-end protocol integration: registration through adjudication.

Exercises the complete stack — provisioning, registration, zone query with
signed nonce, route planning, simulated flight, adaptive sampling through
the real TEE, PoA encryption, server-side decryption and verification, and
incident adjudication — with no mocked components.
"""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.protocol import IncidentReport, ZoneRegistrationRequest
from repro.core.verification import VerificationStatus
from repro.drone.client import AliDroneClient
from repro.drone.flightplan import FlightPlan
from repro.drone.kinematics import simulate_waypoint_flight
from repro.drone.routing import plan_route
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.receiver import SimulatedGpsReceiver
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH, SimClock

T0 = DEFAULT_EPOCH


@pytest.fixture(scope="module")
def world(vendor_key):
    """A fully wired world: server, two zones, one compliant drone."""
    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    server = AliDroneServer(frame, rng=random.Random(11),
                            encryption_key_bits=512)

    zone_ids = []
    zone_positions = [(400.0, 60.0, 40.0), (800.0, -80.0, 50.0)]
    for x, y, r in zone_positions:
        center = frame.to_geo(x, y)
        zone_ids.append(server.register_zone(ZoneRegistrationRequest(
            zone=NoFlyZone(center.lat, center.lon, r),
            proof_of_ownership=f"deed-{x:.0f}", owner_name="owner")))

    # Plan a compliant route through the zone field, then fly it.
    zones = [record.zone for record in server.zones.all_zones()]
    route = plan_route((0.0, 0.0), (1200.0, 0.0), zones, frame,
                       clearance_m=60.0)
    source = simulate_waypoint_flight(route, T0)

    from repro.tee.attestation import provision_device
    device = provision_device("e2e-dev", key_bits=512,
                              rng=random.Random(21), vendor_key=vendor_key)
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=2, noise_std_m=0.5)
    device.attach_gps(receiver, clock)
    client = AliDroneClient(device, receiver, clock, frame,
                            rng=random.Random(31), operator_name="acme")

    client.register(server)
    plan = FlightPlan([frame.to_geo(*route[0]), frame.to_geo(*route[-1])],
                      margin_m=300.0)
    client.query_zones(server, plan)
    record = client.fly(T0 + source.duration, policy="adaptive")
    report = client.submit_poa(server, record)
    return dict(frame=frame, server=server, client=client, record=record,
                report=report, zone_ids=zone_ids, source=source)


class TestCompliantFlight:
    def test_zone_query_found_both_zones(self, world):
        assert len(world["client"].known_zones) == 2

    def test_poa_accepted(self, world):
        assert world["report"].status is VerificationStatus.ACCEPTED

    def test_poa_retained_as_evidence(self, world):
        retained = world["server"].retained_for(world["client"].drone_id)
        assert len(retained) == 1
        assert retained[0].report.compliant

    def test_incidents_cleared_for_both_zones(self, world):
        mid_flight = T0 + world["source"].duration / 2.0
        for zone_id in world["zone_ids"]:
            finding = world["server"].handle_incident(IncidentReport(
                zone_id=zone_id, drone_id=world["client"].drone_id,
                incident_time=mid_flight))
            assert not finding.violation

    def test_no_fines_assessed(self, world):
        assert world["server"].ledger.offences(
            world["client"].drone_id) == 0

    def test_sampling_was_adaptive(self, world):
        stats = world["record"].result.stats
        # Far fewer samples than the 5 Hz ceiling over the flight.
        ceiling = 5.0 * world["source"].duration
        assert stats.auth_samples < ceiling / 3

    def test_tee_accounting_consistent(self, world):
        device = world["client"].device
        signed = device.core.op_counters["gps_auth_samples"]
        assert signed == world["record"].result.stats.auth_samples
        # Every auth sample cost one SMC (plus session open/close).
        smc = device.monitor.stats.calls_by_command["GetGPSAuth"]
        assert smc == signed


class TestSecondDroneIndependence:
    def test_two_drones_do_not_collide(self, world, vendor_key):
        """A second registered drone gets its own id and verifies under its
        own TEE key only."""
        from repro.tee.attestation import provision_device
        frame = world["frame"]
        source = world["source"]
        device = provision_device("e2e-dev-2", key_bits=512,
                                  rng=random.Random(77),
                                  vendor_key=vendor_key)
        clock = SimClock(T0)
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0, seed=8)
        device.attach_gps(receiver, clock)
        client2 = AliDroneClient(device, receiver, clock, frame,
                                 rng=random.Random(78))
        drone_id_2 = client2.register(world["server"])
        assert drone_id_2 != world["client"].drone_id
        record = client2.fly(T0 + 30.0, policy="fixed", fixed_rate_hz=1.0,
                             zones=world["client"].known_zones)
        report = client2.submit_poa(world["server"], record)
        assert report.status in (VerificationStatus.ACCEPTED,
                                 VerificationStatus.INSUFFICIENT)
        # Cross-check: drone 2's PoA does NOT verify under drone 1's key.
        assert not record.poa.verify_all(
            world["client"].device.tee_public_key)
