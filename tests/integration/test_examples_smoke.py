"""Smoke-run every example script so the documented flows cannot rot.

Each example is imported as a module and its ``main()`` executed; the
examples contain their own assertions, so completing without an exception
is the pass criterion.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "delivery_route_planning.py",
    "privacy_preserving_audit.py",
    "spoofing_defense.py",
]

SLOW_EXAMPLES = [
    "rogue_drone_audit.py",     # five worlds with 1024-bit keys
    "fleet_compliance.py",      # three drones, several missions
]


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    # Keep the module importable for any internal relative lookups.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name, capsys):
    out = run_example(name, capsys)
    assert out.strip(), f"{name} produced no output"


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_examples_run(name, capsys):
    out = run_example(name, capsys)
    assert out.strip()


def test_quickstart_narrates_the_protocol(capsys):
    out = run_example("quickstart.py", capsys)
    for expected in ("zone zone-", "registered as drone-",
                     "PoA verification: accepted", "cleared"):
        assert expected in out


def test_spoofing_example_declines(capsys):
    out = run_example("spoofing_defense.py", capsys)
    assert "DECLINED" in out
    assert "signed" in out
