"""Integration: fly -> vault -> restart -> submit -> snapshot -> restore.

A drone flies, archives the encrypted PoA on its SD card, and submits it
*after* the operator's app restarts; later the Auditor restarts from its
own snapshot and adjudicates identically.
"""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.protocol import IncidentReport, ZoneRegistrationRequest
from repro.core.verification import VerificationStatus
from repro.drone.client import AliDroneClient
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.storage import PoaVault, load_server_state, save_server_state

T0 = DEFAULT_EPOCH


@pytest.fixture()
def flown(frame, make_device, tmp_path):
    server = AliDroneServer(frame, rng=random.Random(12),
                            encryption_key_bits=512)
    center = frame.to_geo(300.0, 90.0)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 25.0),
        proof_of_ownership="deed"))
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 60.0, 600.0, 0.0)])
    device = make_device(seed=21)
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=2)
    device.attach_gps(receiver, clock)
    client = AliDroneClient(device, receiver, clock, frame,
                            rng=random.Random(22))
    client.register(server)
    record = client.fly(T0 + 60.0, policy="fixed", fixed_rate_hz=2.0,
                        zones=[NoFlyZone(center.lat, center.lon, 25.0)])
    vault = PoaVault(tmp_path / "sdcard")
    client.archive_flight(vault, record, server.public_encryption_key)
    return dict(server=server, client=client, vault=vault, record=record,
                zone_id=zone_id, tmp_path=tmp_path)


class TestVaultRoundTrip:
    def test_submit_from_vault_accepted(self, flown):
        report = flown["client"].submit_archived(
            flown["server"], flown["vault"], flown["record"].flight_id)
        assert report.status is VerificationStatus.ACCEPTED

    def test_vault_preserves_flight_metadata(self, flown):
        entry = flown["vault"].load(flown["record"].flight_id)
        assert entry.policy == "fixed-2hz"
        assert entry.claimed_end - entry.claimed_start == pytest.approx(
            flown["record"].result.stats.duration)

    def test_tampered_vault_file_detected_at_verification(self, flown):
        """Flipping ciphertext bits on the SD card yields a rejected
        submission, not silent acceptance."""
        import json
        path = flown["vault"]._path_for(flown["record"].flight_id)
        document = json.loads(path.read_text())
        blob = bytearray.fromhex(document["records"][3]["ciphertext"])
        blob[7] ^= 0xFF
        document["records"][3]["ciphertext"] = bytes(blob).hex()
        path.write_text(json.dumps(document))
        report = flown["client"].submit_archived(
            flown["server"], flown["vault"], flown["record"].flight_id)
        assert report.status in (VerificationStatus.REJECTED_MALFORMED,
                                 VerificationStatus.REJECTED_BAD_SIGNATURE)

    def test_full_server_restart_round_trip(self, flown, frame):
        server, client = flown["server"], flown["client"]
        client.submit_archived(server, flown["vault"],
                               flown["record"].flight_id)
        snapshot = flown["tmp_path"] / "auditor.json"
        save_server_state(server, snapshot)
        restored = load_server_state(
            snapshot, AliDroneServer(frame, rng=random.Random(13),
                                     encryption_key_bits=512))
        incident = IncidentReport(zone_id=flown["zone_id"],
                                  drone_id=client.drone_id,
                                  incident_time=T0 + 30.0)
        assert (restored.handle_incident(incident).violation
                == server.handle_incident(incident).violation)
