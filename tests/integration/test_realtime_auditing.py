"""Integration: real-time auditing over the radio (the §IV-B alternative).

A drone streams its encrypted PoA entries live; the Auditor endpoint
reassembles them, converts the completed stream into a standard
submission, and the server verifies it the moment the flight ends — no
post-flight upload step.
"""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import encrypt_poa
from repro.core.protocol import ZoneRegistrationRequest
from repro.core.verification import VerificationStatus
from repro.drone.client import AliDroneClient
from repro.errors import ProtocolError
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.net.link import SimulatedLink
from repro.net.streaming import StreamingAuditorEndpoint, StreamingUploader
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH, SimClock

T0 = DEFAULT_EPOCH


@pytest.fixture()
def streamed_world(frame, make_device):
    server = AliDroneServer(frame, rng=random.Random(61),
                            encryption_key_bits=512)
    center = frame.to_geo(300.0, 90.0)
    server.register_zone(ZoneRegistrationRequest(
        zone=NoFlyZone(center.lat, center.lon, 25.0),
        proof_of_ownership="deed"))
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 60.0, 600.0, 0.0)])
    device = make_device(seed=62)
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=3)
    device.attach_gps(receiver, clock)
    client = AliDroneClient(device, receiver, clock, frame,
                            rng=random.Random(63))
    drone_id = client.register(server)
    zone = NoFlyZone(center.lat, center.lon, 25.0)
    record = client.fly(T0 + 60.0, policy="adaptive", zones=[zone])
    return server, client, drone_id, record


def stream_records(records, flight_id, loss=0.1, seed=9):
    uplink = SimulatedLink(latency_s=0.02, jitter_s=0.0,
                           loss_probability=loss, seed=seed)
    downlink = SimulatedLink(latency_s=0.02, jitter_s=0.0)
    uploader = StreamingUploader(uplink, downlink, flight_id,
                                 retransmit_timeout_s=0.3)
    endpoint = StreamingAuditorEndpoint(uplink, downlink)
    t = 0.0
    uploader.begin_flight(t)
    for i, record in enumerate(records):
        t = (i + 1) * 0.2
        uploader.push(record, t)
        endpoint.poll(t)
        uploader.poll(t)
    uploader.end_flight(t)
    while not (endpoint.complete and uploader.fully_acked):
        t += 0.2
        endpoint.poll(t)
        uploader.poll(t)
    return endpoint


class TestRealtimeAuditing:
    def test_streamed_flight_verifies_on_arrival(self, streamed_world):
        server, client, drone_id, record = streamed_world
        records = encrypt_poa(record.poa, server.public_encryption_key,
                              rng=random.Random(64))
        endpoint = stream_records(records, record.flight_id)
        submission = endpoint.to_submission(
            drone_id, record.result.stats.start_time,
            record.result.stats.end_time)
        report = server.receive_poa(submission)
        assert report.status is VerificationStatus.ACCEPTED
        assert len(server.retained_for(drone_id)) == 1

    def test_incomplete_stream_cannot_build_submission(self, streamed_world):
        server, client, drone_id, record = streamed_world
        records = encrypt_poa(record.poa, server.public_encryption_key,
                              rng=random.Random(65))
        uplink = SimulatedLink(latency_s=0.02)
        downlink = SimulatedLink(latency_s=0.02)
        uploader = StreamingUploader(uplink, downlink, record.flight_id)
        endpoint = StreamingAuditorEndpoint(uplink, downlink)
        uploader.begin_flight(0.0)
        uploader.push(records[0], 0.1)
        endpoint.poll(0.5)   # FLIGHT_END never sent
        with pytest.raises(ProtocolError):
            endpoint.to_submission(drone_id, T0, T0 + 60.0)

    def test_streamed_equals_deferred_verdict(self, streamed_world):
        """Real-time and store-and-upload yield identical verdicts."""
        server, client, drone_id, record = streamed_world
        deferred_report = client.submit_poa(server, record)
        records = encrypt_poa(record.poa, server.public_encryption_key,
                              rng=random.Random(66))
        endpoint = stream_records(records, record.flight_id + "-rt")
        streamed_report = server.receive_poa(endpoint.to_submission(
            drone_id, record.result.stats.start_time,
            record.result.stats.end_time))
        assert streamed_report.status == deferred_report.status


class TestLiveIncrementalVerification:
    def test_verify_during_flight(self, streamed_world):
        """The Auditor classifies each entry the moment it arrives, using
        the incremental verifier over the (decrypted) streamed records —
        true real-time auditing, not just real-time transport."""
        from repro.core.incremental import EntryVerdict, IncrementalVerifier
        from repro.core.poa import SignedSample
        from repro.crypto.pkcs1 import decrypt_pkcs1_v15

        server, client, drone_id, record = streamed_world
        zones = [r.zone for r in server.zones.all_zones()]
        verifier = IncrementalVerifier(
            client.device.tee_public_key, zones, server.frame)

        records = encrypt_poa(record.poa, server.public_encryption_key,
                              rng=random.Random(67))
        endpoint = stream_records(records, record.flight_id)
        verdicts = []
        for streamed in endpoint.records():
            payload = decrypt_pkcs1_v15(server._encryption_key,
                                        streamed.ciphertext)
            verdicts.append(verifier.push(SignedSample(
                payload=payload, signature=streamed.signature)))
        assert all(v is EntryVerdict.ACCEPTED for v in verdicts)
        assert verifier.report().status is VerificationStatus.ACCEPTED

    def test_incremental_catches_mid_stream_tamper(self, streamed_world):
        from repro.core.incremental import EntryVerdict, IncrementalVerifier
        from repro.core.poa import SignedSample

        server, client, drone_id, record = streamed_world
        zones = [r.zone for r in server.zones.all_zones()]
        verifier = IncrementalVerifier(
            client.device.tee_public_key, zones, server.frame)
        entries = list(record.poa.entries)
        middle = len(entries) // 2
        entries[middle] = SignedSample(
            payload=entries[middle].payload,
            signature=bytes(len(entries[middle].signature)))
        verdicts = [verifier.push(entry) for entry in entries]
        assert verdicts[middle] is EntryVerdict.REJECTED_SIGNATURE
        # Dropping the tampered entry widens the bridging pair, which may
        # legitimately score insufficient near the zone; what matters is
        # that no other entry is *rejected* and the stream verdict is
        # dominated by the forgery.
        assert all(v in (EntryVerdict.ACCEPTED,
                         EntryVerdict.INSUFFICIENT_PAIR)
                   for i, v in enumerate(verdicts) if i != middle)
        assert verifier.report().status is (
            VerificationStatus.REJECTED_BAD_SIGNATURE)
