"""Failure injection: the system degrades safely, never silently.

Receiver outages, hostile storage, oversized inputs, and clock misuse —
each failure must surface as the right error or as a detectable
degradation (insufficient PoA), never as a forged-looking success.
"""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.sampling import AdaptiveSampler, FixRateSampler
from repro.core.sufficiency import count_insufficient_pairs
from repro.drone.adapter import Adapter
from repro.errors import NoFixError, TeeStorageError
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH, SimClock

T0 = DEFAULT_EPOCH


def zone_at(frame, x, y, r):
    center = frame.to_geo(x, y)
    return NoFlyZone(center.lat, center.lon, r)


class TestReceiverOutage:
    def test_long_outage_near_zone_is_visible_in_poa(self, make_platform,
                                                     frame):
        """A 6-second GPS blackout while passing a zone must show up as
        insufficient pairs — the PoA cannot silently paper over it."""
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 40.0, 200.0, 0.0)])
        zone = zone_at(frame, 100.0, 18.0, 5.0)
        outage = frozenset(range(70, 100))  # updates 14 s .. 20 s
        device, receiver, clock = make_platform(
            source=source, forced_miss_indices=outage)
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 40.0)
        samples = [entry.sample for entry in result.poa]
        assert count_insufficient_pairs(samples, [zone], frame) >= 1
        # And the sampler recovered: sampling continued after the outage.
        assert result.stats.sample_times[-1] > T0 + 21.0

    def test_outage_far_from_zones_is_harmless(self, make_platform, frame):
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 40.0, 200.0, 0.0)])
        zone = zone_at(frame, 0.0, 50_000.0, 100.0)
        outage = frozenset(range(70, 100))
        device, receiver, clock = make_platform(
            source=source, forced_miss_indices=outage, seed=4)
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 40.0)
        samples = [entry.sample for entry in result.poa]
        assert count_insufficient_pairs(samples, [zone], frame) == 0

    def test_fixed_sampler_survives_outage(self, make_platform, frame):
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 40.0, 200.0, 0.0)])
        outage = frozenset(range(50, 75))
        device, receiver, clock = make_platform(
            source=source, forced_miss_indices=outage, seed=5)
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        result = FixRateSampler(1.0).run(adapter, T0 + 40.0)
        # Samples were lost during the outage but sampling resumed.
        assert 30 <= result.stats.auth_samples <= 41
        times = [e.sample.t for e in result.poa]
        assert max(times) > T0 + 16.0

    def test_total_gps_failure_raises(self, make_device, frame):
        """A receiver that never produces a fix fails loudly at first use."""
        from repro.gps.receiver import SimulatedGpsReceiver
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 10.0, 1.0, 0.0)])
        clock = SimClock(T0)
        receiver = SimulatedGpsReceiver(source, frame,
                                        start_time=T0 + 1e6)
        device = make_device(seed=9)
        device.attach_gps(receiver, clock)
        adapter = Adapter(device, receiver, clock)
        adapter.start()
        with pytest.raises(NoFixError):
            adapter.get_gps_auth()


class TestHostileStorage:
    def test_wiped_ta_store_blocks_sampling(self, make_platform):
        """Deleting the TA image from untrusted storage is a DoS, not a
        bypass: the session cannot open, nothing signs."""
        from repro.errors import TrustedAppError
        device, receiver, clock = make_platform(seed=6)
        device.core.ta_store._images.clear()
        adapter = Adapter(device, receiver, clock)
        with pytest.raises(TrustedAppError):
            adapter.start()

    def test_swapped_sealed_entries_fail_closed(self, make_platform):
        device, receiver, clock = make_platform(seed=7)
        storage = device.sealed_storage
        blobs = storage.raw_blobs()
        # Replace the sign key blob with random bytes of the same length.
        rng = random.Random(1)
        junk = bytes(rng.randrange(256) for _ in range(
            len(blobs["tee-sign-key"])))
        storage.tamper("tee-sign-key", junk)
        adapter = Adapter(device, receiver, clock)
        with pytest.raises(TeeStorageError):
            adapter.start()


class TestClockMisuse:
    def test_clock_cannot_go_backwards_mid_flight(self, make_platform):
        from repro.errors import SimulationError
        device, receiver, clock = make_platform(seed=8)
        clock.advance(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(T0 + 5.0)


class TestOversizedInputs:
    def test_huge_poa_round_trips(self, signing_key, frame):
        """5000-entry PoAs serialize and verify without issue."""
        from repro.core.poa import ProofOfAlibi, SignedSample
        from repro.core.samples import GpsSample
        entries = []
        signature = b"\x01" * 64
        for i in range(5000):
            sample = GpsSample(lat=40.0, lon=-88.0, t=T0 + i * 0.2)
            entries.append(SignedSample(payload=sample.to_signed_payload(),
                                        signature=signature))
        poa = ProofOfAlibi(entries)
        assert len(ProofOfAlibi.from_bytes(poa.to_bytes())) == 5000

    def test_many_zones_sufficiency_scales(self, frame):
        """Eq. (1) over 2000 zones stays well-behaved."""
        from repro.core.samples import GpsSample
        from repro.core.sufficiency import pair_is_sufficient
        rng = random.Random(2)
        zones = []
        for _ in range(2000):
            center = frame.to_geo(rng.uniform(5_000, 50_000),
                                  rng.uniform(5_000, 50_000))
            zones.append(NoFlyZone(center.lat, center.lon,
                                   rng.uniform(5, 50)))
        a = GpsSample(lat=frame.origin.lat, lon=frame.origin.lon, t=T0)
        b = GpsSample(lat=frame.origin.lat, lon=frame.origin.lon, t=T0 + 1)
        assert pair_is_sufficient(a, b, zones, frame)
