"""Tests for repro.gps.receiver."""

import pytest

from repro.errors import ConfigurationError, NoFixError
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


@pytest.fixture()
def source():
    # 100 m east over 20 seconds: 5 m/s.
    return WaypointSource([(T0, 0.0, 0.0), (T0 + 20.0, 100.0, 0.0)])


@pytest.fixture()
def receiver(source, frame):
    return SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                start_time=T0, seed=1)


class TestConfiguration:
    def test_invalid_rate_rejected(self, source, frame):
        with pytest.raises(ConfigurationError):
            SimulatedGpsReceiver(source, frame, update_rate_hz=0.0)

    def test_invalid_miss_probability_rejected(self, source, frame):
        with pytest.raises(ConfigurationError):
            SimulatedGpsReceiver(source, frame, miss_probability=1.0)

    def test_negative_noise_rejected(self, source, frame):
        with pytest.raises(ConfigurationError):
            SimulatedGpsReceiver(source, frame, noise_std_m=-1.0)


class TestUpdateDiscipline:
    def test_no_fix_before_first_update(self, receiver):
        assert receiver.fix_at(T0 - 0.01) is None
        with pytest.raises(NoFixError):
            receiver.require_fix_at(T0 - 0.01)

    def test_first_update_at_start(self, receiver):
        fix = receiver.fix_at(T0)
        assert fix is not None
        assert fix.time == pytest.approx(T0)

    def test_reads_see_latest_completed_update(self, receiver):
        # At T0 + 0.3 the latest update is the one at T0 + 0.2.
        fix = receiver.fix_at(T0 + 0.3)
        assert fix.time == pytest.approx(T0 + 0.2)

    def test_fix_position_tracks_source(self, receiver, frame):
        fix = receiver.fix_at(T0 + 10.0)
        x, y = frame.to_local(type(frame.origin)(fix.lat, fix.lon))
        assert x == pytest.approx(50.0, abs=0.5)

    def test_update_count_matches_rate(self, receiver):
        receiver.fix_at(T0 + 10.0)
        assert receiver.updates_generated == pytest.approx(51, abs=2)

    def test_queries_are_monotone_consistent(self, receiver):
        early = receiver.fix_at(T0 + 1.0)
        late = receiver.fix_at(T0 + 5.0)
        again = receiver.fix_at(T0 + 1.0)
        assert early.time == again.time
        assert late.time > early.time

    def test_speed_estimate(self, receiver):
        fix = receiver.fix_at(T0 + 10.0)
        assert fix.speed_mps == pytest.approx(5.0, abs=0.2)

    def test_course_east(self, receiver):
        fix = receiver.fix_at(T0 + 10.0)
        assert fix.course_deg == pytest.approx(90.0, abs=2.0)


class TestMissedUpdates:
    def test_forced_miss_returns_stale_fix(self, source, frame):
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0, seed=1,
                                        forced_miss_indices={5})
        # Update 5 (at T0 + 1.0) is missed; the latest at T0 + 1.1 is #4.
        fix = receiver.fix_at(T0 + 1.1)
        assert fix.time == pytest.approx(T0 + 0.8)
        assert receiver.updates_missed == 1

    def test_random_misses_counted(self, source, frame):
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0, seed=3,
                                        miss_probability=0.3)
        receiver.fix_at(T0 + 19.0)
        total = receiver.updates_generated + receiver.updates_missed
        assert receiver.updates_missed > 0
        assert receiver.updates_missed / total == pytest.approx(0.3, abs=0.12)

    def test_next_fix_after_skips_misses(self, source, frame):
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0, seed=1,
                                        forced_miss_indices={5, 6})
        fix = receiver.next_fix_after(T0 + 0.8)
        assert fix.time == pytest.approx(T0 + 1.4)


class TestScheduleQueries:
    def test_next_update_after(self, receiver):
        assert receiver.next_update_after(T0 + 0.25) == pytest.approx(T0 + 0.4)

    def test_next_update_after_includes_missed_slots(self, source, frame):
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0, seed=1,
                                        forced_miss_indices={2})
        assert receiver.next_update_after(T0 + 0.3) == pytest.approx(T0 + 0.4)

    def test_updates_between(self, receiver):
        fixes = receiver.updates_between(T0 + 0.9, T0 + 2.0)
        assert len(fixes) == 6  # 1.0, 1.2, 1.4, 1.6, 1.8, 2.0
        assert all(T0 + 0.9 < f.time <= T0 + 2.0 for f in fixes)

    def test_sentence_at_is_parseable(self, receiver):
        from repro.gps.nmea import parse_gprmc
        parsed = parse_gprmc(receiver.sentence_at(T0 + 1.0))
        assert parsed.time == pytest.approx(T0 + 1.0, abs=0.011)


class TestNoise:
    def test_noise_perturbs_position(self, source, frame):
        clean = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                     start_time=T0, seed=1)
        noisy = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                     start_time=T0, seed=1, noise_std_m=5.0)
        a = clean.fix_at(T0 + 2.0)
        b = noisy.fix_at(T0 + 2.0)
        assert (a.lat, a.lon) != (b.lat, b.lon)

    def test_deterministic_given_seed(self, source, frame):
        def run():
            r = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                     start_time=T0, seed=9, noise_std_m=3.0,
                                     miss_probability=0.1, jitter_std_s=0.02)
            return [(f.time, f.lat, f.lon)
                    for f in r.updates_between(T0, T0 + 10.0)]

        assert run() == run()

    def test_jitter_keeps_updates_ordered(self, source, frame):
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0, seed=4,
                                        jitter_std_s=0.5)
        fixes = receiver.updates_between(T0, T0 + 15.0)
        times = [f.time for f in fixes]
        assert times == sorted(times)


class TestFaultInjection:
    def make_receiver(self, source, frame, *rules, seed=1, **kwargs):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan, FaultRule  # noqa: F401

        injector = None
        if rules:
            injector = FaultInjector(FaultPlan("t", tuple(rules)), t0=T0)
        return SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                    start_time=T0, seed=seed,
                                    injector=injector, **kwargs)

    def test_dropout_suppresses_updates(self, source, frame):
        from repro.faults.plan import FaultRule
        receiver = self.make_receiver(
            source, frame,
            FaultRule("gps.update", "dropout", t_start=2.0, t_end=4.0))
        receiver.fix_at(T0 + 10.0)
        # The 2 s window at 5 Hz holds 11 update slots (inclusive ends).
        assert receiver.updates_fault_suppressed == 11
        assert receiver.updates_missed == 11
        # Reads inside the outage see the last pre-outage fix.
        assert receiver.fix_at(T0 + 3.0).time == pytest.approx(T0 + 1.8)

    def test_degrade_shifts_positions(self, source, frame):
        from repro.faults.plan import FaultRule
        clean = self.make_receiver(source, frame)
        degraded = self.make_receiver(
            source, frame,
            FaultRule("gps.update", "degrade", param=10.0))
        a = clean.fix_at(T0 + 2.0)
        b = degraded.fix_at(T0 + 2.0)
        assert (a.lat, a.lon) != (b.lat, b.lon)
        assert degraded.updates_fault_suppressed == 0

    def test_empty_plan_injector_is_bit_identical(self, source, frame):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        def fixes(injector):
            r = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                     start_time=T0, seed=7, noise_std_m=3.0,
                                     miss_probability=0.1, injector=injector)
            return [(f.time, f.lat, f.lon)
                    for f in r.updates_between(T0, T0 + 15.0)]

        assert fixes(None) == fixes(FaultInjector(FaultPlan("baseline")))

    def test_fault_suppression_distinct_from_native_miss(self, source, frame):
        """A slot both natively missed and fault-suppressed counts once,
        as a native miss (the fault counter tracks *extra* damage)."""
        from repro.faults.plan import FaultRule
        receiver = self.make_receiver(
            source, frame,
            FaultRule("gps.update", "dropout", t_start=0.95, t_end=1.25),
            forced_miss_indices={5})
        receiver.fix_at(T0 + 5.0)
        assert receiver.updates_missed == 2  # slots 5 (native) and 6
        assert receiver.updates_fault_suppressed == 1  # slot 6 only
