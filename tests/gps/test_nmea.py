"""Tests for repro.gps.nmea."""

import pytest

from repro.errors import NmeaError
from repro.gps.nmea import (
    GpsFix,
    fix_is_finite,
    format_gpgga,
    format_gprmc,
    nmea_checksum,
    parse_gpgga,
    parse_gprmc,
    parse_sentence,
)
from repro.sim.clock import DEFAULT_EPOCH


@pytest.fixture()
def fix():
    return GpsFix(lat=40.123456, lon=-88.654321, time=DEFAULT_EPOCH + 12.34,
                  speed_mps=13.4, course_deg=271.5)


class TestChecksum:
    def test_known_value(self):
        # XOR of "A" (0x41) and "B" (0x42) is 0x03.
        assert nmea_checksum("AB") == "03"

    def test_empty_body(self):
        assert nmea_checksum("") == "00"


class TestGprmcRoundTrip:
    def test_sentence_structure(self, fix):
        sentence = format_gprmc(fix)
        assert sentence.startswith("$GPRMC,")
        assert "*" in sentence

    def test_round_trip_position(self, fix):
        parsed = parse_gprmc(format_gprmc(fix))
        assert parsed.lat == pytest.approx(fix.lat, abs=2e-6)
        assert parsed.lon == pytest.approx(fix.lon, abs=2e-6)

    def test_round_trip_time_to_centisecond(self, fix):
        parsed = parse_gprmc(format_gprmc(fix))
        assert parsed.time == pytest.approx(fix.time, abs=0.011)

    def test_round_trip_speed_and_course(self, fix):
        parsed = parse_gprmc(format_gprmc(fix))
        assert parsed.speed_mps == pytest.approx(fix.speed_mps, abs=0.01)
        assert parsed.course_deg == pytest.approx(fix.course_deg, abs=0.01)

    def test_void_status(self, fix):
        invalid = GpsFix(lat=fix.lat, lon=fix.lon, time=fix.time, valid=False)
        assert not parse_gprmc(format_gprmc(invalid)).valid

    def test_southern_western_hemispheres(self):
        fix = GpsFix(lat=-33.865, lon=-151.209 + 360 - 360, time=DEFAULT_EPOCH)
        parsed = parse_gprmc(format_gprmc(fix))
        assert parsed.lat == pytest.approx(-33.865, abs=2e-6)
        assert parsed.lon == pytest.approx(fix.lon, abs=2e-6)

    def test_reference_sentence_parses(self):
        # Hand-built reference sentence with independently computed fields.
        body = "GPRMC,123519.00,A,4807.0380,N,01131.0000,E,022.40,084.40,230394,,,A"
        sentence = f"${body}*{nmea_checksum(body)}"
        parsed = parse_gprmc(sentence)
        assert parsed.lat == pytest.approx(48.1173, abs=1e-4)
        assert parsed.lon == pytest.approx(11.5167, abs=1e-4)
        assert parsed.valid


class TestGpggaRoundTrip:
    def test_altitude_round_trip(self):
        fix = GpsFix(lat=40.1, lon=-88.2, time=DEFAULT_EPOCH, altitude_m=123.4)
        parsed = parse_gpgga(format_gpgga(fix))
        assert parsed.altitude_m == pytest.approx(123.4, abs=0.05)

    def test_quality_zero_is_invalid(self):
        fix = GpsFix(lat=40.1, lon=-88.2, time=DEFAULT_EPOCH, valid=False)
        assert not parse_gpgga(format_gpgga(fix)).valid


class TestParseSentence:
    def test_dispatch_rmc(self, fix):
        assert parse_sentence(format_gprmc(fix)).lat == pytest.approx(fix.lat,
                                                                      abs=2e-6)

    def test_dispatch_gga(self, fix):
        assert parse_sentence(format_gpgga(fix)).lat == pytest.approx(fix.lat,
                                                                      abs=2e-6)

    def test_unknown_type_rejected(self):
        body = "GPVTG,054.7,T,034.4,M,005.5,N,010.2,K"
        with pytest.raises(NmeaError):
            parse_sentence(f"${body}*{nmea_checksum(body)}")


class TestMalformedInput:
    def test_bad_checksum_rejected(self, fix):
        sentence = format_gprmc(fix)
        bad = sentence[:-2] + ("00" if sentence[-2:] != "00" else "01")
        with pytest.raises(NmeaError):
            parse_gprmc(bad)

    def test_missing_dollar_rejected(self, fix):
        with pytest.raises(NmeaError):
            parse_gprmc(format_gprmc(fix)[1:])

    def test_missing_star_rejected(self):
        with pytest.raises(NmeaError):
            parse_gprmc("$GPRMC,123519,A")

    def test_too_few_fields_rejected(self):
        body = "GPRMC,123519.00,A"
        with pytest.raises(NmeaError):
            parse_gprmc(f"${body}*{nmea_checksum(body)}")

    def test_garbage_coordinate_rejected(self):
        body = "GPRMC,123519.00,A,48XX.038,N,01131.000,E,022.4,084.4,230394,,,A"
        with pytest.raises(NmeaError):
            parse_gprmc(f"${body}*{nmea_checksum(body)}")

    def test_bad_hemisphere_rejected(self):
        body = "GPRMC,123519.00,A,4807.038,Q,01131.000,E,022.4,084.4,230394,,,A"
        with pytest.raises(NmeaError):
            parse_gprmc(f"${body}*{nmea_checksum(body)}")

    def test_whitespace_tolerated(self, fix):
        parsed = parse_gprmc("  " + format_gprmc(fix) + "\r\n")
        assert parsed.lat == pytest.approx(fix.lat, abs=2e-6)


class TestFixIsFinite:
    def test_normal_fix(self, fix):
        assert fix_is_finite(fix)

    def test_nan_detected(self):
        bad = GpsFix(lat=0.0, lon=0.0, time=float("nan"))
        assert not fix_is_finite(bad)
