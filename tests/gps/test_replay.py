"""Tests for repro.gps.replay."""

import pytest

from repro.errors import ConfigurationError
from repro.gps.nmea import GpsFix
from repro.gps.replay import ReplaySource, WaypointSource
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


class TestWaypointSource:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            WaypointSource([])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            WaypointSource([(T0, 0, 0), (T0, 1, 1)])

    def test_interpolation_midpoint(self):
        src = WaypointSource([(T0, 0.0, 0.0), (T0 + 10.0, 100.0, 50.0)])
        assert src.position_at(T0 + 5.0) == pytest.approx((50.0, 25.0))

    def test_clamping_before_and_after(self):
        src = WaypointSource([(T0, 1.0, 2.0), (T0 + 10.0, 3.0, 4.0)])
        assert src.position_at(T0 - 100.0) == (1.0, 2.0)
        assert src.position_at(T0 + 100.0) == (3.0, 4.0)

    def test_exact_waypoint_hit(self):
        src = WaypointSource([(T0, 0, 0), (T0 + 5, 10, 0), (T0 + 10, 10, 10)])
        assert src.position_at(T0 + 5.0) == pytest.approx((10.0, 0.0))

    def test_piecewise_segments(self):
        src = WaypointSource([(T0, 0, 0), (T0 + 5, 10, 0), (T0 + 10, 10, 10)])
        assert src.position_at(T0 + 7.5) == pytest.approx((10.0, 5.0))

    def test_metadata(self):
        src = WaypointSource([(T0, 0, 0), (T0 + 10, 1, 1)])
        assert src.start_time == T0
        assert src.end_time == T0 + 10
        assert src.duration == 10.0

    def test_single_waypoint_is_stationary(self):
        src = WaypointSource([(T0, 5.0, 6.0)])
        assert src.position_at(T0 - 1) == (5.0, 6.0)
        assert src.position_at(T0 + 1) == (5.0, 6.0)


class TestReplaySource:
    def test_from_fixes_round_trip(self, frame):
        original = WaypointSource([(T0, 0.0, 0.0), (T0 + 20.0, 100.0, 0.0)])
        fixes = []
        for i in range(21):
            t = T0 + i
            x, y = original.position_at(t)
            point = frame.to_geo(x, y)
            fixes.append(GpsFix(lat=point.lat, lon=point.lon, time=t))
        replay = ReplaySource.from_fixes(fixes, frame)
        for t in (T0 + 3.0, T0 + 10.5, T0 + 19.0):
            assert replay.position_at(t) == pytest.approx(
                original.position_at(t), abs=1e-6)

    def test_unsorted_fixes_are_sorted(self, frame):
        point = frame.to_geo(10.0, 0.0)
        fixes = [GpsFix(lat=point.lat, lon=point.lon, time=T0 + 5),
                 GpsFix(lat=frame.origin.lat, lon=frame.origin.lon, time=T0)]
        replay = ReplaySource.from_fixes(fixes, frame)
        assert replay.start_time == T0

    def test_duplicate_timestamps_collapse(self, frame):
        a = frame.to_geo(0.0, 0.0)
        b = frame.to_geo(10.0, 0.0)
        fixes = [GpsFix(lat=a.lat, lon=a.lon, time=T0),
                 GpsFix(lat=b.lat, lon=b.lon, time=T0),
                 GpsFix(lat=b.lat, lon=b.lon, time=T0 + 1)]
        replay = ReplaySource.from_fixes(fixes, frame)
        assert replay.position_at(T0) == pytest.approx((10.0, 0.0), abs=1e-6)
