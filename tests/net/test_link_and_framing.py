"""Tests for repro.net.link and repro.net.framing."""

import pytest

from repro.errors import ConfigurationError, EncodingError
from repro.net.framing import FrameType, decode_frame, encode_frame
from repro.net.link import SimulatedLink


class TestSimulatedLink:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedLink(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            SimulatedLink(loss_probability=1.0)
        with pytest.raises(ConfigurationError):
            SimulatedLink(bandwidth_bps=0.0)

    def test_delivery_after_latency(self):
        link = SimulatedLink(latency_s=0.1, jitter_s=0.0)
        link.send(b"hello", now=0.0)
        assert link.receive(0.05) == []
        assert link.receive(0.2) == [b"hello"]
        assert link.pending == 0

    def test_transmission_time_adds_to_delay(self):
        link = SimulatedLink(latency_s=0.0, jitter_s=0.0,
                             bandwidth_bps=8_000.0)  # 1 kB/s
        link.send(b"x" * 100, now=0.0)  # 100 ms air time
        assert link.receive(0.05) == []
        assert link.receive(0.11) == [b"x" * 100]

    def test_loss_is_deterministic_and_counted(self):
        link = SimulatedLink(loss_probability=0.5, seed=3)
        for i in range(100):
            link.send(bytes([i]), now=float(i))
        assert link.stats.dropped > 20
        assert link.stats.dropped + len(link.receive(1e9)) == 100
        assert link.stats.loss_rate == pytest.approx(
            link.stats.dropped / 100)

    def test_send_returns_air_time_even_when_lost(self):
        link = SimulatedLink(loss_probability=0.999999 - 1e-9, seed=1,
                             bandwidth_bps=8.0)
        air = link.send(b"z", now=0.0)
        assert air == pytest.approx(1.0)

    def test_multiple_messages_ordered_by_arrival(self):
        link = SimulatedLink(latency_s=0.1, jitter_s=0.0)
        link.send(b"a", now=0.0)
        link.send(b"b", now=0.01)
        assert link.receive(1.0) == [b"a", b"b"]

    def test_deterministic_given_seed(self):
        def run():
            link = SimulatedLink(latency_s=0.05, jitter_s=0.02,
                                 loss_probability=0.2, seed=9)
            for i in range(50):
                link.send(bytes([i]), now=i * 0.1)
            return link.receive(1e9)

        assert run() == run()


class TestFraming:
    def test_round_trip(self):
        data = encode_frame(FrameType.POA_ENTRY, 42, b"payload")
        frame = decode_frame(data)
        assert frame.frame_type is FrameType.POA_ENTRY
        assert frame.sequence == 42
        assert frame.payload == b"payload"

    def test_empty_payload(self):
        frame = decode_frame(encode_frame(FrameType.FLIGHT_END, 7, b""))
        assert frame.payload == b""

    def test_crc_detects_any_corruption(self):
        data = bytearray(encode_frame(FrameType.ACK, 1, b"\x00" * 16))
        for position in range(len(data)):
            corrupted = bytearray(data)
            corrupted[position] ^= 0x01
            with pytest.raises(EncodingError):
                decode_frame(bytes(corrupted))

    def test_truncation_rejected(self):
        data = encode_frame(FrameType.ACK, 1, b"abc")
        with pytest.raises(EncodingError):
            decode_frame(data[:10])

    def test_negative_sequence_rejected(self):
        with pytest.raises(EncodingError):
            encode_frame(FrameType.ACK, -1, b"")

    def test_unknown_type_rejected(self):
        import struct
        import zlib
        header = struct.Struct(">4sBQI").pack(b"ADNF", 99, 0, 0)
        data = header + struct.pack(">I", zlib.crc32(header))
        with pytest.raises(EncodingError):
            decode_frame(data)
