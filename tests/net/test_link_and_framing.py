"""Tests for repro.net.link and repro.net.framing."""

import struct
import zlib

import pytest

from repro.errors import ConfigurationError, EncodingError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.net.framing import FrameType, decode_frame, encode_frame
from repro.net.link import SimulatedLink


class TestSimulatedLink:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedLink(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            SimulatedLink(loss_probability=1.0)
        with pytest.raises(ConfigurationError):
            SimulatedLink(bandwidth_bps=0.0)

    def test_delivery_after_latency(self):
        link = SimulatedLink(latency_s=0.1, jitter_s=0.0)
        link.send(b"hello", now=0.0)
        assert link.receive(0.05) == []
        assert link.receive(0.2) == [b"hello"]
        assert link.pending == 0

    def test_transmission_time_adds_to_delay(self):
        link = SimulatedLink(latency_s=0.0, jitter_s=0.0,
                             bandwidth_bps=8_000.0)  # 1 kB/s
        link.send(b"x" * 100, now=0.0)  # 100 ms air time
        assert link.receive(0.05) == []
        assert link.receive(0.11) == [b"x" * 100]

    def test_loss_is_deterministic_and_counted(self):
        link = SimulatedLink(loss_probability=0.5, seed=3)
        for i in range(100):
            link.send(bytes([i]), now=float(i))
        assert link.stats.dropped > 20
        assert link.stats.dropped + len(link.receive(1e9)) == 100
        assert link.stats.loss_rate == pytest.approx(
            link.stats.dropped / 100)

    def test_send_returns_air_time_even_when_lost(self):
        link = SimulatedLink(loss_probability=0.999999 - 1e-9, seed=1,
                             bandwidth_bps=8.0)
        air = link.send(b"z", now=0.0)
        assert air == pytest.approx(1.0)

    def test_multiple_messages_ordered_by_arrival(self):
        link = SimulatedLink(latency_s=0.1, jitter_s=0.0)
        link.send(b"a", now=0.0)
        link.send(b"b", now=0.01)
        assert link.receive(1.0) == [b"a", b"b"]

    def test_deterministic_given_seed(self):
        def run():
            link = SimulatedLink(latency_s=0.05, jitter_s=0.02,
                                 loss_probability=0.2, seed=9)
            for i in range(50):
                link.send(bytes([i]), now=i * 0.1)
            return link.receive(1e9)

        assert run() == run()

    def test_arrival_never_before_transmission_ends(self):
        """Regression: jitter larger than latency used to let a message
        arrive before its own air time had elapsed."""
        link = SimulatedLink(latency_s=0.001, jitter_s=0.05,
                             bandwidth_bps=8_000.0, seed=4)  # 1 ms/byte
        for i in range(200):
            link.send(b"x" * 8, now=float(i))  # 8 ms air time each
            assert link.receive(i + 0.0079) == []
            link.receive(i + 0.9)  # drain before the next send

    def test_explicit_rng_overrides_seed(self):
        import random

        def run(**kwargs):
            link = SimulatedLink(loss_probability=0.4, **kwargs)
            for i in range(50):
                link.send(bytes([i]), now=float(i))
            return link.receive(1e9)

        assert run(rng=random.Random(11)) == run(rng=random.Random(11),
                                                 seed=999)
        assert run(rng=random.Random(11)) != run(rng=random.Random(12))


def faulty_link(*rules, seed=0, **kwargs):
    injector = FaultInjector(FaultPlan("t", tuple(rules), seed=seed))
    link = SimulatedLink(latency_s=0.01, jitter_s=0.0, seed=seed,
                         injector=injector, fault_point="link.uplink",
                         **kwargs)
    return link, injector


class TestLinkFaultInjection:
    def test_drop_rule_counted_separately(self):
        link, injector = faulty_link(
            FaultRule("link.uplink.send", "drop"))
        link.send(b"msg", now=0.0)
        assert link.receive(1.0) == []
        assert link.stats.dropped == 1
        assert link.stats.fault_dropped == 1
        assert injector.stats.injected["link.uplink.send.drop"] == 1

    def test_duplicate_rule_delivers_two_copies(self):
        link, _ = faulty_link(FaultRule("link.uplink.send", "duplicate"))
        link.send(b"msg", now=0.0)
        assert link.receive(1.0) == [b"msg", b"msg"]
        assert link.stats.fault_duplicated == 1

    def test_corrupt_rule_mangles_payload(self):
        link, _ = faulty_link(FaultRule("link.uplink.send", "corrupt"))
        link.send(b"a" * 16, now=0.0)
        (received,) = link.receive(1.0)
        assert received != b"a" * 16 and len(received) == 16

    def test_delay_rule_postpones_arrival(self):
        link, _ = faulty_link(
            FaultRule("link.uplink.send", "delay", param=5.0))
        link.send(b"msg", now=0.0)
        assert link.receive(1.0) == []
        assert link.receive(6.0) == [b"msg"]

    def test_empty_plan_is_bit_identical_to_no_injector(self):
        """The no-op path: attaching an injector with nothing to inject
        must not perturb the link's native RNG stream."""
        def run(injector):
            link = SimulatedLink(latency_s=0.05, jitter_s=0.02,
                                 loss_probability=0.3, seed=13,
                                 injector=injector)
            received = []
            for i in range(100):
                link.send(bytes([i]), now=i * 0.1)
                received.extend(link.receive(i * 0.1))
            received.extend(link.receive(1e9))
            return received, link.stats.dropped

        empty = FaultInjector(FaultPlan("baseline"))
        assert run(None) == run(empty)

    def test_fault_point_scopes_rules(self):
        """A downlink rule never touches an uplink-labelled link."""
        injector = FaultInjector(FaultPlan("t", (
            FaultRule("link.downlink.send", "drop"),)))
        link = SimulatedLink(latency_s=0.0, jitter_s=0.0,
                             injector=injector, fault_point="link.uplink")
        link.send(b"msg", now=0.0)
        assert link.receive(1.0) == [b"msg"]


class TestFraming:
    def test_round_trip(self):
        data = encode_frame(FrameType.POA_ENTRY, 42, b"payload")
        frame = decode_frame(data)
        assert frame.frame_type is FrameType.POA_ENTRY
        assert frame.sequence == 42
        assert frame.payload == b"payload"

    def test_empty_payload(self):
        frame = decode_frame(encode_frame(FrameType.FLIGHT_END, 7, b""))
        assert frame.payload == b""

    def test_crc_detects_any_corruption(self):
        data = bytearray(encode_frame(FrameType.ACK, 1, b"\x00" * 16))
        for position in range(len(data)):
            corrupted = bytearray(data)
            corrupted[position] ^= 0x01
            with pytest.raises(EncodingError):
                decode_frame(bytes(corrupted))

    def test_truncation_rejected(self):
        data = encode_frame(FrameType.ACK, 1, b"abc")
        with pytest.raises(EncodingError):
            decode_frame(data[:10])

    def test_negative_sequence_rejected(self):
        with pytest.raises(EncodingError):
            encode_frame(FrameType.ACK, -1, b"")

    def test_unknown_type_rejected(self):
        header = struct.Struct(">4sBQI").pack(b"ADNF", 99, 0, 0)
        data = header + struct.pack(">I", zlib.crc32(header))
        with pytest.raises(EncodingError):
            decode_frame(data)

    def _reframe(self, body: bytes) -> bytes:
        """Append a *valid* CRC so the test reaches the post-CRC checks."""
        return body + struct.pack(">I", zlib.crc32(body))

    def test_length_field_mismatch_with_valid_crc(self):
        """A frame whose length prefix lies about the payload must be
        rejected even when its CRC is internally consistent."""
        header = struct.Struct(">4sBQI").pack(
            b"ADNF", int(FrameType.POA_ENTRY), 5, 99)
        with pytest.raises(EncodingError, match="length field mismatch"):
            decode_frame(self._reframe(header + b"short"))

    def test_bad_magic_with_valid_crc(self):
        header = struct.Struct(">4sBQI").pack(
            b"XXXX", int(FrameType.ACK), 0, 0)
        with pytest.raises(EncodingError, match="magic"):
            decode_frame(self._reframe(header))

    def test_truncated_header_rejected(self):
        with pytest.raises(EncodingError, match="too short"):
            decode_frame(b"ADNF\x01")

    def test_empty_input_rejected(self):
        with pytest.raises(EncodingError):
            decode_frame(b"")

    def test_corrupted_payload_byte_rejected(self):
        data = bytearray(encode_frame(FrameType.POA_ENTRY, 3, b"payload"))
        data[-6] ^= 0xFF  # inside the payload region
        with pytest.raises(EncodingError, match="CRC"):
            decode_frame(bytes(data))
