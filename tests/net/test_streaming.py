"""Tests for repro.net.streaming and repro.net.energy."""

import pytest

from repro.core.poa import EncryptedPoaRecord
from repro.errors import ConfigurationError, ProtocolError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.net.energy import WIFI_RADIO, RadioEnergyModel
from repro.net.link import SimulatedLink
from repro.net.streaming import (
    Outbox,
    StreamingAuditorEndpoint,
    StreamingUploader,
)


def record(i: int) -> EncryptedPoaRecord:
    return EncryptedPoaRecord(ciphertext=bytes([i]) * 64,
                              signature=bytes([255 - i]) * 64)


def make_pair(loss=0.0, seed=0, rto=0.5):
    uplink = SimulatedLink(latency_s=0.02, jitter_s=0.0,
                           loss_probability=loss, seed=seed)
    downlink = SimulatedLink(latency_s=0.02, jitter_s=0.0)
    uploader = StreamingUploader(uplink, downlink, "flight-1",
                                 retransmit_timeout_s=rto)
    endpoint = StreamingAuditorEndpoint(uplink, downlink)
    return uploader, endpoint


def drive(uploader, endpoint, records, push_interval=0.2, max_time=60.0):
    """Co-simulate both endpoints until the flight is fully delivered."""
    t = 0.0
    uploader.begin_flight(t)
    for i, rec in enumerate(records):
        t = (i + 1) * push_interval
        uploader.push(rec, t)
        endpoint.poll(t + 0.05)
        uploader.poll(t + 0.1)
    uploader.end_flight(t + push_interval)
    while t < max_time and not (endpoint.complete and uploader.fully_acked):
        t += 0.25
        endpoint.poll(t)
        uploader.poll(t)
    return t


class TestLosslessStreaming:
    def test_all_entries_arrive_in_order(self):
        uploader, endpoint = make_pair()
        records = [record(i) for i in range(10)]
        drive(uploader, endpoint, records)
        assert endpoint.complete
        assert endpoint.records() == records
        assert endpoint.flight_id == "flight-1"

    def test_no_retransmissions_without_loss(self):
        uploader, endpoint = make_pair()
        drive(uploader, endpoint, [record(i) for i in range(5)])
        assert uploader.stats.retransmissions == 0

    def test_push_without_begin_rejected(self):
        uploader, _ = make_pair()
        with pytest.raises(ProtocolError):
            uploader.push(record(0), 0.0)

    def test_push_after_end_rejected(self):
        uploader, _ = make_pair()
        uploader.begin_flight(0.0)
        uploader.end_flight(1.0)
        with pytest.raises(ProtocolError):
            uploader.push(record(0), 2.0)

    def test_invalid_rto_rejected(self):
        with pytest.raises(ProtocolError):
            make_pair(rto=0.0)


class TestLossyStreaming:
    def test_retransmission_recovers_all_entries(self):
        uploader, endpoint = make_pair(loss=0.3, seed=7, rto=0.3)
        records = [record(i) for i in range(20)]
        drive(uploader, endpoint, records, max_time=120.0)
        assert endpoint.complete
        assert endpoint.records() == records
        assert uploader.stats.retransmissions > 0

    def test_air_time_grows_with_loss(self):
        clean_up, clean_ep = make_pair(loss=0.0)
        drive(clean_up, clean_ep, [record(i) for i in range(20)])
        lossy_up, lossy_ep = make_pair(loss=0.3, seed=5, rto=0.3)
        drive(lossy_up, lossy_ep, [record(i) for i in range(20)],
              max_time=120.0)
        assert lossy_up.stats.air_time_s > clean_up.stats.air_time_s

    def test_corrupt_frames_counted_not_fatal(self):
        uploader, endpoint = make_pair()
        uploader.begin_flight(0.0)
        # Inject garbage straight onto the uplink.
        uploader.uplink.send(b"not a frame at all", 0.0)
        uploader.push(record(1), 0.1)
        endpoint.poll(1.0)
        assert endpoint.corrupt_frames == 1
        assert len(endpoint.records()) == 1


class TestOutbox:
    def test_invalid_limit_rejected(self):
        with pytest.raises(ProtocolError):
            Outbox(limit=0)

    def test_add_raises_when_full(self):
        outbox = Outbox(limit=2)
        outbox.add(b"a")
        outbox.add(b"b")
        assert outbox.full
        with pytest.raises(ProtocolError, match="outbox full"):
            outbox.add(b"c")

    def test_ack_frees_window(self):
        outbox = Outbox(limit=2)
        outbox.add(b"a")
        outbox.add(b"b")
        assert outbox.ack_through(0) == [0]
        assert not outbox.full
        assert outbox.add(b"c") == 2  # sequences keep advancing

    def test_stale_ack_is_ignored(self):
        outbox = Outbox()
        outbox.add(b"a")
        outbox.add(b"b")
        outbox.ack_through(1)
        assert outbox.ack_through(0) == []
        assert outbox.acked_through == 1

    def test_unbounded_by_default(self):
        outbox = Outbox()
        for i in range(1_000):
            outbox.add(bytes([i % 256]))
        assert outbox.pending == 1_000 and not outbox.full

    def test_uploader_respects_bound(self):
        """Pushing past the outbox bound fails loudly, and draining via
        ACKs (duplicate-safe re-send) lets the stream continue."""
        uplink = SimulatedLink(latency_s=0.01, jitter_s=0.0)
        downlink = SimulatedLink(latency_s=0.01, jitter_s=0.0)
        uploader = StreamingUploader(uplink, downlink, "f",
                                     outbox_limit=3)
        endpoint = StreamingAuditorEndpoint(uplink, downlink)
        uploader.begin_flight(0.0)
        for i in range(3):
            uploader.push(record(i), 0.1 * (i + 1))
        assert not uploader.can_push
        with pytest.raises(ProtocolError):
            uploader.push(record(3), 0.4)
        endpoint.poll(1.0)
        uploader.poll(2.0)
        assert uploader.can_push
        uploader.push(record(3), 2.1)
        uploader.end_flight(2.2)
        endpoint.poll(3.0)
        assert endpoint.complete
        assert endpoint.records() == [record(i) for i in range(4)]


class TestInjectedFaultStreaming:
    def injected_pair(self, *rules, seed=0, rto=0.3, outbox_limit=None):
        injector = FaultInjector(FaultPlan("t", tuple(rules), seed=seed))
        uplink = SimulatedLink(latency_s=0.02, jitter_s=0.0, seed=seed,
                               injector=injector,
                               fault_point="link.uplink")
        downlink = SimulatedLink(latency_s=0.02, jitter_s=0.0,
                                 seed=seed + 1, injector=injector,
                                 fault_point="link.downlink")
        uploader = StreamingUploader(uplink, downlink, "flight-f",
                                     retransmit_timeout_s=rto,
                                     outbox_limit=outbox_limit)
        endpoint = StreamingAuditorEndpoint(uplink, downlink)
        return uploader, endpoint

    def test_liveness_under_30_percent_injected_loss(self):
        """The §IV-B liveness bar: a stream over a 30 %-loss channel must
        still converge to a complete, fully-acked flight."""
        uploader, endpoint = self.injected_pair(
            FaultRule("link.uplink.send", "drop", probability=0.3),
            FaultRule("link.downlink.send", "drop", probability=0.3),
            seed=11)
        records = [record(i) for i in range(20)]
        drive(uploader, endpoint, records, max_time=120.0)
        assert endpoint.complete
        assert endpoint.records() == records
        assert uploader.stats.retransmissions > 0

    def test_duplicate_faults_deduplicated(self):
        uploader, endpoint = self.injected_pair(
            FaultRule("link.uplink.send", "duplicate"))
        drive(uploader, endpoint, [record(i) for i in range(5)])
        assert endpoint.complete
        assert endpoint.records() == [record(i) for i in range(5)]
        assert endpoint.duplicate_frames >= 5

    def test_corrupt_faults_counted_and_recovered(self):
        uploader, endpoint = self.injected_pair(
            FaultRule("link.uplink.send", "corrupt", probability=0.4),
            seed=3)
        records = [record(i) for i in range(10)]
        t = 0.0
        uploader.begin_flight(t)
        for i, rec in enumerate(records):
            t = (i + 1) * 0.2
            uploader.push(rec, t)
            endpoint.poll(t + 0.05)
            uploader.poll(t + 0.1)
        # FLIGHT_END itself can be corrupted, so the drone re-announces
        # it until the auditor confirms completion (as the chaos harness
        # does): fire-and-forget close frames don't survive a bad link.
        while t < 120.0 and not (endpoint.complete
                                 and uploader.fully_acked):
            uploader.end_flight(t)
            t += 0.5
            endpoint.poll(t)
            uploader.poll(t)
        assert endpoint.complete
        assert endpoint.records() == records
        assert endpoint.corrupt_frames > 0

    def test_retransmission_reuses_sequence_numbers(self):
        uploader, endpoint = self.injected_pair(
            FaultRule("link.uplink.send", "drop", max_count=2))
        uploader.begin_flight(0.0)  # eaten (fault 1 of 2)
        uploader.push(record(0), 0.1)  # eaten (fault 2 of 2)
        endpoint.poll(0.5)
        uploader.poll(1.0)  # RTO expired -> retransmit, same sequence
        endpoint.poll(1.5)
        assert uploader.stats.retransmissions == 1
        assert endpoint.records() == [record(0)]


class TestEnergyModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioEnergyModel(tx_power_w=-1.0, idle_power_w=0.1)
        with pytest.raises(ConfigurationError):
            WIFI_RADIO.streaming_energy_j(-1.0, 0.0)
        with pytest.raises(ConfigurationError):
            WIFI_RADIO.battery_fraction(1.0, battery_wh=0.0)

    def test_streaming_costs_idle_plus_tx(self):
        energy = WIFI_RADIO.streaming_energy_j(flight_duration_s=100.0,
                                               air_time_s=2.0)
        assert energy == pytest.approx(0.25 * 100.0 + (1.3 - 0.25) * 2.0)

    def test_deferred_costs_nothing_in_flight(self):
        assert WIFI_RADIO.deferred_energy_j() == 0.0

    def test_battery_fraction(self):
        # 60 Wh = 216 kJ; 216 J is 0.1%.
        assert WIFI_RADIO.battery_fraction(216.0) == pytest.approx(0.001)
