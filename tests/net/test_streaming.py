"""Tests for repro.net.streaming and repro.net.energy."""

import pytest

from repro.core.poa import EncryptedPoaRecord
from repro.errors import ConfigurationError, ProtocolError
from repro.net.energy import WIFI_RADIO, RadioEnergyModel
from repro.net.link import SimulatedLink
from repro.net.streaming import StreamingAuditorEndpoint, StreamingUploader


def record(i: int) -> EncryptedPoaRecord:
    return EncryptedPoaRecord(ciphertext=bytes([i]) * 64,
                              signature=bytes([255 - i]) * 64)


def make_pair(loss=0.0, seed=0, rto=0.5):
    uplink = SimulatedLink(latency_s=0.02, jitter_s=0.0,
                           loss_probability=loss, seed=seed)
    downlink = SimulatedLink(latency_s=0.02, jitter_s=0.0)
    uploader = StreamingUploader(uplink, downlink, "flight-1",
                                 retransmit_timeout_s=rto)
    endpoint = StreamingAuditorEndpoint(uplink, downlink)
    return uploader, endpoint


def drive(uploader, endpoint, records, push_interval=0.2, max_time=60.0):
    """Co-simulate both endpoints until the flight is fully delivered."""
    t = 0.0
    uploader.begin_flight(t)
    for i, rec in enumerate(records):
        t = (i + 1) * push_interval
        uploader.push(rec, t)
        endpoint.poll(t + 0.05)
        uploader.poll(t + 0.1)
    uploader.end_flight(t + push_interval)
    while t < max_time and not (endpoint.complete and uploader.fully_acked):
        t += 0.25
        endpoint.poll(t)
        uploader.poll(t)
    return t


class TestLosslessStreaming:
    def test_all_entries_arrive_in_order(self):
        uploader, endpoint = make_pair()
        records = [record(i) for i in range(10)]
        drive(uploader, endpoint, records)
        assert endpoint.complete
        assert endpoint.records() == records
        assert endpoint.flight_id == "flight-1"

    def test_no_retransmissions_without_loss(self):
        uploader, endpoint = make_pair()
        drive(uploader, endpoint, [record(i) for i in range(5)])
        assert uploader.stats.retransmissions == 0

    def test_push_without_begin_rejected(self):
        uploader, _ = make_pair()
        with pytest.raises(ProtocolError):
            uploader.push(record(0), 0.0)

    def test_push_after_end_rejected(self):
        uploader, _ = make_pair()
        uploader.begin_flight(0.0)
        uploader.end_flight(1.0)
        with pytest.raises(ProtocolError):
            uploader.push(record(0), 2.0)

    def test_invalid_rto_rejected(self):
        with pytest.raises(ProtocolError):
            make_pair(rto=0.0)


class TestLossyStreaming:
    def test_retransmission_recovers_all_entries(self):
        uploader, endpoint = make_pair(loss=0.3, seed=7, rto=0.3)
        records = [record(i) for i in range(20)]
        drive(uploader, endpoint, records, max_time=120.0)
        assert endpoint.complete
        assert endpoint.records() == records
        assert uploader.stats.retransmissions > 0

    def test_air_time_grows_with_loss(self):
        clean_up, clean_ep = make_pair(loss=0.0)
        drive(clean_up, clean_ep, [record(i) for i in range(20)])
        lossy_up, lossy_ep = make_pair(loss=0.3, seed=5, rto=0.3)
        drive(lossy_up, lossy_ep, [record(i) for i in range(20)],
              max_time=120.0)
        assert lossy_up.stats.air_time_s > clean_up.stats.air_time_s

    def test_corrupt_frames_counted_not_fatal(self):
        uploader, endpoint = make_pair()
        uploader.begin_flight(0.0)
        # Inject garbage straight onto the uplink.
        uploader.uplink.send(b"not a frame at all", 0.0)
        uploader.push(record(1), 0.1)
        endpoint.poll(1.0)
        assert endpoint.corrupt_frames == 1
        assert len(endpoint.records()) == 1


class TestEnergyModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioEnergyModel(tx_power_w=-1.0, idle_power_w=0.1)
        with pytest.raises(ConfigurationError):
            WIFI_RADIO.streaming_energy_j(-1.0, 0.0)
        with pytest.raises(ConfigurationError):
            WIFI_RADIO.battery_fraction(1.0, battery_wh=0.0)

    def test_streaming_costs_idle_plus_tx(self):
        energy = WIFI_RADIO.streaming_energy_j(flight_duration_s=100.0,
                                               air_time_s=2.0)
        assert energy == pytest.approx(0.25 * 100.0 + (1.3 - 0.25) * 2.0)

    def test_deferred_costs_nothing_in_flight(self):
        assert WIFI_RADIO.deferred_energy_j() == 0.0

    def test_battery_fraction(self):
        # 60 Wh = 216 kJ; 216 J is 0.1%.
        assert WIFI_RADIO.battery_fraction(216.0) == pytest.approx(0.001)
