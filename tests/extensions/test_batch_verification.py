"""Tests for Auditor-side batch-PoA verification (§VII-A1b end to end)."""

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.samples import GpsSample
from repro.core.verification import VerificationStatus
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.extensions.batch_signing import (
    BatchSignedPoa,
    batch_digest,
    verify_batch_poa,
)
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def make_batch(key, frame, positions_and_times):
    payloads = []
    for x, t in positions_and_times:
        point = frame.to_geo(x, 0.0)
        payloads.append(GpsSample(lat=point.lat, lon=point.lon,
                                  t=T0 + t).to_signed_payload())
    payloads = tuple(payloads)
    return BatchSignedPoa(payloads=payloads,
                          signature=sign_pkcs1_v15(key,
                                                   batch_digest(payloads)))


@pytest.fixture()
def zone(frame):
    center = frame.to_geo(0.0, 0.0)
    return NoFlyZone(center.lat, center.lon, 50.0)


class TestVerifyBatchPoa:
    def test_good_batch_accepted(self, signing_key, frame, zone):
        batch = make_batch(signing_key, frame,
                           [(200.0 + 20 * i, float(i)) for i in range(8)])
        report = verify_batch_poa(batch, signing_key.public_key, [zone],
                                  frame)
        assert report.status is VerificationStatus.ACCEPTED
        assert report.sample_count == 8

    def test_empty_batch(self, signing_key, frame, zone):
        batch = BatchSignedPoa(payloads=(), signature=b"")
        report = verify_batch_poa(batch, signing_key.public_key, [zone],
                                  frame)
        assert report.status is VerificationStatus.REJECTED_EMPTY

    def test_wrong_key_rejected(self, signing_key, other_key, frame, zone):
        batch = make_batch(signing_key, frame, [(200.0, 0.0), (220.0, 1.0)])
        report = verify_batch_poa(batch, other_key.public_key, [zone], frame)
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE

    def test_tampered_payload_rejected(self, signing_key, frame, zone):
        batch = make_batch(signing_key, frame, [(200.0, 0.0), (220.0, 1.0)])
        tampered = BatchSignedPoa(
            payloads=(batch.payloads[0],
                      batch.payloads[1][:-1]
                      + bytes([batch.payloads[1][-1] ^ 1])),
            signature=batch.signature)
        report = verify_batch_poa(tampered, signing_key.public_key, [zone],
                                  frame)
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE

    def test_out_of_order_rejected(self, signing_key, frame, zone):
        batch = make_batch(signing_key, frame, [(200.0, 5.0), (220.0, 1.0)])
        report = verify_batch_poa(batch, signing_key.public_key, [zone],
                                  frame)
        assert report.status is VerificationStatus.REJECTED_MALFORMED

    def test_infeasible_rejected(self, signing_key, frame, zone):
        batch = make_batch(signing_key, frame, [(200.0, 0.0),
                                                (20_200.0, 1.0)])
        report = verify_batch_poa(batch, signing_key.public_key, [zone],
                                  frame)
        assert report.status is VerificationStatus.REJECTED_INFEASIBLE

    def test_insufficient_gap_detected(self, signing_key, frame, zone):
        batch = make_batch(signing_key, frame, [(200.0, 0.0), (260.0, 60.0)])
        report = verify_batch_poa(batch, signing_key.public_key, [zone],
                                  frame)
        assert report.status is VerificationStatus.INSUFFICIENT

    def test_single_sample_with_zone_insufficient(self, signing_key, frame,
                                                  zone):
        batch = make_batch(signing_key, frame, [(500.0, 0.0)])
        report = verify_batch_poa(batch, signing_key.public_key, [zone],
                                  frame)
        assert report.status is VerificationStatus.INSUFFICIENT

    def test_full_ta_round_trip(self, make_platform, frame, vendor_key):
        """Batch from the real TA verifies through the Auditor path."""
        from repro.extensions import install_extension_ta
        from repro.extensions.batch_signing import (
            CMD_FINALIZE_BATCH,
            CMD_RECORD_GPS,
            BatchGpsSamplerTA,
        )
        device, receiver, clock = make_platform(seed=41)
        install_extension_ta(device, BatchGpsSamplerTA, vendor_key)
        sid = device.client.open_session(BatchGpsSamplerTA.UUID)
        for _ in range(6):
            clock.advance(1.0)
            device.client.invoke(sid, CMD_RECORD_GPS)
        out = device.client.invoke(sid, CMD_FINALIZE_BATCH)
        batch = BatchSignedPoa(payloads=out["payloads"],
                               signature=out["signature"])
        far_center = frame.to_geo(0.0, 50_000.0)
        far_zone = NoFlyZone(far_center.lat, far_center.lon, 100.0)
        report = verify_batch_poa(batch, device.tee_public_key, [far_zone],
                                  frame)
        assert report.status is VerificationStatus.ACCEPTED
