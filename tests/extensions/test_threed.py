"""Tests for the 3-D Proof-of-Alibi extension (§VII-B1)."""

import pytest

from repro.core.nfz import CylinderNfz
from repro.core.samples import GpsSample
from repro.errors import ConfigurationError
from repro.extensions.threed import (
    alibi_is_sufficient_3d,
    pair_is_sufficient_3d,
    travel_ellipsoid,
)
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def sample3d(frame, x, y, alt, t):
    point = frame.to_geo(x, y)
    return GpsSample(lat=point.lat, lon=point.lon, t=T0 + t, alt=alt)


def cylinder_at(frame, x, y, ceiling, r):
    center = frame.to_geo(x, y)
    return CylinderNfz(center.lat, center.lon, ceiling_m=ceiling, radius_m=r)


class TestTravelEllipsoid:
    def test_requires_altitude(self, frame):
        a = GpsSample(lat=40.0, lon=-88.0, t=T0)
        b = GpsSample(lat=40.0, lon=-88.0, t=T0 + 1, alt=10.0)
        with pytest.raises(ConfigurationError):
            travel_ellipsoid(a, b, frame)

    def test_out_of_order_rejected(self, frame):
        a = sample3d(frame, 0, 0, 10.0, 1.0)
        b = sample3d(frame, 0, 0, 10.0, 0.0)
        with pytest.raises(ConfigurationError):
            travel_ellipsoid(a, b, frame)

    def test_focal_sum(self, frame):
        a = sample3d(frame, 0, 0, 0.0, 0.0)
        b = sample3d(frame, 30, 0, 40.0, 2.0)
        e = travel_ellipsoid(a, b, frame, vmax_mps=50.0)
        assert e.focal_sum == pytest.approx(100.0)
        assert e.focal_distance == pytest.approx(50.0, abs=0.1)


class TestPairSufficiency3d:
    def test_overflight_above_ceiling_sufficient(self, frame):
        """Flying over a low zone at altitude is legal in 3-D."""
        zone = cylinder_at(frame, 100, 0, ceiling=60.0, r=30.0)
        a = sample3d(frame, 0, 0, 200.0, 0.0)
        b = sample3d(frame, 200, 0, 200.0, 5.0)
        assert pair_is_sufficient_3d(a, b, [zone], frame)

    def test_2d_footprint_would_flag_the_same_geometry(self, frame):
        from repro.core.sufficiency import pair_is_sufficient
        zone = cylinder_at(frame, 100, 0, ceiling=60.0, r=30.0)
        a2d = GpsSample(lat=frame.to_geo(0, 0).lat,
                        lon=frame.to_geo(0, 0).lon, t=T0)
        b2d = GpsSample(lat=frame.to_geo(200, 0).lat,
                        lon=frame.to_geo(200, 0).lon, t=T0 + 5.0)
        assert not pair_is_sufficient(a2d, b2d, [zone.footprint()], frame)

    def test_low_flight_near_zone_insufficient(self, frame):
        zone = cylinder_at(frame, 100, 0, ceiling=120.0, r=30.0)
        a = sample3d(frame, 0, 0, 50.0, 0.0)
        b = sample3d(frame, 200, 0, 50.0, 5.0)
        assert not pair_is_sufficient_3d(a, b, [zone], frame)

    def test_exact_method(self, frame):
        zone = cylinder_at(frame, 100, 0, ceiling=60.0, r=30.0)
        a = sample3d(frame, 0, 0, 200.0, 0.0)
        b = sample3d(frame, 200, 0, 200.0, 5.0)
        assert pair_is_sufficient_3d(a, b, [zone], frame, method="exact")

    def test_unknown_method_rejected(self, frame):
        zone = cylinder_at(frame, 100, 0, 60.0, 30.0)
        a = sample3d(frame, 0, 0, 10.0, 0.0)
        b = sample3d(frame, 1, 0, 10.0, 1.0)
        with pytest.raises(ConfigurationError):
            pair_is_sufficient_3d(a, b, [zone], frame, method="nope")


class TestAlibi3d:
    def test_trace_over_zone_sufficient_at_altitude(self, frame):
        zone = cylinder_at(frame, 100, 0, ceiling=60.0, r=30.0)
        samples = [sample3d(frame, 20.0 * i, 0, 150.0, float(i))
                   for i in range(11)]
        assert alibi_is_sufficient_3d(samples, [zone], frame)

    def test_descending_into_zone_airspace_insufficient(self, frame):
        zone = cylinder_at(frame, 100, 0, ceiling=120.0, r=30.0)
        samples = [sample3d(frame, 20.0 * i, 0, 150.0 - 12.0 * i, float(i))
                   for i in range(11)]
        assert not alibi_is_sufficient_3d(samples, [zone], frame)

    def test_short_traces(self, frame):
        zone = cylinder_at(frame, 0, 0, 60.0, 30.0)
        assert alibi_is_sufficient_3d([], [], frame)
        assert not alibi_is_sufficient_3d(
            [sample3d(frame, 0, 0, 10.0, 0.0)], [zone], frame)
