"""Tests for the batch-signing and symmetric-key extension TAs."""

import random

import pytest

from repro.errors import TrustedAppError, VerificationError
from repro.extensions import install_extension_ta
from repro.extensions.batch_signing import (
    CMD_FINALIZE_BATCH,
    CMD_RECORD_GPS,
    BatchGpsSamplerTA,
    BatchSignedPoa,
    batch_digest,
)
from repro.extensions.symmetric import (
    CMD_GET_GPS_AUTH_SYM,
    CMD_INIT_FLIGHT_KEY,
    AuditorFlightKey,
    SymmetricGpsSamplerTA,
    SymmetricSignedSample,
)


@pytest.fixture()
def batch_platform(make_platform, vendor_key):
    device, receiver, clock = make_platform()
    install_extension_ta(device, BatchGpsSamplerTA, vendor_key)
    sid = device.client.open_session(BatchGpsSamplerTA.UUID)
    return device, clock, sid


@pytest.fixture()
def sym_platform(make_platform, vendor_key):
    device, receiver, clock = make_platform()
    install_extension_ta(device, SymmetricGpsSamplerTA, vendor_key)
    sid = device.client.open_session(SymmetricGpsSamplerTA.UUID,
                                     {"dh_seed": 1234})
    return device, clock, sid


class TestBatchSigning:
    def test_record_and_finalize(self, batch_platform):
        device, clock, sid = batch_platform
        for i in range(4):
            clock.advance(1.0)
            out = device.client.invoke(sid, CMD_RECORD_GPS)
            assert out["buffered"] == i + 1
            assert out["signature"] == b""
        out = device.client.invoke(sid, CMD_FINALIZE_BATCH)
        poa = BatchSignedPoa(payloads=out["payloads"],
                             signature=out["signature"])
        assert len(poa) == 4
        assert poa.verify(device.tee_public_key)
        trace = poa.trace()
        assert trace.duration == pytest.approx(3.0, abs=0.05)

    def test_single_signature_for_whole_flight(self, batch_platform):
        device, clock, sid = batch_platform
        for _ in range(10):
            clock.advance(0.5)
            device.client.invoke(sid, CMD_RECORD_GPS)
        device.client.invoke(sid, CMD_FINALIZE_BATCH)
        assert device.core.op_counters["rsa_sign_512"] == 1
        assert device.core.op_counters["batch_records"] == 10

    def test_tampered_payload_fails(self, batch_platform):
        device, clock, sid = batch_platform
        clock.advance(1.0)
        device.client.invoke(sid, CMD_RECORD_GPS)
        out = device.client.invoke(sid, CMD_FINALIZE_BATCH)
        payloads = list(out["payloads"])
        payloads[0] = payloads[0][:-1] + bytes([payloads[0][-1] ^ 1])
        poa = BatchSignedPoa(payloads=tuple(payloads),
                             signature=out["signature"])
        assert not poa.verify(device.tee_public_key)

    def test_dropped_payload_fails(self, batch_platform):
        device, clock, sid = batch_platform
        for _ in range(3):
            clock.advance(1.0)
            device.client.invoke(sid, CMD_RECORD_GPS)
        out = device.client.invoke(sid, CMD_FINALIZE_BATCH)
        poa = BatchSignedPoa(payloads=out["payloads"][:-1],
                             signature=out["signature"])
        assert not poa.verify(device.tee_public_key)

    def test_finalize_empty_rejected(self, batch_platform):
        device, _, sid = batch_platform
        with pytest.raises(TrustedAppError):
            device.client.invoke(sid, CMD_FINALIZE_BATCH)

    def test_buffer_resets_between_flights(self, batch_platform):
        device, clock, sid = batch_platform
        clock.advance(1.0)
        device.client.invoke(sid, CMD_RECORD_GPS)
        device.client.invoke(sid, CMD_FINALIZE_BATCH)
        clock.advance(1.0)
        assert device.client.invoke(sid, CMD_RECORD_GPS)["buffered"] == 1

    def test_digest_length_framing(self):
        """Adjacent payloads cannot be re-split without detection."""
        assert (batch_digest((b"ab", b"c"))
                != batch_digest((b"a", b"bc")))


class TestSymmetricSigning:
    def _handshake(self, device, sid, flight=b"flight-7"):
        auditor = AuditorFlightKey(flight, rng=random.Random(5))
        ta_public = device.client.invoke(sid, CMD_INIT_FLIGHT_KEY, {
            "auditor_public_value": auditor.public_value,
            "flight_id": flight})
        auditor.complete(ta_public)
        return auditor

    def test_handshake_and_verified_samples(self, sym_platform):
        device, clock, sid = sym_platform
        auditor = self._handshake(device, sid)
        entries = []
        for _ in range(5):
            clock.advance(1.0)
            out = device.client.invoke(sid, CMD_GET_GPS_AUTH_SYM)
            entries.append(SymmetricSignedSample(payload=out["payload"],
                                                 tag=out["tag"]))
        trace = auditor.verify_entries(entries)
        assert len(trace) == 5

    def test_tampered_payload_rejected(self, sym_platform):
        device, clock, sid = sym_platform
        auditor = self._handshake(device, sid)
        clock.advance(1.0)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH_SYM)
        bad = SymmetricSignedSample(
            payload=out["payload"][:-1] + bytes([out["payload"][-1] ^ 1]),
            tag=out["tag"])
        with pytest.raises(VerificationError):
            auditor.verify_entries([bad])

    def test_sampling_before_handshake_rejected(self, sym_platform):
        device, clock, sid = sym_platform
        clock.advance(1.0)
        with pytest.raises(TrustedAppError):
            device.client.invoke(sid, CMD_GET_GPS_AUTH_SYM)

    def test_wrong_flight_key_rejected(self, sym_platform):
        device, clock, sid = sym_platform
        self._handshake(device, sid, flight=b"flight-A")
        # A different auditor exchange (never completed with this TA).
        stranger = AuditorFlightKey(b"flight-B", rng=random.Random(6))
        stranger.complete(AuditorFlightKey(b"x",
                                           rng=random.Random(7)).public_value)
        clock.advance(1.0)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH_SYM)
        entry = SymmetricSignedSample(payload=out["payload"], tag=out["tag"])
        with pytest.raises(VerificationError):
            stranger.verify_entries([entry])

    def test_incomplete_exchange_rejected(self):
        auditor = AuditorFlightKey(b"f", rng=random.Random(1))
        with pytest.raises(VerificationError):
            auditor.verify_entries([])

    def test_missing_peer_value_rejected(self, sym_platform):
        device, _, sid = sym_platform
        with pytest.raises(TrustedAppError):
            device.client.invoke(sid, CMD_INIT_FLIGHT_KEY, {})

    def test_hmac_counter_tracked(self, sym_platform):
        device, clock, sid = sym_platform
        self._handshake(device, sid)
        clock.advance(1.0)
        device.client.invoke(sid, CMD_GET_GPS_AUTH_SYM)
        assert device.core.op_counters["hmac_sign"] == 1
        assert device.core.op_counters["dh_exchanges"] == 1

    def test_unsigned_vendor_extension_rejected(self, make_platform,
                                                other_key):
        """Only the manufacturer can install extension TAs."""
        device, _, _ = make_platform()
        install_extension_ta(device, SymmetricGpsSamplerTA, other_key)
        with pytest.raises(TrustedAppError):
            device.client.open_session(SymmetricGpsSamplerTA.UUID)
