"""Tests for the privacy-preserving verification and polygon-NFZ extensions."""

import random

import pytest

from repro.core.nfz import NoFlyZone, PolygonNfz
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.errors import VerificationError
from repro.extensions.arbitrary_zones import (
    overapproximation_ratio,
    register_polygon_zone,
)
from repro.extensions.privacy import (
    build_private_poa,
    keys_for_incident,
    verify_private_disclosure,
)
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def signed(key, sample):
    payload = sample.to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


def sample_at(frame, x, y, t):
    point = frame.to_geo(x, y)
    return GpsSample(lat=point.lat, lon=point.lon, t=T0 + t)


@pytest.fixture()
def zone(frame):
    center = frame.to_geo(0.0, 0.0)
    return NoFlyZone(center.lat, center.lon, 50.0)


@pytest.fixture()
def poa(signing_key, frame):
    return ProofOfAlibi(
        signed(signing_key, sample_at(frame, 300.0 + 10.0 * i, 0.0, float(i)))
        for i in range(10))


class TestPrivatePoa:
    def test_upload_hides_all_payloads(self, poa, rng):
        private, keys = build_private_poa(poa, rng=rng)
        assert len(private) == len(keys) == len(poa)
        for entry, original in zip(private.entries, poa):
            assert original.payload not in entry.blob

    def test_disclosure_clears_compliant_drone(self, poa, rng, signing_key,
                                               frame, zone):
        private, keys = build_private_poa(poa, rng=rng)
        incident_time = T0 + 4.5
        disclosed = keys_for_incident(poa, keys, incident_time)
        assert len(disclosed) == 2
        assert verify_private_disclosure(private, disclosed,
                                         signing_key.public_key, zone,
                                         incident_time, frame)

    def test_disclosure_near_zone_does_not_clear(self, signing_key, frame,
                                                 zone, rng):
        # Sparse pair right beside the zone: cannot rule out entrance.
        poa = ProofOfAlibi([
            signed(signing_key, sample_at(frame, 100, 0, 0.0)),
            signed(signing_key, sample_at(frame, 110, 0, 60.0))])
        private, keys = build_private_poa(poa, rng=rng)
        disclosed = keys_for_incident(poa, keys, T0 + 30.0)
        assert not verify_private_disclosure(private, disclosed,
                                             signing_key.public_key, zone,
                                             T0 + 30.0, frame)

    def test_uncovered_incident_rejected_operator_side(self, poa, rng):
        _, keys = build_private_poa(poa, rng=rng)
        with pytest.raises(VerificationError):
            keys_for_incident(poa, keys, T0 + 3600.0)

    def test_wrong_key_disclosure_rejected(self, poa, rng, signing_key,
                                           frame, zone):
        from repro.crypto.onetime import OneTimeKey
        private, keys = build_private_poa(poa, rng=rng)
        disclosed = keys_for_incident(poa, keys, T0 + 4.5)
        index = min(disclosed)
        disclosed[index] = OneTimeKey.generate(rng)   # swap in a junk key
        with pytest.raises(VerificationError):
            verify_private_disclosure(private, disclosed,
                                      signing_key.public_key, zone,
                                      T0 + 4.5, frame)

    def test_non_consecutive_disclosure_rejected(self, poa, rng, signing_key,
                                                 frame, zone):
        private, keys = build_private_poa(poa, rng=rng)
        disclosed = {0: keys[0], 5: keys[5]}
        with pytest.raises(VerificationError):
            verify_private_disclosure(private, disclosed,
                                      signing_key.public_key, zone,
                                      T0 + 2.0, frame)

    def test_pair_not_bracketing_rejected(self, poa, rng, signing_key,
                                          frame, zone):
        private, keys = build_private_poa(poa, rng=rng)
        disclosed = {0: keys[0], 1: keys[1]}   # brackets [T0, T0+1]
        with pytest.raises(VerificationError):
            verify_private_disclosure(private, disclosed,
                                      signing_key.public_key, zone,
                                      T0 + 8.0, frame)

    def test_forged_signature_rejected(self, poa, rng, other_key, frame,
                                       zone):
        private, keys = build_private_poa(poa, rng=rng)
        disclosed = keys_for_incident(poa, keys, T0 + 4.5)
        with pytest.raises(VerificationError):
            verify_private_disclosure(private, disclosed,
                                      other_key.public_key, zone,
                                      T0 + 4.5, frame)

    def test_auditor_learns_only_two_samples(self, poa, rng):
        """Privacy property: undisclosed blobs stay undecryptable."""
        from repro.crypto.onetime import onetime_decrypt
        from repro.errors import EncryptionError
        private, keys = build_private_poa(poa, rng=rng)
        disclosed = keys_for_incident(poa, keys, T0 + 4.5)
        for i, entry in enumerate(private.entries):
            if i in disclosed:
                continue
            for key in disclosed.values():
                with pytest.raises(EncryptionError):
                    onetime_decrypt(key, entry.blob)


class TestPolygonZones:
    def _rect_polygon(self, frame, width, height):
        corners = [(0.0, 0.0), (width, 0.0), (width, height), (0.0, height)]
        return PolygonNfz([(frame.to_geo(x, y).lat, frame.to_geo(x, y).lon)
                           for x, y in corners])

    def test_registration_produces_covering_circle(self, frame, rng):
        server = AliDroneServer(frame, rng=random.Random(1),
                                encryption_key_bits=512)
        polygon = self._rect_polygon(frame, 60.0, 80.0)
        zone_id, canonical = register_polygon_zone(server, polygon, "deed")
        assert zone_id in server.zones
        assert canonical.radius_m == pytest.approx(50.0, rel=1e-3)

    def test_square_overapproximation_ratio(self, frame):
        polygon = self._rect_polygon(frame, 100.0, 100.0)
        # Circle over square: pi * (d/2)^2 / s^2 = pi/2.
        assert overapproximation_ratio(polygon, frame) == pytest.approx(
            1.5708, rel=1e-2)

    def test_thin_polygon_overapproximates_badly(self, frame):
        thin = self._rect_polygon(frame, 200.0, 2.0)
        assert overapproximation_ratio(thin, frame) > 50.0
