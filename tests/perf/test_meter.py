"""Tests for repro.perf.meter: StageMetrics accumulation."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.meter import StageMetrics


@pytest.fixture()
def metrics():
    m = StageMetrics()
    m.record("signature", 0.010, 8)
    m.record("signature", 0.030, 8)
    m.record("decode", 0.001, 8)
    return m


class TestStageMetrics:
    def test_stages_in_first_recorded_order(self, metrics):
        assert metrics.stages() == ["signature", "decode"]
        assert list(metrics) == ["signature", "decode"]
        assert len(metrics) == 2

    def test_totals(self, metrics):
        assert metrics.runs("signature") == 2
        assert metrics.total_seconds("signature") == pytest.approx(0.040)
        assert metrics.total_samples("signature") == 16
        assert metrics.runs("never-ran") == 0
        assert metrics.total_seconds("never-ran") == 0.0

    def test_timing_distribution(self, metrics):
        timing = metrics.timing("signature")
        assert timing.mean == pytest.approx(0.020)
        assert timing.std == pytest.approx(0.010)
        assert timing.n == 2
        with pytest.raises(ConfigurationError):
            metrics.timing("never-ran")

    def test_summary_covers_all_stages(self, metrics):
        summary = metrics.summary()
        assert set(summary) == {"signature", "decode"}
        assert summary["decode"].mean == pytest.approx(0.001)

    def test_merge_folds_runs_together(self, metrics):
        other = StageMetrics()
        other.record("signature", 0.020, 8)
        other.record("sufficiency", 0.002, 7)
        merged = metrics.merge(other)
        assert merged is metrics
        assert metrics.runs("signature") == 3
        assert metrics.total_samples("signature") == 24
        assert metrics.stages() == ["signature", "decode", "sufficiency"]

    def test_format_mentions_every_stage(self, metrics):
        text = metrics.format(digits=3)
        assert "signature" in text and "decode" in text
        assert "runs=2" in text
