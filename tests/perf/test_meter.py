"""Tests for repro.perf.meter: StageMetrics accumulation."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.meter import StageMetrics


@pytest.fixture()
def metrics():
    m = StageMetrics()
    m.record("signature", 0.010, 8)
    m.record("signature", 0.030, 8)
    m.record("decode", 0.001, 8)
    return m


class TestStageMetrics:
    def test_stages_in_first_recorded_order(self, metrics):
        assert metrics.stages() == ["signature", "decode"]
        assert list(metrics) == ["signature", "decode"]
        assert len(metrics) == 2

    def test_totals(self, metrics):
        assert metrics.runs("signature") == 2
        assert metrics.total_seconds("signature") == pytest.approx(0.040)
        assert metrics.total_samples("signature") == 16
        assert metrics.runs("never-ran") == 0
        assert metrics.total_seconds("never-ran") == 0.0

    def test_timing_distribution(self, metrics):
        timing = metrics.timing("signature")
        assert timing.mean == pytest.approx(0.020)
        assert timing.std == pytest.approx(0.010)
        assert timing.n == 2
        with pytest.raises(ConfigurationError):
            metrics.timing("never-ran")

    def test_summary_covers_all_stages(self, metrics):
        summary = metrics.summary()
        assert set(summary) == {"signature", "decode"}
        assert summary["decode"].mean == pytest.approx(0.001)

    def test_merge_folds_runs_together(self, metrics):
        other = StageMetrics()
        other.record("signature", 0.020, 8)
        other.record("sufficiency", 0.002, 7)
        merged = metrics.merge(other)
        assert merged is metrics
        assert metrics.runs("signature") == 3
        assert metrics.total_samples("signature") == 24
        assert metrics.stages() == ["signature", "decode", "sufficiency"]

    def test_format_mentions_every_stage(self, metrics):
        text = metrics.format(digits=3)
        assert "signature" in text and "decode" in text
        assert "runs=2" in text


class TestStageMetricsEdgeCases:
    def test_merge_overlapping_names_preserves_order_and_totals(self):
        left = StageMetrics()
        left.record("signature", 0.010, 8)
        left.record("decode", 0.001, 8)
        right = StageMetrics()
        # Overlap recorded in a different order must not reorder `left`.
        right.record("decode", 0.003, 4)
        right.record("signature", 0.020, 4)
        right.record("ordering", 0.002, 4)
        left.merge(right)
        assert left.stages() == ["signature", "decode", "ordering"]
        assert left.runs("signature") == 2
        assert left.total_seconds("signature") == pytest.approx(0.030)
        assert left.total_samples("decode") == 12
        # The donor accumulator is left untouched.
        assert right.runs("signature") == 1

    def test_merge_many_at_once(self):
        main = StageMetrics()
        workers = []
        for i in range(3):
            worker = StageMetrics()
            worker.record("crypto", 0.010 * (i + 1), 5)
            workers.append(worker)
        main.merge(*workers)
        assert main.runs("crypto") == 3
        assert main.total_seconds("crypto") == pytest.approx(0.060)

    def test_timing_unknown_stage_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            StageMetrics().timing("signature")

    def test_format_with_zero_sample_stages(self):
        metrics = StageMetrics()
        metrics.record("screen", 0.004, 0)
        text = metrics.format(digits=3)
        assert "screen" in text
        assert "samples=0" in text
        assert metrics.total_samples("screen") == 0

    def test_format_empty_metrics_is_empty(self):
        assert StageMetrics().format() == ""

    def test_per_worker_instances_merge_from_threads(self):
        """The supported concurrency pattern: one instance per worker.

        StageMetrics is a plain dict-of-lists with no locking, so workers
        never share one; each thread accumulates privately and the engine
        folds the results together afterwards (exactly what
        AuditEngine.audit_batch does with its pool).
        """
        import threading

        per_worker = [StageMetrics() for _ in range(4)]

        def work(metrics: StageMetrics) -> None:
            for _ in range(50):
                metrics.record("signature", 0.001, 2)

        threads = [threading.Thread(target=work, args=(m,))
                   for m in per_worker]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        merged = StageMetrics().merge(*per_worker)
        assert merged.runs("signature") == 200
        assert merged.total_samples("signature") == 400
        assert merged.total_seconds("signature") == pytest.approx(0.200)
