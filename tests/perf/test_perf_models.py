"""Tests for repro.perf: cost, CPU, power, memory, meter models."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.costs import RASPBERRY_PI_3, CostModel
from repro.perf.cpu import CpuUtilizationModel, UtilizationSeries
from repro.perf.memory import RASPBERRY_PI_MEMORY, MemoryModel
from repro.perf.meter import Measurement, mean_std
from repro.perf.power import KAUP_RASPBERRY_PI, PowerModel, kaup_power_w


class TestCostModel:
    def test_calibrated_sign_costs(self):
        assert RASPBERRY_PI_3.sign_cost(1024) == pytest.approx(0.0434,
                                                               abs=1e-4)
        assert RASPBERRY_PI_3.sign_cost(2048) == pytest.approx(0.2215,
                                                               abs=1e-3)

    def test_ratio_matches_paper(self):
        """The 2048/1024 ratio back-derived from Table II is ~5.1x."""
        ratio = RASPBERRY_PI_3.sign_cost(2048) / RASPBERRY_PI_3.sign_cost(1024)
        assert ratio == pytest.approx(5.1, abs=0.2)

    def test_unknown_size_interpolates_cubically(self):
        cost_4096 = RASPBERRY_PI_3.sign_cost(4096)
        assert cost_4096 == pytest.approx(RASPBERRY_PI_3.sign_cost(2048) * 8,
                                          rel=1e-6)

    def test_sustainability_boundary(self):
        """The paper's '-' cells: 2048-bit cannot sustain 5 Hz."""
        assert RASPBERRY_PI_3.can_sustain(5.0, 1024)
        assert RASPBERRY_PI_3.can_sustain(3.0, 2048)
        assert not RASPBERRY_PI_3.can_sustain(5.0, 2048)

    def test_sustainable_rate(self):
        assert RASPBERRY_PI_3.sustainable_rate_hz(2048) == pytest.approx(
            4.5, abs=0.1)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(sign_seconds={1024: 0.01}, encrypt_seconds={1024: 0.001},
                      num_cores=0)


class TestCpuModel:
    def test_fixed_rate_matches_paper_1024(self):
        model = CpuUtilizationModel(RASPBERRY_PI_3)
        for rate, expected in [(2.0, 2.17), (3.0, 3.17), (5.0, 5.59)]:
            cpu = model.fixed_rate_utilization(rate, 1024)
            assert cpu is not None
            assert cpu.mean == pytest.approx(expected, abs=0.45)

    def test_fixed_rate_matches_paper_2048(self):
        model = CpuUtilizationModel(RASPBERRY_PI_3)
        assert model.fixed_rate_utilization(2.0, 2048).mean == pytest.approx(
            10.94, abs=0.5)
        assert model.fixed_rate_utilization(5.0, 2048) is None

    def test_utilization_scales_linearly_with_rate(self):
        model = CpuUtilizationModel(RASPBERRY_PI_3)
        u2 = model.fixed_rate_utilization(2.0, 1024).mean
        u4 = model.fixed_rate_utilization(4.0, 1024).mean
        assert u4 == pytest.approx(2.0 * u2, rel=0.01)

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            UtilizationSeries.from_sample_times([], 0.1, 10.0, 10.0, 4)

    def test_busy_time_split_across_buckets(self):
        # One sample at t=0.95 with 0.1 s busy: 0.05 s in bucket 0, 0.05 in 1.
        series = UtilizationSeries.from_sample_times([0.95], 0.1, 0.0, 2.0, 1)
        assert series.per_second_percent[0] == pytest.approx(5.0)
        assert series.per_second_percent[1] == pytest.approx(5.0)

    def test_mean_fraction(self):
        model = CpuUtilizationModel(RASPBERRY_PI_3)
        u = model.mean_utilization_fraction(100, 1024, 100.0)
        expected = 100 * RASPBERRY_PI_3.auth_sample_cost(1024) / (100.0 * 4)
        assert u == pytest.approx(expected)


class TestPowerModel:
    def test_equation_4_constants(self):
        assert kaup_power_w(0.0) == pytest.approx(1.5778)
        assert kaup_power_w(1.0) == pytest.approx(1.7588)

    def test_table2_power_cell(self):
        """Paper: 2.17% CPU -> 1.5817 W."""
        assert kaup_power_w(0.0217) == pytest.approx(1.5817, abs=2e-4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            kaup_power_w(1.5)
        with pytest.raises(ConfigurationError):
            kaup_power_w(-0.1)

    def test_energy(self):
        assert KAUP_RASPBERRY_PI.energy_j(0.0, 10.0) == pytest.approx(15.778)

    def test_marginal_energy(self):
        j = KAUP_RASPBERRY_PI.marginal_energy_j(1.0, 4)
        assert j == pytest.approx(0.181 / 4.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            KAUP_RASPBERRY_PI.energy_j(0.1, -1.0)


class TestMemoryModel:
    def test_table2_memory_row(self):
        assert RASPBERRY_PI_MEMORY.resident_mb() == pytest.approx(3.27)
        assert RASPBERRY_PI_MEMORY.percent_of_ram() == pytest.approx(0.327,
                                                                     abs=0.01)

    def test_buffered_samples_grow_footprint(self):
        base = RASPBERRY_PI_MEMORY.resident_bytes()
        grown = RASPBERRY_PI_MEMORY.resident_bytes(buffered_samples=1000)
        assert grown > base

    def test_negative_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            RASPBERRY_PI_MEMORY.resident_bytes(-1)


class TestMeter:
    def test_mean_std(self):
        m = mean_std([1.0, 2.0, 3.0])
        assert m.mean == pytest.approx(2.0)
        assert m.std == pytest.approx((2.0 / 3.0) ** 0.5)
        assert m.n == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_std([])

    def test_format(self):
        assert Measurement(2.174, 0.049).format() == "2.17 ±0.05"
        assert str(Measurement(1.0, 0.0)) == "1.00 ±0.00"
