"""Tests for repro.faults.retry: backoff, jitter, and virtual time."""

import random

import pytest

from repro.errors import ConfigurationError, ProtocolError, TransientError
from repro.faults.retry import RetryPolicy, RetryStats, execute_with_retry
from repro.sim.clock import SimClock


class TestRetryPolicy:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempt_timeout_s=-1.0)

    def test_next_delay_bounds(self):
        policy = RetryPolicy(base_delay_s=0.5, max_delay_s=8.0)
        rng = random.Random(1)
        previous = policy.base_delay_s
        for _ in range(100):
            delay = policy.next_delay(previous, rng)
            assert policy.base_delay_s <= delay <= policy.max_delay_s
            assert delay <= max(policy.base_delay_s, previous * 3.0)
            previous = delay

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay_s=0.5, max_delay_s=1.0)
        rng = random.Random(2)
        assert policy.next_delay(100.0, rng) <= 1.0


class _Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures, error=TransientError):
        self.failures = failures
        self.calls = 0
        self.error = error

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"transient #{self.calls}")
        return "ok"


class TestExecuteWithRetry:
    def test_success_first_try_costs_nothing(self):
        clock = SimClock(0.0)
        result = execute_with_retry(lambda: 42, clock=clock,
                                    policy=RetryPolicy())
        assert result == 42
        assert clock.now == 0.0

    def test_none_policy_is_a_bare_call(self):
        flaky = _Flaky(1)
        with pytest.raises(TransientError):
            execute_with_retry(flaky, clock=SimClock(0.0), policy=None)
        assert flaky.calls == 1

    def test_recovers_after_transient_failures(self):
        clock = SimClock(0.0)
        stats = RetryStats()
        flaky = _Flaky(2)
        result = execute_with_retry(flaky, clock=clock,
                                    policy=RetryPolicy(max_attempts=4),
                                    rng=random.Random(0), stats=stats,
                                    operation="op")
        assert result == "ok"
        assert flaky.calls == 3
        assert clock.now > 0.0  # backoff advanced virtual time
        assert stats.retries == 2
        assert stats.recoveries == 1
        assert stats.giveups == 0
        assert stats.by_operation == {"op": 2}
        assert stats.total_backoff_s == pytest.approx(clock.now)

    def test_gives_up_and_reraises(self):
        clock = SimClock(0.0)
        stats = RetryStats()
        flaky = _Flaky(10)
        with pytest.raises(TransientError, match="transient #3"):
            execute_with_retry(flaky, clock=clock,
                               policy=RetryPolicy(max_attempts=3),
                               rng=random.Random(0), stats=stats)
        assert flaky.calls == 3
        assert stats.giveups == 1

    def test_non_transient_propagates_immediately(self):
        flaky = _Flaky(5, error=ProtocolError)
        clock = SimClock(0.0)
        with pytest.raises(ProtocolError):
            execute_with_retry(flaky, clock=clock, policy=RetryPolicy())
        assert flaky.calls == 1
        assert clock.now == 0.0

    def test_attempt_timeout_charged_to_clock(self):
        clock = SimClock(0.0)
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             max_delay_s=0.0, attempt_timeout_s=1.5)
        execute_with_retry(_Flaky(1), clock=clock, policy=policy,
                           rng=random.Random(0))
        assert clock.now == pytest.approx(1.5)  # timeout, zero backoff

    def test_deterministic_given_rng(self):
        def total_wait():
            clock = SimClock(0.0)
            execute_with_retry(_Flaky(3), clock=clock,
                               policy=RetryPolicy(max_attempts=5),
                               rng=random.Random(9))
            return clock.now

        assert total_wait() == total_wait()

    def test_stats_snapshot_shape(self):
        stats = RetryStats()
        execute_with_retry(_Flaky(1), clock=SimClock(0.0),
                           policy=RetryPolicy(), rng=random.Random(0),
                           stats=stats, operation="register")
        snapshot = stats.to_dict()
        assert snapshot["calls"] == 1
        assert snapshot["attempts"] == 2
        assert snapshot["by_operation"] == {"register": 1}
