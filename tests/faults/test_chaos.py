"""Tests for repro.faults.chaos: the matrix harness and its invariants.

Cells drive the whole protocol (registration through audit), so these use
deliberately tiny scenarios to stay fast.
"""

import pytest

from repro.core.nfz import NoFlyZone
from repro.faults.chaos import run_cell, run_matrix
from repro.faults.plan import FaultPlan, FaultRule, builtin_plans
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.scenario import Scenario

T0 = DEFAULT_EPOCH


@pytest.fixture(scope="module")
def chaos_frame():
    return LocalFrame(GeoPoint(40.1000, -88.2200))


def tiny_scenario(frame, violation: bool) -> Scenario:
    """A 60 s straight 300 m flight; the zone sits on or off the path."""
    zone_y = 0.0 if violation else 120.0
    center = frame.to_geo(150.0, zone_y)
    return Scenario(
        name="tiny-violation" if violation else "tiny-compliant",
        description="unit-test scenario",
        frame=frame,
        zones=[NoFlyZone(center.lat, center.lon, 30.0)],
        source=WaypointSource([(T0, 0.0, 0.0), (T0 + 60.0, 300.0, 0.0)]),
        t_start=T0, t_end=T0 + 60.0, gps_noise_std_m=0.5)


class TestRunCell:
    def test_compliant_baseline_accepted(self, chaos_frame):
        cell = run_cell(tiny_scenario(chaos_frame, violation=False),
                        builtin_plans(0)["baseline"], seed=0)
        assert cell.status == "accepted"
        assert cell.accepted
        assert cell.submission_complete
        assert cell.liveness_ok
        assert cell.auth_samples > 0
        assert cell.poa_digest

    def test_violation_never_accepted_under_loss(self, chaos_frame):
        cell = run_cell(tiny_scenario(chaos_frame, violation=True),
                        builtin_plans(0)["lossy30"], violation=True, seed=0)
        assert not cell.accepted
        assert cell.violation

    def test_noop_injector_bit_identical(self, chaos_frame):
        scenario = tiny_scenario(chaos_frame, violation=False)
        with_empty = run_cell(scenario, FaultPlan("baseline"), seed=3)
        without = run_cell(scenario, None, seed=3)
        assert with_empty.poa_digest == without.poa_digest
        assert with_empty.auth_samples == without.auth_samples

    def test_lossy_link_recovers_with_retransmissions(self, chaos_frame):
        cell = run_cell(tiny_scenario(chaos_frame, violation=False),
                        builtin_plans(0)["lossy30"], seed=0)
        assert cell.submission_complete
        assert cell.retransmissions > 0
        assert cell.status == "accepted"

    def test_fault_and_retry_metrics_exposed(self, chaos_frame):
        plan = FaultPlan("outage", (
            FaultRule("auditor.receive_poa", "fail", max_count=2),))
        cell = run_cell(tiny_scenario(chaos_frame, violation=False),
                        plan, seed=0)
        assert cell.status == "accepted"  # retries rode out the outage
        assert cell.fault_stats["injected"] == {
            "auditor.receive_poa.fail": 2}
        assert cell.retry_stats["retries"] >= 2
        assert cell.metrics["fault.injected.total"]["value"] == 2
        assert cell.metrics["retry.retries"]["value"] >= 2

    def test_cell_is_deterministic(self, chaos_frame):
        scenario = tiny_scenario(chaos_frame, violation=False)
        plan = builtin_plans(5)["kitchen_sink"]
        first = run_cell(scenario, plan, seed=5).to_dict()
        second = run_cell(scenario, plan, seed=5).to_dict()
        assert first == second


class TestRunMatrix:
    def test_matrix_report_schema_and_invariants(self, chaos_frame):
        scenarios = [(tiny_scenario(chaos_frame, violation=False), False),
                     (tiny_scenario(chaos_frame, violation=True), True)]
        plans = [builtin_plans(0)["baseline"], builtin_plans(0)["lossy30"]]
        report = run_matrix(scenarios, plans, seed=0)
        assert report.ok
        payload = report.to_dict()
        assert set(payload) == {"config", "cells", "invariants", "ok"}
        assert len(payload["cells"]) == 4
        inv = payload["invariants"]
        assert inv["false_accepts"] == []
        assert inv["liveness_failures"] == []
        assert inv["noop_path_identical"] is True

    def test_false_accept_would_fail_the_sweep(self, chaos_frame):
        """A violation cell marked accepted must flip the verdict (guard
        the guard: forge a matrix outcome through the public report)."""
        from repro.faults.chaos import ChaosReport

        report = ChaosReport(config={}, cells=[],
                             false_accepts=["tiny-violation/lossy30"],
                             liveness_failures=[], noop_path_identical=True)
        assert not report.ok
