"""Tests for repro.faults.plan: rules, plans, and the builtin matrix."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import (
    ALL_ACTIONS,
    FaultPlan,
    FaultRule,
    builtin_plans,
)


class TestFaultRule:
    def test_valid_rule(self):
        rule = FaultRule("link.uplink.send", "drop", probability=0.5)
        assert rule.point == "link.uplink.send"
        assert not rule.windowed

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("link.send", "explode")

    def test_empty_point_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("", "drop")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("p", "drop", probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule("p", "drop", probability=-0.1)

    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("p", "drop", t_start=10.0, t_end=5.0)

    def test_negative_max_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("p", "fail", max_count=-1)

    def test_negative_delay_param_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultRule("p", "delay", param=-0.5)

    def test_in_window(self):
        rule = FaultRule("p", "drop", t_start=10.0, t_end=20.0)
        assert rule.windowed
        assert rule.in_window(10.0)
        assert rule.in_window(20.0)
        assert not rule.in_window(9.99)
        assert not rule.in_window(20.01)

    def test_clockless_point_matches_only_unwindowed(self):
        windowed = FaultRule("p", "fail", t_start=0.0, t_end=10.0)
        unwindowed = FaultRule("p", "fail")
        assert not windowed.in_window(None)
        assert unwindowed.in_window(None)

    def test_dict_round_trip_with_infinities(self):
        rule = FaultRule("gps.update", "degrade", probability=0.3,
                         param=2.0, max_count=5, detail="x")
        restored = FaultRule.from_dict(rule.to_dict())
        assert restored == rule
        assert restored.t_start == -math.inf
        assert rule.to_dict()["t_start"] is None

    def test_dict_round_trip_with_window(self):
        rule = FaultRule("p", "drop", t_start=5.0, t_end=9.0)
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_nameless_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan("")

    def test_bad_expected_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan("p", expected_loss=1.5)

    def test_points_and_rules_for(self):
        plan = FaultPlan("p", (
            FaultRule("a", "drop"),
            FaultRule("b", "drop", probability=0.5),
            FaultRule("a", "duplicate"),
        ))
        assert plan.points() == {"a", "b"}
        assert [r.action for r in plan.rules_for("a")] == [
            "drop", "duplicate"]

    def test_with_seed(self):
        plan = FaultPlan("p", (FaultRule("a", "drop"),), seed=1)
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.rules == plan.rules

    def test_dict_round_trip(self):
        plan = FaultPlan("p", (FaultRule("a", "drop", probability=0.2),),
                         seed=7, expected_loss=0.2)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestBuiltinPlans:
    def test_matrix_covers_every_fault_family(self):
        plans = builtin_plans()
        actions = {rule.action for plan in plans.values()
                   for rule in plan.rules}
        assert {"drop", "duplicate", "corrupt", "reorder", "dropout",
                "degrade", "fail", "skew"} <= actions
        assert set(actions) <= set(ALL_ACTIONS)

    def test_baseline_is_empty(self):
        assert builtin_plans()["baseline"].rules == ()

    def test_loss_hints_within_liveness_ceiling(self):
        for plan in builtin_plans().values():
            assert plan.expected_loss <= 0.30

    def test_reseeding(self):
        for name, plan in builtin_plans(seed=42).items():
            assert plan.seed == 42, name
