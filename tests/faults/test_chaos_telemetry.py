"""Streaming telemetry over the chaos harness: cell feeds and alert edges.

The end-to-end safety property of the observability layer: a chaos run
that (hypothetically) false-accepts a violating flight pages within one
window, while honest traffic across a real sweep fires zero alerts.
"""

import pytest

from repro.core.nfz import NoFlyZone
from repro.faults.chaos import ChaosCell, record_cell_telemetry, run_matrix
from repro.faults.plan import builtin_plans
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.replay import WaypointSource
from repro.obs.dash import LiveTelemetrySession
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.scenario import Scenario

T0 = DEFAULT_EPOCH


def make_cell(**overrides) -> ChaosCell:
    """A hand-built cell (the telemetry feed only reads its fields)."""
    base = dict(
        scenario="tiny", plan="baseline", violation=False,
        status="accepted", accepted=True, submission_complete=True,
        liveness_applies=True, liveness_ok=True, recovery_latency_s=0.5,
        auth_samples=20, degraded_decisions=0, retransmissions=0,
        duplicate_frames=0, corrupt_frames=0, poa_digest="d" * 8)
    base.update(overrides)
    return ChaosCell(**base)


class TestRecordCellTelemetry:
    def test_accepted_cell_feed(self):
        session = LiveTelemetrySession()
        cell = make_cell(retransmissions=3,
                         retry_stats={"retries": 2, "recoveries": 2})
        rollup = session.tick(
            lambda hub, now: record_cell_telemetry(hub, cell, now=now))
        counters = rollup["counters"]
        assert counters["audit.submissions"]["cumulative"] == 1.0
        assert counters["audit.status.accepted"]["cumulative"] == 1.0
        assert counters["link.retransmissions"]["cumulative"] == 3.0
        assert counters["retry.retries"]["cumulative"] == 2.0
        assert "audit.false_accepts" not in counters
        assert "audit.rejections" not in counters

    def test_rejected_cell_reason_breakdown(self):
        session = LiveTelemetrySession()
        cell = make_cell(status="infeasible", accepted=False, violation=True)
        rollup = session.tick(
            lambda hub, now: record_cell_telemetry(hub, cell, now=now))
        counters = rollup["counters"]
        assert counters["audit.rejections"]["cumulative"] == 1.0
        assert counters["audit.rejections.infeasible"]["cumulative"] == 1.0
        # A correctly rejected violation is not a false accept.
        assert "audit.false_accepts" not in counters

    def test_error_cell_reason_is_exception_name(self):
        session = LiveTelemetrySession()
        cell = make_cell(status="error:TimeoutError", accepted=False)
        counters = session.tick(
            lambda hub, now: record_cell_telemetry(hub, cell, now=now)
        )["counters"]
        assert counters["audit.rejections.TimeoutError"]["cumulative"] == 1.0


class TestFalseAcceptAlert:
    def test_injected_false_accept_pages_within_one_tick(self):
        # Test double: a violating cell the harness (hypothetically)
        # accepted.  The page alert must fire on the very tick the cell
        # lands — one window, no hysteresis delay.
        session = LiveTelemetrySession()
        bad = make_cell(violation=True, accepted=True, status="accepted")
        rollup = session.tick(
            lambda hub, now: record_cell_telemetry(hub, bad, now=now))
        fired = rollup["alerts_fired"]
        assert [a["rule"] for a in fired] == ["false_accept"]
        assert fired[0]["severity"] == "page"
        assert session.events.count("alert_fired") == 1

    def test_false_accept_latches_across_quiet_ticks(self):
        session = LiveTelemetrySession()
        bad = make_cell(violation=True, accepted=True, status="accepted")
        session.tick(lambda hub, now: record_cell_telemetry(hub, bad, now=now))
        good = make_cell()
        for _ in range(30):
            rollup = session.tick(
                lambda hub, now: record_cell_telemetry(hub, good, now=now))
            assert rollup["alerts_firing"] == ["false_accept"]
        summary = session.close()
        assert len(summary["alerts_fired"]) == 1  # one edge, never resolved


@pytest.mark.slow
class TestHonestSweep:
    def test_honest_chaos_sweep_fires_zero_alerts(self):
        frame = LocalFrame(GeoPoint(40.1000, -88.2200))
        center = frame.to_geo(150.0, 120.0)
        scenario = Scenario(
            name="tiny-compliant", description="honest sweep",
            frame=frame,
            zones=[NoFlyZone(center.lat, center.lon, 30.0)],
            source=WaypointSource([(T0, 0.0, 0.0), (T0 + 60.0, 300.0, 0.0)]),
            t_start=T0, t_end=T0 + 60.0, gps_noise_std_m=0.5)
        plans = builtin_plans(0)
        session = LiveTelemetrySession()
        report = run_matrix(
            [(scenario, False)],
            plans=[plans["baseline"], plans["lossy10"]],
            seed=0,
            on_cell=lambda cell: session.tick(
                lambda hub, now: record_cell_telemetry(hub, cell, now=now)))
        summary = session.close()
        assert report.false_accepts == []
        assert summary["ticks"] >= 2
        assert summary["alerts_fired"] == []
        assert summary["alerts_firing"] == []
