"""Tests for repro.faults.injector: deterministic fault execution."""

import pytest

from repro.errors import (
    ConfigurationError,
    ServiceUnavailableError,
    TransientError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule


def injector_for(*rules, seed=0, t0=0.0, now_fn=None):
    return FaultInjector(FaultPlan("test", tuple(rules), seed=seed),
                         t0=t0, now_fn=now_fn)


class TestActivation:
    def test_active_only_for_targeted_points(self):
        inj = injector_for(FaultRule("link.uplink.send", "drop"))
        assert inj.active("link.uplink.send")
        assert not inj.active("link.downlink.send")
        assert not inj.active("gps.update")

    def test_empty_plan_never_active(self):
        inj = injector_for()
        assert not inj.active("link.uplink.send")


class TestLinkFaults:
    def test_drop_returns_no_deliveries(self):
        inj = injector_for(FaultRule("l.send", "drop"))
        assert inj.link_deliveries("l.send", b"msg") == []
        assert inj.stats.injected["l.send.drop"] == 1

    def test_duplicate_doubles_deliveries(self):
        inj = injector_for(FaultRule("l.send", "duplicate"))
        deliveries = inj.link_deliveries("l.send", b"msg")
        assert len(deliveries) == 2
        assert all(d.payload == b"msg" for d in deliveries)

    def test_corrupt_changes_payload(self):
        inj = injector_for(FaultRule("l.send", "corrupt", param=2))
        (delivery,) = inj.link_deliveries("l.send", b"a" * 32)
        assert delivery.payload != b"a" * 32
        assert len(delivery.payload) == 32

    def test_delay_adds_extra_delay(self):
        inj = injector_for(FaultRule("l.send", "delay", param=0.7))
        (delivery,) = inj.link_deliveries("l.send", b"msg")
        assert delivery.extra_delay_s == pytest.approx(0.7)

    def test_no_fault_passthrough(self):
        inj = injector_for(FaultRule("l.send", "drop", probability=0.0))
        (delivery,) = inj.link_deliveries("l.send", b"msg")
        assert delivery.payload == b"msg"
        assert delivery.extra_delay_s == 0.0
        assert inj.stats.total_injected == 0
        assert inj.stats.opportunities["l.send"] == 1

    def test_probability_is_deterministic(self):
        def decisions():
            inj = injector_for(FaultRule("l.send", "drop", probability=0.5),
                               seed=3)
            return [inj.link_deliveries("l.send", bytes([i])) == []
                    for i in range(100)]

        first = decisions()
        assert first == decisions()
        assert 20 < sum(first) < 80

    def test_rule_streams_are_independent(self):
        """Traffic at one point never perturbs decisions at another."""
        rule_a = FaultRule("a.send", "drop", probability=0.5)
        rule_b = FaultRule("b.send", "drop", probability=0.5)

        lone = injector_for(rule_a, seed=1)
        solo = [lone.link_deliveries("a.send", b"x") == []
                for _ in range(50)]

        mixed = injector_for(rule_a, rule_b, seed=1)
        interleaved = []
        for _ in range(50):
            interleaved.append(mixed.link_deliveries("a.send", b"x") == [])
            mixed.link_deliveries("b.send", b"y")
        assert interleaved == solo

    def test_wrong_action_family_rejected(self):
        inj = injector_for(FaultRule("l.send", "dropout"))
        with pytest.raises(ConfigurationError):
            inj.link_deliveries("l.send", b"msg")


class TestWindows:
    def test_window_respected(self):
        inj = injector_for(FaultRule("l.send", "drop",
                                     t_start=10.0, t_end=20.0))
        assert inj.link_deliveries("l.send", b"m", now=5.0) != []
        assert inj.link_deliveries("l.send", b"m", now=15.0) == []
        assert inj.link_deliveries("l.send", b"m", now=25.0) != []

    def test_t0_offset_anchors_relative_windows(self):
        inj = injector_for(FaultRule("l.send", "drop",
                                     t_start=10.0, t_end=20.0), t0=1_000.0)
        assert inj.link_deliveries("l.send", b"m", now=1_015.0) == []
        assert inj.link_deliveries("l.send", b"m", now=15.0) != []

    def test_clockless_call_skips_windowed_rules(self):
        inj = injector_for(FaultRule("t", "fail", t_start=0.0, t_end=9.0))
        inj.maybe_fail("t")  # no clock, windowed rule: must not raise

    def test_now_fn_supplies_missing_clock(self):
        inj = injector_for(FaultRule("t", "fail", t_start=0.0, t_end=9.0),
                           now_fn=lambda: 5.0)
        with pytest.raises(TransientError):
            inj.maybe_fail("t")


class TestMaxCount:
    def test_fail_recovers_after_max_count(self):
        inj = injector_for(FaultRule("t", "fail", max_count=2))
        for _ in range(2):
            with pytest.raises(TransientError):
                inj.maybe_fail("t")
        inj.maybe_fail("t")  # third call: the service has recovered
        assert inj.stats.injected["t.fail"] == 2


class TestGpsFaults:
    def test_dropout_suppresses(self):
        inj = injector_for(FaultRule("gps.update", "dropout",
                                     t_start=0.0, t_end=10.0))
        suppressed, dx, dy = inj.gps_update("gps.update", 5.0)
        assert suppressed and dx == 0.0 and dy == 0.0
        assert not inj.gps_update("gps.update", 15.0)[0]

    def test_degrade_adds_error(self):
        inj = injector_for(FaultRule("gps.update", "degrade", param=3.0))
        _, dx, dy = inj.gps_update("gps.update", 1.0)
        assert dx != 0.0 or dy != 0.0

    def test_degrade_is_deterministic(self):
        def offsets():
            inj = injector_for(FaultRule("gps.update", "degrade", param=3.0),
                               seed=7)
            return [inj.gps_update("gps.update", float(i))
                    for i in range(20)]

        assert offsets() == offsets()


class TestFailAndSkew:
    def test_custom_error_type(self):
        inj = injector_for(FaultRule("auditor.receive_poa", "fail"))
        with pytest.raises(ServiceUnavailableError):
            inj.maybe_fail("auditor.receive_poa",
                           error=ServiceUnavailableError)

    def test_detail_becomes_message(self):
        inj = injector_for(FaultRule("t", "fail", detail="maintenance"))
        with pytest.raises(TransientError, match="maintenance"):
            inj.maybe_fail("t")

    def test_clock_skew_additive(self):
        inj = injector_for(FaultRule("auditor.clock", "skew", param=45.0))
        assert inj.clock_skew("auditor.clock", 100.0) == pytest.approx(145.0)

    def test_negative_skew(self):
        inj = injector_for(FaultRule("auditor.clock", "skew", param=-30.0))
        assert inj.clock_skew("auditor.clock", 100.0) == pytest.approx(70.0)


class TestStats:
    def test_stats_snapshot_shape(self):
        inj = injector_for(FaultRule("l.send", "drop"))
        inj.link_deliveries("l.send", b"m")
        snapshot = inj.stats.to_dict()
        assert snapshot["total_injected"] == 1
        assert snapshot["injected"] == {"l.send.drop": 1}
        assert snapshot["opportunities"] == {"l.send": 1}
