"""Shared fixtures: deterministic keys, frames, devices, and scenarios.

Expensive artefacts (RSA keys, field-study scenarios) are session-scoped;
anything stateful (devices, receivers, clocks) is built fresh per test via
factory fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.rsa import RsaPrivateKey, generate_rsa_keypair
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import TrustZoneDevice, provision_device

#: Key size used throughout the tests: small enough to be fast, large
#: enough for PKCS#1 v1.5 framing with SHA-1 and SHA-256 DigestInfo.
TEST_KEY_BITS = 512


@pytest.fixture()
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(0xA11D)


@pytest.fixture(scope="session")
def frame() -> LocalFrame:
    """A local frame anchored near the paper's field-study area."""
    return LocalFrame(GeoPoint(40.1000, -88.2200))


@pytest.fixture(scope="session")
def signing_key() -> RsaPrivateKey:
    """A deterministic test RSA keypair."""
    return generate_rsa_keypair(TEST_KEY_BITS, rng=random.Random(101))


@pytest.fixture(scope="session")
def other_key() -> RsaPrivateKey:
    """A second, distinct keypair (wrong-key tests)."""
    return generate_rsa_keypair(TEST_KEY_BITS, rng=random.Random(202))


@pytest.fixture(scope="session")
def vendor_key() -> RsaPrivateKey:
    """The TA-vendor signing key shared by test devices."""
    return generate_rsa_keypair(TEST_KEY_BITS, rng=random.Random(303))


@pytest.fixture()
def make_device(vendor_key):
    """Factory for fresh provisioned TrustZone devices."""
    counter = {"n": 0}

    def _make(seed: int = 1, key_bits: int = TEST_KEY_BITS) -> TrustZoneDevice:
        counter["n"] += 1
        return provision_device(f"test-dev-{counter['n']}",
                                key_bits=key_bits,
                                rng=random.Random(seed),
                                vendor_key=vendor_key)

    return _make


@pytest.fixture()
def straight_source() -> WaypointSource:
    """A simple 60-second, 300 m straight drive starting at the epoch."""
    t0 = DEFAULT_EPOCH
    return WaypointSource([(t0, 0.0, 0.0), (t0 + 60.0, 300.0, 0.0)])


@pytest.fixture()
def make_platform(make_device, frame, straight_source):
    """Factory assembling (device, receiver, clock) over a source."""

    def _make(source: WaypointSource | None = None,
              update_rate_hz: float = 5.0, seed: int = 1,
              **receiver_kwargs):
        src = source if source is not None else straight_source
        clock = SimClock(src.start_time)
        receiver = SimulatedGpsReceiver(src, frame,
                                        update_rate_hz=update_rate_hz,
                                        start_time=src.start_time,
                                        seed=seed, **receiver_kwargs)
        device = make_device(seed=seed)
        device.attach_gps(receiver, clock)
        return device, receiver, clock

    return _make


@pytest.fixture(scope="session")
def airport_scenario():
    """The airport field-study scenario (built once)."""
    from repro.workloads.airport import build_airport_scenario
    return build_airport_scenario(seed=0)


@pytest.fixture(scope="session")
def residential_scenario():
    """The residential field-study scenario (built once)."""
    from repro.workloads.residential import build_residential_scenario
    return build_residential_scenario(seed=0)
