"""Cross-scheme fleet run: three authentication schemes in one service.

The auditor is scheme-agnostic at intake — drones negotiated their
scheme at registration time and the shard engines dispatch per
submission.  One fleet run with ``rsa-v15``, ``hash-chain``, and
``merkle-disclosure`` assigned round-robin must keep every invariant,
accept every honest flight under every scheme, and keep the in-memory
``submissions_by_scheme`` counter consistent with the store's durable
index.
"""

import pytest

from repro.crypto.schemes import SCHEME_CHAIN, SCHEME_MERKLE, SCHEME_RSA
from repro.fleetsim.sim import FleetMix, FleetSimulator
from repro.server.store import FlightStore

SCHEMES = (SCHEME_RSA, SCHEME_CHAIN, SCHEME_MERKLE)


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("xscheme") / "fleet.db")
    mix = FleetMix(drones=6, flooders=0, duration_s=30.0,
                   honest_rate_hz=1.5, schemes=SCHEMES, seed=210)
    return FleetSimulator(mix, store=path).run()


class TestCrossScheme:
    def test_invariants_hold(self, run):
        assert run.report.ok is True
        assert run.report.false_accepts == []

    def test_every_scheme_carried_traffic(self, run):
        by_scheme = run.report.stats["submissions_by_scheme"]
        assert set(by_scheme) == set(SCHEMES)
        assert all(count > 0 for count in by_scheme.values())

    def test_scheme_counts_partition_accepted(self, run):
        stats = run.report.stats
        assert sum(stats["submissions_by_scheme"].values()) == \
            stats["accepted"]

    def test_store_index_matches_live_counter(self, run):
        store = FlightStore(run.timing["store_path"])
        try:
            durable = store.submission_counts_by_scheme()
        finally:
            store.close()
        assert durable == run.report.stats["submissions_by_scheme"]

    def test_all_schemes_verify_honest_traffic(self, run):
        honest = run.report.classes["honest"]
        assert honest.submitted > 0
        assert set(honest.statuses) <= {"accepted"}
        assert sum(honest.statuses.values()) == honest.accepted
