"""Crash/recovery under fleet load: exactly-once verdicts.

The simulator kills the service at the worst instant — between submit
and drain, with accepted-but-unaudited rows in the store — reopens the
same store, and replays via ``recover``.  The crashed run must converge
to the same verdict totals as an uninterrupted run of the identical
mix: nothing lost, nothing audited twice.
"""

import json

import pytest

from repro.fleetsim.sim import FleetMix, FleetSimulator
from repro.server.store import FlightStore
from repro.sim.clock import DEFAULT_EPOCH

MIX = FleetMix(drones=5, flooders=1, duration_s=30.0, honest_rate_hz=1.5,
               adversary_rate_hz=0.5, flood_burst_per_s=6,
               flood_period_s=10.0, seed=77)
CRASH_AT = DEFAULT_EPOCH + 13.0


def _sim(path, crash_at=None):
    return FleetSimulator(MIX, store=path, crash_at=crash_at,
                          policy="fair-share", admission_rate_per_s=200.0,
                          admission_burst=64.0)


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("crash")
    crashed = _sim(str(root / "crashed.db"), crash_at=CRASH_AT).run()
    clean = _sim(str(root / "clean.db")).run()
    return crashed, clean


class TestCrashRecovery:
    def test_crash_actually_interrupted_pending_work(self, runs):
        crashed, _ = runs
        crash = crashed.report.crash
        assert crash is not None
        # Reported relative to the mix epoch, like alert timestamps.
        assert crash["at"] == CRASH_AT - DEFAULT_EPOCH
        # The crash landed between submit and drain: rows were pending,
        # and the reopened service replayed every one of them.
        assert crash["pending_at_crash"] >= 1
        assert crash["replayed"] == crash["pending_at_crash"]

    def test_no_verdict_lost_or_duplicated(self, runs):
        crashed, _ = runs
        store = crashed.report.store
        assert store["pending"] == 0
        assert store["verdicts"] == store["submissions"]
        store_db = FlightStore(crashed.timing["store_path"])
        try:
            assert store_db.verdict_count() == store_db.submission_count()
        finally:
            store_db.close()

    def test_verdicts_match_uninterrupted_run(self, runs):
        crashed, clean = runs
        assert crashed.report.status_counts == clean.report.status_counts
        crashed_classes = {name: stats.to_dict() for name, stats
                          in crashed.report.classes.items()}
        clean_classes = {name: stats.to_dict() for name, stats
                        in clean.report.classes.items()}
        assert crashed_classes == clean_classes

    def test_invariants_hold_through_crash(self, runs):
        crashed, _ = runs
        assert crashed.report.ok is True
        assert crashed.report.false_accepts == []

    def test_crashed_rerun_is_deterministic(self, tmp_path, runs):
        crashed, _ = runs
        rerun = _sim(str(tmp_path / "rerun.db"), crash_at=CRASH_AT).run()
        a = dict(crashed.report.to_dict())
        b = dict(rerun.report.to_dict())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_memory_store_cannot_crash(self):
        with pytest.raises(Exception):
            FleetSimulator(MIX, store=":memory:", crash_at=CRASH_AT)
