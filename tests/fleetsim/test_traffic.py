"""Tests for the fleet traffic-class generators.

Each stream must be deterministic under its seed, carry correct ground
truth (``must_reject``), and produce submissions whose shapes match the
attack/fault they model — the invariant suite's conclusions are only as
good as these generators.
"""

import random

import pytest

from repro.crypto.rsa import generate_rsa_keypair
from repro.fleetsim.traffic import (
    ATTACK_CLASSES,
    ATTACK_FOREIGN_REPLAY,
    ATTACK_INCURSION,
    CLASS_ADVERSARY,
    CLASS_CHAOS,
    CLASS_FLOOD,
    CLASS_HONEST,
    adversary_stream,
    chaos_stream,
    flood_stream,
    honest_stream,
    merge_streams,
)
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import FleetDrone

FRAME = LocalFrame(GeoPoint(40.1000, -88.2200))
T0 = DEFAULT_EPOCH


@pytest.fixture(scope="module")
def fleet():
    drones = []
    for i in range(4):
        tee = generate_rsa_keypair(512, rng=random.Random(1000 + i))
        op = generate_rsa_keypair(512, rng=random.Random(2000 + i))
        drones.append(FleetDrone(drone_id=f"drone-{i}", tee_key=tee,
                                 operator_key=op,
                                 region=f"region-{i % 2}"))
    return drones


@pytest.fixture(scope="module")
def enc_key():
    return generate_rsa_keypair(512, rng=random.Random(7)).public_key


def _dump(events):
    return [(e.at, e.traffic_class, e.drone_id, e.must_reject, e.attack,
             e.submission.flight_id, e.submission.scheme,
             tuple((r.ciphertext, r.signature)
                   for r in e.submission.records))
            for e in events]


class TestHonestStream:
    def test_deterministic_and_windowed(self, fleet, enc_key):
        kwargs = dict(frame=FRAME, seed=3, rate_hz=2.0, duration_s=20.0,
                      samples=4)
        a = honest_stream(fleet, enc_key, **kwargs)
        b = honest_stream(fleet, enc_key, **kwargs)
        assert _dump(a) == _dump(b)
        assert a, "expected arrivals at 2 Hz over 20 s"
        for event in a:
            assert T0 < event.at < T0 + 20.0
            assert event.traffic_class == CLASS_HONEST
            assert not event.must_reject
            assert event.submission.claimed_end <= event.at

    def test_scheme_assignment_followed(self, fleet, enc_key):
        scheme_of = {d.drone_id: ("hash-chain" if i % 2 else "rsa-v15")
                     for i, d in enumerate(fleet)}
        events = honest_stream(fleet, enc_key, frame=FRAME, seed=3,
                               rate_hz=2.0, duration_s=15.0,
                               scheme_of=scheme_of)
        assert {e.submission.scheme for e in events} == {"rsa-v15",
                                                         "hash-chain"}
        for event in events:
            assert event.submission.scheme == scheme_of[event.drone_id]

    def test_empty_inputs(self, fleet, enc_key):
        assert honest_stream([], enc_key, frame=FRAME) == []
        assert honest_stream(fleet, enc_key, frame=FRAME,
                             rate_hz=0.0) == []


class TestChaosStream:
    def test_deterministic_and_degraded(self, fleet, enc_key):
        kwargs = dict(frame=FRAME, seed=5, rate_hz=2.0, duration_s=30.0,
                      samples=4)
        a = chaos_stream(fleet, enc_key, **kwargs)
        b = chaos_stream(fleet, enc_key, **kwargs)
        assert _dump(a) == _dump(b)
        assert a
        # The stock plan drops/duplicates/corrupts: over a long enough
        # stream, at least one submission must deviate from 4 records.
        assert any(len(e.submission.records) != 4 for e in a)
        for event in a:
            assert event.traffic_class == CLASS_CHAOS
            assert not event.must_reject  # degraded, but honest

    def test_distinct_flight_ids_vs_honest(self, fleet, enc_key):
        honest = honest_stream(fleet, enc_key, frame=FRAME, seed=5,
                               rate_hz=2.0, duration_s=20.0)
        chaos = chaos_stream(fleet, enc_key, frame=FRAME, seed=5,
                             rate_hz=2.0, duration_s=20.0)
        honest_ids = {e.submission.flight_id for e in honest}
        chaos_ids = {e.submission.flight_id for e in chaos}
        assert honest_ids.isdisjoint(chaos_ids)


class TestAdversaryStream:
    def test_all_attacks_flagged_and_deterministic(self, fleet, enc_key):
        kwargs = dict(frame=FRAME, seed=11, rate_hz=2.0, duration_s=40.0,
                      samples=4)
        a = adversary_stream(fleet, enc_key, **kwargs)
        b = adversary_stream(fleet, enc_key, **kwargs)
        assert _dump(a) == _dump(b)
        assert a
        seen = set()
        for event in a:
            assert event.traffic_class == CLASS_ADVERSARY
            assert event.must_reject
            assert event.attack in ATTACK_CLASSES
            seen.add(event.attack)
        assert len(seen) >= 3, f"expected attack variety, got {seen}"

    def test_foreign_replay_submits_under_other_identity(self, fleet,
                                                         enc_key):
        events = adversary_stream(
            fleet, enc_key, frame=FRAME, seed=11, rate_hz=2.0,
            duration_s=40.0, attacks=(ATTACK_FOREIGN_REPLAY,))
        assert events
        for event in events:
            assert event.submission.drone_id == event.drone_id
            assert event.submission.flight_id.startswith(
                f"flight-{event.drone_id}-")

    def test_incursion_is_truthfully_signed(self, fleet, enc_key):
        events = adversary_stream(
            fleet, enc_key, frame=FRAME, seed=11, rate_hz=1.0,
            duration_s=30.0, attacks=(ATTACK_INCURSION,))
        assert events
        for event in events:
            assert event.attack == ATTACK_INCURSION
            assert event.submission.records  # a real encrypted trace

    def test_unknown_attack_rejected(self, fleet, enc_key):
        with pytest.raises(ValueError):
            adversary_stream(fleet, enc_key, frame=FRAME,
                             attacks=("not-an-attack",))


class TestFloodStream:
    def test_storm_windows_and_ground_truth(self, fleet, enc_key):
        events = flood_stream(fleet[:2], enc_key, frame=FRAME, seed=2,
                              burst_per_s=10, storm_period_s=10.0,
                              duration_s=30.0)
        assert events
        junk = [e for e in events if e.must_reject]
        dupes = [e for e in events if not e.must_reject]
        assert junk and dupes
        # Duplicate-flood events re-upload a flooder's one base flight.
        assert len({e.submission.flight_id for e in dupes}) == 2
        # Junk flights are all distinct (each is a fresh store row).
        assert len({e.submission.flight_id for e in junk}) == len(junk)
        for event in events:
            assert event.traffic_class == CLASS_FLOOD
            second = event.at - T0
            assert (int(second) - 1) % 10.0 < 5.0, (
                f"flood event outside storm window at +{second:.4f}s")

    def test_deterministic(self, fleet, enc_key):
        kwargs = dict(frame=FRAME, seed=2, burst_per_s=8,
                      storm_period_s=6.0, duration_s=20.0)
        assert _dump(flood_stream(fleet[:2], enc_key, **kwargs)) == \
            _dump(flood_stream(fleet[:2], enc_key, **kwargs))

    def test_disabled_when_no_burst(self, fleet, enc_key):
        assert flood_stream(fleet[:2], enc_key, frame=FRAME,
                            burst_per_s=0) == []


class TestMergeStreams:
    def test_total_deterministic_order(self, fleet, enc_key):
        honest = honest_stream(fleet, enc_key, frame=FRAME, seed=4,
                               rate_hz=2.0, duration_s=20.0)
        flood = flood_stream(fleet[:1], enc_key, frame=FRAME, seed=4,
                             burst_per_s=6, storm_period_s=10.0,
                             duration_s=20.0)
        merged = merge_streams(honest, flood)
        assert len(merged) == len(honest) + len(flood)
        ats = [e.at for e in merged]
        assert ats == sorted(ats)
        # Stable under input permutation: the order is a total function
        # of the events, not of stream argument order.
        assert _dump(merged) == _dump(merge_streams(flood, honest))
