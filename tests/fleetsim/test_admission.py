"""Unit and service-integration tests for the admission scheduler.

The policy layer is what turns a flood from a starvation event into a
contained nuisance, so the units pin down exactly who gets denied and
why, and the integration tests prove the service wires denials into
``IntakeDecision`` accounting, stats, and telemetry.
"""

import random

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.protocol import DroneRegistrationRequest
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import ConfigurationError
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.server import AuditorService
from repro.server.admission import (
    DENY_DRONE,
    DENY_GLOBAL,
    DENY_PENALTY,
    DENY_REGION,
    POLICY_FAIR_SHARE,
    POLICY_FIFO,
    POLICY_HYBRID,
    AdmissionScheduler,
    build_scheduler,
)
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import build_flight_submission, provision_fleet

T0 = DEFAULT_EPOCH


class TestFifoPolicy:
    def test_global_rate_limit_only(self):
        sched = AdmissionScheduler(POLICY_FIFO, rate_per_s=1.0, burst=4.0)
        decisions = [sched.admit("hog", "r0", 0.0) for _ in range(10)]
        admitted = [d for d in decisions if d.admitted]
        denied = [d for d in decisions if not d.admitted]
        assert len(admitted) == 4
        assert all(d.reason == DENY_GLOBAL for d in denied)
        # fifo has no per-drone compartments: the hog emptied the bucket
        # for everyone.
        assert not sched.admit("quiet", "r1", 0.0).admitted

    def test_stats_accounting(self):
        sched = AdmissionScheduler(POLICY_FIFO, rate_per_s=1.0, burst=2.0)
        for _ in range(5):
            sched.admit("d", "r", 0.0)
        stats = sched.stats.to_dict()
        assert stats["admitted"] == 2
        assert stats["denied"] == 3
        assert stats["denied_by"] == {DENY_GLOBAL: 3}


class TestFairSharePolicy:
    def test_hog_is_isolated_from_quiet_drone(self):
        sched = AdmissionScheduler(POLICY_FAIR_SHARE, rate_per_s=100.0,
                                   burst=50.0, drone_rate_per_s=1.0,
                                   drone_burst=4.0)
        hog = [sched.admit("hog", "r0", 0.0) for _ in range(40)]
        assert sum(d.admitted for d in hog) == 4
        assert {d.reason for d in hog if not d.admitted} == {DENY_DRONE}
        # The hog's denials never touched the global bucket, so a quiet
        # drone still admits at the same instant.
        assert sched.admit("quiet", "r0", 0.0).admitted

    def test_region_layer_when_enabled(self):
        sched = AdmissionScheduler(POLICY_FAIR_SHARE, rate_per_s=100.0,
                                   burst=50.0, drone_rate_per_s=100.0,
                                   drone_burst=50.0, region_rate_per_s=1.0,
                                   region_burst=2.0)
        decisions = [sched.admit(f"d{i}", "hot", 0.0) for i in range(6)]
        assert sum(d.admitted for d in decisions) == 2
        assert {d.reason for d in decisions if not d.admitted} == \
            {DENY_REGION}
        # Other regions are unaffected.
        assert sched.admit("d9", "cold", 0.0).admitted

    def test_tracked_buckets_bounded(self):
        sched = AdmissionScheduler(POLICY_FAIR_SHARE, rate_per_s=1000.0,
                                   burst=1000.0, max_tracked=8)
        for i in range(50):
            sched.admit(f"d{i}", "r", 0.0)
        assert len(sched._drone_buckets) <= 8


class TestHybridPolicy:
    def test_penalty_deprioritizes_rejected_drone(self):
        sched = AdmissionScheduler(POLICY_HYBRID, rate_per_s=100.0,
                                   burst=50.0, drone_rate_per_s=1.0,
                                   drone_burst=4.0)
        for _ in range(3):
            sched.note_rejection("liar", 0.0)
        assert sched.penalty("liar", 0.0) == pytest.approx(3.0)
        # Each admit now costs 1 + penalty tokens: the 4-token burst that
        # funds 4 clean admits funds only 1 penalised one.
        liar = [sched.admit("liar", "r", 0.0) for _ in range(4)]
        assert sum(d.admitted for d in liar) == 1
        assert {d.reason for d in liar if not d.admitted} == {DENY_PENALTY}
        clean = [sched.admit("clean", "r", 0.0) for _ in range(4)]
        assert all(d.admitted for d in clean)

    def test_penalty_decays_with_halflife(self):
        sched = AdmissionScheduler(POLICY_HYBRID, rate_per_s=10.0,
                                   penalty_halflife_s=10.0)
        sched.note_rejection("d", 0.0, weight=4.0)
        assert sched.penalty("d", 10.0) == pytest.approx(2.0)
        assert sched.penalty("d", 20.0) == pytest.approx(1.0)
        assert sched.penalty("d", 1000.0) == pytest.approx(0.0, abs=1e-6)

    def test_penalty_capped(self):
        sched = AdmissionScheduler(POLICY_HYBRID, rate_per_s=10.0,
                                   penalty_cap=3.0)
        for _ in range(100):
            sched.note_rejection("d", 0.0)
        assert sched.penalty("d", 0.0) <= 3.0


class TestBuildScheduler:
    def test_none_policy_disables(self):
        assert build_scheduler(None, rate_per_s=10.0) is None
        assert build_scheduler("none", rate_per_s=10.0) is None
        assert build_scheduler(POLICY_FIFO, rate_per_s=None) is None

    def test_builds_requested_policy(self):
        sched = build_scheduler(POLICY_HYBRID, rate_per_s=10.0, burst=5.0)
        assert isinstance(sched, AdmissionScheduler)
        assert sched.policy == POLICY_HYBRID

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            AdmissionScheduler("round-robin", rate_per_s=10.0)
        with pytest.raises(ConfigurationError):
            build_scheduler("round-robin", rate_per_s=10.0)


FRAME = LocalFrame(GeoPoint(40.1000, -88.2200))


def _make_service(**kwargs):
    service = AuditorService(
        FRAME, ":memory:",
        encryption_key=generate_rsa_keypair(512, rng=random.Random(606)),
        **kwargs)
    center = FRAME.to_geo(0.0, 0.0)
    service.register_zone(NoFlyZone(center.lat, center.lon, 50.0))
    return service


class TestServiceIntegration:
    @pytest.fixture()
    def service(self):
        service = _make_service(
            admission=AdmissionScheduler(POLICY_FAIR_SHARE,
                                         rate_per_s=100.0, burst=50.0,
                                         drone_rate_per_s=1.0,
                                         drone_burst=2.0))
        try:
            yield service
        finally:
            service.close()

    @staticmethod
    def _fleet(service):
        def register(operator_public, tee_public, name):
            return service.register_drone(DroneRegistrationRequest(
                operator_public_key=operator_public,
                tee_public_key=tee_public, operator_name=name), now=T0)

        return provision_fleet(register, drones=2, seed=9)

    def test_flooding_drone_shed_with_drone_reason(self, service):
        flooder, quiet = self._fleet(service)
        enc = service.public_encryption_key
        base = build_flight_submission(
            flooder, enc, frame=FRAME, flight_index=0, samples=3,
            start=T0 - 10.0, rng=random.Random(0))
        outcomes = [service.submit(base, now=T0 + 1.0,
                                   region=flooder.region).outcome
                    for _ in range(6)]
        # burst of 2 admits (one accepted, one dedup of the same bytes);
        # the rest are shed at the drone layer.
        assert outcomes.count("accepted") == 1
        assert outcomes.count("deduplicated") == 1
        assert outcomes.count("shed_rate_limited") == 4
        assert service.stats.shed_rate_limited == 4
        assert service.stats.admission_denied == {DENY_DRONE: 4}
        # The quiet drone is untouched by the flooder's denials.
        other = build_flight_submission(
            quiet, enc, frame=FRAME, flight_index=1, samples=3,
            start=T0 - 10.0, rng=random.Random(1))
        assert service.submit(other, now=T0 + 1.0,
                              region=quiet.region).outcome == "accepted"
        assert service.admission.stats.to_dict()["denied"] == 4
        assert "admission_denied" in service.stats.to_dict()

    def test_legacy_rate_arg_builds_fifo(self):
        service = _make_service(admission_rate_per_s=2.0,
                                admission_burst=3.0)
        try:
            assert service.admission is not None
            assert service.admission.policy == POLICY_FIFO
        finally:
            service.close()
