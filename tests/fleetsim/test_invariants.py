"""The fleet-scale invariant campaign.

Every traffic mix in the matrix — honest-only, chaos-degraded,
adversarial, flooded, and all of them at once — must close with the
same standing invariants: zero false accepts, honest traffic that was
admitted always verifies, honest liveness under flood, floods turned
away at least as hard as honest traffic, the store fully drained, and
no page-severity alerts.  A separate test pins determinism: two runs of
the same mix serialize byte-identically.
"""

import json

import pytest

from repro.fleetsim.sim import FleetMix, FleetSimulator

#: Small-but-hostile configurations: every class exercised within a few
#: seconds of wall time per mix.
MIXES = {
    "honest-only": FleetMix(drones=6, flooders=0, duration_s=30.0,
                            honest_rate_hz=2.0, seed=101),
    "honest+chaos": FleetMix(drones=6, flooders=0, duration_s=30.0,
                             honest_rate_hz=1.5, chaos_rate_hz=1.0,
                             seed=102),
    "honest+adversary": FleetMix(drones=6, flooders=0, duration_s=30.0,
                                 honest_rate_hz=1.5, adversary_rate_hz=1.0,
                                 seed=103),
    "honest+flood": FleetMix(drones=6, flooders=2, duration_s=30.0,
                             honest_rate_hz=1.5, flood_burst_per_s=12,
                             flood_period_s=10.0, seed=104),
    "full-mix": FleetMix(drones=6, flooders=2, duration_s=30.0,
                         honest_rate_hz=1.5, chaos_rate_hz=0.5,
                         adversary_rate_hz=0.5, flood_burst_per_s=10,
                         flood_period_s=10.0, seed=105),
}

#: Flooded mixes run behind the fair-share guard (that is the deployment
#: shape the invariants certify); guardless mixes prove the invariants
#: do not secretly depend on admission control.
POLICY_FOR = {
    "honest-only": "none",
    "honest+chaos": "none",
    "honest+adversary": "none",
    "honest+flood": "fair-share",
    "full-mix": "hybrid",
}


def _run(name, **overrides):
    mix = MIXES[name]
    policy = POLICY_FOR[name]
    kwargs = dict(policy=policy)
    if policy != "none":
        kwargs.update(admission_rate_per_s=200.0, admission_burst=64.0)
    kwargs.update(overrides)
    return FleetSimulator(mix, **kwargs).run()


@pytest.fixture(scope="module")
def reports():
    return {name: _run(name).report for name in MIXES}


class TestInvariantMatrix:
    @pytest.mark.parametrize("name", sorted(MIXES))
    def test_all_invariants_hold(self, reports, name):
        report = reports[name]
        breached = {inv: held for inv, held in report.invariants.items()
                    if held is not True}
        assert not breached, f"{name}: breached {breached}"
        assert report.ok is True

    @pytest.mark.parametrize("name", sorted(MIXES))
    def test_zero_false_accepts(self, reports, name):
        assert reports[name].false_accepts == []

    @pytest.mark.parametrize("name", sorted(MIXES))
    def test_honest_statuses_only_accepted(self, reports, name):
        honest = reports[name].classes["honest"]
        assert honest.submitted > 0
        assert set(honest.statuses) <= {"accepted"}
        # Honest verdict accounting closes: one verdict per accepted row.
        assert sum(honest.statuses.values()) == honest.accepted

    @pytest.mark.parametrize("name", ["honest+adversary", "full-mix"])
    def test_adversary_never_accepted(self, reports, name):
        adversary = reports[name].classes["adversary"]
        assert adversary.submitted > 0
        assert adversary.statuses.get("accepted", 0) == 0
        # Every audited adversarial submission got a rejection verdict.
        assert sum(adversary.statuses.values()) == adversary.accepted

    @pytest.mark.parametrize("name", ["honest+flood", "full-mix"])
    def test_flood_contained_and_honest_live(self, reports, name):
        report = reports[name]
        flood = report.classes["flood"]
        assert flood.submitted > 0
        # Back-pressure landed on the flooders...
        assert report.flood_turned_away_ratio > 0.0
        # ...at least as hard as on the honest fleet, which stayed live.
        assert report.flood_turned_away_ratio >= report.honest_shed_ratio
        assert report.honest_shed_ratio <= 0.2

    @pytest.mark.parametrize("name", sorted(MIXES))
    def test_store_fully_audited(self, reports, name):
        store = reports[name].store
        assert store["pending"] == 0
        assert store["verdicts"] == store["submissions"]

    def test_chaos_class_exercised(self, reports):
        chaos = reports["honest+chaos"].classes["chaos"]
        assert chaos.submitted > 0
        # Chaos traffic is degraded but honest: whatever was admitted
        # and audited must never be a *false* accept — and the class is
        # allowed to verify as insufficient/malformed, unlike honest.
        assert set(chaos.statuses) <= {"accepted", "insufficient",
                                       "malformed", "empty"}


class TestDeterminism:
    def test_same_seed_reruns_are_byte_identical(self):
        dumps = [
            json.dumps(_run("full-mix").report.to_dict(), sort_keys=True)
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_seed_actually_matters(self):
        base = _run("honest+flood").report.to_dict()
        mix = MIXES["honest+flood"]
        other = FleetSimulator(
            FleetMix(drones=mix.drones, flooders=mix.flooders,
                     duration_s=mix.duration_s,
                     honest_rate_hz=mix.honest_rate_hz,
                     flood_burst_per_s=mix.flood_burst_per_s,
                     flood_period_s=mix.flood_period_s, seed=999),
            policy="fair-share", admission_rate_per_s=200.0,
            admission_burst=64.0).run().report.to_dict()
        assert json.dumps(base, sort_keys=True) != \
            json.dumps(other, sort_keys=True)

    def test_timing_is_separate_from_report(self):
        result = _run("honest-only")
        assert "timing" not in result.report.to_dict()
        assert result.timing["sustained_submissions_per_s"] > 0
