"""Property-based tests for the token-bucket guard on the sim clock.

The bucket is the atom every admission policy composes; three properties
make the fleet invariants possible:

* **No over-admission** — within *any* closed window ``[a, b]`` of the
  arrival sequence, the number of admits never exceeds the burst plus
  the refill the window can have earned (``burst + rate * (b - a)``,
  plus the one admit at ``a`` itself).
* **Refill monotonicity** — from identical bucket state, waiting longer
  never turns an admit into a denial.
* **Determinism** — equal arrival sequences produce equal decision
  sequences, byte for byte; the bucket holds no hidden wall-clock state.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.admission import TokenBucket

rates = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
bursts = st.floats(min_value=1.0, max_value=50.0, allow_nan=False)
gaps = st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                min_size=1, max_size=60)


def _times(gap_list):
    times, t = [], 0.0
    for gap in gap_list:
        t += gap
        times.append(t)
    return times


class TestNoOverAdmission:
    @given(rate=rates, burst=bursts, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_any_window_bounded_by_burst_plus_refill(self, rate, burst,
                                                     gap_list):
        bucket = TokenBucket(rate_per_s=rate, burst=burst)
        times = _times(gap_list)
        admits = [t for t in times if bucket.try_take(t)]
        # Every closed window of admits respects the refill bound; the
        # +1 term is the admit that opens the window (its token was
        # banked before the window started).
        for i, start in enumerate(admits):
            for j in range(i, len(admits)):
                window = admits[j] - start
                count = j - i + 1
                assert count <= burst + rate * window + 1 + 1e-6, (
                    f"{count} admits in a {window:.3f}s window "
                    f"(rate={rate}, burst={burst})")

    @given(rate=rates, burst=bursts)
    @settings(max_examples=100, deadline=None)
    def test_instantaneous_burst_never_exceeds_bucket(self, rate, burst):
        bucket = TokenBucket(rate_per_s=rate, burst=burst)
        admitted = sum(bucket.try_take(0.0) for _ in range(200))
        assert admitted <= int(burst)

    @given(rate=rates, burst=bursts, gap_list=gaps)
    @settings(max_examples=100, deadline=None)
    def test_tokens_never_exceed_burst(self, rate, burst, gap_list):
        bucket = TokenBucket(rate_per_s=rate, burst=burst)
        for t in _times(gap_list):
            bucket.try_take(t)
            assert 0.0 <= bucket.tokens <= burst + 1e-9


class TestRefillMonotonicity:
    @given(rate=rates, burst=bursts, gap_list=gaps,
           d1=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
           extra=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_waiting_longer_never_hurts(self, rate, burst, gap_list,
                                        d1, extra):
        bucket = TokenBucket(rate_per_s=rate, burst=burst)
        last = 0.0
        for last in _times(gap_list):
            bucket.try_take(last)
        sooner, later = copy.deepcopy(bucket), copy.deepcopy(bucket)
        if sooner.try_take(last + d1):
            assert later.try_take(last + d1 + extra)

    @given(rate=rates, burst=bursts,
           d1=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
           d2=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_refill_is_monotone_in_elapsed_time(self, rate, burst, d1, d2):
        lo, hi = sorted((d1, d2))
        a = TokenBucket(rate_per_s=rate, burst=burst)
        b = TokenBucket(rate_per_s=rate, burst=burst)
        # Drain both fully at t=0, then probe the refill at two instants.
        while a.try_take(0.0):
            b.try_take(0.0)
        a.try_take(lo)
        b.try_take(hi)
        assert b.tokens >= a.tokens - 1.0 - 1e-9


class TestDeterminism:
    @given(rate=rates, burst=bursts, gap_list=gaps)
    @settings(max_examples=200, deadline=None)
    def test_equal_sequences_give_equal_decisions(self, rate, burst,
                                                  gap_list):
        times = _times(gap_list)
        a = TokenBucket(rate_per_s=rate, burst=burst)
        b = TokenBucket(rate_per_s=rate, burst=burst)
        decisions_a = [a.try_take(t) for t in times]
        decisions_b = [b.try_take(t) for t in times]
        assert decisions_a == decisions_b
        assert a.tokens == b.tokens

    @given(seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=50, deadline=None)
    def test_seeded_workloads_replay_identically(self, seed):
        import random
        def run():
            rng = random.Random(seed)
            bucket = TokenBucket(rate_per_s=rng.uniform(0.5, 20.0),
                                 burst=rng.uniform(1.0, 16.0))
            t = 0.0
            decisions = []
            for _ in range(100):
                t += rng.expovariate(5.0)
                decisions.append(bucket.try_take(t))
            return decisions
        assert run() == run()


class TestCost:
    @given(rate=rates, burst=st.floats(min_value=4.0, max_value=50.0,
                                       allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_higher_cost_admits_no_more(self, rate, burst):
        cheap = TokenBucket(rate_per_s=rate, burst=burst)
        pricey = TokenBucket(rate_per_s=rate, burst=burst)
        n_cheap = sum(cheap.try_take(0.0) for _ in range(100))
        n_pricey = sum(pricey.try_take(0.0, cost=3.0) for _ in range(100))
        assert n_pricey <= n_cheap
        assert n_pricey <= burst / 3.0 + 1e-9
