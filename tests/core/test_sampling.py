"""Tests for repro.core.sampling: Algorithm 1 and the fix-rate baseline.

These drive the real Adapter/TEE/receiver stack via the make_platform
fixture, since sampler behaviour depends on the receiver's update
discipline.
"""

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.sampling import AdaptiveSampler, FixRateSampler
from repro.core.sufficiency import alibi_is_sufficient
from repro.drone.adapter import Adapter
from repro.errors import ConfigurationError
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def make_adapter(make_platform, source=None, **kwargs):
    device, receiver, clock = make_platform(source=source, **kwargs)
    adapter = Adapter(device, receiver, clock)
    adapter.start()
    return adapter


def zone_at(frame, x, y, r):
    center = frame.to_geo(x, y)
    return NoFlyZone(center.lat, center.lon, r)


class TestFixRateSampler:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FixRateSampler(0.0)

    def test_1hz_sample_count(self, make_platform):
        adapter = make_adapter(make_platform)
        result = FixRateSampler(1.0).run(adapter, T0 + 30.0)
        assert result.stats.auth_samples == 31  # t = 0..30 inclusive

    def test_rate_capped_by_receiver(self, make_platform):
        """Asking for 10 Hz from a 5 Hz receiver yields ~5 Hz."""
        adapter = make_adapter(make_platform)
        result = FixRateSampler(10.0).run(adapter, T0 + 10.0)
        assert result.stats.auth_samples == pytest.approx(51, abs=2)

    def test_sampler_waits_for_update(self, make_platform):
        """The paper's example: 3 Hz wakes sample at 0.0, 0.4, 0.8 s."""
        adapter = make_adapter(make_platform)
        result = FixRateSampler(3.0).run(adapter, T0 + 0.9)
        times = [entry.sample.t - T0 for entry in result.poa]
        assert times == pytest.approx([0.0, 0.4, 0.8], abs=0.011)

    def test_poa_signatures_verify(self, make_platform):
        adapter = make_adapter(make_platform)
        result = FixRateSampler(2.0).run(adapter, T0 + 5.0)
        assert result.poa.verify_all(adapter.device.tee_public_key)

    def test_sample_times_recorded(self, make_platform):
        adapter = make_adapter(make_platform)
        result = FixRateSampler(1.0).run(adapter, T0 + 10.0)
        assert len(result.stats.sample_times) == result.stats.auth_samples

    def test_mean_rate(self, make_platform):
        adapter = make_adapter(make_platform)
        result = FixRateSampler(2.0).run(adapter, T0 + 20.0)
        assert result.stats.mean_rate_hz == pytest.approx(2.0, rel=0.2)


class TestAdaptiveSampler:
    def test_invalid_config_rejected(self, frame):
        with pytest.raises(ConfigurationError):
            AdaptiveSampler([], frame, gps_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveSampler([], frame, margin_updates=-1.0)

    def test_no_zones_single_sample(self, make_platform, frame):
        adapter = make_adapter(make_platform)
        sampler = AdaptiveSampler([], frame)
        result = sampler.run(adapter, T0 + 30.0)
        assert result.stats.auth_samples == 1  # only the mandatory first

    def test_far_zone_few_samples(self, make_platform, frame):
        adapter = make_adapter(make_platform)
        zone = zone_at(frame, 0.0, 50_000.0, 100.0)  # 50 km away
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 30.0)
        assert result.stats.auth_samples <= 2

    def test_near_zone_dense_samples(self, make_platform, frame):
        adapter = make_adapter(make_platform)
        zone = zone_at(frame, 150.0, 40.0, 20.0)  # alongside the path
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 30.0)
        assert result.stats.auth_samples >= 15

    def test_adaptive_fewer_than_fixed_when_clear(self, make_platform, frame):
        zone = zone_at(frame, 0.0, 2_000.0, 50.0)
        adaptive_adapter = make_adapter(make_platform, seed=3)
        adaptive = AdaptiveSampler([zone], frame).run(adaptive_adapter,
                                                      T0 + 50.0)
        fixed_adapter = make_adapter(make_platform, seed=3)
        fixed = FixRateSampler(1.0).run(fixed_adapter, T0 + 50.0)
        assert adaptive.stats.auth_samples < fixed.stats.auth_samples

    def test_poa_is_sufficient_against_zone(self, make_platform, frame):
        """The whole point: adaptive PoAs prove alibi for the zone."""
        zone = zone_at(frame, 150.0, 60.0, 20.0)
        adapter = make_adapter(make_platform)
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 55.0)
        samples = [entry.sample for entry in result.poa]
        assert alibi_is_sufficient(samples, [zone], frame)

    def test_signatures_verify(self, make_platform, frame):
        zone = zone_at(frame, 150.0, 60.0, 20.0)
        adapter = make_adapter(make_platform)
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 20.0)
        assert result.poa.verify_all(adapter.device.tee_public_key)

    def test_nearest_zone_drives_rate(self, make_platform, frame):
        """Only the nearest zone matters (paper §IV-C3)."""
        near = zone_at(frame, 150.0, 60.0, 20.0)
        far = zone_at(frame, 0.0, 50_000.0, 100.0)
        a1 = make_adapter(make_platform, seed=5)
        only_near = AdaptiveSampler([near], frame).run(a1, T0 + 30.0)
        a2 = make_adapter(make_platform, seed=5)
        both = AdaptiveSampler([near, far], frame).run(a2, T0 + 30.0)
        assert both.stats.auth_samples == only_near.stats.auth_samples

    def test_late_sample_recovery_after_miss(self, make_platform, frame):
        """A missed update near a zone forces a late (insufficient) pair,
        after which the sampler re-anchors instead of stalling."""
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 40.0, 200.0, 0.0)])
        # Zone close to the mid-path point; force misses right when the
        # vehicle is nearest.
        zone = zone_at(frame, 100.0, 12.0, 5.0)
        adapter = make_adapter(make_platform, source=source,
                               forced_miss_indices={98, 99, 100, 101, 102})
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 40.0)
        assert result.stats.late_samples >= 1
        assert result.events.count("late_sample") >= 1
        # Sampling continued after the recovery.
        last_sample_t = result.stats.sample_times[-1]
        assert last_sample_t > T0 + 21.0

    def test_margin_zero_samples_later(self, make_platform, frame):
        """Smaller safety margin defers sampling (margin ablation sanity)."""
        zone = zone_at(frame, 150.0, 60.0, 20.0)
        a1 = make_adapter(make_platform, seed=6)
        wide = AdaptiveSampler([zone], frame, margin_updates=2.0).run(
            a1, T0 + 30.0)
        a2 = make_adapter(make_platform, seed=6)
        tight = AdaptiveSampler([zone], frame, margin_updates=0.0).run(
            a2, T0 + 30.0)
        assert tight.stats.auth_samples <= wide.stats.auth_samples

    def test_first_sample_is_flight_start(self, make_platform, frame):
        zone = zone_at(frame, 0.0, 2_000.0, 50.0)
        adapter = make_adapter(make_platform)
        result = AdaptiveSampler([zone], frame).run(adapter, T0 + 10.0)
        assert result.stats.sample_times[0] == pytest.approx(T0, abs=0.3)


class TestDegradedMode:
    def test_invalid_threshold_rejected(self, frame):
        with pytest.raises(ConfigurationError):
            AdaptiveSampler([], frame, degraded_threshold_updates=0.9)

    def test_no_dropouts_bit_identical_to_off(self, make_platform, frame):
        """Turning degraded mode on must not change a healthy flight:
        the margin only inflates after an observed dropout gap."""
        zone = zone_at(frame, 150.0, 60.0, 20.0)
        plain = AdaptiveSampler([zone], frame).run(
            make_adapter(make_platform, seed=2), T0 + 30.0)
        degraded = AdaptiveSampler([zone], frame, degraded_mode=True).run(
            make_adapter(make_platform, seed=2), T0 + 30.0)
        assert degraded.stats.sample_times == plain.stats.sample_times
        assert degraded.stats.degraded_decisions == 0
        assert degraded.events.count("degraded_margin") == 0

    def test_dropout_gap_inflates_margin(self, make_platform, frame):
        """A dropout burst near a zone trips the inflated margin: the
        sampler records degraded decisions and samples at least as often
        as the non-degraded run (safety can only tighten)."""
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 40.0, 200.0, 0.0)])
        zone = zone_at(frame, 100.0, 12.0, 5.0)
        misses = set(range(95, 105))  # a 2-second blind spot mid-flight

        plain = AdaptiveSampler([zone], frame).run(
            make_adapter(make_platform, source=source,
                         forced_miss_indices=misses), T0 + 40.0)
        degraded = AdaptiveSampler([zone], frame, degraded_mode=True).run(
            make_adapter(make_platform, source=source,
                         forced_miss_indices=misses), T0 + 40.0)

        assert degraded.stats.degraded_decisions > 0
        assert degraded.events.count("degraded_margin") >= 1
        assert degraded.stats.auth_samples >= plain.stats.auth_samples

    def test_margin_relaxes_after_recovery(self, make_platform, frame):
        """The gap estimate decays once fixes resume, so a brief early
        outage does not keep the margin inflated for the whole flight."""
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 40.0, 200.0, 0.0)])
        zone = zone_at(frame, 100.0, 12.0, 5.0)
        adapter = make_adapter(make_platform, source=source,
                               forced_miss_indices=set(range(10, 25)))
        result = AdaptiveSampler([zone], frame, degraded_mode=True).run(
            adapter, T0 + 40.0)
        # Degraded decisions happen, but not at every post-outage update.
        assert 0 < result.stats.degraded_decisions < result.stats.iterations
