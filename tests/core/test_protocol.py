"""Tests for repro.core.protocol."""

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.protocol import (
    NONCE_LENGTH,
    PoaSubmission,
    ZoneQuery,
    ZoneResponse,
    generate_nonce,
    rect_bounds,
)
from repro.errors import ProtocolError
from repro.geo.geodesy import GeoPoint


class TestNonce:
    def test_length(self, rng):
        assert len(generate_nonce(rng)) == NONCE_LENGTH

    def test_uniqueness(self, rng):
        assert generate_nonce(rng) != generate_nonce(rng)


class TestZoneQuery:
    def test_create_and_verify(self, signing_key, rng):
        query = ZoneQuery.create("drone-1", GeoPoint(40.0, -88.3),
                                 GeoPoint(40.2, -88.1), signing_key, rng=rng)
        assert query.verify(signing_key.public_key)

    def test_wrong_key_fails(self, signing_key, other_key, rng):
        query = ZoneQuery.create("drone-1", GeoPoint(40.0, -88.3),
                                 GeoPoint(40.2, -88.1), signing_key, rng=rng)
        assert not query.verify(other_key.public_key)

    def test_tampered_nonce_fails(self, signing_key, rng):
        query = ZoneQuery.create("drone-1", GeoPoint(40.0, -88.3),
                                 GeoPoint(40.2, -88.1), signing_key, rng=rng)
        forged = ZoneQuery(drone_id=query.drone_id, corner_a=query.corner_a,
                           corner_b=query.corner_b,
                           nonce=bytes(NONCE_LENGTH),
                           signature=query.signature)
        assert not forged.verify(signing_key.public_key)

    def test_malformed_nonce_length_fails(self, signing_key, rng):
        query = ZoneQuery.create("drone-1", GeoPoint(40.0, -88.3),
                                 GeoPoint(40.2, -88.1), signing_key, rng=rng)
        forged = ZoneQuery(drone_id=query.drone_id, corner_a=query.corner_a,
                           corner_b=query.corner_b, nonce=b"short",
                           signature=query.signature)
        assert not forged.verify(signing_key.public_key)


class TestZoneResponse:
    def test_zone_list(self):
        zone = NoFlyZone(40.0, -88.0, 10.0)
        response = ZoneResponse(zones=(("zone-1", zone),))
        assert response.zone_list == [zone]


class TestPoaSubmission:
    def test_window_validation(self):
        with pytest.raises(ProtocolError):
            PoaSubmission(drone_id="d", flight_id="f", records=[],
                          claimed_start=10.0, claimed_end=5.0)

    def test_records_are_tuple(self):
        sub = PoaSubmission(drone_id="d", flight_id="f", records=[],
                            claimed_start=0.0, claimed_end=1.0)
        assert sub.records == ()


class TestRectBounds:
    def test_normalization(self):
        a, b = GeoPoint(40.5, -88.0), GeoPoint(40.0, -88.5)
        assert rect_bounds(a, b) == (40.0, -88.5, 40.5, -88.0)
