"""Tests for repro.core.sufficiency (paper equation 1)."""

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.samples import GpsSample
from repro.core.sufficiency import (
    alibi_is_sufficient,
    count_insufficient_pairs,
    cumulative_insufficiency_series,
    insufficient_pair_indices,
    pair_is_sufficient,
    travel_ellipse,
)
from repro.errors import ConfigurationError
from repro.sim.clock import DEFAULT_EPOCH
from repro.units import FAA_MAX_SPEED_MPS

T0 = DEFAULT_EPOCH


def sample_at(frame, x, y, t):
    point = frame.to_geo(x, y)
    return GpsSample(lat=point.lat, lon=point.lon, t=T0 + t)


def zone_at(frame, x, y, r):
    center = frame.to_geo(x, y)
    return NoFlyZone(center.lat, center.lon, r)


class TestTravelEllipse:
    def test_focal_sum_from_dt(self, frame):
        a = sample_at(frame, 0, 0, 0.0)
        b = sample_at(frame, 10, 0, 2.0)
        e = travel_ellipse(a, b, frame, vmax_mps=50.0)
        assert e.focal_sum == pytest.approx(100.0)

    def test_out_of_order_rejected(self, frame):
        a = sample_at(frame, 0, 0, 1.0)
        b = sample_at(frame, 10, 0, 0.0)
        with pytest.raises(ConfigurationError):
            travel_ellipse(a, b, frame)


class TestPairSufficiency:
    def test_far_zone_sufficient(self, frame):
        a = sample_at(frame, 0, 0, 0.0)
        b = sample_at(frame, 50, 0, 1.0)
        zone = zone_at(frame, 0, 5000.0, 20.0)
        assert pair_is_sufficient(a, b, [zone], frame)

    def test_near_zone_insufficient(self, frame):
        a = sample_at(frame, 0, 0, 0.0)
        b = sample_at(frame, 50, 0, 1.0)
        zone = zone_at(frame, 25, 10.0, 20.0)
        assert not pair_is_sufficient(a, b, [zone], frame)

    def test_threshold_geometry(self, frame):
        """D1 + D2 straddles v_max * dt across the boundary distance."""
        vmax = FAA_MAX_SPEED_MPS
        dt = 1.0
        a = sample_at(frame, 0, 0, 0.0)
        b = sample_at(frame, 0, 0, dt)
        # Zone boundary at exactly vmax*dt/2 from the (stationary) drone:
        # D1 + D2 == vmax*dt -> insufficient (needs strict >).
        r = 10.0
        zone_exact = zone_at(frame, vmax * dt / 2.0 + r, 0, r)
        zone_clear = zone_at(frame, vmax * dt / 2.0 + r + 1.0, 0, r)
        assert not pair_is_sufficient(a, b, [zone_exact], frame, vmax)
        assert pair_is_sufficient(a, b, [zone_clear], frame, vmax)

    def test_all_zones_must_clear(self, frame):
        a = sample_at(frame, 0, 0, 0.0)
        b = sample_at(frame, 10, 0, 0.5)
        far = zone_at(frame, 0, 9000, 10.0)
        near = zone_at(frame, 5, 8, 5.0)
        assert pair_is_sufficient(a, b, [far], frame)
        assert not pair_is_sufficient(a, b, [far, near], frame)

    def test_no_zones_always_sufficient(self, frame):
        a = sample_at(frame, 0, 0, 0.0)
        b = sample_at(frame, 10, 0, 100.0)
        assert pair_is_sufficient(a, b, [], frame)

    def test_exact_method_passes_conservative_false_positive(self, frame):
        """The exact predicate accepts a pair the conservative one flags."""
        vmax = 10.0
        a = sample_at(frame, -10, 0, 0.0)
        b = sample_at(frame, 10, 0, 2.05)   # focal sum 20.5
        zone = zone_at(frame, 0, 3.5, 0.6)
        assert not pair_is_sufficient(a, b, [zone], frame, vmax,
                                      method="conservative")
        assert pair_is_sufficient(a, b, [zone], frame, vmax, method="exact")

    def test_unknown_method_rejected(self, frame):
        a = sample_at(frame, 0, 0, 0.0)
        b = sample_at(frame, 1, 0, 1.0)
        with pytest.raises(ConfigurationError):
            pair_is_sufficient(a, b, [], frame, method="magic")


class TestAlibiSufficiency:
    def _walkaway_trace(self, frame, n=6):
        # Samples every second moving away from a zone at the origin.
        return [sample_at(frame, 200.0 + 30.0 * i, 0, float(i))
                for i in range(n)]

    def test_dense_trace_sufficient(self, frame):
        zone = zone_at(frame, 0, 0, 50.0)
        samples = self._walkaway_trace(frame)
        assert alibi_is_sufficient(samples, [zone], frame)
        assert count_insufficient_pairs(samples, [zone], frame) == 0

    def test_sparse_trace_insufficient(self, frame):
        zone = zone_at(frame, 0, 0, 50.0)
        samples = [sample_at(frame, 200, 0, 0.0),
                   sample_at(frame, 260, 0, 60.0)]  # 60 s gap near a zone
        assert not alibi_is_sufficient(samples, [zone], frame)
        assert insufficient_pair_indices(samples, [zone], frame) == [0]

    def test_single_sample_with_zones_insufficient(self, frame):
        zone = zone_at(frame, 0, 0, 50.0)
        assert not alibi_is_sufficient([sample_at(frame, 500, 0, 0.0)],
                                       [zone], frame)

    def test_single_sample_no_zones_sufficient(self, frame):
        assert alibi_is_sufficient([sample_at(frame, 0, 0, 0.0)], [], frame)

    def test_insufficient_indices_identify_gap(self, frame):
        zone = zone_at(frame, 0, 0, 50.0)
        good = self._walkaway_trace(frame, n=4)
        gap = sample_at(frame, 330, 0, 60.0)   # long pause near the zone
        after = sample_at(frame, 360, 0, 61.0)
        samples = good + [gap, after]
        indices = insufficient_pair_indices(samples, [zone], frame)
        assert indices == [3]

    def test_cumulative_series_monotone(self, frame):
        zone = zone_at(frame, 0, 0, 50.0)
        samples = [sample_at(frame, 200 + 5 * i, 0, float(3 * i))
                   for i in range(10)]
        series = cumulative_insufficiency_series(samples, [zone], frame)
        assert len(series) == 9
        counts = [c for _, c in series]
        assert counts == sorted(counts)
        assert counts[-1] == count_insufficient_pairs(samples, [zone], frame)
