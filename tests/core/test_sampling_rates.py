"""Sampler behaviour across the receiver's supported rate range (1-5 Hz)."""

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.sampling import AdaptiveSampler, FixRateSampler
from repro.core.sufficiency import alibi_is_sufficient
from repro.drone.adapter import Adapter
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH, SimClock

T0 = DEFAULT_EPOCH


def build(make_device, frame, update_rate_hz, seed=1):
    from repro.gps.receiver import SimulatedGpsReceiver
    source = WaypointSource([(T0, 0.0, 0.0), (T0 + 60.0, 300.0, 0.0)])
    clock = SimClock(T0)
    receiver = SimulatedGpsReceiver(source, frame,
                                    update_rate_hz=update_rate_hz,
                                    start_time=T0, seed=seed)
    device = make_device(seed=seed)
    device.attach_gps(receiver, clock)
    adapter = Adapter(device, receiver, clock)
    adapter.start()
    return adapter


@pytest.mark.parametrize("rate", [1.0, 2.0, 5.0])
class TestAcrossReceiverRates:
    def test_fixed_sampler_tracks_receiver_rate(self, make_device, frame,
                                                rate):
        adapter = build(make_device, frame, rate)
        result = FixRateSampler(rate).run(adapter, T0 + 30.0)
        assert result.stats.auth_samples == pytest.approx(30 * rate + 1,
                                                          abs=2)

    def test_adaptive_poa_sufficient_at_any_rate(self, make_device, frame,
                                                 rate):
        """The margin scales with 2/R, so sufficiency must hold at 1 Hz
        just as at 5 Hz — the zone only needs to be far enough for the
        coarser update grid."""
        # Clearance sized for the slowest rate: v_max/R headroom at 1 Hz.
        center = frame.to_geo(150.0, 120.0)
        zone = NoFlyZone(center.lat, center.lon, 20.0)
        adapter = build(make_device, frame, rate)
        sampler = AdaptiveSampler([zone], frame, gps_rate_hz=rate)
        result = sampler.run(adapter, T0 + 60.0)
        samples = [entry.sample for entry in result.poa]
        assert alibi_is_sufficient(samples, [zone], frame)

    def test_adaptive_rate_bounded_by_receiver(self, make_device, frame,
                                               rate):
        center = frame.to_geo(150.0, 60.0)
        zone = NoFlyZone(center.lat, center.lon, 20.0)
        adapter = build(make_device, frame, rate)
        result = AdaptiveSampler([zone], frame,
                                 gps_rate_hz=rate).run(adapter, T0 + 60.0)
        assert result.stats.auth_samples <= 60 * rate + 2


class TestVerifierExactMethodEndToEnd:
    def test_server_with_exact_method(self, frame, make_device):
        """The Auditor can be configured with the exact geometric test."""
        import random
        from repro.core.protocol import ZoneRegistrationRequest
        from repro.drone.client import AliDroneClient
        from repro.server.auditor import AliDroneServer

        server = AliDroneServer(frame, rng=random.Random(3),
                                encryption_key_bits=512, method="exact")
        center = frame.to_geo(150.0, 120.0)
        server.register_zone(ZoneRegistrationRequest(
            zone=NoFlyZone(center.lat, center.lon, 20.0),
            proof_of_ownership="deed"))
        adapter = build(make_device, frame, 5.0, seed=7)
        client = AliDroneClient(adapter.device, adapter.receiver,
                                adapter.clock, frame,
                                rng=random.Random(4))
        client.register(server)
        record = client.fly(T0 + 40.0, policy="fixed", fixed_rate_hz=2.0,
                            zones=[NoFlyZone(center.lat, center.lon, 20.0)])
        report = client.submit_poa(server, record)
        assert report.compliant
