"""Tests for the incremental (real-time) verifier."""

import pytest

from repro.core.incremental import EntryVerdict, IncrementalVerifier
from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier, VerificationStatus
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def signed(key, frame, x, y, t):
    point = frame.to_geo(x, y)
    sample = GpsSample(lat=point.lat, lon=point.lon, t=T0 + t)
    payload = sample.to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


@pytest.fixture()
def zone(frame):
    center = frame.to_geo(0.0, 0.0)
    return NoFlyZone(center.lat, center.lon, 50.0)


@pytest.fixture()
def verifier(signing_key, frame, zone):
    return IncrementalVerifier(signing_key.public_key, [zone], frame)


class TestEntryClassification:
    def test_first_sample_accepted(self, verifier, signing_key, frame):
        verdict = verifier.push(signed(signing_key, frame, 300, 0, 0.0))
        assert verdict is EntryVerdict.ACCEPTED
        assert verifier.last_sample is not None

    def test_dense_compliant_stream_accepted(self, verifier, signing_key,
                                             frame):
        for i in range(6):
            verdict = verifier.push(
                signed(signing_key, frame, 300.0 + 20 * i, 0, float(i)))
            assert verdict is EntryVerdict.ACCEPTED
        assert verifier.report().status is VerificationStatus.ACCEPTED

    def test_bad_signature_rejected_and_anchor_unchanged(self, verifier,
                                                         signing_key,
                                                         other_key, frame):
        verifier.push(signed(signing_key, frame, 300, 0, 0.0))
        anchor = verifier.last_sample
        verdict = verifier.push(signed(other_key, frame, 320, 0, 1.0))
        assert verdict is EntryVerdict.REJECTED_SIGNATURE
        assert verifier.last_sample == anchor

    def test_time_regression_rejected(self, verifier, signing_key, frame):
        verifier.push(signed(signing_key, frame, 300, 0, 5.0))
        verdict = verifier.push(signed(signing_key, frame, 310, 0, 2.0))
        assert verdict is EntryVerdict.REJECTED_ORDER

    def test_teleport_rejected(self, verifier, signing_key, frame):
        verifier.push(signed(signing_key, frame, 300, 0, 0.0))
        verdict = verifier.push(signed(signing_key, frame, 20_300, 0, 1.0))
        assert verdict is EntryVerdict.REJECTED_INFEASIBLE

    def test_wide_gap_near_zone_is_insufficient(self, verifier, signing_key,
                                                frame):
        verifier.push(signed(signing_key, frame, 200, 0, 0.0))
        verdict = verifier.push(signed(signing_key, frame, 260, 0, 60.0))
        assert verdict is EntryVerdict.INSUFFICIENT_PAIR
        assert verifier.report().status is VerificationStatus.INSUFFICIENT

    def test_malformed_payload_rejected(self, verifier, signing_key):
        payload = b"not a gps payload at all!!!!!!!!!!!!"
        entry = SignedSample(payload=payload,
                             signature=sign_pkcs1_v15(signing_key, payload))
        assert verifier.push(entry) is EntryVerdict.REJECTED_MALFORMED


class TestReportSemantics:
    def test_empty_stream(self, verifier):
        assert verifier.report().status is VerificationStatus.REJECTED_EMPTY

    def test_single_sample_with_zone_insufficient(self, verifier,
                                                  signing_key, frame):
        verifier.push(signed(signing_key, frame, 300, 0, 0.0))
        assert verifier.report().status is VerificationStatus.INSUFFICIENT

    def test_rejection_dominates_sufficiency(self, verifier, signing_key,
                                             other_key, frame):
        for i in range(4):
            verifier.push(signed(signing_key, frame, 300.0 + 20 * i, 0,
                                 float(i)))
        verifier.push(signed(other_key, frame, 400, 0, 4.0))
        assert verifier.report().status is (
            VerificationStatus.REJECTED_BAD_SIGNATURE)

    def test_matches_batch_verifier_on_clean_stream(self, signing_key,
                                                    frame, zone):
        entries = [signed(signing_key, frame, 250.0 + 15 * i, 0.0,
                          float(i) * 0.7)
                   for i in range(12)]
        incremental = IncrementalVerifier(signing_key.public_key, [zone],
                                          frame)
        for entry in entries:
            incremental.push(entry)
        batch = PoaVerifier(frame).verify(ProofOfAlibi(entries),
                                          signing_key.public_key, [zone])
        assert incremental.report().status == batch.status

    def test_matches_batch_verifier_on_insufficient_stream(self, signing_key,
                                                           frame, zone):
        entries = [signed(signing_key, frame, 200.0, 0.0, 0.0),
                   signed(signing_key, frame, 260.0, 0.0, 60.0),
                   signed(signing_key, frame, 280.0, 0.0, 61.0)]
        incremental = IncrementalVerifier(signing_key.public_key, [zone],
                                          frame)
        for entry in entries:
            incremental.push(entry)
        batch = PoaVerifier(frame).verify(ProofOfAlibi(entries),
                                          signing_key.public_key, [zone])
        assert incremental.report().status == batch.status

    def test_state_counters(self, verifier, signing_key, other_key, frame):
        verifier.push(signed(signing_key, frame, 300, 0, 0.0))
        verifier.push(signed(other_key, frame, 310, 0, 1.0))
        verifier.push(signed(signing_key, frame, 320, 0, 2.0))
        state = verifier.state
        assert state.entries_seen == 3
        assert state.entries_accepted == 2
        assert state.rejected == {"bad_signature": 1}
