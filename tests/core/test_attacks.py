"""Tests for repro.core.attacks: every forgery strategy must be caught."""

import random

import pytest

from repro.core.attacks import (
    forge_straight_route,
    relay_foreign_poa,
    replay_old_poa,
    shuffle_poa,
    splice_poas,
    tamper_with_samples,
)
from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier, VerificationStatus
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.geo.geodesy import GeoPoint
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def signed(key, sample):
    payload = sample.to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


def sample_at(frame, x, y, t):
    point = frame.to_geo(x, y)
    return GpsSample(lat=point.lat, lon=point.lon, t=T0 + t)


@pytest.fixture()
def verifier(frame):
    return PoaVerifier(frame)


@pytest.fixture()
def zone(frame):
    center = frame.to_geo(0.0, 0.0)
    return NoFlyZone(center.lat, center.lon, 50.0)


@pytest.fixture()
def honest_poa(signing_key, frame):
    return ProofOfAlibi(
        signed(signing_key, sample_at(frame, 200.0 + 10.0 * i, 0.0, float(i)))
        for i in range(10))


class TestForgeStraightRoute:
    def test_signatures_fail_under_registered_key(self, verifier, frame,
                                                  signing_key, other_key,
                                                  zone):
        forged = forge_straight_route(
            frame.to_geo(300, 0), frame.to_geo(400, 0),
            T0, T0 + 20.0, 15, attacker_key=other_key)
        report = verifier.verify(forged, signing_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE

    def test_forged_route_internally_consistent(self, other_key, frame):
        """The forgery is a *good* forgery: valid under the attacker key."""
        forged = forge_straight_route(GeoPoint(40.0, -88.0),
                                      GeoPoint(40.01, -88.0),
                                      T0, T0 + 30.0, 10,
                                      attacker_key=other_key)
        assert forged.verify_all(other_key.public_key)
        times = [e.sample.t for e in forged]
        assert times == sorted(times)


class TestTampering:
    def test_shifted_samples_fail_signature(self, verifier, honest_poa,
                                            signing_key, zone):
        moved = tamper_with_samples(honest_poa, 0.01, 0.0)
        report = verifier.verify(moved, signing_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE

    def test_partial_tampering_identified(self, verifier, honest_poa,
                                          signing_key, zone):
        moved = tamper_with_samples(honest_poa, 0.01, 0.0, indices=[2, 5])
        report = verifier.verify(moved, signing_key.public_key, [zone])
        assert report.bad_signature_indices == [2, 5]

    def test_untampered_entries_untouched(self, honest_poa):
        moved = tamper_with_samples(honest_poa, 0.01, 0.0, indices=[0])
        assert moved[1] == honest_poa[1]


class TestReplay:
    def test_replayed_poa_does_not_cover_new_incident(self, honest_poa,
                                                      frame, zone):
        """Replay keeps valid signatures but old timestamps."""
        replayed = replay_old_poa(honest_poa)
        incident_time = T0 + 3600.0  # during the *new* flight
        samples = [e.sample for e in replayed]
        assert not any(a.t <= incident_time <= b.t
                       for a, b in zip(samples, samples[1:]))


class TestRelay:
    def test_foreign_poa_fails_key_binding(self, verifier, frame, other_key,
                                           signing_key, zone):
        accomplice_poa = ProofOfAlibi(
            signed(other_key, sample_at(frame, 200.0 + 10 * i, 0, float(i)))
            for i in range(5))
        relayed = relay_foreign_poa(accomplice_poa)
        # Valid under the accomplice's key...
        assert relayed.verify_all(other_key.public_key)
        # ...but rejected under the accused drone's registered key.
        report = verifier.verify(relayed, signing_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE


class TestSplice:
    def test_splice_detected_as_infeasible_or_insufficient(self, verifier,
                                                           signing_key,
                                                           frame, zone):
        """Honest before/after segments around an incursion can't hide it."""
        before = ProofOfAlibi(
            signed(signing_key, sample_at(frame, 200 + 5 * i, 0, float(i)))
            for i in range(4))
        # After segment: far side of the zone, resuming much later — the
        # junction pair either implies a teleport or admits zone entry.
        after = ProofOfAlibi(
            signed(signing_key, sample_at(frame, -300 - 5 * i, 0, 10.0 + i))
            for i in range(4))
        spliced = splice_poas(before, after)
        report = verifier.verify(spliced, signing_key.public_key, [zone])
        assert report.status in (VerificationStatus.REJECTED_INFEASIBLE,
                                 VerificationStatus.INSUFFICIENT)
        assert not report.compliant


class TestShuffle:
    def test_reordered_poa_rejected(self, verifier, honest_poa, signing_key,
                                    zone):
        shuffled = shuffle_poa(honest_poa, random.Random(1))
        # Guard against the identity shuffle.
        if [e.sample.t for e in shuffled] == [e.sample.t for e in honest_poa]:
            pytest.skip("shuffle happened to be identity")
        report = verifier.verify(shuffled, signing_key.public_key, [zone])
        assert report.status in (VerificationStatus.REJECTED_MALFORMED,
                                 VerificationStatus.REJECTED_INFEASIBLE)
