"""Tests for repro.core.samples."""

import math

import pytest

from repro.core.samples import GpsSample, Trace
from repro.errors import EncodingError, GeometryError
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


class TestGpsSample:
    def test_valid_construction(self):
        s = GpsSample(lat=40.0, lon=-88.0, t=T0)
        assert s.alt is None

    @pytest.mark.parametrize("kwargs", [
        dict(lat=91.0, lon=0.0, t=0.0),
        dict(lat=0.0, lon=181.0, t=0.0),
        dict(lat=float("nan"), lon=0.0, t=0.0),
        dict(lat=0.0, lon=0.0, t=float("inf")),
        dict(lat=0.0, lon=0.0, t=0.0, alt=float("nan")),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(GeometryError):
            GpsSample(**kwargs)

    def test_payload_round_trip_2d(self):
        s = GpsSample(lat=40.1234567, lon=-88.7654321, t=T0 + 1.25)
        back = GpsSample.from_signed_payload(s.to_signed_payload())
        assert back.lat == pytest.approx(s.lat, abs=1e-7)
        assert back.lon == pytest.approx(s.lon, abs=1e-7)
        assert back.t == pytest.approx(s.t, abs=1e-6)
        assert back.alt is None

    def test_payload_round_trip_3d(self):
        s = GpsSample(lat=40.0, lon=-88.0, t=T0, alt=120.505)
        back = GpsSample.from_signed_payload(s.to_signed_payload())
        assert back.alt == pytest.approx(120.505, abs=1e-3)

    def test_payload_is_fixed_length(self):
        a = GpsSample(lat=0.0, lon=0.0, t=0.0)
        b = GpsSample(lat=-89.9999999, lon=179.9999999, t=T0 + 86400.0,
                      alt=5000.0)
        assert len(a.to_signed_payload()) == len(b.to_signed_payload()) == 36

    def test_canonical_is_idempotent(self):
        s = GpsSample(lat=40.123456789, lon=-88.98765432, t=T0 + 0.123456789)
        c = s.canonical()
        assert c.canonical() == c
        assert c.to_signed_payload() == s.to_signed_payload()

    def test_malformed_payload_rejected(self):
        with pytest.raises(EncodingError):
            GpsSample.from_signed_payload(b"garbage")
        with pytest.raises(EncodingError):
            GpsSample.from_signed_payload(b"XXXX" + b"\x00" * 32)

    def test_local_position(self, frame):
        s = GpsSample(lat=frame.origin.lat, lon=frame.origin.lon, t=T0)
        assert s.local_position(frame) == pytest.approx((0.0, 0.0))


class TestTrace:
    def _sample(self, t, x=0.0):
        return GpsSample(lat=40.0 + x * 1e-5, lon=-88.0, t=t)

    def test_append_enforces_time_order(self):
        trace = Trace([self._sample(T0), self._sample(T0 + 1)])
        with pytest.raises(GeometryError):
            trace.append(self._sample(T0 + 0.5))

    def test_equal_timestamps_allowed(self):
        trace = Trace([self._sample(T0), self._sample(T0)])
        assert len(trace) == 2

    def test_iteration_and_indexing(self):
        samples = [self._sample(T0 + i) for i in range(4)]
        trace = Trace(samples)
        assert list(trace) == samples
        assert trace[2] == samples[2]
        assert trace.samples == tuple(samples)

    def test_duration(self):
        trace = Trace([self._sample(T0), self._sample(T0 + 7.5)])
        assert trace.duration == 7.5
        assert Trace([self._sample(T0)]).duration == 0.0
        assert Trace().duration == 0.0

    def test_pairs(self):
        trace = Trace([self._sample(T0 + i) for i in range(3)])
        pairs = list(trace.pairs())
        assert len(pairs) == 2
        assert pairs[0][1] == pairs[1][0]

    def test_max_speed(self, frame):
        a = GpsSample(lat=frame.origin.lat, lon=frame.origin.lon, t=T0)
        point = frame.to_geo(100.0, 0.0)
        b = GpsSample(lat=point.lat, lon=point.lon, t=T0 + 10.0)
        trace = Trace([a, b])
        assert trace.max_speed_mps(frame) == pytest.approx(10.0, rel=1e-6)

    def test_max_speed_zero_dt_is_infinite(self, frame):
        a = GpsSample(lat=frame.origin.lat, lon=frame.origin.lon, t=T0)
        point = frame.to_geo(1.0, 0.0)
        b = GpsSample(lat=point.lat, lon=point.lon, t=T0)
        assert math.isinf(Trace([a, b]).max_speed_mps(frame))
