"""Tests for repro.core.nfz."""

import pytest

from repro.core.nfz import CylinderNfz, NoFlyZone, PolygonNfz
from repro.errors import GeometryError
from repro.units import feet_to_meters


class TestNoFlyZone:
    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            NoFlyZone(40.0, -88.0, -5.0)

    def test_invalid_center_rejected(self):
        with pytest.raises(GeometryError):
            NoFlyZone(95.0, 0.0, 10.0)

    def test_to_circle(self, frame):
        zone = NoFlyZone(frame.origin.lat, frame.origin.lon, 30.0)
        circle = zone.to_circle(frame)
        assert circle.center == pytest.approx((0.0, 0.0))
        assert circle.r == 30.0

    def test_to_circle_cached_per_frame(self, frame):
        from repro.geo.geodesy import GeoPoint, LocalFrame
        zone = NoFlyZone(40.1, -88.22, 30.0)
        assert zone.to_circle(frame) is zone.to_circle(frame)
        other = LocalFrame(GeoPoint(40.2, -88.0))
        assert zone.to_circle(other) is not zone.to_circle(frame)
        assert zone.to_circle(other) == zone.to_circle(other)
        # Equal zones share one cache slot per frame.
        twin = NoFlyZone(40.1, -88.22, 30.0)
        assert twin.to_circle(frame) is zone.to_circle(frame)

    def test_boundary_distance(self, frame):
        center = frame.to_geo(100.0, 0.0)
        zone = NoFlyZone(center.lat, center.lon, 30.0)
        assert zone.boundary_distance_m((0.0, 0.0), frame) == pytest.approx(
            70.0, abs=1e-6)


class TestCylinderNfz:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(GeometryError):
            CylinderNfz(40.0, -88.0, -1.0, 10.0)
        with pytest.raises(GeometryError):
            CylinderNfz(40.0, -88.0, 100.0, -10.0)

    def test_to_cylinder(self, frame):
        zone = CylinderNfz(frame.origin.lat, frame.origin.lon,
                           ceiling_m=120.0, radius_m=25.0)
        cyl = zone.to_cylinder(frame)
        assert cyl.height == 120.0
        assert cyl.r == 25.0

    def test_footprint(self, frame):
        zone = CylinderNfz(40.0, -88.0, ceiling_m=120.0, radius_m=25.0)
        footprint = zone.footprint()
        assert footprint.radius_m == 25.0
        assert footprint.lat == zone.lat


class TestPolygonNfz:
    def test_too_few_vertices_rejected(self):
        with pytest.raises(GeometryError):
            PolygonNfz([(40.0, -88.0), (40.1, -88.0)])

    def test_canonical_circle_covers_vertices(self, frame):
        corners_local = [(0.0, 0.0), (100.0, 0.0), (100.0, 60.0), (0.0, 60.0)]
        vertices = [(frame.to_geo(x, y).lat, frame.to_geo(x, y).lon)
                    for x, y in corners_local]
        zone = PolygonNfz(vertices)
        canonical = zone.canonical_circle(frame)
        circle = canonical.to_circle(frame)
        for x, y in corners_local:
            assert circle.contains((x, y), tol=1e-3)

    def test_canonical_circle_radius_half_diagonal(self, frame):
        corners_local = [(0.0, 0.0), (60.0, 0.0), (60.0, 80.0), (0.0, 80.0)]
        vertices = [(frame.to_geo(x, y).lat, frame.to_geo(x, y).lon)
                    for x, y in corners_local]
        canonical = PolygonNfz(vertices).canonical_circle(frame)
        assert canonical.radius_m == pytest.approx(50.0, rel=1e-4)

    def test_to_polygon(self, frame):
        vertices = [(frame.to_geo(0, 0).lat, frame.to_geo(0, 0).lon),
                    (frame.to_geo(30, 0).lat, frame.to_geo(30, 0).lon),
                    (frame.to_geo(0, 40).lat, frame.to_geo(0, 40).lon)]
        poly = PolygonNfz(vertices).to_polygon(frame)
        assert poly.area() == pytest.approx(600.0, rel=1e-4)


class TestPaperConstants:
    def test_house_zone_radius(self):
        """The residential zones use the paper's 20 ft radius."""
        from repro.workloads.residential import HOUSE_NFZ_RADIUS_M
        assert HOUSE_NFZ_RADIUS_M == pytest.approx(feet_to_meters(20.0))

    def test_airport_zone_radius(self):
        from repro.workloads.airport import AIRPORT_NFZ_RADIUS_M
        assert AIRPORT_NFZ_RADIUS_M == pytest.approx(5.0 * 1609.344)
