"""Exhaustive serialization mutation: flip every bit of a PoA batch.

Satellite of the adversary PR: for a small serialized batch, every
single-bit corruption must leave the system in one of exactly two safe
states — ``from_bytes`` raises a *typed* :class:`EncodingError`, or the
decoded PoA fails verification.  No mutation may be accepted, and no
mutation may escape as an untyped exception (the deployment contract is
that everything repro raises derives from :class:`AliDroneError`).
"""

from __future__ import annotations

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier, VerificationStatus
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.errors import AliDroneError, EncodingError


@pytest.fixture(scope="module")
def verifier(frame) -> PoaVerifier:
    return PoaVerifier(frame)


@pytest.fixture(scope="module")
def zone(frame) -> NoFlyZone:
    center = frame.to_geo(50.0, 5_000.0)
    return NoFlyZone(center.lat, center.lon, 60.0)


@pytest.fixture(scope="module")
def baseline(frame, signing_key):
    """A 3-sample PoA that verifies ACCEPTED, plus its encoding."""
    poa = ProofOfAlibi()
    for i in range(3):
        point = frame.to_geo(40.0 * i, 0.0)
        payload = GpsSample(point.lat, point.lon,
                            1_000_000.0 + 30.0 * i).to_signed_payload()
        poa.append(SignedSample(
            payload=payload,
            signature=sign_pkcs1_v15(signing_key, payload, "sha1")))
    return poa, poa.to_bytes()


def test_baseline_round_trips_and_verifies(verifier, baseline, signing_key,
                                           zone):
    poa, blob = baseline
    again = ProofOfAlibi.from_bytes(blob)
    assert again.to_bytes() == blob
    report = verifier.verify(again, signing_key.public_key, [zone])
    assert report.status is VerificationStatus.ACCEPTED


def test_every_single_bit_flip_is_rejected_with_typed_errors(
        verifier, baseline, signing_key, zone):
    _, blob = baseline
    accepted: list[str] = []
    untyped: list[str] = []
    decode_errors = 0
    rejections = 0

    for offset in range(len(blob)):
        for bit in range(8):
            mutated = bytearray(blob)
            mutated[offset] ^= 1 << bit
            where = f"byte {offset} bit {bit}"
            try:
                poa = ProofOfAlibi.from_bytes(bytes(mutated))
            except EncodingError:
                decode_errors += 1
                continue
            except Exception as exc:  # noqa: BLE001 — the point of the test
                untyped.append(f"{where}: from_bytes raised {exc!r}")
                continue
            try:
                report = verifier.verify(poa, signing_key.public_key, [zone])
            except AliDroneError:
                rejections += 1  # typed pipeline error: safe
                continue
            except Exception as exc:  # noqa: BLE001
                untyped.append(f"{where}: verify raised {exc!r}")
                continue
            if report.status is VerificationStatus.ACCEPTED:
                accepted.append(where)
            else:
                rejections += 1

    assert untyped == []
    assert accepted == []
    # Both safe endpoints must actually occur across the sweep: some
    # flips break the framing (decode error), others survive decoding
    # and must be caught by verification.
    assert decode_errors > 0
    assert rejections > 0
    assert decode_errors + rejections == 8 * len(blob)
