"""Tests for repro.core.verification: the Auditor's pipeline."""

import pytest

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import (
    PoaVerifier,
    VerificationPipeline,
    VerificationStatus,
)
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.perf.meter import StageMetrics
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


def signed(key, sample):
    payload = sample.to_signed_payload()
    return SignedSample(payload=payload,
                        signature=sign_pkcs1_v15(key, payload, "sha1"))


def sample_at(frame, x, y, t):
    point = frame.to_geo(x, y)
    return GpsSample(lat=point.lat, lon=point.lon, t=T0 + t)


@pytest.fixture()
def verifier(frame):
    return PoaVerifier(frame)


@pytest.fixture()
def zone(frame):
    center = frame.to_geo(0.0, 0.0)
    return NoFlyZone(center.lat, center.lon, 50.0)


@pytest.fixture()
def good_poa(signing_key, frame):
    """Dense samples walking away from the origin zone."""
    return ProofOfAlibi(
        signed(signing_key, sample_at(frame, 200.0 + 20.0 * i, 0.0, float(i)))
        for i in range(8))


class TestAcceptance:
    def test_good_poa_accepted(self, verifier, good_poa, signing_key, zone):
        report = verifier.verify(good_poa, signing_key.public_key, [zone])
        assert report.status is VerificationStatus.ACCEPTED
        assert report.compliant
        assert report.sample_count == 8

    def test_no_zones_accepted(self, verifier, good_poa, signing_key):
        report = verifier.verify(good_poa, signing_key.public_key, [])
        assert report.compliant


class TestRejections:
    def test_empty_poa(self, verifier, signing_key, zone):
        report = verifier.verify(ProofOfAlibi(), signing_key.public_key,
                                 [zone])
        assert report.status is VerificationStatus.REJECTED_EMPTY

    def test_bad_signature(self, verifier, good_poa, other_key, zone):
        report = verifier.verify(good_poa, other_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE
        assert len(report.bad_signature_indices) == len(good_poa)

    def test_single_bad_signature_identified(self, verifier, good_poa,
                                             signing_key, zone):
        entries = list(good_poa.entries)
        entries[3] = SignedSample(payload=entries[3].payload,
                                  signature=b"\x01" * 64)
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE
        assert report.bad_signature_indices == [3]

    def test_out_of_order_timestamps(self, verifier, signing_key, frame, zone):
        entries = [signed(signing_key, sample_at(frame, 300, 0, 5.0)),
                   signed(signing_key, sample_at(frame, 310, 0, 2.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_MALFORMED

    def test_infeasible_speed(self, verifier, signing_key, frame, zone):
        """10 km in one second is physically impossible: forged trace."""
        entries = [signed(signing_key, sample_at(frame, 300, 0, 0.0)),
                   signed(signing_key, sample_at(frame, 10_300, 0, 1.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_INFEASIBLE
        assert report.infeasible_pair_indices == [0]

    def test_feasibility_slack_tolerates_gps_noise(self, verifier,
                                                   signing_key, frame, zone):
        """Motion at exactly v_max plus metre-level noise must pass."""
        vmax = verifier.vmax_mps
        entries = [signed(signing_key, sample_at(frame, 300, 0, 0.0)),
                   signed(signing_key,
                          sample_at(frame, 300 + vmax + 0.5, 0, 1.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [])
        assert report.status is not VerificationStatus.REJECTED_INFEASIBLE

    def test_same_instant_different_positions_infeasible(self, verifier,
                                                         signing_key, frame):
        """dt == 0 with distinct positions is rejected outright: the check
        is explicit, not a side effect of the epsilon on the speed bound."""
        entries = [signed(signing_key, sample_at(frame, 300, 0, 1.0)),
                   signed(signing_key, sample_at(frame, 300.5, 0, 1.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [])
        assert report.status is VerificationStatus.REJECTED_INFEASIBLE
        assert report.infeasible_pair_indices == [0]

    def test_same_instant_same_position_allowed(self, verifier, signing_key,
                                                frame):
        """A duplicated sample (same time, same place) is not infeasible."""
        entries = [signed(signing_key, sample_at(frame, 300, 0, 1.0)),
                   signed(signing_key, sample_at(frame, 300, 0, 1.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [])
        assert report.status is not VerificationStatus.REJECTED_INFEASIBLE

    def test_insufficient_gap(self, verifier, signing_key, frame, zone):
        entries = [signed(signing_key, sample_at(frame, 200, 0, 0.0)),
                   signed(signing_key, sample_at(frame, 260, 0, 60.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone])
        assert report.status is VerificationStatus.INSUFFICIENT
        assert report.insufficient_pair_indices == [0]
        assert not report.compliant

    def test_single_sample_with_zone_insufficient(self, verifier,
                                                  signing_key, frame, zone):
        entries = [signed(signing_key, sample_at(frame, 500, 0, 0.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone])
        assert report.status is VerificationStatus.INSUFFICIENT


class TestCollectFindingsMode:
    def test_collects_independent_failures(self, verifier, frame,
                                           signing_key, other_key, zone):
        """A forged *and* insufficient PoA reports both problems at once,
        with the most severe finding deciding the status."""
        entries = [signed(other_key, sample_at(frame, 200, 0, 0.0)),
                   signed(other_key, sample_at(frame, 260, 0, 60.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone],
                                 mode=VerificationPipeline.COLLECT_FINDINGS)
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE
        assert report.bad_signature_indices == [0, 1]
        assert report.insufficient_pair_indices == [0]
        assert "signatures failed" in report.message
        assert "cannot rule out NFZ entrance" in report.message

    def test_blocking_stage_still_stops_collection(self, verifier,
                                                   signing_key, zone):
        """An undecodable PoA has nothing for the geometric stages to
        inspect, so collection stops at the decode failure."""
        payload = b"not a GPS sample payload"
        poa = ProofOfAlibi([SignedSample(
            payload=payload,
            signature=sign_pkcs1_v15(signing_key, payload, "sha1"))])
        report = verifier.verify(poa, signing_key.public_key, [zone],
                                 mode=VerificationPipeline.COLLECT_FINDINGS)
        assert report.status is VerificationStatus.REJECTED_MALFORMED
        assert report.infeasible_pair_indices == []
        assert report.insufficient_pair_indices == []

    def test_clean_poa_identical_in_both_modes(self, verifier, good_poa,
                                               signing_key, zone):
        short = verifier.verify(good_poa, signing_key.public_key, [zone])
        collected = verifier.verify(
            good_poa, signing_key.public_key, [zone],
            mode=VerificationPipeline.COLLECT_FINDINGS)
        assert short == collected

    def test_unknown_mode_rejected(self, verifier):
        with pytest.raises(ValueError):
            verifier.pipeline(mode="eager")


class TestStageMetricsWiring:
    def test_verifier_records_per_stage_timings(self, frame, good_poa,
                                                signing_key, zone):
        metrics = StageMetrics()
        verifier = PoaVerifier(frame, metrics=metrics)
        verifier.verify(good_poa, signing_key.public_key, [zone])
        assert metrics.stages() == ["signature", "decode", "ordering",
                                    "feasibility", "disclosure",
                                    "sufficiency"]
        assert metrics.runs("signature") == 1
        assert metrics.total_samples("signature") == len(good_poa)
        # Pair stages process n - 1 sample pairs.
        assert metrics.total_samples("feasibility") == len(good_poa) - 1

    def test_short_circuit_skips_downstream_timings(self, frame, good_poa,
                                                    other_key, zone):
        metrics = StageMetrics()
        verifier = PoaVerifier(frame, metrics=metrics)
        verifier.verify(good_poa, other_key.public_key, [zone])
        assert metrics.stages() == ["signature"]


class TestStageOrdering:
    def test_signature_check_precedes_sufficiency(self, verifier, frame,
                                                  other_key, zone,
                                                  signing_key):
        """A forged PoA must be reported as forged, not merely insufficient."""
        entries = [signed(other_key, sample_at(frame, 200, 0, 0.0)),
                   signed(other_key, sample_at(frame, 260, 0, 60.0))]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone])
        assert report.status is VerificationStatus.REJECTED_BAD_SIGNATURE

    def test_exact_method_report(self, frame, signing_key, zone):
        verifier = PoaVerifier(frame, method="exact")
        entries = [signed(signing_key, sample_at(frame, 200 + 20 * i, 0,
                                                 float(i)))
                   for i in range(5)]
        report = verifier.verify(ProofOfAlibi(entries),
                                 signing_key.public_key, [zone])
        assert report.compliant
