"""Tests for repro.core.poa."""

import pytest

from repro.core.poa import (
    EncryptedPoaRecord,
    ProofOfAlibi,
    SignedSample,
    decrypt_poa,
    encrypt_poa,
)
from repro.core.samples import GpsSample
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.errors import EncodingError, EncryptionError
from repro.sim.clock import DEFAULT_EPOCH

T0 = DEFAULT_EPOCH


@pytest.fixture()
def poa(signing_key):
    entries = []
    for i in range(5):
        sample = GpsSample(lat=40.0 + i * 1e-4, lon=-88.0, t=T0 + i)
        payload = sample.to_signed_payload()
        entries.append(SignedSample(
            payload=payload,
            signature=sign_pkcs1_v15(signing_key, payload, "sha1")))
    return ProofOfAlibi(entries)


class TestSignedSample:
    def test_sample_decoding(self, poa):
        assert poa[0].sample.t == pytest.approx(T0)

    def test_verify_good_and_bad_key(self, poa, signing_key, other_key):
        assert poa[0].verify(signing_key.public_key)
        assert not poa[0].verify(other_key.public_key)

    def test_from_ta_output(self, signing_key):
        sample = GpsSample(lat=1.0, lon=2.0, t=T0)
        payload = sample.to_signed_payload()
        out = {"payload": payload,
               "signature": sign_pkcs1_v15(signing_key, payload)}
        entry = SignedSample.from_ta_output(out)
        assert entry.verify(signing_key.public_key)


class TestProofOfAlibi:
    def test_container_protocol(self, poa):
        assert len(poa) == 5
        assert list(poa)[0] == poa[0]
        assert len(poa.entries) == 5

    def test_trace_decoding(self, poa):
        trace = poa.trace()
        assert len(trace) == 5
        assert trace[4].t - trace[0].t == pytest.approx(4.0)

    def test_verify_all(self, poa, signing_key, other_key):
        assert poa.verify_all(signing_key.public_key)
        assert not poa.verify_all(other_key.public_key)

    def test_verify_all_one_bad_entry(self, poa, signing_key):
        bad = ProofOfAlibi(list(poa.entries[:-1])
                           + [SignedSample(payload=poa[4].payload,
                                           signature=b"\x00" * 64)])
        assert not bad.verify_all(signing_key.public_key)

    def test_serialization_round_trip(self, poa):
        restored = ProofOfAlibi.from_bytes(poa.to_bytes())
        assert restored.entries == poa.entries

    def test_empty_serialization(self):
        assert ProofOfAlibi.from_bytes(ProofOfAlibi().to_bytes()).entries == ()

    @pytest.mark.parametrize("mutate", [
        lambda data: data[:-1],           # truncated body
        lambda data: data + b"\x00",      # trailing bytes
        lambda data: data[:2],            # truncated header
    ])
    def test_malformed_bytes_rejected(self, poa, mutate):
        with pytest.raises(EncodingError):
            ProofOfAlibi.from_bytes(mutate(poa.to_bytes()))


class TestPoaEncryption:
    def test_round_trip(self, poa, other_key, rng):
        # other_key plays the Auditor's encryption keypair.
        records = encrypt_poa(poa, other_key.public_key, rng=rng)
        restored = decrypt_poa(records, other_key)
        assert restored.entries == poa.entries

    def test_ciphertext_hides_payload(self, poa, other_key, rng):
        records = encrypt_poa(poa, other_key.public_key, rng=rng)
        for record, entry in zip(records, poa):
            assert entry.payload not in record.ciphertext

    def test_signature_stays_cleartext(self, poa, other_key, rng):
        records = encrypt_poa(poa, other_key.public_key, rng=rng)
        assert records[0].signature == poa[0].signature

    def test_tampered_record_rejected(self, poa, other_key, rng):
        records = encrypt_poa(poa, other_key.public_key, rng=rng)
        bad = EncryptedPoaRecord(
            ciphertext=bytes(records[0].ciphertext[:-1])
            + bytes([records[0].ciphertext[-1] ^ 1]),
            signature=records[0].signature)
        with pytest.raises(EncryptionError):
            decrypt_poa([bad], other_key)

    def test_wrong_key_rejected(self, poa, signing_key, other_key, rng):
        records = encrypt_poa(poa, other_key.public_key, rng=rng)
        with pytest.raises(EncryptionError):
            decrypt_poa(records, signing_key)
