"""The chained GPS Sampler TA: commitment, links, and flight closure."""

from __future__ import annotations

import pytest

from repro.crypto.pkcs1 import verify_pkcs1_v15
from repro.crypto.schemes import (
    SCHEME_CHAIN,
    ChainFinalizer,
    chain_commit_payload,
    get_scheme,
)
from repro.errors import TrustedAppError
from repro.tee.chained_sampler_ta import (
    CHAINED_SAMPLER_UUID,
    CMD_FINALIZE_FLIGHT,
    CMD_START_FLIGHT,
)
from repro.tee.gps_sampler_ta import CMD_GET_GPS_AUTH


@pytest.fixture()
def platform(make_platform):
    return make_platform()


def _open(device, chain_seed=99):
    return device.client.open_session(
        CHAINED_SAMPLER_UUID, {"hash_name": "sha1",
                               "chain_seed": chain_seed})


def _fly(device, clock, samples=5, session=None):
    sid = session if session is not None else _open(device)
    start = device.client.invoke(sid, CMD_START_FLIGHT)
    entries = []
    for _ in range(samples):
        clock.advance(1.0)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH)
        entries.append((out["payload"], out["signature"]))
    final = device.client.invoke(sid, CMD_FINALIZE_FLIGHT)
    device.client.close_session(sid)
    return start, entries, final


class TestChainedSamplerTA:
    def test_installed_at_provisioning(self, platform):
        device, _, _ = platform
        sid = _open(device)
        device.client.close_session(sid)

    def test_auth_before_start_flight_rejected(self, platform):
        device, _, clock = platform
        sid = _open(device)
        clock.advance(1.0)
        with pytest.raises(TrustedAppError, match="StartFlight"):
            device.client.invoke(sid, CMD_GET_GPS_AUTH)
        device.client.close_session(sid)

    def test_commitment_verifies_under_t_plus(self, platform):
        device, _, clock = platform
        start, _, _ = _fly(device, clock)
        assert verify_pkcs1_v15(device.tee_public_key,
                                chain_commit_payload(start["anchor"]),
                                start["commitment_signature"])

    def test_flight_verifies_under_chain_scheme(self, platform):
        device, _, clock = platform
        start, entries, final = _fly(device, clock, samples=6)
        assert final["scheme"] == SCHEME_CHAIN
        fin = ChainFinalizer.from_bytes(final["finalizer"])
        assert fin.count == 6
        assert fin.anchor == start["anchor"]
        assert get_scheme(SCHEME_CHAIN).verify(
            device.tee_public_key, entries, final["finalizer"]) == []

    def test_samples_carry_scheme_tag(self, platform):
        device, _, clock = platform
        sid = _open(device)
        device.client.invoke(sid, CMD_START_FLIGHT)
        clock.advance(1.0)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH)
        assert out["scheme"] == SCHEME_CHAIN
        assert len(out["signature"]) == 32  # an HMAC link, not an RSA sig
        device.client.close_session(sid)

    def test_finalize_retires_the_chain(self, platform):
        device, _, clock = platform
        sid = _open(device)
        device.client.invoke(sid, CMD_START_FLIGHT)
        clock.advance(1.0)
        device.client.invoke(sid, CMD_GET_GPS_AUTH)
        device.client.invoke(sid, CMD_FINALIZE_FLIGHT)
        with pytest.raises(TrustedAppError, match="StartFlight"):
            device.client.invoke(sid, CMD_FINALIZE_FLIGHT)
        device.client.close_session(sid)

    def test_rsa_ops_amortized_to_two_per_flight(self, platform):
        device, _, clock = platform
        counters = device.core.op_counters
        before = {k: v for k, v in counters.items()
                  if k.startswith("rsa_sign_")}
        _fly(device, clock, samples=8)
        after = {k: v for k, v in counters.items()
                 if k.startswith("rsa_sign_")}
        assert sum(after.values()) - sum(before.values()) == 2
        assert counters["chain_links"] == 8
        assert counters["chain_commitments"] == 1
        assert counters["chain_finalizations"] == 1

    def test_seeded_chain_is_deterministic(self, make_platform):
        def one_flight():
            device, _, clock = make_platform()
            _, entries, final = _fly(device, clock, samples=4)
            return entries, final["finalizer"]

        assert one_flight() == one_flight()
