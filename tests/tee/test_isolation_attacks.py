"""World-isolation attack surface: sealed storage and monitor paths.

Satellite of the adversary PR.  The :class:`KeyExtraction` attack in the
matrix exercises these paths end-to-end; here each extraction primitive
is pinned individually so a regression names the exact breached layer.
"""

from __future__ import annotations

import pickle
import random
import uuid

import pytest

from repro.adversary.attacks import KeyExtraction
from repro.crypto.keys import private_key_from_bytes
from repro.crypto.pkcs1 import sign_pkcs1_v15, verify_pkcs1_v15
from repro.errors import (
    AliDroneError,
    TeeError,
    TeeStorageError,
    TrustedAppError,
    WorldIsolationError,
)
from repro.tee.gps_sampler_ta import SIGN_KEY_ENTRY


@pytest.fixture()
def device(make_device):
    return make_device(seed=71)


class TestSealedStorageIsolation:
    def test_unseal_from_normal_world_faults(self, device):
        with pytest.raises(WorldIsolationError):
            device.sealed_storage.unseal(SIGN_KEY_ENTRY)

    def test_seal_from_normal_world_faults(self, device):
        with pytest.raises(WorldIsolationError):
            device.sealed_storage.seal("evil-entry", b"attacker data")
        assert not device.sealed_storage.contains("evil-entry")

    def test_root_key_reveal_faults(self, device):
        with pytest.raises(WorldIsolationError):
            device.sealed_storage._root_key.reveal()

    def test_root_key_cannot_be_pickled_out(self, device):
        with pytest.raises(TeeError):
            pickle.dumps(device.sealed_storage._root_key)

    def test_handle_repr_leaks_no_material(self, device):
        handle = device.sealed_storage._root_key
        for rendering in (repr(handle), str(handle)):
            assert "root key" in rendering  # the label, which is public
            assert handle.reveal.__self__ is handle  # sanity on identity
        # The raw fuse bytes must not appear in any rendering.  We cannot
        # read them to compare (that is the point), so instead check the
        # renderings are label-only and short.
        assert len(repr(handle)) < 120

    def test_raw_blob_is_not_a_usable_key(self, device):
        blob = device.sealed_storage.raw_blobs()[SIGN_KEY_ENTRY]
        probe = b"isolation-probe"
        try:
            key = private_key_from_bytes(blob)
            signature = sign_pkcs1_v15(key, probe, "sha1")
        except (AliDroneError, ValueError, OverflowError):
            return  # ciphertext does not even parse: isolation holds
        assert not verify_pkcs1_v15(device.tee_public_key, probe,
                                    signature, "sha1")

    def test_tampered_blob_detected_at_unseal(self, device):
        storage = device.sealed_storage
        blob = storage.raw_blobs()[SIGN_KEY_ENTRY]
        mutated = bytearray(blob)
        mutated[len(mutated) // 2] ^= 0x01
        storage.tamper(SIGN_KEY_ENTRY, bytes(mutated))
        with pytest.raises(TeeStorageError):
            device.monitor.secure_boot_call(storage.unseal, SIGN_KEY_ENTRY)


class TestMonitorIsolation:
    def test_ta_load_by_wrong_uuid_rejected(self, device):
        with pytest.raises(TrustedAppError):
            device.client.open_session(uuid.UUID(int=0xDEAD))

    def test_secure_boot_reentry_rejected(self, device):
        with pytest.raises(TeeError):
            device.monitor.secure_boot_call(
                device.monitor.secure_boot_call, lambda: None)

    def test_smc_reentry_from_secure_world_rejected(self, device):
        def from_inside_secure_world():
            device.monitor.smc_call(0, "noop", {})

        with pytest.raises(TeeError, match="re-entrant SMC"):
            device.monitor.secure_boot_call(from_inside_secure_world)


class TestKeyExtractionAttack:
    def test_every_primitive_blocked(self, device):
        class StubWorld:
            pass

        world = StubWorld()
        world.device = device
        world.hash_name = "sha1"
        result = KeyExtraction().execute(world, random.Random(5))
        assert result.outcome == "world_isolation"
        assert not result.false_accept
        for primitive in ("unseal", "reveal", "pickle", "raw_blob",
                          "wrong_uuid", "reentry"):
            assert primitive in result.detail
