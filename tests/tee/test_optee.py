"""Tests for repro.tee.optee and repro.tee.monitor: TA loading & dispatch."""

import uuid

import pytest

from repro.errors import TeeError, TrustedAppError, WorldIsolationError
from repro.tee.monitor import SecureMonitor
from repro.tee.optee import OpTeeCore, TeeClient, sign_trusted_app
from repro.tee.trusted_app import PseudoTrustedApplication, TrustedApplication

ECHO_UUID = uuid.UUID("00000000-0000-0000-0000-00000000e280")
PTA_UUID = uuid.UUID("00000000-0000-0000-0000-0000000000f7")


class EchoTA(TrustedApplication):
    """Echoes params back; counts sessions."""

    UUID = ECHO_UUID

    def __init__(self):
        super().__init__()
        self.opened = False

    def open_session(self, params):
        self.opened = True

    def invoke_command(self, command, params):
        if command == "echo":
            return params.get("value")
        raise TrustedAppError(f"unknown command {command!r}")


class DevicePTA(PseudoTrustedApplication):
    """A privileged TA that reads a mapped peripheral."""

    UUID = PTA_UUID

    def invoke_command(self, command, params):
        if command == "read_device":
            return self.map_device("sensor")
        raise TrustedAppError(f"unknown command {command!r}")


@pytest.fixture()
def platform(vendor_key):
    core = OpTeeCore(ta_verification_key=vendor_key.public_key)
    monitor = SecureMonitor(core)
    client = TeeClient(monitor)
    return core, monitor, client


class TestTaLifecycle:
    def test_open_invoke_close(self, platform, vendor_key):
        core, monitor, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid = client.open_session(ECHO_UUID)
        assert client.invoke(sid, "echo", {"value": 42}) == 42
        client.close_session(sid)
        with pytest.raises(TrustedAppError):
            client.invoke(sid, "echo", {"value": 1})

    def test_unknown_uuid_rejected(self, platform):
        _, _, client = platform
        with pytest.raises(TrustedAppError):
            client.open_session(uuid.UUID(int=12345))

    def test_unknown_session_rejected(self, platform):
        _, _, client = platform
        with pytest.raises(TrustedAppError):
            client.invoke(999, "echo", {})

    def test_unknown_command_propagates(self, platform, vendor_key):
        core, _, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid = client.open_session(ECHO_UUID)
        with pytest.raises(TrustedAppError):
            client.invoke(sid, "not-a-command", {})

    def test_two_sessions_are_independent(self, platform, vendor_key):
        core, _, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid1 = client.open_session(ECHO_UUID)
        sid2 = client.open_session(ECHO_UUID)
        assert sid1 != sid2
        client.close_session(sid1)
        assert client.invoke(sid2, "echo", {"value": "still alive"}) == "still alive"


class TestTaSignatureEnforcement:
    def test_wrongly_signed_image_rejected(self, platform, other_key):
        core, _, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, other_key))
        with pytest.raises(TrustedAppError):
            client.open_session(ECHO_UUID)

    def test_swapped_factory_rejected(self, platform, vendor_key):
        """An attacker replaces the TA code but keeps the old signature."""
        core, _, client = platform
        image = sign_trusted_app(EchoTA, ECHO_UUID, vendor_key)

        class EvilTA(TrustedApplication):
            UUID = ECHO_UUID

            def invoke_command(self, command, params):
                return "evil"

        forged = type(image)(ta_uuid=ECHO_UUID, factory=EvilTA,
                             signature=image.signature)
        core.ta_store.install(forged)
        with pytest.raises(TrustedAppError):
            client.open_session(ECHO_UUID)

    def test_uuid_mismatch_rejected(self, platform, vendor_key):
        core, _, client = platform
        wrong = uuid.UUID(int=777)
        core.ta_store.install(sign_trusted_app(EchoTA, wrong, vendor_key))
        with pytest.raises(TrustedAppError):
            client.open_session(wrong)


class TestPtaAndDevices:
    def test_pta_statically_registered(self, platform):
        core, _, client = platform
        core.register_pta(DevicePTA())
        core.register_device("sensor", "sensor-value")
        sid = client.open_session(PTA_UUID)
        assert client.invoke(sid, "read_device") == "sensor-value"

    def test_duplicate_pta_rejected(self, platform):
        core, _, _ = platform
        core.register_pta(DevicePTA())
        with pytest.raises(TeeError):
            core.register_pta(DevicePTA())

    def test_normal_ta_cannot_map_devices(self, platform, vendor_key):
        core, _, client = platform

        class GreedyTA(TrustedApplication):
            UUID = uuid.UUID(int=0xABCD)

            def invoke_command(self, command, params):
                return self.map_device("sensor")

        core.register_device("sensor", "sensor-value")
        core.ta_store.install(sign_trusted_app(GreedyTA, GreedyTA.UUID,
                                               vendor_key))
        sid = client.open_session(GreedyTA.UUID)
        with pytest.raises(TrustedAppError):
            client.invoke(sid, "anything")

    def test_device_access_faults_from_normal_world(self, platform):
        core, _, _ = platform
        core.register_device("sensor", "sensor-value")
        with pytest.raises(WorldIsolationError):
            core.device("sensor")

    def test_kernel_service_faults_from_normal_world(self, platform):
        core, _, _ = platform
        core.register_kernel_service("svc", object())
        with pytest.raises(WorldIsolationError):
            core.kernel_service("svc")

    def test_missing_device_raises_in_secure_world(self, platform):
        core, monitor, _ = platform
        with pytest.raises(TeeError):
            monitor.secure_boot_call(core.device, "nope")


class TestMonitor:
    def test_world_switch_accounting(self, platform, vendor_key):
        core, monitor, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid = client.open_session(ECHO_UUID)
        before = monitor.stats.world_switches
        client.invoke(sid, "echo", {"value": 1})
        assert monitor.stats.world_switches == before + 2

    def test_per_command_counters(self, platform, vendor_key):
        core, monitor, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid = client.open_session(ECHO_UUID)
        client.invoke(sid, "echo", {"value": 1})
        client.invoke(sid, "echo", {"value": 2})
        assert monitor.stats.calls_by_command["echo"] == 2
        assert monitor.stats.calls_by_command["__open_session__"] == 1

    def test_world_restored_after_ta_exception(self, platform, vendor_key):
        core, monitor, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid = client.open_session(ECHO_UUID)
        with pytest.raises(TrustedAppError):
            client.invoke(sid, "boom", {})
        from repro.tee.worlds import World
        assert monitor.current_world is World.NORMAL

    def test_reentrant_smc_rejected(self, platform):
        core, monitor, client = platform

        class ReentrantPTA(PseudoTrustedApplication):
            UUID = uuid.UUID(int=0xBEEF)

            def invoke_command(self, command, params):
                # A TA trying to trap again must be refused.
                return monitor.smc_call(0, "__open_session__",
                                        {"uuid": self.UUID})

        core.register_pta(ReentrantPTA())
        sid = client.open_session(ReentrantPTA.UUID)
        with pytest.raises(TeeError):
            client.invoke(sid, "trap-again")

    def test_reentrant_secure_boot_rejected(self, platform):
        _, monitor, _ = platform
        with pytest.raises(TeeError):
            monitor.secure_boot_call(
                lambda: monitor.secure_boot_call(lambda: None))

    def test_double_monitor_attach_rejected(self, platform):
        core, _, _ = platform
        with pytest.raises(TeeError):
            SecureMonitor(core)


class TestMonitorFaultInjection:
    def outage(self, fails):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan, FaultRule
        return FaultInjector(FaultPlan("t", (
            FaultRule(SecureMonitor.FAULT_POINT, "fail",
                      max_count=fails),)))

    def test_fail_raises_before_world_switch(self, platform, vendor_key):
        """An injected SMC failure models a call the secure world never
        serviced: TeeTransientError, no switch counted, no TA dispatch."""
        from repro.errors import TeeTransientError

        core, monitor, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid = client.open_session(ECHO_UUID)
        before = monitor.stats.world_switches
        monitor.attach_injector(self.outage(1))
        with pytest.raises(TeeTransientError):
            client.invoke(sid, "echo", {"value": 1})
        assert monitor.stats.world_switches == before
        assert monitor.stats.calls_by_command["echo"] == 0
        # The fault budget is exhausted: the next call goes through.
        assert client.invoke(sid, "echo", {"value": 2}) == 2
        assert monitor.stats.world_switches == before + 2

    def test_detach_restores_clean_path(self, platform, vendor_key):
        core, monitor, client = platform
        core.ta_store.install(sign_trusted_app(EchoTA, ECHO_UUID, vendor_key))
        sid = client.open_session(ECHO_UUID)
        monitor.attach_injector(self.outage(99))
        monitor.attach_injector(None)
        assert client.invoke(sid, "echo", {"value": 3}) == 3
