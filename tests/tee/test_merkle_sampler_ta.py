"""The Merkle GPS Sampler TA: empty blobs in flight, one commitment out."""

from __future__ import annotations

import pytest

from repro.crypto.schemes import (
    SCHEME_MERKLE,
    MerkleFinalizer,
    get_scheme,
)
from repro.errors import TrustedAppError
from repro.privacy.merkle import MerkleTree
from repro.tee.chained_sampler_ta import CMD_FINALIZE_FLIGHT, CMD_START_FLIGHT
from repro.tee.gps_sampler_ta import CMD_GET_GPS_AUTH
from repro.tee.merkle_sampler_ta import MERKLE_SAMPLER_UUID


@pytest.fixture()
def platform(make_platform):
    return make_platform()


def _open(device):
    return device.client.open_session(MERKLE_SAMPLER_UUID,
                                      {"hash_name": "sha1"})


def _fly(device, clock, samples=5):
    sid = _open(device)
    start = device.client.invoke(sid, CMD_START_FLIGHT)
    entries = []
    for _ in range(samples):
        clock.advance(1.0)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH)
        entries.append((out["payload"], out["signature"]))
    final = device.client.invoke(sid, CMD_FINALIZE_FLIGHT)
    device.client.close_session(sid)
    return start, entries, final


class TestMerkleSamplerTA:
    def test_installed_at_provisioning(self, platform):
        device, _, _ = platform
        sid = _open(device)
        device.client.close_session(sid)

    def test_auth_before_start_flight_rejected(self, platform):
        device, _, clock = platform
        sid = _open(device)
        clock.advance(1.0)
        with pytest.raises(TrustedAppError, match="StartFlight"):
            device.client.invoke(sid, CMD_GET_GPS_AUTH)
        device.client.close_session(sid)

    def test_finalize_before_start_rejected(self, platform):
        device, _, _ = platform
        sid = _open(device)
        with pytest.raises(TrustedAppError, match="StartFlight"):
            device.client.invoke(sid, CMD_FINALIZE_FLIGHT)
        device.client.close_session(sid)

    def test_in_flight_blobs_are_empty(self, platform):
        device, _, clock = platform
        start, entries, _ = _fly(device, clock, samples=4)
        assert start["scheme"] == SCHEME_MERKLE
        assert all(blob == b"" for _payload, blob in entries)

    def test_flight_verifies_under_merkle_scheme(self, platform):
        device, _, clock = platform
        _, entries, final = _fly(device, clock, samples=6)
        assert final["scheme"] == SCHEME_MERKLE
        fin = MerkleFinalizer.from_bytes(final["finalizer"])
        assert fin.count == 6
        assert fin.root == MerkleTree(
            [payload for payload, _blob in entries]).root
        assert get_scheme(SCHEME_MERKLE).verify(
            device.tee_public_key, entries, final["finalizer"]) == []

    def test_one_commitment_per_flight(self, platform):
        device, _, clock = platform
        sid = _open(device)
        device.client.invoke(sid, CMD_START_FLIGHT)
        clock.advance(1.0)
        device.client.invoke(sid, CMD_GET_GPS_AUTH)
        device.client.invoke(sid, CMD_FINALIZE_FLIGHT)
        with pytest.raises(TrustedAppError, match="StartFlight"):
            device.client.invoke(sid, CMD_FINALIZE_FLIGHT)
        device.client.close_session(sid)

    def test_single_rsa_op_regardless_of_samples(self, platform):
        device, _, clock = platform
        _fly(device, clock, samples=9)
        counters = device.core.op_counters
        assert counters["merkle_flights"] == 1
        assert counters["merkle_leaves"] == 9
        assert counters["merkle_finalizations"] == 1
        assert counters["rsa_sign_512"] == 1
