"""Tests for the GPS driver, GPS Sampler TA, and device provisioning."""

import random

import pytest

from repro.core.samples import GpsSample
from repro.crypto.keys import public_key_from_bytes
from repro.errors import (
    NoFixError,
    TrustedAppError,
    WorldIsolationError,
)
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import provision_device
from repro.tee.gps_sampler_ta import (
    CMD_GET_GPS_AUTH,
    CMD_GET_PUBLIC_KEY,
    GPS_SAMPLER_UUID,
    SIGN_KEY_ENTRY,
)

T0 = DEFAULT_EPOCH


@pytest.fixture()
def platform(make_platform):
    return make_platform()


class TestProvisioning:
    def test_public_key_exported(self, platform):
        device, _, _ = platform
        assert device.tee_public_key.bits >= 512

    def test_sign_key_sealed_not_readable(self, platform):
        device, _, _ = platform
        assert device.sealed_storage.contains(SIGN_KEY_ENTRY)
        with pytest.raises(WorldIsolationError):
            device.sealed_storage.unseal(SIGN_KEY_ENTRY)

    def test_sealed_blob_does_not_contain_key_material(self, platform,
                                                       vendor_key):
        device, _, _ = platform
        blob = device.sealed_storage.raw_blobs()[SIGN_KEY_ENTRY]
        # The public modulus is visible in T+; the sealed blob must not
        # expose it (it is encrypted, so no structured content leaks).
        n_bytes = device.tee_public_key.n.to_bytes(
            (device.tee_public_key.n.bit_length() + 7) // 8, "big")
        assert n_bytes not in blob

    def test_deterministic_provisioning(self, vendor_key):
        a = provision_device("d", key_bits=512, rng=random.Random(5),
                             vendor_key=vendor_key)
        b = provision_device("d", key_bits=512, rng=random.Random(5),
                             vendor_key=vendor_key)
        assert a.tee_public_key == b.tee_public_key

    def test_double_gps_attach_rejected(self, make_platform, frame):
        device, receiver, clock = make_platform()
        from repro.errors import TeeError
        with pytest.raises(TeeError):
            device.attach_gps(receiver, clock)


class TestGpsDriver:
    def test_driver_read_faults_from_normal_world(self, platform):
        device, _, clock = platform
        clock.advance(1.0)
        with pytest.raises(WorldIsolationError):
            device.gps_driver.get_gps()

    def test_driver_reads_latest_fix(self, platform):
        device, _, clock = platform
        clock.advance(1.05)
        fix = device.monitor.secure_boot_call(device.gps_driver.get_gps)
        assert fix.time == pytest.approx(T0 + 1.0, abs=0.011)

    def test_no_fix_raises(self, make_device, frame):
        """Reading the driver before the receiver's first update fails."""
        from repro.gps.receiver import SimulatedGpsReceiver
        source = WaypointSource([(T0, 0, 0), (T0 + 10.0, 10, 0)])
        clock = SimClock(T0)
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0 + 100.0, seed=2)
        device = make_device(seed=2)
        device.attach_gps(receiver, clock)
        with pytest.raises(NoFixError):
            device.monitor.secure_boot_call(device.gps_driver.get_gps)
        assert not device.monitor.secure_boot_call(device.gps_driver.has_fix)


class TestGpsSamplerTA:
    def test_get_gps_auth_round_trip(self, platform):
        device, _, clock = platform
        clock.advance(2.0)
        sid = device.client.open_session(GPS_SAMPLER_UUID)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH)
        sample = GpsSample.from_signed_payload(out["payload"])
        assert sample.t == pytest.approx(T0 + 2.0, abs=0.011)
        from repro.crypto.pkcs1 import verify_pkcs1_v15
        assert verify_pkcs1_v15(device.tee_public_key, out["payload"],
                                out["signature"], "sha1")

    def test_public_key_command_matches_provisioned(self, platform):
        device, _, clock = platform
        clock.advance(1.0)
        sid = device.client.open_session(GPS_SAMPLER_UUID)
        pub = public_key_from_bytes(device.client.invoke(sid,
                                                         CMD_GET_PUBLIC_KEY))
        assert pub == device.tee_public_key

    def test_sha256_session(self, platform):
        device, _, clock = platform
        clock.advance(1.0)
        sid = device.client.open_session(GPS_SAMPLER_UUID,
                                         {"hash_name": "sha256"})
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH)
        from repro.crypto.pkcs1 import verify_pkcs1_v15
        assert verify_pkcs1_v15(device.tee_public_key, out["payload"],
                                out["signature"], "sha256")
        assert not verify_pkcs1_v15(device.tee_public_key, out["payload"],
                                    out["signature"], "sha1")

    def test_bad_hash_rejected_at_open(self, platform):
        device, _, _ = platform
        with pytest.raises(TrustedAppError):
            device.client.open_session(GPS_SAMPLER_UUID, {"hash_name": "md5"})

    def test_unknown_command_rejected(self, platform):
        device, _, clock = platform
        clock.advance(1.0)
        sid = device.client.open_session(GPS_SAMPLER_UUID)
        with pytest.raises(TrustedAppError):
            device.client.invoke(sid, "ExfiltrateKey")

    def test_op_counters_track_signatures(self, platform):
        device, _, clock = platform
        clock.advance(1.0)
        sid = device.client.open_session(GPS_SAMPLER_UUID)
        for _ in range(3):
            clock.advance(1.0)
            device.client.invoke(sid, CMD_GET_GPS_AUTH)
        assert device.core.op_counters["gps_auth_samples"] == 3
        assert device.core.op_counters["rsa_sign_512"] == 3

    def test_sample_quantization_is_lossless_for_protocol(self, platform):
        device, _, clock = platform
        clock.advance(3.0)
        sid = device.client.open_session(GPS_SAMPLER_UUID)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH)
        sample = GpsSample.from_signed_payload(out["payload"])
        # Re-encoding the decoded sample reproduces the signed payload
        # exactly (the Auditor relies on this).
        assert sample.to_signed_payload() == out["payload"]

    def test_tampered_sealed_key_bricks_sampler(self, platform):
        """Corrupting the sealed sign key must fail closed, not sign junk."""
        device, _, clock = platform
        clock.advance(1.0)
        blob = bytearray(device.sealed_storage.raw_blobs()[SIGN_KEY_ENTRY])
        blob[10] ^= 0xFF
        device.sealed_storage.tamper(SIGN_KEY_ENTRY, bytes(blob))
        from repro.errors import TeeStorageError
        with pytest.raises(TeeStorageError):
            device.client.open_session(GPS_SAMPLER_UUID)
