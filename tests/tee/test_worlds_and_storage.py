"""Tests for repro.tee.worlds and repro.tee.secure_storage."""

import pickle

import pytest

from repro.errors import TeeStorageError, WorldIsolationError
from repro.tee.monitor import SecureMonitor
from repro.tee.optee import OpTeeCore
from repro.tee.secure_storage import SealedStorage
from repro.tee.worlds import SecureKeyHandle, World, WorldState


@pytest.fixture()
def state():
    return WorldState()


@pytest.fixture()
def handle(state):
    return SecureKeyHandle(b"super-secret", state, "test key")


class TestWorldState:
    def test_starts_in_normal_world(self, state):
        assert state.current is World.NORMAL

    def test_require_secure_faults_in_normal(self, state):
        with pytest.raises(WorldIsolationError):
            state.require_secure("thing")

    def test_require_secure_passes_in_secure(self, state):
        state._enter_secure()
        state.require_secure("thing")
        state._exit_secure()
        assert state.current is World.NORMAL


class TestSecureKeyHandle:
    def test_reveal_faults_in_normal_world(self, handle):
        with pytest.raises(WorldIsolationError):
            handle.reveal()

    def test_reveal_works_in_secure_world(self, state, handle):
        state._enter_secure()
        assert handle.reveal() == b"super-secret"

    def test_repr_does_not_leak(self, handle):
        assert b"super-secret".hex() not in repr(handle)
        assert "super-secret" not in repr(handle)
        assert "super-secret" not in str(handle)

    def test_pickling_blocked(self, handle):
        with pytest.raises(WorldIsolationError):
            pickle.dumps(handle)

    def test_identity_equality(self, state):
        a = SecureKeyHandle(b"k", state, "a")
        b = SecureKeyHandle(b"k", state, "a")
        assert a != b
        assert a == a

    def test_label_is_safe_to_read(self, handle):
        assert handle.label == "test key"


@pytest.fixture()
def sealed(signing_key, vendor_key):
    """A sealed storage on a live monitor, plus the monitor."""
    core = OpTeeCore(ta_verification_key=vendor_key.public_key)
    monitor = SecureMonitor(core)
    root = SecureKeyHandle(b"\x42" * 32, monitor.state, "root")
    storage = SealedStorage(root, monitor.state)
    return storage, monitor


class TestSealedStorage:
    def test_seal_unseal_round_trip(self, sealed):
        storage, monitor = sealed
        monitor.secure_boot_call(storage.seal, "entry", b"secret-bytes")
        assert monitor.secure_boot_call(storage.unseal, "entry") == b"secret-bytes"

    def test_seal_faults_from_normal_world(self, sealed):
        storage, _ = sealed
        with pytest.raises(WorldIsolationError):
            storage.seal("entry", b"secret")

    def test_unseal_faults_from_normal_world(self, sealed):
        storage, monitor = sealed
        monitor.secure_boot_call(storage.seal, "entry", b"secret")
        with pytest.raises(WorldIsolationError):
            storage.unseal("entry")

    def test_unknown_entry(self, sealed):
        storage, monitor = sealed
        with pytest.raises(TeeStorageError):
            monitor.secure_boot_call(storage.unseal, "missing")

    def test_blobs_do_not_contain_plaintext(self, sealed):
        storage, monitor = sealed
        monitor.secure_boot_call(storage.seal, "entry", b"findable-secret")
        blobs = storage.raw_blobs()
        assert b"findable-secret" not in blobs["entry"]

    def test_tampering_detected(self, sealed):
        storage, monitor = sealed
        monitor.secure_boot_call(storage.seal, "entry", b"secret")
        blob = bytearray(storage.raw_blobs()["entry"])
        blob[0] ^= 0xFF
        storage.tamper("entry", bytes(blob))
        with pytest.raises(TeeStorageError):
            monitor.secure_boot_call(storage.unseal, "entry")

    def test_tamper_unknown_entry_rejected(self, sealed):
        storage, _ = sealed
        with pytest.raises(TeeStorageError):
            storage.tamper("missing", b"blob")

    def test_entries_are_independently_keyed(self, sealed):
        """Swapping two blobs must not decrypt under the other name."""
        storage, monitor = sealed
        monitor.secure_boot_call(storage.seal, "a", b"secret-a")
        monitor.secure_boot_call(storage.seal, "b", b"secret-b")
        blobs = storage.raw_blobs()
        storage.tamper("a", blobs["b"])
        with pytest.raises(TeeStorageError):
            monitor.secure_boot_call(storage.unseal, "a")

    def test_contains(self, sealed):
        storage, monitor = sealed
        assert not storage.contains("entry")
        monitor.secure_boot_call(storage.seal, "entry", b"s")
        assert storage.contains("entry")
