"""Tests for the spoofing detector (§VII-A2) and attestation quotes."""

import random

import pytest

from repro.core.protocol import DroneRegistrationRequest
from repro.errors import (
    ConfigurationError,
    RegistrationError,
    TrustedAppError,
    WorldIsolationError,
)
from repro.gps.nmea import GpsFix
from repro.gps.replay import WaypointSource
from repro.server.auditor import AliDroneServer
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import DeviceQuote
from repro.tee.gps_sampler_ta import CMD_GET_GPS_AUTH, GPS_SAMPLER_UUID
from repro.tee.spoof_detector import GpsSpoofingDetector

T0 = DEFAULT_EPOCH


@pytest.fixture()
def detector(make_device):
    device = make_device(seed=31)
    return GpsSpoofingDetector(device.monitor.state), device.monitor


def fix_at(lat, lon, t):
    return GpsFix(lat=lat, lon=lon, time=t)


class TestSpoofingDetectorUnit:
    def test_config_validation(self, detector):
        det, monitor = detector
        with pytest.raises(ConfigurationError):
            GpsSpoofingDetector(monitor.state, speed_slack=0.5)
        with pytest.raises(ConfigurationError):
            GpsSpoofingDetector(monitor.state, hold_down_s=-1.0)

    def test_normal_world_access_faults(self, detector):
        det, _ = detector
        with pytest.raises(WorldIsolationError):
            det.observe(fix_at(40.0, -88.0, T0))

    def test_plausible_track_stays_clean(self, detector):
        det, monitor = detector

        def run():
            for i in range(10):
                # ~11 m/s east.
                verdict = det.observe(fix_at(40.0, -88.0 + i * 1.3e-4,
                                             T0 + i))
                assert not verdict.suspicious
            return det.trips

        assert monitor.secure_boot_call(run) == 0

    def test_teleport_trips(self, detector):
        det, monitor = detector

        def run():
            det.observe(fix_at(40.0, -88.0, T0))
            return det.observe(fix_at(40.0, -87.0, T0 + 1.0))  # ~85 km/s

        verdict = monitor.secure_boot_call(run)
        assert verdict.suspicious
        assert "speed" in verdict.reason

    def test_time_regression_trips(self, detector):
        det, monitor = detector

        def run():
            det.observe(fix_at(40.0, -88.0, T0 + 10.0))
            return det.observe(fix_at(40.0, -88.0, T0 + 5.0))

        assert monitor.secure_boot_call(run).suspicious

    def test_frozen_clock_trips(self, detector):
        det, monitor = detector

        def run():
            det.observe(fix_at(40.0, -88.0, T0))
            return det.observe(fix_at(40.0, -87.99, T0))  # ~850 m, same t

        verdict = monitor.secure_boot_call(run)
        assert verdict.suspicious
        assert "frozen" in verdict.reason

    def test_hold_down_then_recovery(self, detector):
        det, monitor = detector

        def run():
            det.observe(fix_at(40.0, -88.0, T0))
            det.observe(fix_at(40.0, -87.0, T0 + 1.0))   # trip
            during = det.verdict(T0 + 10.0).suspicious
            after = det.verdict(T0 + 1.0 + det.hold_down_s + 1.0).suspicious
            return during, after

        during, after = monitor.secure_boot_call(run)
        assert during and not after


class TestSamplerDeclinesWhenSpoofed:
    def test_ta_refuses_to_sign_after_teleport(self, make_device, frame):
        # A trajectory that teleports 50 km at t = +5 s.
        source = WaypointSource([(T0, 0.0, 0.0), (T0 + 4.9, 25.0, 0.0),
                                 (T0 + 5.0, 50_000.0, 0.0),
                                 (T0 + 20.0, 50_100.0, 0.0)])
        from repro.gps.receiver import SimulatedGpsReceiver
        clock = SimClock(T0)
        receiver = SimulatedGpsReceiver(source, frame, update_rate_hz=5.0,
                                        start_time=T0, seed=1)
        device = make_device(seed=32)
        device.attach_gps(receiver, clock, spoof_detection=True)
        sid = device.client.open_session(GPS_SAMPLER_UUID)

        clock.advance(1.0)
        device.client.invoke(sid, CMD_GET_GPS_AUTH)      # clean: signs
        clock.advance_to(T0 + 6.0)                        # after the jump
        with pytest.raises(TrustedAppError):
            device.client.invoke(sid, CMD_GET_GPS_AUTH)
        assert device.core.op_counters["spoof_declines"] == 1

    def test_detector_off_by_default(self, make_platform):
        device, receiver, clock = make_platform(seed=33)
        sid = device.client.open_session(GPS_SAMPLER_UUID)
        clock.advance(1.0)
        out = device.client.invoke(sid, CMD_GET_GPS_AUTH)
        assert "signature" in out


class TestAttestationQuotes:
    def test_quote_issued_at_provisioning(self, make_device, vendor_key):
        device = make_device(seed=34)
        assert device.quote is not None
        assert device.quote.verify(vendor_key.public_key)
        assert device.quote.tee_public_key == device.tee_public_key

    def test_quote_rejects_wrong_manufacturer(self, make_device, other_key):
        device = make_device(seed=35)
        assert not device.quote.verify(other_key.public_key)

    def test_server_enforces_attestation(self, frame, make_device,
                                          vendor_key, other_key):
        server = AliDroneServer(frame, rng=random.Random(1),
                                encryption_key_bits=512)
        server.require_attestation = True
        server.trust_manufacturer(vendor_key.public_key)
        device = make_device(seed=36)
        # A valid, quoted registration passes.
        drone_id = server.register_drone(DroneRegistrationRequest(
            operator_public_key=other_key.public_key,
            tee_public_key=device.tee_public_key, quote=device.quote))
        assert drone_id in server.drones

    def test_server_rejects_missing_quote(self, frame, make_device,
                                          vendor_key, other_key):
        server = AliDroneServer(frame, rng=random.Random(2),
                                encryption_key_bits=512)
        server.require_attestation = True
        server.trust_manufacturer(vendor_key.public_key)
        device = make_device(seed=37)
        with pytest.raises(RegistrationError):
            server.register_drone(DroneRegistrationRequest(
                operator_public_key=other_key.public_key,
                tee_public_key=device.tee_public_key))

    def test_server_rejects_key_substitution(self, frame, make_device,
                                             vendor_key, other_key,
                                             signing_key):
        """An attacker presents a genuine quote but their own 'TEE' key."""
        server = AliDroneServer(frame, rng=random.Random(3),
                                encryption_key_bits=512)
        server.require_attestation = True
        server.trust_manufacturer(vendor_key.public_key)
        device = make_device(seed=38)
        with pytest.raises(RegistrationError):
            server.register_drone(DroneRegistrationRequest(
                operator_public_key=other_key.public_key,
                tee_public_key=signing_key.public_key,  # attacker key
                quote=device.quote))

    def test_server_rejects_untrusted_manufacturer(self, frame, make_device,
                                                   other_key):
        server = AliDroneServer(frame, rng=random.Random(4),
                                encryption_key_bits=512)
        server.require_attestation = True   # nobody trusted
        device = make_device(seed=39)
        with pytest.raises(RegistrationError):
            server.register_drone(DroneRegistrationRequest(
                operator_public_key=other_key.public_key,
                tee_public_key=device.tee_public_key, quote=device.quote))

    def test_forged_quote_rejected(self, frame, make_device, vendor_key,
                                   other_key, signing_key):
        """An attacker self-issues a quote for their own key."""
        server = AliDroneServer(frame, rng=random.Random(5),
                                encryption_key_bits=512)
        server.require_attestation = True
        server.trust_manufacturer(vendor_key.public_key)
        forged = DeviceQuote.issue("evil-dev", signing_key.public_key,
                                   b"\x00" * 32, manufacturer_key=other_key)
        with pytest.raises(RegistrationError):
            server.register_drone(DroneRegistrationRequest(
                operator_public_key=other_key.public_key,
                tee_public_key=signing_key.public_key, quote=forged))
