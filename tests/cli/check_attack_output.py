#!/usr/bin/env python
"""Schema and acceptance checks for the ``alidrone attack`` artefact.

The CI conformance-smoke job runs the full attack sweep and points this
script at the JSON report.  Stdlib-only, like its chaos sibling — it
checks the artefact *format* plus the PR's headline acceptance criteria:

* top level: ``matrix`` / ``conformance`` / ``ok``;
* the matrix covers at least ``--min-attacks`` attack classes across at
  least ``--min-scenarios`` scenarios, with **zero** false accepts, zero
  unexpected outcomes, and both honest controls passing per scenario;
* the conformance section ran at least ``--min-trajectories``
  trajectories with 100% pipeline/reference agreement on honest *and*
  mutated trials, 100% index/exhaustive decision equivalence, and a
  sampler equivalence verdict;
* every ``ok`` flag is consistent with the blocks it summarizes.

Exit 0 when every provided file passes, 1 otherwise (problems are listed
on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys

MATRIX_FIELDS = {"config", "cells", "controls", "stats", "invariants", "ok"}
CELL_FIELDS = {"attack", "scenario", "outcome", "expected", "expected_ok",
               "accepted", "cleared", "false_accept", "detail"}
CONFORMANCE_FIELDS = {"trajectories", "honest_trials", "honest_agreements",
                      "honest_accepts", "mutated_trials",
                      "mutated_agreements", "mutated_false_accepts",
                      "index_trials", "index_agreements", "disagreements",
                      "sampler", "ok"}
SAMPLER_FIELDS = {"scenario", "samples_with_index", "samples_without_index",
                  "sample_times_equal", "poa_digest_equal"}


def _load(path: str):
    with open(path) as fh:
        return json.load(fh)


def _check_matrix(path: str, matrix, min_attacks: int,
                  min_scenarios: int) -> list[str]:
    problems: list[str] = []
    missing = MATRIX_FIELDS - set(matrix)
    if missing:
        return [f"{path}: matrix missing fields {sorted(missing)}"]

    config = matrix["config"]
    attacks = config.get("attacks", [])
    scenarios = config.get("scenarios", [])
    if len(attacks) < min_attacks:
        problems.append(f"{path}: only {len(attacks)} attack classes "
                        f"(need >= {min_attacks})")
    if len(scenarios) < min_scenarios:
        problems.append(f"{path}: only {len(scenarios)} scenarios "
                        f"(need >= {min_scenarios})")

    cells = matrix["cells"]
    if not isinstance(cells, list) or \
            len(cells) != len(attacks) * len(scenarios):
        problems.append(f"{path}: {len(cells)} cells for "
                        f"{len(attacks)} x {len(scenarios)} matrix")
    for cell in cells:
        label = f"{cell.get('attack')}/{cell.get('scenario')}"
        missing = CELL_FIELDS - set(cell)
        if missing:
            problems.append(f"{path}: cell {label} missing fields "
                            f"{sorted(missing)}")
            continue
        if cell["attack"] not in attacks:
            problems.append(f"{path}: cell {label} names unknown attack")
        if cell["scenario"] not in scenarios:
            problems.append(f"{path}: cell {label} names unknown scenario")
        if cell["false_accept"]:
            problems.append(f"{path}: FALSE ACCEPT at {label}")
        if cell["false_accept"] is not (cell["accepted"]
                                        and cell["cleared"]):
            problems.append(f"{path}: cell {label} false_accept flag "
                            "contradicts accepted/cleared")
        if not cell["expected_ok"]:
            problems.append(f"{path}: cell {label} outcome "
                            f"{cell['outcome']!r} not in expected "
                            f"{cell['expected']}")
        if cell["expected_ok"] is not (cell["outcome"] in cell["expected"]):
            problems.append(f"{path}: cell {label} expected_ok flag "
                            "contradicts outcome/expected")

    controls = matrix["controls"]
    if len(controls) < 2 * len(scenarios):
        problems.append(f"{path}: {len(controls)} controls for "
                        f"{len(scenarios)} scenarios (need 2 each)")
    for control in controls:
        if not control.get("ok"):
            problems.append(f"{path}: control {control.get('name')} failed")

    stats = matrix["stats"]
    if stats.get("false_accepts") != 0:
        problems.append(f"{path}: stats report "
                        f"{stats.get('false_accepts')} false accepts")
    if stats.get("attacks_run") != len(cells):
        problems.append(f"{path}: stats attacks_run disagrees with cells")

    inv = matrix["invariants"]
    derived_ok = (not inv.get("false_accepts")
                  and not inv.get("unexpected_outcomes")
                  and not inv.get("control_failures"))
    if matrix["ok"] is not derived_ok:
        problems.append(f"{path}: matrix ok={matrix['ok']!r} contradicts "
                        "the invariant block")
    return problems


def _check_conformance(path: str, conf, min_trajectories: int) -> list[str]:
    problems: list[str] = []
    missing = CONFORMANCE_FIELDS - set(conf)
    if missing:
        return [f"{path}: conformance missing fields {sorted(missing)}"]
    if conf["trajectories"] < min_trajectories:
        problems.append(f"{path}: only {conf['trajectories']} trajectories "
                        f"(need >= {min_trajectories})")
    if conf["honest_trials"] + conf["mutated_trials"] \
            != conf["trajectories"]:
        problems.append(f"{path}: honest + mutated trials != trajectories")
    for kind in ("honest", "mutated", "index"):
        trials = conf[f"{kind}_trials"]
        agreements = conf[f"{kind}_agreements"]
        if agreements != trials:
            problems.append(f"{path}: {kind} agreement {agreements}/"
                            f"{trials} is not 100%")
    if conf["mutated_false_accepts"] != 0:
        problems.append(f"{path}: {conf['mutated_false_accepts']} mutated "
                        "PoAs were accepted")
    if conf["disagreements"]:
        problems.append(f"{path}: {len(conf['disagreements'])} "
                        "disagreements recorded")
    sampler = conf["sampler"]
    missing = SAMPLER_FIELDS - set(sampler)
    if missing:
        problems.append(f"{path}: sampler block missing fields "
                        f"{sorted(missing)}")
    elif not (sampler["sample_times_equal"] and sampler["poa_digest_equal"]):
        problems.append(f"{path}: sampler index/exhaustive runs diverged")
    return problems


def check_attack(path: str, min_attacks: int, min_scenarios: int,
                 min_trajectories: int) -> list[str]:
    """Problems with an attack report file (empty list = clean)."""
    try:
        document = _load(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if not isinstance(document, dict):
        return [f"{path}: expected a JSON object"]
    missing = {"matrix", "conformance", "ok"} - set(document)
    if missing:
        return [f"{path}: missing fields {sorted(missing)}"]
    problems = _check_matrix(path, document["matrix"], min_attacks,
                             min_scenarios)
    problems += _check_conformance(path, document["conformance"],
                                   min_trajectories)
    if document["ok"] is not (document["matrix"].get("ok") is True
                              and document["conformance"].get("ok") is True):
        problems.append(f"{path}: top-level ok contradicts section flags")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attack", action="append", default=[],
                        help="attack report JSON to check (repeatable)")
    parser.add_argument("--min-attacks", type=int, default=8,
                        help="minimum attack classes (default 8)")
    parser.add_argument("--min-scenarios", type=int, default=3,
                        help="minimum scenarios (default 3)")
    parser.add_argument("--min-trajectories", type=int, default=200,
                        help="minimum conformance trajectories "
                             "(default 200)")
    args = parser.parse_args(argv)
    if not args.attack:
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.attack:
        problems.extend(check_attack(path, args.min_attacks,
                                     args.min_scenarios,
                                     args.min_trajectories))

    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"attack check: {len(args.attack)} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
