#!/usr/bin/env python
"""Independent validation of ``alidrone serve --json`` run summaries.

The CI service-smoke job drives ``alidrone serve`` for a few hundred
virtual ticks and points this script at the JSON it printed.  The checks
are deliberately implemented with nothing but the stdlib — no imports
from ``repro`` — so a bug in the service cannot also hide in its
validator.  What must hold for any completed run:

* **Schema** — every summary field present with the right shape.
* **Intake accounting** — ``submitted`` partitions exactly into
  ``accepted + deduplicated + shed``, and ``shed`` into its rate-limit
  and queue-full components.
* **Audit completeness** — everything accepted was audited
  (``audited == accepted + replayed_on_start``), the queue drained to
  zero, the store holds one verdict per submission with nothing
  pending, and the per-status verdict counts cover every verdict row
  (the store outlives the run, so on a durable re-run they exceed this
  run's ``audited``).
* **Shard accounting** — ``per_shard_audited`` has one slot per shard
  and sums to ``audited``.
* **Health** — no intake errors, no page-severity alerts, and the run's
  own ``ok`` verdict is true.

Exit 0 when every provided file passes, 1 otherwise (problems on
stderr).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

TOP_FIELDS = {"ticks", "rate_hz", "shards", "drones",
              "samples_per_submission", "queue_capacity",
              "admission_rate_per_s", "arrivals", "replayed_on_start",
              "stats", "status_counts", "queue_depth_final", "store",
              "intake_p99_s", "store_p99_s", "payload_cache", "alerts",
              "ok"}
STATS_FIELDS = {"submitted", "accepted", "deduplicated", "shed",
                "shed_rate_limited", "shed_queue_full", "audited",
                "replayed", "intake_errors", "per_shard_audited",
                "submissions_by_scheme"}
STORE_FIELDS = {"path", "submissions", "verdicts", "pending"}
CACHE_FIELDS = {"hits", "misses"}


def _is_count(value) -> bool:
    return (isinstance(value, int) and not isinstance(value, bool)
            and value >= 0)


def _is_latency(value) -> bool:
    if value is None:  # empty window: no arrivals landed in it
        return True
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and value >= 0)


def check_serve(path: str, min_audited: int = 1) -> list[str]:
    """Problems with one serve summary (empty list = clean)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path}: expected a JSON object"]
    missing = TOP_FIELDS - set(doc)
    if missing:
        return [f"{path}: missing fields {sorted(missing)}"]
    problems: list[str] = []

    stats = doc["stats"]
    if not isinstance(stats, dict) or STATS_FIELDS - set(stats):
        return [f"{path}: stats missing fields "
                f"{sorted(STATS_FIELDS - set(stats))}"]
    for field in STATS_FIELDS - {"per_shard_audited",
                                 "submissions_by_scheme"}:
        if not _is_count(stats[field]):
            problems.append(f"{path}: stats.{field} is not a count")
    if problems:
        return problems

    # Scheme accounting: the live per-scheme counters partition exactly
    # the submissions this process accepted.
    by_scheme = stats["submissions_by_scheme"]
    if not (isinstance(by_scheme, dict)
            and all(isinstance(k, str) and _is_count(v)
                    for k, v in by_scheme.items())):
        problems.append(f"{path}: submissions_by_scheme malformed")
    elif sum(by_scheme.values()) != stats["accepted"]:
        problems.append(
            f"{path}: submissions_by_scheme sums to "
            f"{sum(by_scheme.values())}, accepted={stats['accepted']}")

    # Intake accounting: every submission got exactly one decision.
    if stats["submitted"] != (stats["accepted"] + stats["deduplicated"]
                              + stats["shed"]):
        problems.append(
            f"{path}: submitted={stats['submitted']} != accepted"
            f"+deduplicated+shed="
            f"{stats['accepted'] + stats['deduplicated'] + stats['shed']}")
    if stats["shed"] != stats["shed_rate_limited"] + stats["shed_queue_full"]:
        problems.append(f"{path}: shed components do not sum")
    if doc["arrivals"] != stats["submitted"]:
        problems.append(f"{path}: arrivals={doc['arrivals']} != "
                        f"submitted={stats['submitted']}")

    # Audit completeness: accepted (plus any restart replay) all audited,
    # queue and store fully drained.
    expected_audited = stats["accepted"] + doc["replayed_on_start"]
    if stats["audited"] != expected_audited:
        problems.append(f"{path}: audited={stats['audited']} != "
                        f"accepted+replayed={expected_audited}")
    if stats["audited"] < min_audited:
        problems.append(f"{path}: audited={stats['audited']} below "
                        f"required minimum {min_audited}")
    if doc["queue_depth_final"] != 0:
        problems.append(f"{path}: queue not drained "
                        f"({doc['queue_depth_final']} left)")

    store = doc["store"]
    if not isinstance(store, dict) or STORE_FIELDS - set(store):
        problems.append(f"{path}: store missing fields "
                        f"{sorted(STORE_FIELDS - set(store))}")
    else:
        if store["pending"] != 0:
            problems.append(f"{path}: store has {store['pending']} "
                            "unaudited rows")
        if store["verdicts"] != store["submissions"]:
            problems.append(f"{path}: store verdicts={store['verdicts']} "
                            f"!= submissions={store['submissions']}")

    status_counts = doc["status_counts"]
    if not isinstance(status_counts, dict):
        problems.append(f"{path}: status_counts is not an object")
    elif isinstance(store, dict) and "verdicts" in store:
        # Counts span the whole store, which outlives one run: a durable
        # re-run dedups everything (audited=0) yet reports every verdict.
        total = sum(status_counts.values())
        if total != store["verdicts"]:
            problems.append(f"{path}: status counts sum to {total}, "
                            f"store verdicts={store['verdicts']}")

    # Shard accounting.
    per_shard = stats["per_shard_audited"]
    if not (isinstance(per_shard, list) and len(per_shard) == doc["shards"]
            and all(_is_count(n) for n in per_shard)):
        problems.append(f"{path}: per_shard_audited malformed for "
                        f"{doc['shards']} shard(s)")
    elif sum(per_shard) != stats["audited"]:
        problems.append(f"{path}: per-shard counts sum to "
                        f"{sum(per_shard)}, audited={stats['audited']}")

    # Health.
    if stats["intake_errors"] != 0:
        problems.append(f"{path}: {stats['intake_errors']} intake error(s)")
    if not isinstance(doc["alerts"], list):
        problems.append(f"{path}: alerts is not a list")
    else:
        pages = [a for a in doc["alerts"]
                 if isinstance(a, dict) and a.get("severity") == "page"]
        if pages:
            problems.append(f"{path}: {len(pages)} page-severity alert(s): "
                            + ", ".join(sorted({a.get('rule', '?')
                                                for a in pages})))
    cache = doc["payload_cache"]
    if not isinstance(cache, dict) or CACHE_FIELDS - set(cache):
        problems.append(f"{path}: payload_cache missing fields")
    for field in ("intake_p99_s", "store_p99_s"):
        if not _is_latency(doc[field]):
            problems.append(f"{path}: {field} is not a finite latency")
    if doc["ok"] is not True:
        problems.append(f"{path}: run reported ok={doc['ok']!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", action="append", default=[],
                        help="serve --json summary to check (repeatable)")
    parser.add_argument("--min-audited", type=int, default=1,
                        help="require at least this many audited "
                             "submissions (default 1)")
    args = parser.parse_args(argv)
    if not args.serve:
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.serve:
        problems.extend(check_serve(path, min_audited=args.min_audited))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"service check: {len(args.serve)} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
