#!/usr/bin/env python
"""Schema sanity checks for the streaming-telemetry CLI artefacts.

The CI ``obs-dash-smoke`` job runs ``alidrone chaos --rollup-jsonl``
(honest traffic only), captures ``alidrone dash --plain`` frames, and
renders a Prometheus exposition with ``alidrone metrics --prometheus``;
this script then validates the *formats* with nothing but the stdlib —
its grammar rules are written independently of the library so a
regression in ``repro.obs`` cannot silently validate itself:

* rollup JSONL: every line is one JSON rollup document (``t``,
  ``window_s``, ``counters``/``quantiles``/``gauges`` sections, alert
  state fields), time is non-decreasing, at least one monitor rule was
  evaluated on every tick — and, for honest traffic, **zero alerts
  fired across the whole stream**;
* Prometheus text: every line is a valid comment or sample under the
  classic ``text/plain; version=0.0.4`` grammar and every sample family
  has a TYPE declaration;
* dash frames: the plain-frame stream contains the rates/alerts
  sections and a final telemetry summary line.

Exit 0 when every provided file passes, 1 otherwise (problems are
listed on stderr).
"""

from __future__ import annotations

import argparse
import json
import re
import sys

ROLLUP_FIELDS = {"t", "window_s", "counters", "quantiles", "gauges",
                 "alerts_fired", "alerts_firing", "rules_evaluated"}
COUNTER_FIELDS = {"total", "rate", "cumulative"}
ALERT_FIELDS = {"rule", "severity", "kind", "fired_at", "value",
                "threshold", "message"}

# Independent re-statement of the Prometheus text-format grammar (do not
# import repro.obs.prom here; the checker must not validate itself).
_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_SAMPLE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    r"(?:\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\")*\})?"
    r" (?P<value>\S+)$")
_PROM_COMMENT = re.compile(
    rf"^# (?P<what>HELP|TYPE) (?P<name>{_METRIC_NAME}) (?P<rest>.+)$")
_PROM_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def check_rollups(path: str, expect_no_alerts: bool = False) -> list[str]:
    """Problems with a rollup JSONL stream (empty list = clean)."""
    problems: list[str] = []
    rollups = []
    with open(path) as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                problems.append(f"{path}:{number}: blank line")
                continue
            try:
                rollups.append((number, json.loads(line)))
            except json.JSONDecodeError as exc:
                problems.append(f"{path}:{number}: not JSON ({exc})")
    if not rollups:
        problems.append(f"{path}: no rollups")
        return problems

    last_t = None
    alerts_fired = 0
    for number, rollup in rollups:
        missing = ROLLUP_FIELDS - set(rollup)
        if missing:
            problems.append(f"{path}:{number}: missing fields "
                            f"{sorted(missing)}")
            continue
        t = rollup["t"]
        if last_t is not None and t < last_t:
            problems.append(f"{path}:{number}: time went backwards "
                            f"({t} after {last_t})")
        last_t = t
        if rollup["window_s"] <= 0:
            problems.append(f"{path}:{number}: non-positive window_s")
        if rollup["rules_evaluated"] < 1:
            problems.append(f"{path}:{number}: no monitor rules evaluated")
        for name, entry in rollup["counters"].items():
            missing = COUNTER_FIELDS - set(entry)
            if missing:
                problems.append(f"{path}:{number}: counter {name!r} "
                                f"missing {sorted(missing)}")
            elif entry["total"] > entry["cumulative"] + 1e-9:
                problems.append(f"{path}:{number}: counter {name!r} window "
                                "total exceeds lifetime cumulative")
        for name, entry in rollup["quantiles"].items():
            if "count" not in entry:
                problems.append(f"{path}:{number}: quantile {name!r} "
                                "missing count")
            elif entry["count"] and "p99" not in entry:
                problems.append(f"{path}:{number}: non-empty quantile "
                                f"{name!r} missing p99")
        for alert in rollup["alerts_fired"]:
            missing = ALERT_FIELDS - set(alert)
            if missing:
                problems.append(f"{path}:{number}: alert missing fields "
                                f"{sorted(missing)}")
        alerts_fired += len(rollup["alerts_fired"])
        if set(rollup["alerts_firing"]) and rollup["rules_evaluated"] == 0:
            problems.append(f"{path}:{number}: alerts firing with no rules")
    if expect_no_alerts and alerts_fired:
        problems.append(f"{path}: {alerts_fired} alert(s) fired on traffic "
                        "expected to be honest")
    return problems


def check_prometheus(path: str) -> list[str]:
    """Problems with a Prometheus text exposition file."""
    problems: list[str] = []
    declared: set[str] = set()
    samples = 0
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        return [f"{path}: empty exposition"]
    for number, line in enumerate(lines, start=1):
        if not line:
            problems.append(f"{path}:{number}: blank line")
            continue
        if line.startswith("#"):
            match = _PROM_COMMENT.match(line)
            if match is None:
                problems.append(f"{path}:{number}: malformed comment")
            elif (match.group("what") == "TYPE"):
                if match.group("rest") not in _PROM_TYPES:
                    problems.append(f"{path}:{number}: unknown type "
                                    f"{match.group('rest')!r}")
                declared.add(match.group("name"))
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            problems.append(f"{path}:{number}: malformed sample {line!r}")
            continue
        samples += 1
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                problems.append(f"{path}:{number}: unparseable value "
                                f"{value!r}")
        family = match.group("name")
        for suffix in ("_sum", "_count", "_bucket"):
            if family.endswith(suffix) and family[:-len(suffix)] in declared:
                family = family[:-len(suffix)]
                break
        if family not in declared:
            problems.append(f"{path}:{number}: sample {family!r} has no "
                            "TYPE declaration")
    if not samples:
        problems.append(f"{path}: no samples")
    return problems


def check_dash_log(path: str) -> list[str]:
    """Problems with a captured ``alidrone dash --plain`` log."""
    with open(path) as fh:
        text = fh.read()
    problems = []
    for needle, what in (("rates", "a rates section"),
                         ("alerts (", "an alerts section"),
                         ("telemetry:", "the closing telemetry summary")):
        if needle not in text:
            problems.append(f"{path}: no {what} in the frame stream")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rollups", action="append", default=[],
                        help="rollup JSONL stream to check (repeatable)")
    parser.add_argument("--honest-rollups", action="append", default=[],
                        help="rollup stream from honest traffic: schema "
                             "checks plus zero-alerts-fired")
    parser.add_argument("--prometheus", action="append", default=[],
                        help="Prometheus exposition file to check")
    parser.add_argument("--dash-log", action="append", default=[],
                        help="captured dash --plain output to check")
    args = parser.parse_args(argv)
    checked = (len(args.rollups) + len(args.honest_rollups)
               + len(args.prometheus) + len(args.dash_log))
    if not checked:
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.rollups:
        problems.extend(check_rollups(path))
    for path in args.honest_rollups:
        problems.extend(check_rollups(path, expect_no_alerts=True))
    for path in args.prometheus:
        problems.extend(check_prometheus(path))
    for path in args.dash_log:
        problems.extend(check_dash_log(path))

    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"dash check: {checked} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
