#!/usr/bin/env python
"""Schema sanity checks for the CLI telemetry artefacts.

The CI smoke job runs ``alidrone simulate --trace`` and
``alidrone audit-batch --json --metrics-json --trace`` on a tiny
scenario, then points this script at the files they wrote.  Only the
stdlib is needed — the checks are about the *formats* (the contract
downstream tooling parses), not the library internals:

* span JSONL: every line is one JSON object with the span fields,
  span ids are unique, parent links resolve, durations are coherent;
* audit-batch ``--json``: outcome rows and status counts reconcile
  with the batch size, per-stage timing is complete;
* metrics JSON: every entry is a typed counter/gauge/histogram snapshot.

Exit 0 when every provided file passes, 1 otherwise (problems are
listed on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys

SPAN_FIELDS = {"name", "span_id", "trace_id", "parent_id",
               "start_s", "end_s", "duration_s", "status", "attributes"}
SPAN_STATUSES = {"ok", "error"}
AUDIT_FIELDS = {"batch_size", "samples_per_submission", "drones", "workers",
                "executor", "wall_time_s", "submissions_per_second",
                "status_counts", "outcomes", "stage_timing"}
OUTCOME_FIELDS = {"flight_id", "drone_id", "status", "sample_count",
                  "message"}
STAGE_FIELDS = {"runs", "samples", "total_seconds", "mean_seconds",
                "std_seconds"}
METRIC_TYPES = {"counter", "gauge", "histogram"}


def check_trace(path: str) -> list[str]:
    """Problems with a span JSONL export (empty list = clean)."""
    problems: list[str] = []
    spans = []
    with open(path) as fh:
        for number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                problems.append(f"{path}:{number}: blank line")
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                problems.append(f"{path}:{number}: not JSON ({exc})")
    if not spans:
        problems.append(f"{path}: no spans")
        return problems

    ids = [span.get("span_id") for span in spans]
    if len(set(ids)) != len(ids):
        problems.append(f"{path}: duplicate span ids")
    known = set(ids)
    for span in spans:
        missing = SPAN_FIELDS - set(span)
        if missing:
            problems.append(f"{path}: span {span.get('span_id')} missing "
                            f"fields {sorted(missing)}")
            continue
        if span["status"] not in SPAN_STATUSES:
            problems.append(f"{path}: span {span['span_id']} has status "
                            f"{span['status']!r}")
        if span["parent_id"] is not None and span["parent_id"] not in known:
            problems.append(f"{path}: span {span['span_id']} parent "
                            f"{span['parent_id']!r} not in file")
        if span["end_s"] is not None:
            duration = span["end_s"] - span["start_s"]
            if duration < 0:
                problems.append(f"{path}: span {span['span_id']} ends "
                                "before it starts")
            elif abs(duration - (span["duration_s"] or 0.0)) > 1e-9:
                problems.append(f"{path}: span {span['span_id']} "
                                "duration_s does not match end_s - start_s")
    if not any(span.get("parent_id", "?") is None for span in spans):
        problems.append(f"{path}: no root span")
    return problems


def check_audit_json(path: str) -> list[str]:
    """Problems with an ``audit-batch --json`` document."""
    problems: list[str] = []
    with open(path) as fh:
        try:
            document = json.load(fh)
        except json.JSONDecodeError as exc:
            return [f"{path}: not JSON ({exc})"]
    missing = AUDIT_FIELDS - set(document)
    if missing:
        return [f"{path}: missing fields {sorted(missing)}"]

    batch_size = document["batch_size"]
    outcomes = document["outcomes"]
    if len(outcomes) != batch_size:
        problems.append(f"{path}: {len(outcomes)} outcomes for batch_size "
                        f"{batch_size}")
    if sum(document["status_counts"].values()) != batch_size:
        problems.append(f"{path}: status_counts do not sum to batch_size")
    for index, outcome in enumerate(outcomes):
        missing = OUTCOME_FIELDS - set(outcome)
        if missing:
            problems.append(f"{path}: outcome {index} missing "
                            f"fields {sorted(missing)}")
    if not document["stage_timing"]:
        problems.append(f"{path}: stage_timing is empty")
    for stage, entry in document["stage_timing"].items():
        missing = STAGE_FIELDS - set(entry)
        if missing:
            problems.append(f"{path}: stage {stage!r} missing "
                            f"fields {sorted(missing)}")
    return problems


def check_metrics_json(path: str) -> list[str]:
    """Problems with a metrics-registry snapshot."""
    problems: list[str] = []
    with open(path) as fh:
        try:
            document = json.load(fh)
        except json.JSONDecodeError as exc:
            return [f"{path}: not JSON ({exc})"]
    if not isinstance(document, dict) or not document:
        return [f"{path}: expected a non-empty metrics object"]
    for name, entry in document.items():
        kind = entry.get("type")
        if kind not in METRIC_TYPES:
            problems.append(f"{path}: metric {name!r} has type {kind!r}")
        elif kind in ("counter", "gauge"):
            if not isinstance(entry.get("value"), (int, float)):
                problems.append(f"{path}: metric {name!r} has no "
                                "numeric value")
        elif "count" not in entry or "sum" not in entry:
            problems.append(f"{path}: histogram {name!r} missing count/sum")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="append", default=[],
                        help="span JSONL export to check (repeatable)")
    parser.add_argument("--audit-json", action="append", default=[],
                        help="audit-batch --json document to check")
    parser.add_argument("--metrics-json", action="append", default=[],
                        help="metrics snapshot to check")
    args = parser.parse_args(argv)
    if not (args.trace or args.audit_json or args.metrics_json):
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.trace:
        problems.extend(check_trace(path))
    for path in args.audit_json:
        problems.extend(check_audit_json(path))
    for path in args.metrics_json:
        problems.extend(check_metrics_json(path))

    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(args.trace) + len(args.audit_json) + len(args.metrics_json)
    if not problems:
        print(f"telemetry check: {checked} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
