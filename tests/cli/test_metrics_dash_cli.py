"""CLI tests for the `alidrone metrics` and `alidrone dash` subcommands."""

import json

import pytest

from repro.cli.main import main
from repro.obs.hub import read_rollups_jsonl
from repro.obs.prom import validate_exposition


@pytest.mark.slow
class TestMetricsCommand:
    def test_json_output(self, capsys):
        code = main(["--key-bits", "512", "metrics"])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert any(name.startswith("audit.") for name in snapshot)
        # Deterministic export: keys arrive sorted.
        assert list(snapshot) == sorted(snapshot)

    def test_prometheus_output_validates(self, capsys):
        code = main(["--key-bits", "512", "metrics", "--prometheus"])
        assert code == 0
        text = capsys.readouterr().out
        assert validate_exposition(text) == []
        assert "# TYPE alidrone_" in text

    def test_from_json_round_trip(self, tmp_path, capsys):
        snapshot = {"hits": {"type": "counter", "value": 3}}
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(snapshot))
        code = main(["metrics", "--prometheus", "--from-json", str(path)])
        assert code == 0
        assert "alidrone_hits 3.0" in capsys.readouterr().out

    def test_from_json_rejects_non_dict(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        assert main(["metrics", "--from-json", str(path)]) == 2


@pytest.mark.slow
class TestDashCommand:
    def test_chaos_dash_honest_run(self, tmp_path, capsys):
        rollups = tmp_path / "rollups.jsonl"
        code = main(["--seed", "1", "dash", "--run", "chaos",
                     "--plans", "baseline", "--plain",
                     "--rollup-jsonl", str(rollups)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out
        assert "alerts (0 firing)" in out
        lines = read_rollups_jsonl(rollups)
        assert lines
        assert all(not line["alerts_fired"] for line in lines)

    def test_unknown_plan_rejected(self):
        assert main(["dash", "--run", "chaos",
                     "--plans", "nonesuch", "--plain"]) == 2
