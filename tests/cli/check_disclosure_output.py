#!/usr/bin/env python
"""Independent validation of ``alidrone disclosure --json`` reports.

The CI disclosure-smoke job runs the selective-disclosure differential
sweep and points this script at the JSON it wrote.  Like the other
``check_*`` validators, everything here is stdlib-only — no imports
from ``repro`` — so a bug in the sweep cannot also hide in its
validator.  What must hold for any clean sweep:

* **Schema** — every report field present with the right shape.
* **Decision identity** — every honest trial's disclosed verdict
  matched its full-trace verdict, and every non-compliant flight's
  rejection survived disclosure.
* **Zero false accepts** — no adversarial disclosure policy produced a
  single false accept, and the structural tampers (cross-flight
  splice, forged siblings) produced no accepts at all.
* **Coverage** — at least ``--min-trajectories`` trials ran, every
  adversarial policy was exercised, and the trial partition sums.
* **Bandwidth** — the honest disclosures actually redacted something
  and the wire accounting is internally consistent.

Exit 0 when every provided file passes, 1 otherwise (problems on
stderr).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

TOP_FIELDS = {"trajectories", "scheme", "honest_trials",
              "honest_decision_matches", "honest_accepts", "bad_trials",
              "bad_rejects_preserved", "adversarial_trials",
              "adversarial_false_accepts", "adversarial_outcomes",
              "full_wire_bytes", "disclosed_wire_bytes",
              "bandwidth_reduction", "revealed_samples", "total_samples",
              "disagreements", "ok"}
POLICY_FIELDS = {"trials", "accepts", "false_accepts"}
STRUCTURAL_POLICIES = {"cross_flight_splice", "forged_sibling"}
EXPECTED_POLICIES = {"hide_near_zone", "endpoints_only",
                     "cross_flight_splice", "forged_sibling"}


def _is_count(value) -> bool:
    return (isinstance(value, int) and not isinstance(value, bool)
            and value >= 0)


def check_disclosure(path: str, min_trajectories: int = 1,
                     min_reduction: float = 0.0) -> list[str]:
    """Problems with one disclosure report (empty list = clean)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path}: expected a JSON object"]
    missing = TOP_FIELDS - set(doc)
    if missing:
        return [f"{path}: missing fields {sorted(missing)}"]
    problems: list[str] = []

    for field in ("trajectories", "honest_trials", "honest_decision_matches",
                  "honest_accepts", "bad_trials", "bad_rejects_preserved",
                  "adversarial_trials", "adversarial_false_accepts",
                  "full_wire_bytes", "disclosed_wire_bytes",
                  "revealed_samples", "total_samples"):
        if not _is_count(doc[field]):
            problems.append(f"{path}: {field} is not a count")
    if problems:
        return problems

    # Coverage: the sweep actually ran at the required scale and every
    # trial was either honest or deliberately non-compliant.
    if doc["trajectories"] < min_trajectories:
        problems.append(f"{path}: only {doc['trajectories']} trajectories, "
                        f"required {min_trajectories}")
    if doc["honest_trials"] + doc["bad_trials"] != doc["trajectories"]:
        problems.append(f"{path}: honest+bad="
                        f"{doc['honest_trials'] + doc['bad_trials']} does "
                        f"not partition trajectories={doc['trajectories']}")
    if doc["honest_trials"] == 0 or doc["bad_trials"] == 0:
        problems.append(f"{path}: sweep must mix honest and non-compliant "
                        "flights")

    # Decision identity.
    if doc["honest_decision_matches"] != doc["honest_trials"]:
        problems.append(
            f"{path}: {doc['honest_trials'] - doc['honest_decision_matches']}"
            " honest trial(s) changed verdict under disclosure")
    if doc["bad_rejects_preserved"] != doc["bad_trials"]:
        problems.append(
            f"{path}: {doc['bad_trials'] - doc['bad_rejects_preserved']} "
            "non-compliant flight(s) laundered to ACCEPT")
    if not isinstance(doc["disagreements"], list):
        problems.append(f"{path}: disagreements is not a list")
    elif doc["disagreements"]:
        problems.append(f"{path}: {len(doc['disagreements'])} recorded "
                        "disagreement(s)")

    # Adversarial policies: all exercised, zero false accepts anywhere,
    # structural tampers rejected unconditionally.
    outcomes = doc["adversarial_outcomes"]
    if not isinstance(outcomes, dict):
        problems.append(f"{path}: adversarial_outcomes is not an object")
        outcomes = {}
    missing_policies = EXPECTED_POLICIES - set(outcomes)
    if missing_policies:
        problems.append(f"{path}: adversarial policies never ran: "
                        f"{sorted(missing_policies)}")
    total_trials = 0
    for policy, outcome in sorted(outcomes.items()):
        if not isinstance(outcome, dict) or POLICY_FIELDS - set(outcome):
            problems.append(f"{path}: outcome for {policy} malformed")
            continue
        if not all(_is_count(outcome[field]) for field in POLICY_FIELDS):
            problems.append(f"{path}: outcome for {policy} has non-counts")
            continue
        total_trials += outcome["trials"]
        if outcome["trials"] == 0:
            problems.append(f"{path}: policy {policy} never exercised")
        if outcome["false_accepts"] != 0:
            problems.append(f"{path}: policy {policy} produced "
                            f"{outcome['false_accepts']} false accept(s)")
        if policy in STRUCTURAL_POLICIES and outcome["accepts"] != 0:
            problems.append(f"{path}: structural tamper {policy} was "
                            f"accepted {outcome['accepts']} time(s)")
    if total_trials != doc["adversarial_trials"]:
        problems.append(f"{path}: per-policy trials sum to {total_trials}, "
                        f"adversarial_trials={doc['adversarial_trials']}")
    if doc["adversarial_false_accepts"] != 0:
        problems.append(f"{path}: {doc['adversarial_false_accepts']} "
                        "adversarial false accept(s)")

    # Bandwidth accounting.
    reduction = doc["bandwidth_reduction"]
    if not (isinstance(reduction, (int, float))
            and not isinstance(reduction, bool)
            and math.isfinite(reduction) and reduction > 0.0):
        problems.append(f"{path}: bandwidth_reduction is not a positive "
                        "finite number")
    elif reduction < min_reduction:
        problems.append(f"{path}: bandwidth reduction {reduction}x below "
                        f"required {min_reduction}x")
    if doc["revealed_samples"] > doc["total_samples"]:
        problems.append(f"{path}: revealed_samples exceeds total_samples")
    if doc["honest_trials"] and doc["disclosed_wire_bytes"] == 0:
        problems.append(f"{path}: honest trials ran but no disclosed "
                        "bytes were accounted")

    if doc["ok"] is not True:
        problems.append(f"{path}: sweep reported ok={doc['ok']!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", action="append", default=[],
                        help="disclosure report JSON to check (repeatable)")
    parser.add_argument("--min-trajectories", type=int, default=1,
                        help="require at least this many trajectories "
                             "(default 1)")
    parser.add_argument("--min-reduction", type=float, default=0.0,
                        help="require at least this bandwidth reduction "
                             "factor (default 0: any)")
    args = parser.parse_args(argv)
    if not args.report:
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.report:
        problems.extend(check_disclosure(
            path, min_trajectories=args.min_trajectories,
            min_reduction=args.min_reduction))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"disclosure check: {len(args.report)} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
