"""Tests for the ``alidrone`` CLI."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(["--seed", "7", "--key-bits", "512",
                                          "fig6"])
        assert args.seed == 7
        assert args.key_bits == 512

    def test_invalid_key_bits_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--key-bits", "333", "fig6"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.zones == 12
        assert args.policy == "adaptive"


class TestCommands:
    def test_simulate_compliant_exit_code(self, capsys):
        code = main(["--seed", "1", "--key-bits", "512", "simulate",
                     "--zones", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict         : compliant" in out
        assert "signatures OK   : True" in out

    def test_simulate_fixed_policy(self, capsys):
        code = main(["--seed", "1", "--key-bits", "512", "simulate",
                     "--zones", "4", "--policy", "fixed", "--rate", "2"])
        assert code == 0
        assert "fixed-2hz" in capsys.readouterr().out

    def test_table2_fixed_only(self, capsys):
        code = main(["--key-bits", "512", "table2", "--fixed-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fixed 2 Hz" in out
        assert "Memory: 3.27 MB" in out
        # The 2048/5Hz "-" cell renders.
        assert "-" in out

    def test_fig6(self, capsys):
        code = main(["--key-bits", "512", "fig6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "649 samples (paper: 649)" in out
        assert "adaptive series:" in out

    @pytest.mark.slow
    def test_fig8(self, capsys):
        code = main(["--key-bits", "512", "fig8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "insufficient PoA pairs" in out
        assert "(paper: 39)" in out


class TestAttacksCommand:
    @pytest.mark.slow
    def test_attacks_walkthrough_runs(self, capsys):
        code = main(["attacks"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("VIOLATION") >= 5


class TestExportAndCalibrate:
    def test_export_to_stdout(self, capsys):
        code = main(["export", "--scenario", "airport", "--step", "30"])
        out = capsys.readouterr().out
        assert code == 0
        import json
        document = json.loads(out)
        assert document["type"] == "FeatureCollection"

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "res.geojson"
        code = main(["export", "--scenario", "residential", "--out",
                     str(target), "--step", "20"])
        assert code == 0
        import json
        document = json.loads(target.read_text())
        centers = [f for f in document["features"]
                   if f["properties"]["kind"] == "nfz-center"]
        assert len(centers) == 94

    def test_calibrate_prints_local_table(self, capsys):
        code = main(["calibrate", "--repetitions", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RSA-1024 sign" in out
        assert "Table II re-predicted" in out
        assert "Fixed 5 Hz" in out


class TestChaosCommand:
    def test_smoke_sweep_writes_valid_report(self, tmp_path, capsys):
        """A tiny sweep passes its invariants and the schema checker."""
        import json
        import pathlib
        import sys

        target = tmp_path / "chaos.json"
        code = main(["--seed", "1", "chaos", "--scenarios", "compliant",
                     "violation", "--plans", "baseline", "lossy30",
                     "--zones", "3", "--out", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "false accepts" in out
        assert "verdict" in out and "OK" in out
        report = json.loads(target.read_text())
        assert report["ok"] is True
        assert len(report["cells"]) == 4
        assert report["invariants"]["false_accepts"] == []

        sys.path.insert(0, str(pathlib.Path(__file__).parent))
        try:
            from check_chaos_output import check_chaos
        finally:
            sys.path.pop(0)
        assert check_chaos(str(target)) == []

    def test_json_output_mode(self, capsys):
        import json

        code = main(["--seed", "2", "chaos", "--scenarios", "compliant",
                     "--plans", "baseline", "--zones", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"config", "cells", "invariants", "ok"}

    def test_unknown_plan_rejected(self, capsys):
        code = main(["chaos", "--plans", "not-a-plan"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown fault plan" in captured.err


class TestAttackCommand:
    def test_small_sweep_writes_valid_report(self, tmp_path, capsys):
        """A reduced-trajectory sweep passes invariants and the checker."""
        import json
        import pathlib
        import sys

        target = tmp_path / "attack.json"
        metrics = tmp_path / "metrics.json"
        code = main(["--seed", "3", "attack", "--trajectories", "12",
                     "--out", str(target), "--metrics-json", str(metrics)])
        out = capsys.readouterr().out
        assert code == 0
        assert "attack matrix: 57 cells" in out
        assert "false accepts       : 0" in out
        assert "verdict" in out and "OK" in out

        report = json.loads(target.read_text())
        assert report["ok"] is True
        assert report["conformance"]["trajectories"] == 12

        snapshot = json.loads(metrics.read_text())
        flat = json.dumps(snapshot)
        assert "adversary.attacks_run" in flat
        assert "adversary.false_accepts" in flat

        sys.path.insert(0, str(pathlib.Path(__file__).parent))
        try:
            from check_attack_output import check_attack
        finally:
            sys.path.pop(0)
        assert check_attack(str(target), min_attacks=8, min_scenarios=3,
                            min_trajectories=12) == []


class TestErrorHandling:
    def test_fixed_policy_without_rate_exits_cleanly(self, capsys):
        code = main(["--key-bits", "512", "simulate", "--zones", "4",
                     "--policy", "fixed"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err
        assert "Traceback" not in captured.err


class TestDisclosureCommand:
    def test_sweep_writes_validated_report(self, tmp_path, capsys):
        out = tmp_path / "disclosure.json"
        code = main(["disclosure", "--trajectories", "9", "--zones", "4",
                     "--out", str(out)])
        assert code == 0
        prose = capsys.readouterr().out
        assert "verdict" in prose and "OK" in prose

        import json

        from tests.cli.check_disclosure_output import check_disclosure
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        assert check_disclosure(str(out), min_trajectories=9) == []

    def test_json_mode_prints_report(self, capsys):
        code = main(["disclosure", "--trajectories", "6", "--zones", "3",
                     "--json"])
        assert code == 0
        import json
        doc = json.loads(capsys.readouterr().out)
        assert doc["trajectories"] == 6
        assert doc["adversarial_false_accepts"] == 0
