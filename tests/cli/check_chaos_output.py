#!/usr/bin/env python
"""Schema sanity checks for the ``alidrone chaos`` report artefact.

The CI chaos-smoke job runs ``alidrone chaos`` in a tiny configuration
and points this script at the JSON report it wrote.  Only the stdlib is
needed — the checks are about the artefact *format* downstream tooling
diffs, not the library internals:

* top level: ``config`` / ``cells`` / ``invariants`` / ``ok``;
* config echoes the sweep parameters (seed, budget, scenario and plan
  name lists);
* one cell per (scenario, plan) pair, each carrying the status, the
  liveness fields, a PoA digest, and the fault/retry stat snapshots;
* the invariant block is consistent with ``ok`` (``ok`` is true exactly
  when there are no false accepts, no liveness failures, and the no-op
  path was bit-identical).

Exit 0 when every provided file passes, 1 otherwise (problems are listed
on stderr).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

TOP_FIELDS = {"config", "cells", "invariants", "ok"}
CONFIG_FIELDS = {"seed", "key_bits", "update_rate_hz", "liveness_budget_s",
                 "liveness_loss_ceiling", "scenarios", "plans"}
CELL_FIELDS = {"scenario", "plan", "violation", "status", "accepted",
               "submission_complete", "liveness_applies", "liveness_ok",
               "recovery_latency_s", "auth_samples", "degraded_decisions",
               "retransmissions", "duplicate_frames", "corrupt_frames",
               "poa_digest", "fault_stats", "retry_stats", "metrics"}
INVARIANT_FIELDS = {"false_accepts", "liveness_failures",
                    "noop_path_identical"}


def _load(path: str):
    with open(path) as fh:
        return json.load(fh)


def _is_number(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value))


def check_chaos(path: str) -> list[str]:
    """Problems with a chaos report file (empty list = clean)."""
    try:
        document = _load(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if not isinstance(document, dict):
        return [f"{path}: expected a JSON object"]
    missing = TOP_FIELDS - set(document)
    if missing:
        return [f"{path}: missing fields {sorted(missing)}"]
    problems: list[str] = []

    config = document["config"]
    missing = CONFIG_FIELDS - set(config)
    if missing:
        problems.append(f"{path}: config missing fields {sorted(missing)}")

    cells = document["cells"]
    if not isinstance(cells, list) or not cells:
        return problems + [f"{path}: cells must be a non-empty list"]
    expected = len(config.get("scenarios", [])) * len(config.get("plans", []))
    if expected and len(cells) != expected:
        problems.append(f"{path}: {len(cells)} cells for "
                        f"{expected} (scenario, plan) pairs")
    for cell in cells:
        label = f"{cell.get('scenario')}/{cell.get('plan')}"
        missing = CELL_FIELDS - set(cell)
        if missing:
            problems.append(f"{path}: cell {label} missing fields "
                            f"{sorted(missing)}")
            continue
        if cell["scenario"] not in config.get("scenarios", []):
            problems.append(f"{path}: cell {label} names an unknown "
                            "scenario")
        if cell["plan"] not in config.get("plans", []):
            problems.append(f"{path}: cell {label} names an unknown plan")
        if not isinstance(cell["status"], str) or not cell["status"]:
            problems.append(f"{path}: cell {label} status invalid")
        if cell["accepted"] and cell["status"] != "accepted":
            problems.append(f"{path}: cell {label} accepted flag "
                            "contradicts its status")
        if not (_is_number(cell["recovery_latency_s"])
                and cell["recovery_latency_s"] >= 0):
            problems.append(f"{path}: cell {label} recovery latency "
                            "invalid")
        for counter in ("auth_samples", "degraded_decisions",
                        "retransmissions", "duplicate_frames",
                        "corrupt_frames"):
            value = cell[counter]
            if not (isinstance(value, int) and value >= 0):
                problems.append(f"{path}: cell {label} counter {counter} "
                                "invalid")
        if cell["submission_complete"] and not (
                isinstance(cell["poa_digest"], str) and cell["poa_digest"]):
            problems.append(f"{path}: cell {label} completed without a "
                            "PoA digest")
        for snapshot in ("fault_stats", "retry_stats", "metrics"):
            if not isinstance(cell[snapshot], dict):
                problems.append(f"{path}: cell {label} {snapshot} is not "
                                "an object")

    invariants = document["invariants"]
    missing = INVARIANT_FIELDS - set(invariants)
    if missing:
        return problems + [f"{path}: invariants missing fields "
                           f"{sorted(missing)}"]
    if not isinstance(invariants["noop_path_identical"], bool):
        problems.append(f"{path}: noop_path_identical must be a boolean")
    derived_ok = (not invariants["false_accepts"]
                  and not invariants["liveness_failures"]
                  and invariants["noop_path_identical"] is True)
    if document["ok"] is not derived_ok:
        problems.append(f"{path}: ok={document['ok']!r} contradicts the "
                        "invariant block")
    # The point of the smoke job: a violation cell marked accepted must
    # be listed as a false accept.
    for cell in cells:
        if isinstance(cell, dict) and cell.get("violation") \
                and cell.get("accepted"):
            label = f"{cell['scenario']}/{cell['plan']}"
            if label not in invariants["false_accepts"]:
                problems.append(f"{path}: accepted violation {label} not "
                                "reported as a false accept")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chaos", action="append", default=[],
                        help="chaos report JSON to check (repeatable)")
    args = parser.parse_args(argv)
    if not args.chaos:
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.chaos:
        problems.extend(check_chaos(path))

    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"chaos check: {len(args.chaos)} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
