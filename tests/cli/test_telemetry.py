"""Tests for the CLI telemetry surfaces and their schema checker.

Covers ``simulate --trace``, ``audit-batch --json/--metrics-json/--trace``,
and ``check_telemetry_output.py`` — the script the CI smoke job runs
against the same artefacts.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.cli.main import main
from repro.obs import read_spans_jsonl

_CHECKER_PATH = pathlib.Path(__file__).parent / "check_telemetry_output.py"
_spec = importlib.util.spec_from_file_location("check_telemetry_output",
                                               _CHECKER_PATH)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)

STAGE_NAMES = ["signature", "decode", "ordering", "feasibility",
               "sufficiency"]


@pytest.fixture()
def traced_simulate(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code = main(["--seed", "1", "--key-bits", "512", "simulate",
                 "--zones", "4", str("--trace"), str(path)])
    out = capsys.readouterr().out
    return code, out, path


@pytest.fixture()
def audit_batch_artifacts(tmp_path, capsys):
    audit_json = tmp_path / "audit.json"
    metrics_json = tmp_path / "metrics.json"
    trace = tmp_path / "audit-trace.jsonl"
    code = main(["--key-bits", "512", "audit-batch",
                 "--submissions", "4", "--samples", "6", "--drones", "2",
                 "--json", "--metrics-json", str(metrics_json),
                 "--trace", str(trace)])
    out = capsys.readouterr().out
    audit_json.write_text(out)
    return code, audit_json, metrics_json, trace


class TestSimulateTrace:
    def test_writes_connected_trace(self, traced_simulate):
        code, out, path = traced_simulate
        assert code == 0
        assert "trace           :" in out
        spans = read_spans_jsonl(path)
        assert spans
        assert len({span.trace_id for span in spans}) == 1
        names = {span.name for span in spans}
        assert {"simulate", "flight", "tee.gps_sampler_ta.sign",
                "audit", *STAGE_NAMES} <= names

    def test_passes_schema_checker(self, traced_simulate):
        _, _, path = traced_simulate
        assert checker.check_trace(str(path)) == []

    def test_no_trace_flag_writes_nothing(self, tmp_path, capsys):
        code = main(["--seed", "1", "--key-bits", "512", "simulate",
                     "--zones", "4"])
        assert code == 0
        assert "trace           :" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestAuditBatchJson:
    def test_json_document_and_exit_code(self, audit_batch_artifacts):
        code, audit_json, _, _ = audit_batch_artifacts
        assert code == 0
        document = json.loads(audit_json.read_text())
        assert document["batch_size"] == 4
        assert len(document["outcomes"]) == 4
        assert document["status_counts"] == {"accepted": 4}
        # The pipeline stages plus the engine's decrypt accounting.
        assert set(STAGE_NAMES) <= set(document["stage_timing"])

    def test_rejected_batch_exits_nonzero(self, capsys):
        # One-sample PoAs cannot prove continuous absence: insufficient.
        code = main(["--key-bits", "512", "audit-batch",
                     "--submissions", "2", "--samples", "1",
                     "--drones", "1", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["status_counts"] == {"insufficient": 2}

    def test_metrics_snapshot_written(self, audit_batch_artifacts):
        _, _, metrics_json, _ = audit_batch_artifacts
        snapshot = json.loads(metrics_json.read_text())
        assert snapshot["audit.signature.runs"]["value"] == 4
        assert snapshot["server.registered_drones"]["value"] == 2
        assert snapshot["server.events.kind.batch_audited"]["value"] == 1
        assert snapshot["server.events.kind.poa_received"]["value"] == 4

    def test_trace_covers_batch(self, audit_batch_artifacts):
        _, _, _, trace = audit_batch_artifacts
        spans = read_spans_jsonl(trace)
        names = [span.name for span in spans]
        assert "server.receive_poa_batch" in names
        assert "audit_batch" in names
        assert names.count("audit.submission") == 4
        assert names.count("crypto") == 4

    def test_artifacts_pass_schema_checker(self, audit_batch_artifacts):
        _, audit_json, metrics_json, trace = audit_batch_artifacts
        assert checker.main(["--trace", str(trace),
                             "--audit-json", str(audit_json),
                             "--metrics-json", str(metrics_json)]) == 0


class TestChecker:
    def test_rejects_malformed_trace(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"span_id": "s1"}\n')
        problems = checker.check_trace(str(bad))
        assert any("missing fields" in p for p in problems)

    def test_rejects_dangling_parent(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        row = {"name": "x", "span_id": "s1", "trace_id": "t1",
               "parent_id": "ghost", "start_s": 0.0, "end_s": 1.0,
               "duration_s": 1.0, "status": "ok", "attributes": {}}
        bad.write_text(json.dumps(row) + "\n")
        problems = checker.check_trace(str(bad))
        assert any("not in file" in p for p in problems)
        assert any("no root span" in p for p in problems)

    def test_rejects_inconsistent_audit_counts(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "batch_size": 2, "samples_per_submission": 1, "drones": 1,
            "workers": 1, "executor": "thread", "wall_time_s": 0.1,
            "submissions_per_second": 20.0,
            "status_counts": {"accepted": 1},
            "outcomes": [], "stage_timing": {"signature": {
                "runs": 1, "samples": 1, "total_seconds": 0.1,
                "mean_seconds": 0.1, "std_seconds": 0.0}}}))
        problems = checker.check_audit_json(str(bad))
        assert any("outcomes" in p for p in problems)
        assert any("sum to batch_size" in p for p in problems)

    def test_rejects_untyped_metric(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"m": {"value": 1}}))
        assert checker.check_metrics_json(str(bad))

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "metrics.json"
        good.write_text(json.dumps(
            {"m": {"type": "counter", "value": 1}}))
        assert checker.main(["--metrics-json", str(good)]) == 0
        assert "1 file(s) ok" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert checker.main(["--metrics-json", str(bad)]) == 1


def test_checker_script_is_executable_standalone():
    """CI runs the checker as a plain script; it must not import repro."""
    source = (pathlib.Path(__file__).parent
              / "check_telemetry_output.py").read_text()
    assert "import repro" not in source
    assert "from repro" not in source
