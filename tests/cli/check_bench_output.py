#!/usr/bin/env python
"""Schema sanity checks for the ``BENCH_*.json`` benchmark artefacts.

The CI benchmark-smoke job runs ``benchmarks/bench_nfz_scale.py`` in a
tiny configuration and points this script at what it wrote.  Only the
stdlib is needed — the checks are about the artefact *formats* the perf
trajectory tooling diffs, not the library internals:

* generic (``--bench``): a JSON object whose timing leaves are finite
  non-negative numbers — either the pytest-benchmark shape
  (``benchmarks: {name: {mean_s, min_s, ...}}``) or a hand-assembled
  payload (any dict);
* NFZ-scale (``--nfz-scale``): the full contract of
  ``BENCH_nfz_scale.json`` — config echoed, one result row per zone
  count, each with build/nearest/pair/sufficiency timings, index stats,
  and an ``equivalent: true`` marker.

Exit 0 when every provided file passes, 1 otherwise (problems are listed
on stderr).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

NFZ_TOP_FIELDS = {"config", "results", "speedup_at_max_zone_count"}
NFZ_CONFIG_FIELDS = {"zone_counts", "queries", "seed", "repeats",
                     "corridor_length_m", "pair_cutoff_m"}
NFZ_ROW_FIELDS = {"zones", "build_s", "nearest", "pair", "sufficiency",
                  "index", "equivalent"}
NFZ_AB_FIELDS = {"brute_s", "indexed_s", "speedup"}
NFZ_INDEX_FIELDS = {"cell_size_m", "queries", "mean_candidates_per_query",
                    "mean_rings_per_query", "cutoff_exits"}
BENCH_STAT_FIELDS = {"mean_s", "min_s", "max_s", "median_s", "stddev_s",
                     "rounds"}


def _load(path: str):
    with open(path) as fh:
        return json.load(fh)


def _is_timing(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and value >= 0)


def check_bench(path: str) -> list[str]:
    """Problems with a generic ``BENCH_*.json`` (empty list = clean)."""
    try:
        document = _load(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if not isinstance(document, dict) or not document:
        return [f"{path}: expected a non-empty JSON object"]
    problems: list[str] = []
    benchmarks = document.get("benchmarks")
    if benchmarks is not None:
        if not isinstance(benchmarks, dict) or not benchmarks:
            return [f"{path}: 'benchmarks' must be a non-empty object"]
        for name, stats in benchmarks.items():
            missing = BENCH_STAT_FIELDS - set(stats)
            if missing:
                problems.append(f"{path}: benchmark {name!r} missing "
                                f"fields {sorted(missing)}")
                continue
            for field in ("mean_s", "min_s", "max_s", "median_s"):
                if not _is_timing(stats[field]):
                    problems.append(f"{path}: benchmark {name!r} field "
                                    f"{field} is not a finite timing")
            if not (isinstance(stats["rounds"], int) and stats["rounds"] >= 1):
                problems.append(f"{path}: benchmark {name!r} has no rounds")
    return problems


def check_nfz_scale(path: str) -> list[str]:
    """Problems with the ``BENCH_nfz_scale.json`` contract."""
    try:
        document = _load(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    problems: list[str] = []
    missing = NFZ_TOP_FIELDS - set(document)
    if missing:
        return [f"{path}: missing fields {sorted(missing)}"]
    config = document["config"]
    missing = NFZ_CONFIG_FIELDS - set(config)
    if missing:
        problems.append(f"{path}: config missing fields {sorted(missing)}")
    results = document["results"]
    if not isinstance(results, list) or not results:
        return problems + [f"{path}: results must be a non-empty list"]
    if [row.get("zones") for row in results] != config.get("zone_counts"):
        problems.append(f"{path}: result rows do not match "
                        "config.zone_counts")
    for row in results:
        zones = row.get("zones")
        missing = NFZ_ROW_FIELDS - set(row)
        if missing:
            problems.append(f"{path}: row Z={zones} missing fields "
                            f"{sorted(missing)}")
            continue
        if row["equivalent"] is not True:
            problems.append(f"{path}: row Z={zones} not marked equivalent")
        if not _is_timing(row["build_s"]):
            problems.append(f"{path}: row Z={zones} build_s invalid")
        for section in ("nearest", "pair", "sufficiency"):
            entry = row[section]
            missing = NFZ_AB_FIELDS - set(entry)
            if missing:
                problems.append(f"{path}: row Z={zones} {section} missing "
                                f"fields {sorted(missing)}")
                continue
            if not (_is_timing(entry["brute_s"])
                    and _is_timing(entry["indexed_s"])):
                problems.append(f"{path}: row Z={zones} {section} timings "
                                "invalid")
        missing = NFZ_INDEX_FIELDS - set(row["index"])
        if missing:
            problems.append(f"{path}: row Z={zones} index stats missing "
                            f"fields {sorted(missing)}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", action="append", default=[],
                        help="generic BENCH_*.json to check (repeatable)")
    parser.add_argument("--nfz-scale", action="append", default=[],
                        help="BENCH_nfz_scale.json to check against the "
                             "full schema")
    args = parser.parse_args(argv)
    if not (args.bench or args.nfz_scale):
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.bench:
        problems.extend(check_bench(path))
    for path in args.nfz_scale:
        problems.extend(check_nfz_scale(path))

    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(args.bench) + len(args.nfz_scale)
    if not problems:
        print(f"bench check: {checked} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
