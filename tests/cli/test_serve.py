"""Tests for ``alidrone serve`` and its CI schema checker.

``serve`` is the one-shot driver of the persistent auditor service: a
Poisson fleet over a virtual clock, sharded draining, a durable store
and monitor-rule evaluation per tick.  The suite runs the real CLI
entrypoint (``main``) and validates its JSON with the same
``check_service_output.py`` script the CI smoke job uses.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.cli.main import main

_CHECKER_PATH = pathlib.Path(__file__).parent / "check_service_output.py"
_spec = importlib.util.spec_from_file_location("check_service_output",
                                               _CHECKER_PATH)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def run_serve(capsys, *extra):
    argv = ["serve", "--ticks", "12", "--rate", "2.0", "--drones", "4",
            "--samples", "3", "--shards", "2", "--json", *extra]
    code = main(argv)
    return code, capsys.readouterr().out


class TestServeJson:
    def test_clean_run_passes_checker(self, tmp_path, capsys):
        code, out = run_serve(capsys)
        assert code == 0
        doc = json.loads(out)
        assert doc["ok"] is True
        assert doc["stats"]["audited"] > 0
        assert doc["stats"]["audited"] == doc["stats"]["accepted"]
        assert doc["store"]["pending"] == 0
        assert len(doc["stats"]["per_shard_audited"]) == 2
        path = tmp_path / "serve.json"
        path.write_text(out)
        assert checker.check_serve(str(path)) == []
        assert checker.main(["--serve", str(path),
                             "--min-audited", "5"]) == 0

    def test_deterministic_across_runs(self, capsys):
        _, first = run_serve(capsys)
        _, second = run_serve(capsys)
        a, b = json.loads(first), json.loads(second)
        # Only the wall-clock latency observations vary run to run.
        for doc in (a, b):
            del doc["intake_p99_s"], doc["store_p99_s"]
        assert a == b

    def test_admission_limit_sheds_and_still_exits_zero(self, capsys):
        code, out = run_serve(capsys, "--rate", "6.0",
                              "--admission-rate", "1.0",
                              "--admission-burst", "2.0")
        assert code == 0
        doc = json.loads(out)
        stats = doc["stats"]
        assert stats["shed_rate_limited"] > 0
        assert stats["submitted"] == (stats["accepted"]
                                      + stats["deduplicated"]
                                      + stats["shed"])
        # Shedding is back-pressure, not failure: the run is still ok.
        assert doc["ok"] is True

    def test_prose_mode(self, capsys):
        code = main(["serve", "--ticks", "8", "--drones", "3",
                     "--samples", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serve: 8 tick(s)" in out
        assert "verdict         OK" in out


class TestServeDurableStore:
    def test_rerun_on_same_store_dedups_everything(self, tmp_path, capsys):
        store = tmp_path / "flights.db"
        args = ("--store", str(store), "--ticks", "10", "--drones", "3",
                "--samples", "3")
        code, out = run_serve(capsys, *args)
        first = json.loads(out)
        assert code == 0
        assert first["stats"]["deduplicated"] == 0
        submissions = first["store"]["submissions"]
        assert submissions == first["stats"]["accepted"]

        # Same seed, same store: every arrival is a retransmission.
        code, out = run_serve(capsys, *args)
        second = json.loads(out)
        assert code == 0
        assert second["stats"]["accepted"] == 0
        assert second["stats"]["deduplicated"] == first["stats"]["accepted"]
        assert second["store"]["submissions"] == submissions
        assert second["store"]["pending"] == 0

    def test_store_path_reported(self, tmp_path, capsys):
        store = tmp_path / "flights.db"
        _, out = run_serve(capsys, "--store", str(store))
        assert json.loads(out)["store"]["path"] == str(store)


class TestServiceChecker:
    def test_checker_is_stdlib_only(self):
        source = _CHECKER_PATH.read_text()
        assert "import repro" not in source
        assert "from repro" not in source

    def test_rejects_broken_accounting(self, tmp_path, capsys):
        _, out = run_serve(capsys)
        doc = json.loads(out)
        doc["stats"]["accepted"] += 1
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(doc))
        problems = checker.check_serve(str(path))
        assert problems
        assert any("submitted" in p for p in problems)

    def test_rejects_pending_store_and_page_alerts(self, tmp_path, capsys):
        _, out = run_serve(capsys)
        doc = json.loads(out)
        doc["store"]["pending"] = 2
        doc["alerts"] = [{"rule": "verifier_error_rate",
                         "severity": "page", "t": 0.0}]
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(doc))
        problems = checker.check_serve(str(path))
        assert any("unaudited" in p for p in problems)
        assert any("page-severity" in p for p in problems)

    def test_rejects_missing_fields_and_low_volume(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        assert checker.check_serve(str(path))

        _, out = run_serve(capsys)
        ok_path = tmp_path / "ok.json"
        ok_path.write_text(out)
        with pytest.raises(SystemExit):
            checker.main([])  # nothing to check
        assert checker.main(["--serve", str(ok_path),
                             "--min-audited", "10000"]) == 1
