"""Tests for ``alidrone fleet`` and its CI schema checker.

``fleet`` drives the hostile-traffic fleet simulator end to end: honest
+ chaos + adversary + flood classes through the admission scheduler on
the virtual clock, closing with the standing invariants.  The suite
runs the real CLI entrypoint (``main``) and validates its JSON with the
same ``check_fleet_output.py`` script the CI fleet-smoke job uses —
including the negative paths, so the checker is known to actually bite.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.cli.main import main

_CHECKER_PATH = pathlib.Path(__file__).parent / "check_fleet_output.py"
_spec = importlib.util.spec_from_file_location("check_fleet_output",
                                               _CHECKER_PATH)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def run_fleet(capsys, *extra):
    argv = ["fleet", "--drones", "4", "--flooders", "1", "--duration", "25",
            "--honest-rate", "1.5", "--attack-rate", "0.5",
            "--flood-burst", "8", "--policy", "fair-share",
            "--admission-rate", "100", "--samples", "3", "--json", *extra]
    code = main(argv)
    return code, capsys.readouterr().out


@pytest.fixture(scope="module")
def fleet_json():
    import contextlib
    import io
    buf = io.StringIO()
    argv = ["fleet", "--drones", "4", "--flooders", "1", "--duration", "25",
            "--honest-rate", "1.5", "--attack-rate", "0.5",
            "--flood-burst", "8", "--policy", "fair-share",
            "--admission-rate", "100", "--samples", "3", "--json"]
    with contextlib.redirect_stdout(buf):
        code = main(argv)
    assert code == 0
    return buf.getvalue()


class TestFleetJson:
    def test_clean_run_passes_checker(self, tmp_path, fleet_json):
        doc = json.loads(fleet_json)
        assert doc["ok"] is True
        assert doc["false_accepts"] == []
        assert doc["classes"]["adversary"]["statuses"].get("accepted",
                                                           0) == 0
        path = tmp_path / "fleet.json"
        path.write_text(fleet_json)
        assert checker.check_fleet(str(path)) == []
        assert checker.main(["--fleet", str(path),
                             "--min-honest-audited", "10",
                             "--max-honest-shed", "0.2"]) == 0

    def test_deterministic_across_runs(self, capsys):
        _, first = run_fleet(capsys)
        _, second = run_fleet(capsys)
        a, b = json.loads(first), json.loads(second)
        # Only the wall-clock timing block varies run to run.
        for doc in (a, b):
            del doc["timing"]
        assert a == b

    def test_prose_mode(self, capsys):
        code = main(["fleet", "--drones", "3", "--duration", "15",
                     "--samples", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet:" in out
        assert "verdict" in out and "OK" in out


class TestFleetChecker:
    def test_checker_is_stdlib_only(self):
        source = _CHECKER_PATH.read_text()
        assert "import repro" not in source
        assert "from repro" not in source

    def _write(self, tmp_path, doc, name="broken.json"):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_rejects_false_accepts(self, tmp_path, fleet_json):
        doc = json.loads(fleet_json)
        doc["false_accepts"] = [{"seq": 1, "drone_id": "drone-0",
                                 "flight_id": "flight-drone-0-200000",
                                 "traffic_class": "adversary",
                                 "attack": "incursion"}]
        problems = checker.check_fleet(self._write(tmp_path, doc))
        assert any("false accept" in p for p in problems)

    def test_rejects_broken_class_accounting(self, tmp_path, fleet_json):
        doc = json.loads(fleet_json)
        doc["classes"]["honest"]["accepted"] += 1
        problems = checker.check_fleet(self._write(tmp_path, doc))
        assert any("honest" in p for p in problems)

    def test_rejects_cross_class_total_mismatch(self, tmp_path, fleet_json):
        doc = json.loads(fleet_json)
        doc["stats"]["submitted"] += 5
        problems = checker.check_fleet(self._write(tmp_path, doc))
        assert any("stats.submitted" in p for p in problems)

    def test_rejects_adversary_accepts_and_breached_invariants(
            self, tmp_path, fleet_json):
        doc = json.loads(fleet_json)
        # Move one adversary verdict into ACCEPTED so the per-class
        # accounting still sums — the safety checks must fire on their
        # own, not by accident of a broken histogram.
        statuses = doc["classes"]["adversary"]["statuses"]
        donor = next(k for k, v in statuses.items() if v > 0)
        statuses[donor] -= 1
        statuses["accepted"] = statuses.get("accepted", 0) + 1
        doc["invariants"]["zero_false_accepts"] = False
        problems = checker.check_fleet(self._write(tmp_path, doc))
        assert any("ACCEPTED" in p for p in problems)
        assert any("zero_false_accepts" in p for p in problems)

    def test_rejects_missing_fields_pending_store_not_ok(self, tmp_path,
                                                         fleet_json):
        assert checker.check_fleet(self._write(tmp_path, {}, "empty.json"))

        doc = json.loads(fleet_json)
        doc["store"]["pending"] = 3
        doc["ok"] = False
        problems = checker.check_fleet(self._write(tmp_path, doc))
        assert any("unaudited" in p for p in problems)
        assert any("ok=False" in p for p in problems)

    def test_cli_negative_exit_codes(self, tmp_path, fleet_json):
        ok_path = tmp_path / "ok.json"
        ok_path.write_text(fleet_json)
        with pytest.raises(SystemExit):
            checker.main([])  # nothing to check
        assert checker.main(["--fleet", str(ok_path)]) == 0
        assert checker.main(["--fleet", str(ok_path),
                             "--min-honest-audited", "100000"]) == 1
        assert checker.main(["--fleet", str(tmp_path / "missing.json")]) == 1
