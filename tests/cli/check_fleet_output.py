#!/usr/bin/env python
"""Independent validation of ``alidrone fleet --json`` run summaries.

The CI fleet-smoke job runs a small hostile-traffic fleet (honest +
flood + an attacker class) through ``alidrone fleet`` and points this
script at the JSON it printed.  As with the other CLI checkers, the
checks use nothing but the stdlib — no imports from ``repro`` — so a
bug in the simulator cannot also hide in its validator.  What must hold
for any completed run:

* **Schema** — every summary field present with the right shape.
* **Per-class intake accounting** — for every traffic class,
  ``submitted`` partitions exactly into ``accepted + deduplicated +
  shed``, and each class's verdict histogram covers exactly its
  accepted submissions (one verdict per accepted row).
* **Cross-class totals** — class counters sum to the service totals.
* **Safety** — ``false_accepts`` is empty, the adversary class produced
  no ACCEPTED verdict, and every invariant the run asserts is true.
* **Liveness** — the honest shed ratio respects the configured bound
  (tightened further with ``--max-honest-shed``).
* **Durability** — store fully audited: no pending rows, no queue
  residue, verdict rows cover the store.
* **Timing** — when the non-deterministic ``timing`` block is present,
  its latencies are finite and non-negative.

Exit 0 when every provided file passes, 1 otherwise (problems on
stderr).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

TOP_FIELDS = {"mix", "policy", "shards", "queue_capacity", "events_total",
              "replayed_on_start", "classes", "stats", "status_counts",
              "false_accepts", "alerts", "admission", "crash", "store",
              "honest_shed_ratio", "flood_turned_away_ratio",
              "invariants", "ok"}
CLASS_FIELDS = {"submitted", "accepted", "deduplicated", "shed",
                "shed_rate_limited", "shed_queue_full", "statuses"}
STORE_FIELDS = {"submissions", "verdicts", "pending"}
KNOWN_CLASSES = {"honest", "chaos", "adversary", "flood"}


def _is_count(value) -> bool:
    return (isinstance(value, int) and not isinstance(value, bool)
            and value >= 0)


def _is_ratio(value) -> bool:
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and 0.0 <= value <= 1.0)


def _is_latency(value) -> bool:
    if value is None:  # no submissions measured
        return True
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and value >= 0)


def _check_class(path: str, name: str, stats: dict) -> list[str]:
    problems: list[str] = []
    missing = CLASS_FIELDS - set(stats)
    if missing:
        return [f"{path}: class {name} missing fields {sorted(missing)}"]
    for key in CLASS_FIELDS - {"statuses"}:
        if not _is_count(stats[key]):
            problems.append(f"{path}: class {name}.{key} is not a count")
    statuses = stats["statuses"]
    if not (isinstance(statuses, dict)
            and all(isinstance(k, str) and _is_count(v)
                    for k, v in statuses.items())):
        problems.append(f"{path}: class {name}.statuses malformed")
        return problems
    if stats["submitted"] != (stats["accepted"] + stats["deduplicated"]
                              + stats["shed"]):
        problems.append(
            f"{path}: class {name} submitted={stats['submitted']} != "
            f"accepted+deduplicated+shed")
    if stats["shed"] != stats["shed_rate_limited"] + stats["shed_queue_full"]:
        problems.append(f"{path}: class {name} shed components do not sum")
    if sum(statuses.values()) != stats["accepted"]:
        problems.append(
            f"{path}: class {name} verdicts sum to "
            f"{sum(statuses.values())}, accepted={stats['accepted']}")
    return problems


def check_fleet(path: str, min_honest_audited: int = 1,
                max_honest_shed: float | None = None) -> list[str]:
    """Problems with one fleet summary (empty list = clean)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path}: expected a JSON object"]
    missing = TOP_FIELDS - set(doc)
    if missing:
        return [f"{path}: missing fields {sorted(missing)}"]
    problems: list[str] = []

    classes = doc["classes"]
    if not isinstance(classes, dict) or "honest" not in classes:
        return [f"{path}: classes must be an object with an honest class"]
    unknown = set(classes) - KNOWN_CLASSES
    if unknown:
        problems.append(f"{path}: unknown traffic classes "
                        f"{sorted(unknown)}")
    for name in sorted(set(classes) & KNOWN_CLASSES):
        if not isinstance(classes[name], dict):
            problems.append(f"{path}: class {name} is not an object")
            continue
        problems.extend(_check_class(path, name, classes[name]))
    if problems:
        return problems

    # Cross-class totals: class counters partition the service counters.
    stats = doc["stats"]
    if not isinstance(stats, dict):
        return [f"{path}: stats is not an object"]
    for key in ("submitted", "accepted", "deduplicated",
                "shed_rate_limited", "shed_queue_full"):
        total = sum(classes[name].get(key, 0) for name in classes)
        if stats.get(key) != total:
            problems.append(f"{path}: stats.{key}={stats.get(key)} != "
                            f"class sum {total}")

    # Safety: the headline invariant, three ways.
    if doc["false_accepts"] != []:
        problems.append(f"{path}: {len(doc['false_accepts'])} false "
                        "accept(s) recorded")
    adversary = classes.get("adversary")
    if adversary and adversary["statuses"].get("accepted", 0) != 0:
        problems.append(f"{path}: adversary class has ACCEPTED verdicts")
    invariants = doc["invariants"]
    if not (isinstance(invariants, dict) and invariants):
        problems.append(f"{path}: invariants missing or empty")
    else:
        breached = sorted(name for name, held in invariants.items()
                          if held is not True)
        if breached:
            problems.append(f"{path}: invariants breached: {breached}")

    # Liveness.
    honest = classes["honest"]
    if not _is_ratio(doc["honest_shed_ratio"]):
        problems.append(f"{path}: honest_shed_ratio is not a ratio")
    elif honest["submitted"]:
        ratio = honest["shed"] / honest["submitted"]
        if abs(ratio - doc["honest_shed_ratio"]) > 1e-9:
            problems.append(f"{path}: honest_shed_ratio={doc['honest_shed_ratio']} "
                            f"inconsistent with class counters ({ratio})")
        if max_honest_shed is not None and ratio > max_honest_shed:
            problems.append(f"{path}: honest shed ratio {ratio:.3f} above "
                            f"required bound {max_honest_shed}")
    if not _is_ratio(doc["flood_turned_away_ratio"]):
        problems.append(f"{path}: flood_turned_away_ratio is not a ratio")
    audited_honest = sum(honest["statuses"].values())
    if audited_honest < min_honest_audited:
        problems.append(f"{path}: {audited_honest} honest verdict(s), "
                        f"required at least {min_honest_audited}")

    # Durability: the store is fully audited.
    store = doc["store"]
    if not isinstance(store, dict) or STORE_FIELDS - set(store):
        problems.append(f"{path}: store missing fields")
    else:
        if store["pending"] != 0:
            problems.append(f"{path}: store has {store['pending']} "
                            "unaudited rows")
        if store["verdicts"] != store["submissions"]:
            problems.append(f"{path}: store verdicts={store['verdicts']} "
                            f"!= submissions={store['submissions']}")

    if not isinstance(doc["alerts"], list):
        problems.append(f"{path}: alerts is not a list")
    else:
        pages = [a for a in doc["alerts"]
                 if isinstance(a, dict) and a.get("severity") == "page"]
        if pages:
            problems.append(f"{path}: {len(pages)} page-severity alert(s)")

    timing = doc.get("timing")
    if timing is not None:
        if not isinstance(timing, dict):
            problems.append(f"{path}: timing is not an object")
        else:
            for key in ("intake_p50_s", "intake_p99_s"):
                if key in timing and not _is_latency(timing[key]):
                    problems.append(f"{path}: timing.{key} is not a "
                                    "finite latency")

    if doc["ok"] is not True:
        problems.append(f"{path}: run reported ok={doc['ok']!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fleet", action="append", default=[],
                        help="fleet --json summary to check (repeatable)")
    parser.add_argument("--min-honest-audited", type=int, default=1,
                        help="require at least this many honest verdicts "
                             "(default 1)")
    parser.add_argument("--max-honest-shed", type=float, default=None,
                        help="tighten the honest shed-ratio bound")
    args = parser.parse_args(argv)
    if not args.fleet:
        parser.error("nothing to check")

    problems: list[str] = []
    for path in args.fleet:
        problems.extend(check_fleet(
            path, min_honest_audited=args.min_honest_audited,
            max_honest_shed=args.max_honest_shed))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"fleet check: {len(args.fleet)} file(s) ok")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
