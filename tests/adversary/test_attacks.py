"""The adversary matrix: every attack class rejected, zero false accepts.

A full 19-attack x 3-scenario sweep runs in CI (conformance-smoke); the
tier-1 suite keeps one scenario so the matrix semantics — expected
outcomes, control flights, stats bookkeeping, JSON shape — are pinned on
every push without the CI-scale runtime.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import (
    AttackReport,
    AttackStats,
    builtin_attacks,
    run_matrix,
)
from repro.adversary.attacks import AttackResult
from repro.adversary.matrix import _incursion_interval
from repro.workloads import build_violation_variants

EXPECTED_ATTACKS = {
    "suppress_incursion", "truncate_at_incursion", "replay_previous_flight",
    "window_lie", "relay_foreign_drone", "tamper_position",
    "bitflip_signature", "timestamp_reorder", "clock_skew_forgery",
    "teleport_spoof", "chain_truncation", "chain_splice",
    "chain_mac_forgery", "merkle_omitted_leaves", "merkle_over_redaction",
    "merkle_cross_flight_splice", "merkle_forged_sibling", "nonce_replay",
    "key_extraction",
}


@pytest.fixture(scope="module")
def report() -> AttackReport:
    return run_matrix(scenarios=build_violation_variants(0)[:1], seed=0)


class TestMatrixInvariants:
    def test_covers_every_builtin_attack(self, report):
        assert {cell.attack for cell in report.cells} == EXPECTED_ATTACKS
        assert len(builtin_attacks()) == len(EXPECTED_ATTACKS)

    def test_zero_false_accepts(self, report):
        offenders = [cell.attack for cell in report.cells
                     if cell.result.false_accept]
        assert offenders == []
        assert report.stats.false_accepts == 0

    def test_every_outcome_is_expected(self, report):
        for cell in report.cells:
            assert cell.expected_ok, (
                f"{cell.attack}: outcome {cell.result.outcome!r} "
                f"not in expected {cell.expected}")
        assert report.stats.unexpected_outcomes == 0

    def test_controls_pass(self, report):
        # Per scenario: a compliant flight must be ACCEPTED and the raw
        # violation flight must be flagged — otherwise "attack rejected"
        # could just mean "the verifier rejects everything".
        assert len(report.controls) == 2
        for control in report.controls:
            assert control["ok"], control

    def test_stats_bookkeeping(self, report):
        stats = report.stats
        assert stats.attacks_run == len(report.cells)
        assert stats.rejected == stats.attacks_run
        assert sum(stats.by_outcome.values()) == stats.attacks_run
        # Distinct rejection mechanisms must all appear — the matrix is
        # not allowed to collapse onto a single defensive layer.
        assert {"bad_signature", "no_poa", "out_of_order",
                "nonce_replayed", "world_isolation"} <= set(stats.by_outcome)

    def test_report_ok_and_serializable(self, report):
        assert report.ok
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["invariants"] == {"false_accepts": [],
                                         "unexpected_outcomes": [],
                                         "control_failures": []}
        json.dumps(payload)  # must be pure-JSON, no enum/dataclass leakage


class TestAttackStats:
    def test_record_tallies_outcomes(self):
        stats = AttackStats()
        stats.record(AttackResult(outcome="bad_signature", accepted=False,
                                  cleared=False, detail=""), expected_ok=True)
        stats.record(AttackResult(outcome="bad_signature", accepted=False,
                                  cleared=False, detail=""), expected_ok=True)
        stats.record(AttackResult(outcome="surprise", accepted=False,
                                  cleared=False, detail=""), expected_ok=False)
        assert stats.attacks_run == 3
        assert stats.rejected == 3
        assert stats.false_accepts == 0
        assert stats.unexpected_outcomes == 1
        assert stats.by_outcome == {"bad_signature": 2, "surprise": 1}

    def test_record_counts_false_accept(self):
        stats = AttackStats()
        stats.record(AttackResult(outcome="false_accept", accepted=True,
                                  cleared=True, detail=""), expected_ok=False)
        assert stats.false_accepts == 1
        assert stats.rejected == 0


class TestViolationVariants:
    def test_three_distinct_geometries(self):
        variants = build_violation_variants(seed=4)
        assert len(variants) == 3
        names = {scenario.name for scenario in variants}
        assert names == {"violation-straight-4", "violation-diagonal-4",
                         "violation-edge-clip-4"}

    @pytest.mark.parametrize("index", range(3))
    def test_each_variant_enters_the_zone(self, index):
        scenario = build_violation_variants(seed=1)[index]
        assert len(scenario.zones) == 1
        interval = _incursion_interval(scenario)
        assert interval is not None
        start, end = interval
        assert scenario.t_start <= start < end <= scenario.t_end

    def test_t0_is_offset_from_default_epoch(self):
        from repro.sim.clock import DEFAULT_EPOCH
        scenario = build_violation_variants(seed=0)[0]
        # A full day after the shared epoch: replayed old flights land in
        # a disjoint window yet inside the server's retention horizon.
        assert scenario.t_start == pytest.approx(DEFAULT_EPOCH + 86400.0)
