"""``repro.faults`` — deterministic fault injection and resilience.

Two halves:

* **Injection** — :class:`FaultPlan` / :class:`FaultInjector`: seeded,
  scoped fault rules (message drop/duplicate/corrupt/delay/reorder, GPS
  dropout bursts and fix degradation, transient TEE and Auditor failures,
  clock skew) executed at named injection points the production
  boundaries expose.  Injectors are opt-in: with none attached every
  boundary runs its original code path.
* **Resilience** — :class:`RetryPolicy` / :func:`execute_with_retry`
  (exponential backoff + decorrelated jitter on the virtual clock), the
  bounded streaming outbox (:mod:`repro.net.streaming`), and degraded-mode
  adaptive sampling (:mod:`repro.core.sampling`).

The :mod:`repro.faults.chaos` harness sweeps scenario × fault-plan
matrices and checks the protocol invariants (no false accepts, liveness
under bounded loss).  See ``docs/RESILIENCE.md``.
"""

from repro.faults.injector import FaultInjector, FaultStats, LinkDelivery
from repro.faults.plan import (
    ALL_ACTIONS,
    FaultPlan,
    FaultRule,
    builtin_plans,
)
from repro.faults.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    RetryStats,
    execute_with_retry,
)

__all__ = [
    "ALL_ACTIONS",
    "ChaosCell",
    "ChaosReport",
    "DEFAULT_RETRY_POLICY",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "LinkDelivery",
    "RetryPolicy",
    "RetryStats",
    "builtin_plans",
    "execute_with_retry",
    "run_cell",
    "run_matrix",
]

_CHAOS_EXPORTS = ("ChaosCell", "ChaosReport", "run_cell", "run_matrix")


def __getattr__(name: str):
    # The chaos harness imports the drone client and server — which
    # themselves import repro.faults.retry — so loading it eagerly here
    # would be a circular import.  Resolve its exports lazily instead.
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos
        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
