"""Declarative fault plans: what to break, where, when, and how often.

A :class:`FaultPlan` is a named, seeded list of :class:`FaultRule`\\ s.  Each
rule targets one *injection point* — a dotted name a production boundary
exposes (``link.uplink.send``, ``gps.update``, ``tee.smc``,
``auditor.receive_poa``, ``auditor.clock``) — and describes one fault
action with an optional virtual-time window, a firing probability, and a
cap on how many times it may fire.

Plans are pure data: they carry no randomness of their own.  The
:class:`~repro.faults.injector.FaultInjector` derives one independent,
deterministic RNG stream per rule from ``(plan.seed, rule index, point,
action)``, so decisions at one injection point never perturb another and a
chaos run replays bit-identically from its seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Fault actions understood by the injector, by injection-point family.
LINK_ACTIONS = ("drop", "duplicate", "corrupt", "delay", "reorder")
GPS_ACTIONS = ("dropout", "degrade")
FAIL_ACTIONS = ("fail",)
CLOCK_ACTIONS = ("skew",)
ALL_ACTIONS = LINK_ACTIONS + GPS_ACTIONS + FAIL_ACTIONS + CLOCK_ACTIONS


@dataclass(frozen=True)
class FaultRule:
    """One fault: ``action`` at ``point`` within a window, with probability.

    Attributes:
        point: injection-point name the rule applies to (exact match).
        action: one of :data:`ALL_ACTIONS`.
        probability: independent chance the rule fires per opportunity.
        t_start, t_end: virtual-time window (inclusive) the rule is armed
            in.  Points that cannot supply a clock only match rules whose
            window is unbounded.
        param: action parameter — seconds for ``delay``/``reorder``/
            ``skew``, extra per-axis noise std in metres for ``degrade``,
            number of corrupted bytes for ``corrupt`` (default 1).
        max_count: cap on how many times this rule may fire (None =
            unlimited).  ``fail`` rules with ``max_count=N`` model "the
            first N calls fail, then the service recovers".
        detail: free-form note carried into reports.
    """

    point: str
    action: str
    probability: float = 1.0
    t_start: float = -math.inf
    t_end: float = math.inf
    param: float = 0.0
    max_count: int | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if not self.point:
            raise ConfigurationError("fault rule needs an injection point")
        if self.action not in ALL_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {ALL_ACTIONS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}")
        if self.t_end < self.t_start:
            raise ConfigurationError("fault window must not be inverted")
        if self.max_count is not None and self.max_count < 0:
            raise ConfigurationError("fault max_count must be non-negative")
        if self.action in ("delay", "reorder") and self.param < 0:
            raise ConfigurationError(f"{self.action} param must be >= 0 s")
        if self.action == "degrade" and self.param < 0:
            raise ConfigurationError("degrade param (noise std) must be >= 0")

    @property
    def windowed(self) -> bool:
        """Whether the rule only applies inside a bounded time window."""
        return self.t_start != -math.inf or self.t_end != math.inf

    def in_window(self, now: float | None) -> bool:
        """Whether the rule is armed at virtual time ``now``.

        A point that cannot supply a clock passes ``now=None`` and only
        matches unwindowed rules — a windowed rule silently never firing
        would make a chaos plan lie about its coverage.
        """
        if now is None:
            return not self.windowed
        return self.t_start <= now <= self.t_end

    def to_dict(self) -> dict:
        """JSON-ready form (infinities become None)."""
        return {
            "point": self.point,
            "action": self.action,
            "probability": self.probability,
            "t_start": None if self.t_start == -math.inf else self.t_start,
            "t_end": None if self.t_end == math.inf else self.t_end,
            "param": self.param,
            "max_count": self.max_count,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        """Inverse of :meth:`to_dict`."""
        return cls(
            point=data["point"], action=data["action"],
            probability=data.get("probability", 1.0),
            t_start=(-math.inf if data.get("t_start") is None
                     else data["t_start"]),
            t_end=(math.inf if data.get("t_end") is None else data["t_end"]),
            param=data.get("param", 0.0),
            max_count=data.get("max_count"),
            detail=data.get("detail", ""))


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault rules."""

    name: str
    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    #: Effective end-to-end message-loss hint used by the chaos harness to
    #: decide whether the liveness invariant (submission completes under
    #: <= 30% loss) applies to this plan.
    expected_loss: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault plan needs a name")
        if not 0.0 <= self.expected_loss <= 1.0:
            raise ConfigurationError("expected_loss must be in [0, 1]")
        object.__setattr__(self, "rules", tuple(self.rules))

    def points(self) -> set[str]:
        """Every injection point the plan touches."""
        return {rule.point for rule in self.rules}

    def rules_for(self, point: str) -> tuple[FaultRule, ...]:
        """Rules targeting ``point`` in declaration order."""
        return tuple(rule for rule in self.rules if rule.point == point)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan re-seeded (for matrix sweeps over seeds)."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict:
        """JSON-ready form, embedded in chaos reports."""
        return {"name": self.name, "seed": self.seed,
                "expected_loss": self.expected_loss,
                "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(name=data["name"], seed=data.get("seed", 0),
                   expected_loss=data.get("expected_loss", 0.0),
                   rules=tuple(FaultRule.from_dict(r)
                               for r in data.get("rules", ())))


# --- canned plans the chaos harness sweeps -------------------------------


def builtin_plans(seed: int = 0) -> dict[str, FaultPlan]:
    """The standard chaos fault matrix, re-seeded from ``seed``.

    Loss rates stay at or below 30% so the liveness invariant applies to
    every lossy plan; the ``kitchen_sink`` plan layers every fault family
    at once and is gated on safety (no false accept) only.
    """
    uplink, downlink = "link.uplink.send", "link.downlink.send"
    plans = [
        FaultPlan("baseline", (), seed=seed),
        FaultPlan("lossy10", (
            FaultRule(uplink, "drop", probability=0.10),
            FaultRule(downlink, "drop", probability=0.10),
        ), seed=seed, expected_loss=0.10),
        FaultPlan("lossy30", (
            FaultRule(uplink, "drop", probability=0.30),
            FaultRule(downlink, "drop", probability=0.30),
        ), seed=seed, expected_loss=0.30),
        FaultPlan("dup_corrupt", (
            FaultRule(uplink, "duplicate", probability=0.20),
            FaultRule(uplink, "corrupt", probability=0.15, param=2),
            FaultRule(downlink, "duplicate", probability=0.20),
        ), seed=seed),
        FaultPlan("reorder", (
            FaultRule(uplink, "reorder", probability=0.25, param=0.4),
            FaultRule(downlink, "delay", probability=0.25, param=0.2),
        ), seed=seed),
        FaultPlan("gps_burst", (
            # A mid-flight dropout burst plus degraded fix quality after.
            FaultRule("gps.update", "dropout", t_start=20.0, t_end=35.0,
                      detail="mid-flight dropout burst"),
            FaultRule("gps.update", "degrade", probability=0.5, param=1.5,
                      t_start=35.0, t_end=80.0),
        ), seed=seed),
        FaultPlan("flaky_tee", (
            FaultRule("tee.smc", "fail", probability=0.25, max_count=8),
        ), seed=seed),
        FaultPlan("auditor_outage", (
            FaultRule("auditor.receive_poa", "fail", max_count=3),
            FaultRule("auditor.zone_query", "fail", max_count=1),
        ), seed=seed),
        FaultPlan("clock_skew", (
            FaultRule("auditor.clock", "skew", param=45.0),
        ), seed=seed),
        FaultPlan("kitchen_sink", (
            FaultRule(uplink, "drop", probability=0.20),
            FaultRule(uplink, "duplicate", probability=0.10),
            FaultRule(uplink, "corrupt", probability=0.10, param=1),
            FaultRule(downlink, "drop", probability=0.20),
            FaultRule("gps.update", "dropout", t_start=25.0, t_end=32.0),
            FaultRule("tee.smc", "fail", probability=0.15, max_count=6),
            FaultRule("auditor.receive_poa", "fail", max_count=2),
            FaultRule("auditor.clock", "skew", param=-30.0),
        ), seed=seed, expected_loss=0.20),
    ]
    return {plan.name: plan for plan in plans}
