"""Retry with exponential backoff, decorrelated jitter, and virtual time.

Transient failures (:class:`~repro.errors.TransientError`) are retried;
everything else propagates on the first attempt.  All waiting is *virtual*:
backoff sleeps and per-attempt timeouts advance the simulation clock, so a
chaos run's recovery latency is measurable and bit-identical given the
seed, and no test ever sleeps on the wall clock.

The backoff schedule is decorrelated jitter (Brooker, "Exponential Backoff
And Jitter"): ``delay = min(cap, uniform(base, previous * 3))``.  Compared
to plain exponential backoff it decorrelates competing clients without
giving up the exponential envelope.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import ConfigurationError, TransientError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How a protocol call retries transient failures.

    Attributes:
        max_attempts: total tries including the first.
        base_delay_s: backoff floor (first retry waits at least this).
        max_delay_s: backoff cap.
        attempt_timeout_s: virtual seconds a *failed* attempt is deemed to
            have consumed before the failure was observed (the per-attempt
            timeout); charged to the clock so recovery latency includes
            waiting on dead services.  ``0`` models instant failures.
        retry_on: exception family treated as transient.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    max_delay_s: float = 8.0
    attempt_timeout_s: float = 0.0
    retry_on: tuple[type[BaseException], ...] = (TransientError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                "retry delays must satisfy 0 <= base <= max")
        if self.attempt_timeout_s < 0:
            raise ConfigurationError("attempt_timeout_s must be >= 0")

    def next_delay(self, previous_delay: float,
                   rng: random.Random) -> float:
        """Decorrelated-jitter backoff step after ``previous_delay``."""
        return min(self.max_delay_s,
                   rng.uniform(self.base_delay_s, previous_delay * 3.0))


#: A conservative default for drone-to-Auditor protocol calls.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class RetryStats:
    """Counters for the ``retry.*`` metrics adapter."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    recoveries: int = 0
    giveups: int = 0
    total_backoff_s: float = 0.0
    #: Per-operation retry counts, e.g. ``{"submit_poa": 3}``.
    by_operation: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {"calls": self.calls, "attempts": self.attempts,
                "retries": self.retries, "recoveries": self.recoveries,
                "giveups": self.giveups,
                "total_backoff_s": self.total_backoff_s,
                "by_operation": dict(sorted(self.by_operation.items()))}


def execute_with_retry(fn: Callable[[], T], *, clock,
                       policy: RetryPolicy | None = None,
                       rng: random.Random | None = None,
                       stats: RetryStats | None = None,
                       operation: str = "call") -> T:
    """Run ``fn`` under ``policy``, advancing ``clock`` for every wait.

    Args:
        fn: the zero-argument attempt; re-invoked fresh per try, so
            callers rebuild non-idempotent material (nonces) inside it.
        clock: anything with ``advance(dt)`` (a
            :class:`~repro.sim.clock.SimClock`); receives the per-attempt
            timeout of each failure and every backoff sleep.
        policy: retry policy; ``None`` means a single bare attempt.
        rng: jitter source (defaults to a fresh seeded stream — pass one
            for end-to-end reproducibility).
        stats: optional accumulator shared across calls.
        operation: label for per-operation stats.

    Raises:
        The last transient error once attempts are exhausted; any
        non-transient error immediately.
    """
    if policy is None:
        return fn()
    rng = rng if rng is not None else random.Random(0)
    previous_delay = policy.base_delay_s
    if stats is not None:
        stats.calls += 1
    for attempt in range(1, policy.max_attempts + 1):
        if stats is not None:
            stats.attempts += 1
        try:
            result = fn()
        except policy.retry_on:
            if policy.attempt_timeout_s > 0:
                clock.advance(policy.attempt_timeout_s)
            if attempt >= policy.max_attempts:
                if stats is not None:
                    stats.giveups += 1
                raise
            delay = policy.next_delay(previous_delay, rng)
            previous_delay = delay
            clock.advance(delay)
            if stats is not None:
                stats.retries += 1
                stats.total_backoff_s += delay
                stats.by_operation[operation] = (
                    stats.by_operation.get(operation, 0) + 1)
            continue
        if stats is not None and attempt > 1:
            stats.recoveries += 1
        return result
    raise AssertionError("unreachable")  # pragma: no cover
