"""Deterministic fault injection at named production boundaries.

The :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against the injection points the production code exposes.  Boundaries stay
fault-agnostic: each one holds an optional injector reference (``None`` by
default) and, when present, asks it one question at its hot point —

* links: :meth:`FaultInjector.link_deliveries` — how many copies of this
  message arrive, with what extra delay, possibly corrupted;
* the GPS receiver: :meth:`FaultInjector.gps_update` — is this hardware
  update suppressed, and with what extra position error;
* the TEE monitor / Auditor endpoints: :meth:`FaultInjector.maybe_fail` —
  does this call fail transiently;
* clocks: :meth:`FaultInjector.clock_skew` — additive skew in seconds.

Determinism: each rule owns an independent ``random.Random`` stream seeded
from ``(plan.seed, rule index, point, action)`` via the string constructor
(stable across processes, unlike ``hash``).  Decisions at one point can
therefore never perturb decisions at another, and re-running a plan over
the same traffic replays bit-identically.

Fault windows in plans are *relative to the scenario start*: the injector
adds its ``t0`` offset before matching, so the same canned plan works at
any epoch.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError, TransientError
from repro.faults.plan import (
    CLOCK_ACTIONS,
    FAIL_ACTIONS,
    GPS_ACTIONS,
    LINK_ACTIONS,
    FaultPlan,
    FaultRule,
)


@dataclass
class FaultStats:
    """Counters of what the injector actually did, for the ``fault.*``
    metrics adapter and chaos reports."""

    #: ``"{point}.{action}" -> times fired``.
    injected: Counter = field(default_factory=Counter)
    #: Opportunities seen per point (fired or not).
    opportunities: Counter = field(default_factory=Counter)

    @property
    def total_injected(self) -> int:
        """Every fault actually injected, across all points."""
        return sum(self.injected.values())

    def to_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {"total_injected": self.total_injected,
                "injected": dict(sorted(self.injected.items())),
                "opportunities": dict(sorted(self.opportunities.items()))}


@dataclass
class LinkDelivery:
    """One scheduled copy of a message after fault processing."""

    payload: bytes
    extra_delay_s: float = 0.0


class FaultInjector:
    """Executes a fault plan; one instance is shared across all boundaries
    of a run so ``stats`` aggregates the whole story.

    Args:
        plan: the fault plan to execute.
        t0: virtual time the plan's relative windows are anchored at.
        now_fn: optional clock for boundaries that have none of their own
            (the TEE monitor); boundaries that know virtual time pass it
            explicitly instead.
    """

    def __init__(self, plan: FaultPlan, t0: float = 0.0,
                 now_fn: Callable[[], float] | None = None):
        self.plan = plan
        self.t0 = float(t0)
        self.now_fn = now_fn
        self.stats = FaultStats()
        self._rules_by_point: dict[str, list[tuple[FaultRule, random.Random]]] = {}
        self._fired: Counter = Counter()
        for index, rule in enumerate(plan.rules):
            rng = random.Random(
                f"{plan.seed}:{index}:{rule.point}:{rule.action}")
            self._rules_by_point.setdefault(rule.point, []).append((rule, rng))

    # --- shared machinery -------------------------------------------------

    def active(self, point: str) -> bool:
        """Whether any rule targets ``point`` (the boundaries' cheap guard)."""
        return point in self._rules_by_point

    def _now(self, now: float | None) -> float | None:
        if now is not None:
            return now
        return self.now_fn() if self.now_fn is not None else None

    def _fires(self, point: str, rule: FaultRule, rng: random.Random,
               now: float | None) -> bool:
        """One rule's fire/no-fire decision for one opportunity.

        The RNG is drawn whenever the rule is armed so the stream position
        depends only on the armed-opportunity count, not on window timing
        quirks; ``max_count`` caps are enforced after the draw.
        """
        relative = None if now is None else now - self.t0
        if not rule.in_window(relative):
            return False
        if rule.probability < 1.0 and rng.random() >= rule.probability:
            return False
        key = (point, id(rule))
        if rule.max_count is not None and self._fired[key] >= rule.max_count:
            return False
        self._fired[key] += 1
        self.stats.injected[f"{point}.{rule.action}"] += 1
        return True

    def _matching(self, point: str, actions: tuple[str, ...],
                  now: float | None):
        """Armed, fired rules for ``point`` restricted to ``actions``."""
        self.stats.opportunities[point] += 1
        now = self._now(now)
        for rule, rng in self._rules_by_point.get(point, ()):
            if rule.action not in actions:
                raise ConfigurationError(
                    f"rule action {rule.action!r} is not valid at "
                    f"injection point {point!r}")
            if self._fires(point, rule, rng, now):
                yield rule, rng

    # --- link faults ------------------------------------------------------

    def link_deliveries(self, point: str, message: bytes,
                        now: float | None = None) -> list[LinkDelivery]:
        """Fault-process one link transmission.

        Returns the copies that actually go on the air: empty on drop, two
        on duplicate, payload bit-flipped on corrupt, positive
        ``extra_delay_s`` on delay/reorder.  Multiple rules compose in
        declaration order (a drop wins over everything downstream).
        """
        deliveries = [LinkDelivery(bytes(message))]
        for rule, rng in self._matching(point, LINK_ACTIONS, now):
            if rule.action == "drop":
                return []
            if rule.action == "duplicate":
                deliveries = deliveries + [
                    LinkDelivery(d.payload, d.extra_delay_s)
                    for d in deliveries]
            elif rule.action == "corrupt":
                flips = max(1, int(rule.param))
                deliveries = [
                    LinkDelivery(self._corrupt(d.payload, rng, flips),
                                 d.extra_delay_s)
                    for d in deliveries]
            elif rule.action in ("delay", "reorder"):
                # Reorder is delay applied to a random subset: a delayed
                # message overtakes nothing, but its successors overtake it.
                deliveries = [
                    LinkDelivery(d.payload, d.extra_delay_s + rule.param)
                    for d in deliveries]
        return deliveries

    @staticmethod
    def _corrupt(payload: bytes, rng: random.Random, flips: int) -> bytes:
        if not payload:
            return payload
        corrupted = bytearray(payload)
        for _ in range(flips):
            position = rng.randrange(len(corrupted))
            corrupted[position] ^= 1 << rng.randrange(8)
        return bytes(corrupted)

    # --- GPS faults -------------------------------------------------------

    def gps_update(self, point: str, t: float) -> tuple[bool, float, float]:
        """Fault-process one receiver hardware update at time ``t``.

        Returns ``(suppressed, dx_m, dy_m)``: whether the update is lost
        (dropout burst) and the extra position error to add (fix-quality
        degradation).  The error is drawn from the *rule's* RNG stream, so
        the receiver's own noise stream is untouched and a no-fault run
        stays bit-identical.
        """
        suppressed, dx, dy = False, 0.0, 0.0
        for rule, rng in self._matching(point, GPS_ACTIONS, t):
            if rule.action == "dropout":
                suppressed = True
            elif rule.action == "degrade" and rule.param > 0:
                dx += rng.gauss(0.0, rule.param)
                dy += rng.gauss(0.0, rule.param)
        return suppressed, dx, dy

    # --- transient call failures -----------------------------------------

    def maybe_fail(self, point: str, now: float | None = None,
                   error: Callable[[str], TransientError] | None = None,
                   ) -> None:
        """Raise a transient error if a ``fail`` rule fires at ``point``.

        ``error`` builds the exception from a message; it defaults to
        :class:`~repro.errors.TransientError` and lets boundaries raise
        their own family (``TeeTransientError``, ``ServiceUnavailableError``)
        so existing ``except`` clauses keep working.
        """
        for rule, _ in self._matching(point, FAIL_ACTIONS, now):
            message = (rule.detail
                       or f"fault injected at {point} (plan {self.plan.name!r})")
            raise (error or TransientError)(message)

    # --- clock skew -------------------------------------------------------

    def clock_skew(self, point: str, now: float) -> float:
        """``now`` as seen through this point's (possibly skewed) clock."""
        skewed = now
        for rule, _ in self._matching(point, CLOCK_ACTIONS, now):
            skewed += rule.param
        return skewed
