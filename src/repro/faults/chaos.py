"""The chaos harness: scenario x fault-plan sweeps with invariant checks.

Each cell of the matrix drives the *entire* protocol under one fault plan:
registration, signed zone query, the adaptive flight (degraded-mode
sampling on), PoA streaming over faulty links with the bounded outbox, and
final submission to the Auditor with retries — all on virtual time, all
bit-reproducible from the seed.

Three system-wide invariants are asserted over the sweep:

* **Safety** — a violating flight (straight through an NFZ) is never
  ACCEPTED, under *any* fault plan.  Faults may delay or degrade the
  protocol; they must never mint an alibi.
* **Liveness** — under every plan whose effective message loss is at most
  30%, the streamed PoA is fully acknowledged and a verification report is
  obtained within the virtual-time budget.
* **No-op path** — with the empty (baseline) plan attached, the flight's
  PoA is bit-identical to a run with no injector at all: injection
  machinery is free when nothing is injected.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.crypto.rsa import generate_rsa_keypair
from repro.drone.client import AliDroneClient
from repro.drone.flightplan import FlightPlan
from repro.errors import AliDroneError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, builtin_plans
from repro.faults.retry import RetryPolicy, execute_with_retry
from repro.net.link import SimulatedLink
from repro.net.streaming import StreamingAuditorEndpoint, StreamingUploader
from repro.obs.adapters import register_fault_stats, register_retry_stats
from repro.obs.metrics import MetricsRegistry
from repro.server.auditor import AliDroneServer
from repro.sim.clock import SimClock
from repro.tee.attestation import provision_device
from repro.workloads.scenario import Scenario

#: Maximum end-to-end loss rate the liveness invariant covers (the paper's
#: control channel is lossy but not adversarial).
LIVENESS_LOSS_CEILING = 0.30

#: Client-side retry disciplines used by every chaos cell.  Attempts are
#: generous because chaos plans include hard outage windows, but bounded so
#: a cell cannot spin forever.
CHAOS_RETRY_POLICY = RetryPolicy(max_attempts=6, base_delay_s=0.2,
                                 max_delay_s=4.0, attempt_timeout_s=0.1)
CHAOS_TEE_RETRY_POLICY = RetryPolicy(max_attempts=6, base_delay_s=0.02,
                                     max_delay_s=0.5)


class _AuditorFrontend:
    """The server as the drone sees it over the (possibly skewed) wire.

    Production endpoints take server-side ``now`` explicitly; the frontend
    supplies it from the simulation clock, routed through the injector's
    ``auditor.clock`` skew when the plan defines one.  This keeps the
    server fault-agnostic about *time* while the harness still exercises
    skewed-clock intake.
    """

    def __init__(self, server: AliDroneServer, clock: SimClock,
                 injector: FaultInjector | None):
        self.server = server
        self.clock = clock
        self.injector = injector

    def _now(self) -> float:
        now = self.clock.now
        if self.injector is not None and self.injector.active("auditor.clock"):
            now = self.injector.clock_skew("auditor.clock", now)
        return now

    def register_drone(self, request):
        return self.server.register_drone(request)

    def handle_zone_query(self, query):
        return self.server.handle_zone_query(query, now=self._now())

    def receive_poa(self, submission):
        return self.server.receive_poa(submission, now=self._now())

    @property
    def public_encryption_key(self):
        return self.server.public_encryption_key


@dataclass
class ChaosCell:
    """One (scenario, plan) execution and everything it observed."""

    scenario: str
    plan: str
    violation: bool
    status: str
    accepted: bool
    submission_complete: bool
    liveness_applies: bool
    liveness_ok: bool
    recovery_latency_s: float
    auth_samples: int
    degraded_decisions: int
    retransmissions: int
    duplicate_frames: int
    corrupt_frames: int
    poa_digest: str
    fault_stats: dict = field(default_factory=dict)
    retry_stats: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form for the chaos report."""
        return {
            "scenario": self.scenario, "plan": self.plan,
            "violation": self.violation, "status": self.status,
            "accepted": self.accepted,
            "submission_complete": self.submission_complete,
            "liveness_applies": self.liveness_applies,
            "liveness_ok": self.liveness_ok,
            "recovery_latency_s": self.recovery_latency_s,
            "auth_samples": self.auth_samples,
            "degraded_decisions": self.degraded_decisions,
            "retransmissions": self.retransmissions,
            "duplicate_frames": self.duplicate_frames,
            "corrupt_frames": self.corrupt_frames,
            "poa_digest": self.poa_digest,
            "fault_stats": self.fault_stats,
            "retry_stats": self.retry_stats,
            "metrics": self.metrics,
        }


@dataclass
class ChaosReport:
    """A full matrix sweep plus its invariant verdicts."""

    config: dict
    cells: list[ChaosCell]
    false_accepts: list[str]
    liveness_failures: list[str]
    noop_path_identical: bool

    @property
    def ok(self) -> bool:
        """Whether every invariant held across the whole sweep."""
        return (not self.false_accepts and not self.liveness_failures
                and self.noop_path_identical)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``chaos --json`` / smoke-check schema)."""
        return {
            "config": self.config,
            "cells": [cell.to_dict() for cell in self.cells],
            "invariants": {
                "false_accepts": self.false_accepts,
                "liveness_failures": self.liveness_failures,
                "noop_path_identical": self.noop_path_identical,
            },
            "ok": self.ok,
        }


def _poa_digest(poa) -> str:
    """A stable digest of the flight PoA (payloads + signatures)."""
    digest = hashlib.sha256()
    for entry in poa:
        digest.update(entry.payload)
        digest.update(entry.signature)
    return digest.hexdigest()


def run_cell(scenario: Scenario, plan: FaultPlan | None, *,
             violation: bool = False, seed: int = 0, key_bits: int = 512,
             update_rate_hz: float = 5.0, outbox_limit: int = 32,
             liveness_budget_s: float = 300.0,
             poll_interval_s: float = 0.05) -> ChaosCell:
    """Drive the full protocol over ``scenario`` under ``plan``.

    ``plan=None`` runs with *no injector attached at all* — the reference
    arm of the no-op-path invariant.  Returns the cell result; never
    raises on protocol failure (failures become the cell's ``status``).
    """
    clock = SimClock(scenario.t_start)
    injector = (FaultInjector(plan, t0=scenario.t_start, now_fn=clock)
                if plan is not None else None)

    receiver = scenario.make_receiver(update_rate_hz=update_rate_hz,
                                      seed=seed, injector=injector)
    device = provision_device(f"chaos-{scenario.name}-{seed}",
                              key_bits=key_bits, rng=random.Random(seed))
    device.attach_gps(receiver, clock)
    if injector is not None:
        device.monitor.attach_injector(injector)

    server = AliDroneServer(scenario.frame, rng=random.Random(seed + 1),
                            encryption_key_bits=key_bits,
                            injector=injector)
    for zone in scenario.zones:
        server.zones.register(zone, proof_of_ownership="chaos")
    frontend = _AuditorFrontend(server, clock, injector)

    client = AliDroneClient(
        device, receiver, clock, scenario.frame,
        operator_key=generate_rsa_keypair(key_bits,
                                          rng=random.Random(seed + 2)),
        operator_name="chaos-op", rng=random.Random(seed + 3),
        retry_policy=CHAOS_RETRY_POLICY,
        tee_retry_policy=CHAOS_TEE_RETRY_POLICY,
        retry_rng=random.Random(seed + 4))

    registry = MetricsRegistry()
    if injector is not None:
        register_fault_stats(registry, injector.stats)
    register_retry_stats(registry, client.retry_stats)

    status = "ok"
    accepted = False
    submission_complete = False
    recovery_latency = 0.0
    record = None
    endpoint = None
    uploader = None
    try:
        client.register(frontend)
        x0, y0 = scenario.source.position_at(scenario.t_start)
        x1, y1 = scenario.source.position_at(scenario.t_end)
        flight_plan = FlightPlan([scenario.frame.to_geo(x0, y0),
                                  scenario.frame.to_geo(x1, y1)],
                                 margin_m=3_000.0)
        zones = client.query_zones(frontend, flight_plan)
        record = client.fly(scenario.t_end,
                            zones=zones if zones else scenario.zones,
                            degraded_mode=True)

        # Streaming leg: push every encrypted entry over the faulty
        # links, then poll until the cumulative ACK covers the flight.
        uplink = SimulatedLink(seed=seed + 5, injector=injector,
                               fault_point="link.uplink")
        downlink = SimulatedLink(seed=seed + 6, injector=injector,
                                 fault_point="link.downlink")
        uploader = StreamingUploader(uplink, downlink, record.flight_id,
                                     outbox_limit=outbox_limit)
        endpoint = StreamingAuditorEndpoint(uplink, downlink)
        encrypted = client.adapter.encrypt_for_auditor(
            record.poa, server.public_encryption_key,
            rng=random.Random(seed + 7))

        deadline = clock.now + liveness_budget_s

        def step() -> None:
            clock.advance(poll_interval_s)
            endpoint.poll(clock.now)
            uploader.poll(clock.now)

        uploader.begin_flight(clock.now)
        for entry in encrypted:
            while not uploader.can_push and clock.now < deadline:
                step()
            if not uploader.can_push:
                break
            uploader.push(entry, clock.now)
        uploader.end_flight(clock.now)
        push_done_at = clock.now
        end_announced_at = clock.now
        while (clock.now < deadline
               and not (uploader.fully_acked and endpoint.complete)):
            step()
            # The FLIGHT_END frame is fire-and-forget in the protocol; on
            # a lossy link the drone re-announces it until the stream is
            # confirmed complete, or completion could hinge on one frame.
            if (not endpoint.complete
                    and clock.now - end_announced_at >= 1.0):
                uploader.end_flight(clock.now)
                end_announced_at = clock.now
        submission_complete = uploader.fully_acked and endpoint.complete
        recovery_latency = clock.now - push_done_at

        stats = record.result.stats
        if submission_complete:
            submission = endpoint.to_submission(client.drone_id,
                                                stats.start_time,
                                                stats.end_time)
        else:
            # Transport never converged: fall back to store-and-upload so
            # the safety invariant is still exercised for this cell.
            submission = client.build_submission(
                record, server.public_encryption_key)
        report = execute_with_retry(
            lambda: frontend.receive_poa(submission),
            clock=clock, policy=CHAOS_RETRY_POLICY,
            rng=random.Random(seed + 8), stats=client.retry_stats,
            operation="submit_poa")
        status = report.status.value
        accepted = report.status.value == "accepted"
    except AliDroneError as exc:
        status = f"error:{type(exc).__name__}"

    sampler_stats = record.result.stats if record is not None else None
    up_stats = uploader.stats if uploader is not None else None
    plan_name = plan.name if plan is not None else "no-injector"
    liveness_applies = (plan is not None
                        and plan.expected_loss <= LIVENESS_LOSS_CEILING)
    return ChaosCell(
        scenario=scenario.name, plan=plan_name, violation=violation,
        status=status, accepted=accepted,
        submission_complete=submission_complete,
        liveness_applies=liveness_applies,
        liveness_ok=submission_complete and not status.startswith("error:"),
        recovery_latency_s=recovery_latency,
        auth_samples=sampler_stats.auth_samples if sampler_stats else 0,
        degraded_decisions=(sampler_stats.degraded_decisions
                            if sampler_stats else 0),
        retransmissions=up_stats.retransmissions if up_stats else 0,
        duplicate_frames=endpoint.duplicate_frames if endpoint else 0,
        corrupt_frames=endpoint.corrupt_frames if endpoint else 0,
        poa_digest=_poa_digest(record.poa) if record is not None else "",
        fault_stats=injector.stats.to_dict() if injector is not None else {},
        retry_stats=client.retry_stats.to_dict(),
        metrics=registry.collect())


def record_cell_telemetry(hub, cell: ChaosCell, *, now: float) -> None:
    """Feed one finished chaos cell into a streaming telemetry hub.

    The cell's end-to-end recovery latency and verdict land via
    :meth:`~repro.obs.hub.TelemetryHub.record_audit` (the same metric
    namespace the live engine feeds, so the monitor rules see one
    uniform stream); link/fault/retry counters land on their own
    windowed counters.  The harness — not the auditor — knows ground
    truth, so this is also where the safety invariant becomes a
    monitored signal: a violating cell that was ACCEPTED increments
    ``audit.false_accepts``, which the built-in page rule latches on.
    """
    status = cell.status if cell.status else "error:unknown"
    reason = None
    if status.startswith("error:"):
        reason = status[len("error:"):]
    elif status != "accepted":
        reason = status
    hub.record_audit(seconds=cell.recovery_latency_s, status=status,
                     reason=reason, samples=cell.auth_samples, now=now)
    if cell.violation and cell.accepted:
        hub.mark("audit.false_accepts", now=now)
    for name, amount in (
            ("link.retransmissions", cell.retransmissions),
            ("link.duplicate_frames", cell.duplicate_frames),
            ("link.corrupt_frames", cell.corrupt_frames),
            ("tee.degraded_decisions", cell.degraded_decisions),
            ("faults.injected", cell.fault_stats.get("total_injected", 0)),
            ("retry.retries", cell.retry_stats.get("retries", 0)),
            ("retry.giveups", cell.retry_stats.get("giveups", 0)),
            ("retry.recoveries", cell.retry_stats.get("recoveries", 0))):
        if amount:
            hub.mark(name, now=now, amount=amount)


def run_matrix(scenarios: list[tuple[Scenario, bool]],
               plans: list[FaultPlan] | None = None, *,
               seed: int = 0, key_bits: int = 512,
               update_rate_hz: float = 5.0,
               liveness_budget_s: float = 300.0,
               on_cell=None) -> ChaosReport:
    """Sweep every plan over every scenario and check the invariants.

    Args:
        scenarios: ``(scenario, is_violation)`` pairs; violation scenarios
            feed the safety invariant, compliant ones the liveness
            invariant.
        plans: fault plans to sweep (defaults to :func:`builtin_plans`).
        on_cell: optional callback invoked with each finished
            :class:`ChaosCell` (reference cells included) — the hook the
            live telemetry session uses to tick per completed cell.
    """
    if plans is None:
        plans = list(builtin_plans(seed).values())

    cells: list[ChaosCell] = []
    false_accepts: list[str] = []
    liveness_failures: list[str] = []
    noop_identical = True

    for scenario, is_violation in scenarios:
        reference = run_cell(scenario, None, violation=is_violation,
                             seed=seed, key_bits=key_bits,
                             update_rate_hz=update_rate_hz,
                             liveness_budget_s=liveness_budget_s)
        if on_cell is not None:
            on_cell(reference)
        for plan in plans:
            cell = run_cell(scenario, plan, violation=is_violation,
                            seed=seed, key_bits=key_bits,
                            update_rate_hz=update_rate_hz,
                            liveness_budget_s=liveness_budget_s)
            cells.append(cell)
            if on_cell is not None:
                on_cell(cell)
            label = f"{scenario.name}/{plan.name}"
            if is_violation and cell.accepted:
                false_accepts.append(label)
            if (not is_violation and cell.liveness_applies
                    and not cell.liveness_ok):
                liveness_failures.append(label)
            if plan.name == "baseline" and not plan.rules:
                if cell.poa_digest != reference.poa_digest:
                    noop_identical = False

    return ChaosReport(
        config={"seed": seed, "key_bits": key_bits,
                "update_rate_hz": update_rate_hz,
                "liveness_budget_s": liveness_budget_s,
                "liveness_loss_ceiling": LIVENESS_LOSS_CEILING,
                "scenarios": [s.name for s, _ in scenarios],
                "plans": [p.name for p in plans]},
        cells=cells, false_accepts=false_accepts,
        liveness_failures=liveness_failures,
        noop_path_identical=noop_identical)
